#include "bench_util.hh"

#include <cstdio>

#include "common/env.hh"
#include "harness/parallel_sweep.hh"
#include "workload/benchmark_factory.hh"

namespace mcd::bench
{

RunnerConfig
standardConfig()
{
    RunnerConfig config;
    config.instructions = 250000;
    config.warmup = 50000;
    config.intervalInstructions = 1000;
    config.applyEnvOverrides();
    return config;
}

AttackDecayConfig
scaledAttackDecay()
{
    // Single definition in src/control (the stress-lab tournament's
    // default entries build from the same constants).
    return scaledAttackDecayConfig();
}

std::vector<std::string>
selectedBenchmarks()
{
    // Scenario-aware splitting: a synthetic: instance keeps its
    // comma-separated knobs, e.g.
    // MCD_BENCHMARKS="gsm,synthetic:mem=0.8,ilp=4,mcf".
    auto names = envScenarioList("MCD_BENCHMARKS");
    if (names.empty())
        return BenchmarkFactory::allNames();
    return names;
}

RunnerConfig
benchmarkConfig(const RunnerConfig &base, std::size_t index)
{
    RunnerConfig config = base;
    config.clockSeed = deriveJobSeed(config.clockSeed, index);
    return config;
}

ExperimentSpec
makeSpec(const RunnerConfig &config, const std::string &bench,
         const ControllerSpec &controller, ClockMode mode,
         Hertz startFreq)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.mode = mode;
    spec.startFreq = startFreq;
    spec.controller = controller;
    spec.config = config;
    return spec;
}

BenchResults
computeOne(Runner &runner, const std::string &name,
           const ComputeOptions &options)
{
    BenchResults r;
    r.name = name;

    // Every product here is an artifact: the baseline MCD run doubles
    // as the off-line profiling pass (one simulation, two artifacts),
    // the synchronous and Attack/Decay runs are plain cacheable
    // specs, and the offline searches memoize whole results.
    std::vector<IntervalProfile> profile;
    r.mcdBase = runner.runMcdBaseline(name, &profile);

    ControllerSpec none;
    r.sync = ArtifactCache::instance().getOrRun(
        makeSpec(runner.config(), name, none, ClockMode::Synchronous,
                 runner.config().dvfs.freqMax));
    r.attackDecay = ArtifactCache::instance().getOrRun(
        makeSpec(runner.config(), name,
                 attackDecaySpec(scaledAttackDecay())));

    if (options.offline) {
        r.dynamic1 = runner.runOfflineDynamic(name, 0.01, r.mcdBase,
                                              profile);
        r.dynamic5 = runner.runOfflineDynamic(name, 0.05, r.mcdBase,
                                              profile);
    }

    if (options.globals) {
        // Frequency-matched interpretation: slow the whole synchronous
        // chip by the algorithm's degradation over the baseline MCD.
        auto match = [&](const SimStats &target) {
            double deg = (static_cast<double>(target.time) -
                          static_cast<double>(r.mcdBase.time)) /
                         static_cast<double>(r.mcdBase.time);
            return runner.runGlobalAtDegradation(name, deg);
        };
        r.globalAd = match(r.attackDecay);
        if (options.offline) {
            r.globalDyn1 = match(r.dynamic1.stats);
            r.globalDyn5 = match(r.dynamic5.stats);
        }
    }
    return r;
}

std::vector<BenchResults>
computeAll(Runner &runner, const std::vector<std::string> &names,
           const ComputeOptions &options)
{
    // One job per benchmark. Each job gets its own Runner whose clock
    // seed is derived from the job index, so every variant of one
    // benchmark (computed inside the job) stays comparable while
    // results are bit-identical for any worker count. The inner
    // offline searches run serial (jobs = 1): parallelism lives at the
    // benchmark level here, and nesting pools would oversubscribe.
    ParallelSweep sweep(runner.config().jobs);
    std::fprintf(stderr, "  running %zu benchmarks on %d workers\n",
                 names.size(), sweep.workers());
    return sweep.map<BenchResults>(names.size(), [&](std::size_t i) {
        RunnerConfig config = benchmarkConfig(runner.config(), i);
        config.jobs = 1;
        Runner local(config);
        BenchResults r = computeOne(local, names[i], options);
        std::fprintf(stderr, "  done %s\n", names[i].c_str());
        return r;
    });
}

void
printMethodology(const RunnerConfig &config)
{
    std::printf("methodology: %llu measured instructions per run, "
                "%llu warm-up, %d-instruction control interval\n"
                "(override with MCD_INSNS / MCD_WARMUP / MCD_INTERVAL; "
                "select apps with MCD_BENCHMARKS)\n\n",
                static_cast<unsigned long long>(config.instructions),
                static_cast<unsigned long long>(config.warmup),
                config.intervalInstructions);
}

void
reportStoreStats()
{
    // One renderer for every `store:` line in the repo (fleet workers
    // parse this exact format from worker stderr).
    std::fprintf(stderr, "%s\n",
                 storeStatsLine(ArtifactCache::instance()).c_str());
}

} // namespace mcd::bench
