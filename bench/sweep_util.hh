/**
 * @file
 * Shared machinery for the sensitivity-sweep benches (Figures 5, 6, 7)
 * and the ablations: seed-matched, spec-driven batches over a
 * representative benchmark subset. Each batch is a vector of
 * ExperimentSpecs — one controller spec applied to every benchmark,
 * with per-benchmark clock seeds derived from the benchmark's index —
 * executed on the ParallelSweep workers (MCD_JOBS) through the
 * process-wide ArtifactCache. Baselines and any sweep points that
 * coincide therefore simulate once per process (once ever, with a
 * MCD_STORE disk store), and aggregates are bit-identical for any
 * worker count.
 */

#ifndef MCD_BENCH_SWEEP_UTIL_HH
#define MCD_BENCH_SWEEP_UTIL_HH

#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

namespace mcd::bench
{

/** Benchmarks used for parameter sweeps (override: MCD_BENCHMARKS). */
std::vector<std::string> sweepBenchmarks();

/**
 * One spec per benchmark: `controller` on the machine of
 * benchmarkConfig(base, i), so batch results over the same `names`
 * list stay seed-matched across variants.
 */
std::vector<ExperimentSpec>
seedMatchedSpecs(const RunnerConfig &base,
                 const std::vector<std::string> &names,
                 const ControllerSpec &controller,
                 ClockMode mode = ClockMode::Mcd, Hertz startFreq = 0.0);

/**
 * Run one controller variant over every benchmark on seed-matched
 * per-benchmark machines, fanned across the ParallelSweep workers and
 * resolved through the ArtifactCache. Results come back in `names`
 * order, bit-identical for any worker count.
 */
std::vector<SimStats>
runVariant(const Runner &runner, const std::vector<std::string> &names,
           const ControllerSpec &controller,
           ClockMode mode = ClockMode::Mcd, Hertz startFreq = 0.0);

/** Cached per-benchmark baselines reused across sweep points. */
struct SweepBaselines
{
    std::map<std::string, SimStats> mcd;
    std::map<std::string, SimStats> sync;
};

SweepBaselines computeBaselines(Runner &runner,
                                const std::vector<std::string> &names);

/** Aggregate metrics of one Attack/Decay configuration. */
struct SweepPoint
{
    double parameter = 0.0;
    double edpImprovementVsMcd = 0.0;
    double powerPerfRatio = 0.0;
    double perfDegradationVsSync = 0.0;
    double edpImprovementVsSync = 0.0;
    double energySavingsVsMcd = 0.0;
};

/** Run one A/D configuration over the subset and aggregate. */
SweepPoint runSweepPoint(Runner &runner,
                         const std::vector<std::string> &names,
                         const SweepBaselines &baselines,
                         const AttackDecayConfig &adc, double parameter);

} // namespace mcd::bench

#endif // MCD_BENCH_SWEEP_UTIL_HH
