/**
 * @file
 * Shared machinery for the sensitivity-sweep benches (Figures 5, 6, 7):
 * per-sweep-point Attack/Decay runs over a representative benchmark
 * subset, with cached baseline runs. Runs fan out across the
 * ParallelSweep workers (MCD_JOBS); per-benchmark seeds are derived
 * from the benchmark's index, shared between each baseline and every
 * sweep point, so comparisons stay seed-matched and aggregates are
 * bit-identical for any worker count.
 */

#ifndef MCD_BENCH_SWEEP_UTIL_HH
#define MCD_BENCH_SWEEP_UTIL_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

namespace mcd::bench
{

/** Benchmarks used for parameter sweeps (override: MCD_BENCHMARKS). */
std::vector<std::string> sweepBenchmarks();

/**
 * Run one measurement per benchmark on seed-matched per-benchmark
 * Runners (benchmarkConfig), fanned across the ParallelSweep workers.
 * `measure` executes concurrently: it must only touch its own locals
 * and the (shared, read-only) captures. Results come back in `names`
 * order, bit-identical for any worker count.
 */
std::vector<SimStats> runPerBenchmark(
    const Runner &runner, const std::vector<std::string> &names,
    const std::function<SimStats(Runner &, const std::string &)>
        &measure);

/** Cached per-benchmark baselines reused across sweep points. */
struct SweepBaselines
{
    std::map<std::string, SimStats> mcd;
    std::map<std::string, SimStats> sync;
};

SweepBaselines computeBaselines(Runner &runner,
                                const std::vector<std::string> &names);

/** Aggregate metrics of one Attack/Decay configuration. */
struct SweepPoint
{
    double parameter = 0.0;
    double edpImprovementVsMcd = 0.0;
    double powerPerfRatio = 0.0;
    double perfDegradationVsSync = 0.0;
    double edpImprovementVsSync = 0.0;
    double energySavingsVsMcd = 0.0;
};

/** Run one A/D configuration over the subset and aggregate. */
SweepPoint runSweepPoint(Runner &runner,
                         const std::vector<std::string> &names,
                         const SweepBaselines &baselines,
                         const AttackDecayConfig &adc, double parameter);

} // namespace mcd::bench

#endif // MCD_BENCH_SWEEP_UTIL_HH
