/**
 * @file
 * Throughput benchmark for the serve daemon: an in-process Server on a
 * private ArtifactCache, driven through the real socket + framing
 * stack by a ServeClient. Three measurements:
 *
 *   ping       round-trip time of the cheapest verb (protocol floor)
 *   cold       requests/sec when every request simulates (distinct
 *              clock seeds defeat the cache)
 *   warm       requests/sec when every request is a memory hit (one
 *              spec repeated — the daemon's reason to exist)
 *
 * The warm/cold ratio is the headline: it bounds what a fleet of
 * clients sharing a spec population saves by talking to one warm
 * daemon instead of re-running `mcd_cli run` cold each time.
 *
 *   serve_bench [--json] [--pings N] [--cold N] [--warm N]
 *
 * `--json` emits one machine-readable object per run — CI uploads it
 * as `BENCH_serve.json`.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace
{

using namespace mcd;
using namespace mcd::serve;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Per-verb tail latencies. Nearest-rank on the sorted sample — the
 *  same estimator the telemetry registry's histograms use, so the
 *  bench numbers and a daemon's serve.request.* quantiles agree in
 *  method if not in resolution. Sorts its argument. */
struct Percentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

Percentiles
percentiles(std::vector<double> &samples)
{
    Percentiles p;
    if (samples.empty())
        return p;
    std::sort(samples.begin(), samples.end());
    auto at = [&](double q) {
        std::size_t rank = static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1) + 0.5);
        return samples[std::min(rank, samples.size() - 1)];
    };
    p.p50 = at(0.50);
    p.p95 = at(0.95);
    p.p99 = at(0.99);
    return p;
}

/** Drive one `run` request to its terminal frame; counts results. */
std::size_t
drainRun(ServeClient &client, const std::string &request)
{
    std::size_t results = 0;
    json::Value terminal;
    std::string error;
    bool ok = client.call(
        request,
        [&](const json::Value &event) {
            if (event.getString("event") == "result")
                ++results;
        },
        terminal, &error);
    if (!ok)
        mcd_fatal("serve_bench request failed: %s", error.c_str());
    if (terminal.getString("event") != "done")
        mcd_fatal("serve_bench request ended with '%s'",
                  terminal.getString("event").c_str());
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    int pings = 2000;
    int cold = 24;
    int warm = 400;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> int {
            if (i + 1 >= argc)
                mcd_fatal("option '%s' needs a value", arg.c_str());
            int v = std::atoi(argv[++i]);
            if (v <= 0)
                mcd_fatal("option '%s' needs a positive count",
                          arg.c_str());
            return v;
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--pings") {
            pings = value();
        } else if (arg == "--cold") {
            cold = value();
        } else if (arg == "--warm") {
            warm = value();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: serve_bench [--json] [--pings N] "
                        "[--cold N] [--warm N]\n");
            return 0;
        } else {
            mcd_fatal("unknown argument '%s' (try --help)",
                      arg.c_str());
        }
    }

    // A private daemon: small methodology so the cold phase measures
    // request turnaround on short simulations, private cache so the
    // process-wide one stays untouched.
    ArtifactCache cache;
    ServeOptions options;
    options.socketPath = "/tmp/mcd_serve_bench_" +
                         std::to_string(::getpid()) + ".sock";
    options.config.instructions = 20000;
    options.config.warmup = 5000;
    options.config.intervalInstructions = 500;
    options.cache = &cache;
    Server server(options);
    std::thread daemon([&server] { server.run(); });

    ServeClient client;
    std::string error;
    bool connected = false;
    for (int i = 0; i < 100 && !connected; ++i) {
        connected = client.connect(options.socketPath, &error);
        if (!connected)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    if (!connected)
        mcd_fatal("serve_bench could not connect: %s", error.c_str());

    // ---- ping round-trips: the protocol + dispatch floor.
    std::vector<double> ping_lat;
    ping_lat.reserve(static_cast<std::size_t>(pings));
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < pings; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        json::Value terminal;
        if (!client.call("{\"op\": \"ping\"}", nullptr, terminal,
                         &error))
            mcd_fatal("ping failed: %s", error.c_str());
        ping_lat.push_back(secondsSince(t0) * 1e6);
    }
    double ping_seconds = secondsSince(start);

    // ---- cold: every request carries a fresh clock seed, so each one
    // is a distinct spec and must simulate.
    std::vector<double> cold_lat;
    cold_lat.reserve(static_cast<std::size_t>(cold));
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < cold; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        drainRun(client,
                 "{\"op\": \"run\", \"benches\": [\"gsm\"], "
                 "\"seed\": " + std::to_string(1000 + i) + "}");
        cold_lat.push_back(secondsSince(t0) * 1e6);
    }
    double cold_seconds = secondsSince(start);
    std::uint64_t cold_sims = cache.simulationsRun();

    // ---- warm: one spec repeated; after the first resolution every
    // request is a memory hit rendered and framed fresh.
    drainRun(client, "{\"op\": \"run\", \"benches\": [\"gsm\"]}");
    std::uint64_t sims_before_warm = cache.simulationsRun();
    std::vector<double> warm_lat;
    warm_lat.reserve(static_cast<std::size_t>(warm));
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < warm; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        drainRun(client, "{\"op\": \"run\", \"benches\": [\"gsm\"]}");
        warm_lat.push_back(secondsSince(t0) * 1e6);
    }
    double warm_seconds = secondsSince(start);
    if (cache.simulationsRun() != sims_before_warm)
        mcd_fatal("warm phase simulated (%llu -> %llu): cache broken",
                  static_cast<unsigned long long>(sims_before_warm),
                  static_cast<unsigned long long>(
                      cache.simulationsRun()));

    json::Value terminal;
    if (!client.call("{\"op\": \"shutdown\"}", nullptr, terminal,
                     &error))
        mcd_fatal("shutdown failed: %s", error.c_str());
    daemon.join();

    double ping_us = ping_seconds * 1e6 / pings;
    double cold_rps = cold / cold_seconds;
    double warm_rps = warm / warm_seconds;
    Percentiles ping_p = percentiles(ping_lat);
    Percentiles cold_p = percentiles(cold_lat);
    Percentiles warm_p = percentiles(warm_lat);

    if (json) {
        std::printf(
            "{\n"
            "  \"serve\": {\n"
            "    \"ping_us\": %.2f,\n"
            "    \"cold_requests_per_second\": %.2f,\n"
            "    \"warm_requests_per_second\": %.2f,\n"
            "    \"warm_over_cold\": %.2f,\n"
            "    \"pings\": %d,\n"
            "    \"cold_requests\": %d,\n"
            "    \"warm_requests\": %d,\n"
            "    \"cold_simulations\": %llu,\n"
            "    \"latency_us\": {\n"
            "      \"ping\": {\"p50\": %.2f, \"p95\": %.2f, "
            "\"p99\": %.2f},\n"
            "      \"cold\": {\"p50\": %.2f, \"p95\": %.2f, "
            "\"p99\": %.2f},\n"
            "      \"warm\": {\"p50\": %.2f, \"p95\": %.2f, "
            "\"p99\": %.2f}\n"
            "    }\n"
            "  }\n"
            "}\n",
            ping_us, cold_rps, warm_rps, warm_rps / cold_rps, pings,
            cold, warm,
            static_cast<unsigned long long>(cold_sims),
            ping_p.p50, ping_p.p95, ping_p.p99,
            cold_p.p50, cold_p.p95, cold_p.p99,
            warm_p.p50, warm_p.p95, warm_p.p99);
    } else {
        std::printf("%-24s %12s\n", "measurement", "value");
        std::printf("%-24s %9.2f us\n", "ping round-trip", ping_us);
        std::printf("%-24s %9.2f /s\n", "cold requests", cold_rps);
        std::printf("%-24s %9.2f /s\n", "warm requests", warm_rps);
        std::printf("%-24s %11.1fx\n", "warm over cold",
                    warm_rps / cold_rps);
        std::printf("%-24s %9.2f / %.2f / %.2f us\n",
                    "ping p50/p95/p99", ping_p.p50, ping_p.p95,
                    ping_p.p99);
        std::printf("%-24s %9.2f / %.2f / %.2f us\n",
                    "cold p50/p95/p99", cold_p.p50, cold_p.p95,
                    cold_p.p99);
        std::printf("%-24s %9.2f / %.2f / %.2f us\n",
                    "warm p50/p95/p99", warm_p.p50, warm_p.p95,
                    warm_p.p99);
    }
    return 0;
}
