/**
 * @file
 * The unified experiment CLI over the declarative layer: enumerates
 * the scenario and controller registries, and runs any ExperimentSpec
 * — any registered scenario (the paper's 30 applications or a
 * parametric `synthetic:` instance) under any registered controller —
 * with human-readable or `--json` machine-readable output.
 *
 *   mcd_cli list [--json]
 *   mcd_cli run --bench <name>[,<name>...]
 *               [--controller <name>[:<k=v>,...]]
 *               [--mode mcd|sync] [--freq <hz>] [--seed <n>]
 *               [--store <dir>] [--json]
 *   mcd_cli cache [--store <dir>] [--json]
 *   mcd_cli cache prune [--store <dir>] [--max-bytes <b>]
 *               [--max-age <s>] [--tmp-age <s>] [--json]
 *   mcd_cli fleet <target>[,<target>...] [--procs <n>]
 *               [--retries <n>] [--store <dir>] [--json]
 *               [--socket <path>]
 *   mcd_cli serve --socket <path> [--store <dir>] [--workers <n>]
 *               [--max-inflight <m>]
 *   mcd_cli request --socket <path> (--ping | --stats | --shutdown |
 *               --tournament [...] | --bench <name>[,...] [run flags])
 *
 * The usual environment knobs (MCD_INSNS, MCD_WARMUP, MCD_INTERVAL,
 * MCD_JOBS, MCD_STORE) set the methodology. Runs resolve through the
 * process-wide ArtifactCache: repeated benchmarks in one invocation
 * simulate once, and with a persistent store (--store or MCD_STORE)
 * once across invocations. `cache` prints the store statistics;
 * `cache prune` garbage-collects the store (size/age budgets, stale
 * temp files). `fleet` shards figure/ablation targets — sibling bench
 * binaries, resolved next to this executable — across N concurrent
 * worker processes sharing one store, collating per-target stdout in
 * submission order (byte-identical for any --procs).
 */

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "eval/tournament.hh"
#include "harness/artifact_store.hh"
#include "harness/experiment.hh"
#include "harness/fleet.hh"
#include "harness/table.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "telemetry/profiler.hh"
#include "telemetry/stat_registry.hh"
#include "workload/scenario_registry.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

// JSON emission lives in common/json.hh (shared with the serve
// daemon, whose replies must be byte-identical to this tool's
// output); the per-experiment and cache-stats documents live in
// serve/protocol.hh for the same reason.

// ------------------------------------------------------------- list

void
listRegistries(bool json)
{
    ScenarioRegistry &scenarios = ScenarioRegistry::instance();
    ControllerRegistry &controllers = ControllerRegistry::instance();

    // Fixed scenarios grouped by family: the paper's applications by
    // suite (registration order kept within each group), then the
    // parametric template families with their full knob sets.
    std::vector<std::string> suites;
    for (const auto &name : scenarios.scenarioNames()) {
        std::string suite = scenarios.spec(name).suite;
        if (std::find(suites.begin(), suites.end(), suite) ==
            suites.end())
            suites.push_back(suite);
    }

    if (json) {
        std::string out = "{\n  \"scenarios\": [";
        bool first = true;
        for (const auto &suite : suites) {
            for (const auto &name : scenarios.scenarioNames()) {
                if (scenarios.spec(name).suite != suite)
                    continue;
                out += first ? "\n" : ",\n";
                first = false;
                out += "    {\"name\": " + json::str(name) +
                       ", \"suite\": " + json::str(suite) + "}";
            }
        }
        out += "\n  ],\n  \"families\": [";
        first = true;
        for (const auto &family : scenarios.families()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"prefix\": " + json::str(family.prefix) +
                   ", \"description\": " + json::str(family.description) +
                   ", \"knobs\": [";
            bool first_knob = true;
            for (const auto &knob : family.knobs) {
                out += first_knob ? "" : ", ";
                first_knob = false;
                out += "{\"name\": " + json::str(knob.name) +
                       ", \"doc\": " + json::str(knob.doc) + "}";
            }
            out += "]}";
        }
        out += "\n  ],\n  \"controllers\": [";
        first = true;
        for (const auto &info : controllers.list()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"name\": " + json::str(info.name) +
                   ", \"description\": " + json::str(info.description) +
                   "}";
        }
        out += "\n  ]\n}\n";
        std::fputs(out.c_str(), stdout);
        return;
    }

    for (const auto &suite : suites) {
        TextTable suite_table("paper applications — " + suite);
        suite_table.setHeader({"name"});
        for (const auto &name : scenarios.scenarioNames())
            if (scenarios.spec(name).suite == suite)
                suite_table.addRow({name});
        std::printf("%s\n", suite_table.render().c_str());
    }

    for (const auto &family : scenarios.families()) {
        TextTable family_table("scenario template — " + family.prefix +
                               "<k=v,...>  (" + family.description +
                               ")");
        family_table.setHeader({"knob", "doc"});
        for (const auto &knob : family.knobs)
            family_table.addRow({knob.name, knob.doc});
        std::printf("%s\n", family_table.render().c_str());
    }

    TextTable controller_table("controllers");
    controller_table.setHeader({"name", "description"});
    for (const auto &info : controllers.list())
        controller_table.addRow({info.name, info.description});
    std::printf("%s", controller_table.render().c_str());
}

// ------------------------------------------------------------ cache

std::uint64_t
parseU64Flag(const std::string &flag, const std::string &text)
{
    // strtoull would silently wrap "-100" to a huge value; require a
    // plain digit string so negatives and signs fail loudly instead.
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || !std::isdigit(
            static_cast<unsigned char>(text[0])) ||
        errno != 0 || end == text.c_str() || *end != '\0')
        mcd_fatal("%s needs a non-negative integer, not '%s'",
                  flag.c_str(), text.c_str());
    return v;
}

int
pruneCli(const std::string &root, std::uint64_t max_bytes,
         std::int64_t max_age, std::int64_t tmp_age, bool json)
{
    if (root.empty())
        mcd_fatal("cache prune needs a store root "
                  "(--store or MCD_STORE)");
    DiskStore store(root);
    DiskStore::PruneOptions options;
    options.maxBytes = max_bytes;
    options.maxAgeSeconds = max_age;
    options.tmpAgeSeconds = tmp_age;
    DiskStore::PruneReport report = store.prune(options);

    if (json) {
        std::string out = "{\n  \"prune\": {";
        out += "\"store_root\": " + json::str(root);
        out += ", \"entries_removed\": " +
               json::u64(report.entriesRemoved);
        out += ", \"bytes_removed\": " + json::u64(report.bytesRemoved);
        out += ", \"tmps_removed\": " + json::u64(report.tmpsRemoved);
        out += ", \"sidecars_removed\": " +
               json::u64(report.sidecarsRemoved);
        out += ", \"entries_kept\": " + json::u64(report.entriesKept);
        out += ", \"bytes_kept\": " + json::u64(report.bytesKept);
        out += "}\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    TextTable table("cache prune");
    table.setHeader({"statistic", "value"});
    table.addRow({"store root", root});
    table.addRow({"entries removed",
                  std::to_string(report.entriesRemoved)});
    table.addRow({"bytes removed",
                  std::to_string(report.bytesRemoved)});
    table.addRow({"stale temp files removed",
                  std::to_string(report.tmpsRemoved)});
    table.addRow({"sidecars removed",
                  std::to_string(report.sidecarsRemoved)});
    table.addRow({"entries kept", std::to_string(report.entriesKept)});
    table.addRow({"bytes kept", std::to_string(report.bytesKept)});
    std::printf("%s", table.render().c_str());
    return 0;
}

// ------------------------------------------------------------- fleet

/** Short figure/table/ablation aliases -> sibling binary names. */
const std::map<std::string, std::string> &
fleetAliases()
{
    static const std::map<std::string, std::string> aliases = {
        {"fig2", "fig2_lsq_trace"},
        {"fig3", "fig3_fiq_trace"},
        {"fig4", "fig4_per_app"},
        {"fig5", "fig5_perfdeg_target"},
        {"fig6", "fig6_edp_sensitivity"},
        {"fig7", "fig7_ppr_sensitivity"},
        {"table3", "table3_gates"},
        {"table6", "table6_summary"},
        {"endstop", "ablation_endstop"},
        {"frontend", "ablation_frontend"},
        {"global", "ablation_global"},
        {"interval", "ablation_interval"},
        {"listing", "ablation_listing"},
        {"mcd_overhead", "ablation_mcd_overhead"},
    };
    return aliases;
}

/** The directory holding this executable (and its sibling benches). */
std::string
selfDirectory()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    return std::filesystem::path(buf).parent_path().string();
}

/**
 * Resolve a fleet target: an alias ("fig5"), an exact sibling binary
 * name ("table6_summary"), or an explicit path (contains '/').
 */
std::string
resolveFleetTarget(const std::string &name)
{
    if (name.find('/') != std::string::npos)
        return name;
    std::string binary = name;
    auto alias = fleetAliases().find(name);
    if (alias != fleetAliases().end())
        binary = alias->second;
    std::string path = selfDirectory() + "/" + binary;
    if (!std::filesystem::exists(path))
        mcd_fatal("fleet target '%s' resolves to '%s', which does not "
                  "exist (build it, or pass an explicit path)",
                  name.c_str(), path.c_str());
    return path;
}

int
fleetCli(const std::vector<std::string> &names, int procs, int retries,
         const std::string &store, bool json)
{
    std::vector<FleetTarget> targets;
    for (const auto &name : names) {
        FleetTarget target;
        target.name = name;
        target.argv = {resolveFleetTarget(name)};
        targets.push_back(std::move(target));
    }

    FleetOptions options;
    options.procs = procs;
    options.retries = retries;
    options.store = store;
    FleetReport report = runFleet(targets, options);

    if (json) {
        std::string out = "{\n  \"fleet\": {\n    \"procs\": " +
                          std::to_string(std::max(1, procs));
        out += ",\n    \"store\": " +
               (store.empty() ? std::string("null") : json::str(store));
        out += ",\n    \"failed\": " +
               json::u64(static_cast<std::uint64_t>(report.failed));
        out += ",\n    \"retried\": " +
               json::u64(static_cast<std::uint64_t>(report.retried));
        out += ",\n    \"targets\": [";
        bool first = true;
        for (const auto &t : report.targets) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "      {\"name\": " + json::str(t.name) +
                   ", \"succeeded\": " +
                   (t.succeeded ? "true" : "false") +
                   ", \"exit\": " + std::to_string(t.exitCode) +
                   ", \"attempts\": " + std::to_string(t.attempts) +
                   ", \"simulations\": " + json::u64(t.store.simulations) +
                   ", \"lookups\": " + json::u64(t.store.lookups) + "}";
        }
        out += "\n    ],\n    \"merged\": {";
        out += "\"lookups\": " + json::u64(report.merged.lookups);
        out += ", \"hits\": " + json::u64(report.merged.hits);
        out += ", \"disk_hits\": " + json::u64(report.merged.diskHits);
        out += ", \"simulations\": " +
               json::u64(report.merged.simulations);
        out += "}\n  }\n}\n";
        std::fputs(out.c_str(), stdout);
        return report.failed == 0 ? 0 : 1;
    }

    // Deterministic collation: each target's stdout, verbatim, in
    // submission order — byte-identical for any --procs, and for a
    // single target identical to running the binary directly. All
    // fleet bookkeeping goes to stderr.
    for (const auto &t : report.targets) {
        std::fwrite(t.stdoutText.data(), 1, t.stdoutText.size(),
                    stdout);
        if (!t.succeeded) {
            std::fprintf(stderr,
                         "fleet: ---- %s failed (exit %d); its stderr "
                         "follows ----\n",
                         t.name.c_str(), t.exitCode);
            std::fwrite(t.stderrText.data(), 1, t.stderrText.size(),
                        stderr);
        }
    }
    std::fprintf(stderr,
                 "fleet store: lookups=%llu hits=%llu disk_hits=%llu "
                 "simulations=%llu failed=%zu retried=%zu\n",
                 static_cast<unsigned long long>(report.merged.lookups),
                 static_cast<unsigned long long>(report.merged.hits),
                 static_cast<unsigned long long>(
                     report.merged.diskHits),
                 static_cast<unsigned long long>(
                     report.merged.simulations),
                 report.failed, report.retried);
    return report.failed == 0 ? 0 : 1;
}

// ------------------------------------------------------- tournament

int
tournamentCli(const std::vector<std::string> &scenario_args,
              const std::vector<std::string> &controller_args,
              double target_deg, int procs, int retries,
              const std::string &store, bool warm_only, bool json)
{
    TournamentOptions options;
    options.config = standardConfig();
    if (!store.empty())
        options.config.store = store; // --store overrides MCD_STORE
    options.targetDeg = target_deg;
    options.procs = procs;
    options.retries = retries;

    // Scenarios: explicit names (scenario-aware comma splitting), with
    // the "corpus" alias expanding to the standing adversarial corpus.
    std::vector<std::string> scenario_lists = scenario_args;
    if (scenario_lists.empty())
        scenario_lists.push_back("corpus");
    for (const auto &arg : scenario_lists) {
        for (const auto &name : splitScenarioList(arg)) {
            if (name == "corpus") {
                for (const auto &c : adversarialCorpus())
                    options.scenarios.push_back(c);
            } else {
                options.scenarios.push_back(name);
            }
        }
    }

    // Controllers: each --controllers value holds ';'-separated
    // controller specs (commas belong to the specs' own parameters).
    for (const auto &arg : controller_args) {
        std::size_t pos = 0;
        while (pos <= arg.size()) {
            auto semi = arg.find(';', pos);
            std::string item = arg.substr(
                pos, semi == std::string::npos ? std::string::npos
                                               : semi - pos);
            pos = semi == std::string::npos ? arg.size() + 1
                                            : semi + 1;
            if (item.empty())
                continue;
            TournamentEntry entry;
            entry.label = item;
            entry.spec = parseControllerSpec(item);
            options.controllers.push_back(std::move(entry));
        }
    }
    if (options.controllers.empty())
        options.controllers = defaultTournamentEntries();

    // The warming fleet re-invokes this binary, one scenario per
    // worker, forwarding the controller arguments verbatim (defaults
    // are deterministic, so forwarding nothing reproduces them).
    if (procs > 1) {
        options.makeWorker =
            [&](const std::string &scenario) {
                FleetTarget target;
                target.name = scenario;
                target.argv = {selfDirectory() + "/mcd_cli",
                               "tournament", "--warm-only",
                               "--scenarios", scenario};
                for (const auto &arg : controller_args) {
                    target.argv.push_back("--controllers");
                    target.argv.push_back(arg);
                }
                target.argv.push_back("--target-deg");
                char deg[40];
                std::snprintf(deg, sizeof(deg), "%.17g", target_deg);
                target.argv.push_back(deg);
                return target;
            };
    }

    TournamentResult result = runTournament(options);
    if (warm_only) {
        // Warming worker: the artifacts are in the shared store; the
        // parent renders. Only the store line goes out (stderr).
        reportStoreStats();
        return 0;
    }

    if (json) {
        // The shared renderer (also behind the daemon's `tournament`
        // verb) carries no cache counters, so stdout stays
        // byte-identical between cold, warm, fleet, and served runs
        // (CI diffs it); the counters go to stderr below.
        std::fputs(renderTournamentJson(options, result).c_str(),
                   stdout);
        reportStoreStats();
        return 0;
    }

    printMethodology(options.config);
    std::printf("oracle: offline Dynamic-%g%% (degradation cap %s)\n\n",
                options.targetDeg * 100.0,
                pct(options.targetDeg, 1).c_str());
    std::printf("%s", renderTournament(result).c_str());
    reportStoreStats();
    return 0;
}

int
cacheStatsCli(const std::string &store, bool json)
{
    ArtifactCache &cache = ArtifactCache::instance();
    if (!store.empty())
        cache.attachDiskStore(store);

    if (json) {
        std::string out =
            "{\n  \"cache\": " + serve::cacheStatsJson(cache) +
            "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    TextTable table("artifact store");
    table.setHeader({"statistic", "value"});
    table.addRow({"lookups", std::to_string(cache.lookups())});
    table.addRow({"hits", std::to_string(cache.hits())});
    table.addRow({"disk hits", std::to_string(cache.diskHits())});
    table.addRow({"in-flight joins",
                  std::to_string(cache.inflightJoins())});
    table.addRow({"simulations run",
                  std::to_string(cache.simulationsRun())});
    table.addRow({"memory entries", std::to_string(cache.size())});
    std::string root = cache.storeRoot();
    table.addRow({"store root", root.empty() ? "(memory only)" : root});
    if (!root.empty()) {
        table.addRow({"disk entries",
                      std::to_string(cache.diskEntries())});
        table.addRow({"disk bytes", std::to_string(cache.diskBytes())});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

// -------------------------------------------------------------- run

int
runExperimentsCli(const std::vector<std::string> &benches,
                  const ControllerSpec &controller, ClockMode mode,
                  Hertz freq, std::uint64_t seed, bool have_seed,
                  const std::string &store,
                  std::uint64_t checkpoint_every, bool have_checkpoint,
                  bool json)
{
    RunnerConfig config = standardConfig();
    if (have_seed)
        config.clockSeed = seed;
    if (!store.empty())
        config.store = store; // --store overrides MCD_STORE
    if (have_checkpoint) // --checkpoint-every overrides MCD_CHECKPOINT
        config.checkpointEvery = checkpoint_every;

    std::vector<ExperimentSpec> specs;
    for (const auto &bench : benches) {
        if (!ScenarioRegistry::instance().contains(bench))
            mcd_fatal("unknown scenario '%s' (try: mcd_cli list)",
                      bench.c_str());
        specs.push_back(makeSpec(config, bench, controller, mode,
                                 freq));
    }

    auto results = runExperiments(specs, config.jobs);
    ArtifactCache &cache = ArtifactCache::instance();

    if (json) {
        std::string out = "{\n  \"experiments\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            out += serve::experimentResultJson(specs[i], results[i]);
            out += i + 1 < specs.size() ? ",\n" : "\n";
        }
        out += "  ],\n  \"cache\": " + serve::cacheStatsJson(cache) +
               "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    printMethodology(config);
    TextTable table("results");
    table.setHeader({"benchmark", "controller", "mode", "time (ps)",
                     "energy (nJ)", "CPI", "EPI (nJ)"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        table.addRow({specs[i].benchmark, controller.name,
                      mode == ClockMode::Mcd ? "mcd" : "sync",
                      std::to_string(results[i].time),
                      num(results[i].chipEnergy, 1),
                      num(results[i].cpi, 3), num(results[i].epi, 3)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\ncache: %llu lookups, %llu hits (%llu from disk), "
                "%llu simulations%s%s\n",
                static_cast<unsigned long long>(cache.lookups()),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.diskHits()),
                static_cast<unsigned long long>(
                    cache.simulationsRun()),
                cache.storeRoot().empty() ? "" : ", store ",
                cache.storeRoot().c_str());
    return 0;
}

// ----------------------------------------------------------- profile

/**
 * `mcd_cli profile <scenario>`: run one experiment with the phase
 * profiler enabled and report where the wall-clock time went. Phases
 * nest (sim.commit includes sim.interval, and the issue/wakeup stages
 * run inside the per-cycle loop the commit timer brackets), so the
 * shares are a hierarchy, not a partition — they need not sum to 100%.
 * The store is deliberately detached: profiling a cache hit would
 * measure deserialization, not the simulator.
 */
int
profileCli(const std::vector<std::string> &args)
{
    std::string bench;
    ControllerSpec controller; // "none"
    bool json = false;

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--controller") {
            controller = parseControllerSpec(value(i));
        } else if (arg == "--json") {
            json = true;
        } else if (!arg.empty() && arg[0] != '-') {
            if (!bench.empty())
                mcd_fatal("profile takes one scenario, got '%s' and "
                          "'%s'", bench.c_str(), arg.c_str());
            bench = arg;
        } else {
            mcd_fatal("profile: unknown argument '%s'", arg.c_str());
        }
    }
    if (bench.empty())
        mcd_fatal("profile needs a scenario "
                  "(e.g. mcd_cli profile gsm)");
    if (!ScenarioRegistry::instance().contains(bench))
        mcd_fatal("unknown scenario '%s' (try: mcd_cli list)",
                  bench.c_str());

    RunnerConfig config = standardConfig();
    config.store.clear(); // always simulate; never profile a disk hit

    telemetry::setProfiling(true);
    telemetry::resetPhaseHistograms();

    ExperimentSpec spec = makeSpec(config, bench, controller);
    auto wall_start = std::chrono::steady_clock::now();
    SimStats stats = ArtifactCache::instance().getOrRun(spec);
    auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());

    struct PhaseRow
    {
        const char *name;
        telemetry::HistogramData data;
    };
    std::vector<PhaseRow> rows;
    for (int p = 0; p < telemetry::NUM_PHASES; ++p) {
        auto phase = static_cast<telemetry::Phase>(p);
        telemetry::HistogramData data =
            telemetry::phaseHistogram(phase).read();
        if (data.count == 0)
            continue;
        rows.push_back({telemetry::phaseName(phase), data});
    }
    // Hot-first: the biggest total at the top.
    std::sort(rows.begin(), rows.end(),
              [](const PhaseRow &a, const PhaseRow &b) {
                  return a.data.sum > b.data.sum;
              });

    if (json) {
        std::string out = "{\n  \"profile\": {\n";
        out += "    \"scenario\": " + json::str(bench) + ",\n";
        out += "    \"controller\": " + json::str(controller.name) +
               ",\n";
        out += "    \"instructions\": " + json::u64(stats.instructions) +
               ",\n";
        out += "    \"wall_ns\": " + json::u64(wall_ns) + ",\n";
        out += "    \"phases\": [";
        bool first = true;
        for (const auto &row : rows) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "      {\"name\": " + json::str(row.name);
            out += ", \"count\": " + json::u64(row.data.count);
            out += ", \"p50_ns\": " +
                   json::u64(static_cast<std::uint64_t>(
                       row.data.quantile(0.50)));
            out += ", \"p95_ns\": " +
                   json::u64(static_cast<std::uint64_t>(
                       row.data.quantile(0.95)));
            out += ", \"max_ns\": " + json::u64(row.data.max);
            out += ", \"total_ns\": " + json::u64(row.data.sum);
            out += ", \"share_of_wall\": " +
                   json::num(wall_ns == 0
                                 ? 0.0
                                 : static_cast<double>(row.data.sum) /
                                       static_cast<double>(wall_ns));
            out += "}";
        }
        out += "\n    ]\n  }\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    std::printf("profiled %s under %s: %llu instructions in %.1f ms "
                "wall\n",
                bench.c_str(), controller.name.c_str(),
                static_cast<unsigned long long>(stats.instructions),
                static_cast<double>(wall_ns) / 1e6);
    TextTable table("phase profile (nested: shares need not sum "
                    "to 100%)");
    table.setHeader({"phase", "count", "p50 (ns)", "p95 (ns)",
                     "max (ns)", "total (ms)", "share of wall"});
    for (const auto &row : rows) {
        double share =
            wall_ns == 0 ? 0.0
                         : static_cast<double>(row.data.sum) /
                               static_cast<double>(wall_ns);
        table.addRow(
            {row.name, std::to_string(row.data.count),
             std::to_string(static_cast<std::uint64_t>(
                 row.data.quantile(0.50))),
             std::to_string(static_cast<std::uint64_t>(
                 row.data.quantile(0.95))),
             std::to_string(row.data.max),
             num(static_cast<double>(row.data.sum) / 1e6, 2),
             pct(share, 1)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

// ------------------------------------------------------------- serve

serve::Server *g_server = nullptr;

void
stopSignalHandler(int)
{
    // requestStop only writes one byte to a pipe: async-signal-safe.
    if (g_server)
        g_server->requestStop();
}

int
serveCli(const std::vector<std::string> &args)
{
    serve::ServeOptions options;
    options.config = standardConfig();

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--socket") {
            options.socketPath = value(i);
        } else if (arg == "--store") {
            options.config.store = value(i);
        } else if (arg == "--workers") {
            options.workers = static_cast<int>(
                parseU64Flag("--workers", value(i)));
        } else if (arg == "--max-inflight") {
            options.maxInflight = static_cast<int>(
                parseU64Flag("--max-inflight", value(i)));
        } else if (arg == "--events") {
            options.eventsPath = value(i);
        } else {
            mcd_fatal("serve: unknown argument '%s'", arg.c_str());
        }
    }
    if (options.socketPath.empty())
        mcd_fatal("serve needs --socket <path>");
    if (options.eventsPath.empty())
        options.eventsPath = envString("MCD_EVENTS");

    serve::Server server(options);
    g_server = &server;
    std::signal(SIGINT, stopSignalHandler);
    std::signal(SIGTERM, stopSignalHandler);
    server.run();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_server = nullptr;
    return 0;
}

// ----------------------------------------------------------- request

/** Build the `run` request object for one scenario list. */
std::string
runRequestJson(const std::vector<std::string> &benches,
               const std::string &controller, const std::string &mode,
               Hertz freq, std::uint64_t seed, bool have_seed)
{
    std::string out = "{\"op\": \"run\", \"benches\": [";
    bool first = true;
    for (const auto &bench : benches) {
        out += first ? "" : ", ";
        first = false;
        out += json::str(bench);
    }
    out += "]";
    if (!controller.empty())
        out += ", \"controller\": " + json::str(controller);
    if (mode != "mcd")
        out += ", \"mode\": " + json::str(mode);
    if (freq > 0.0)
        out += ", \"freq\": " + json::num(freq);
    if (have_seed)
        out += ", \"seed\": " + json::u64(seed);
    out += "}";
    return out;
}

/**
 * Drive one `run` request and collate the streamed results by index.
 * Returns false on transport failure or an `error` terminal; the
 * collated per-experiment payloads land in `payloads`.
 */
bool
collectRun(serve::ServeClient &client, const std::string &request,
           std::vector<std::string> &payloads,
           std::uint64_t &cold_units, std::uint64_t &warm_units,
           std::string &error)
{
    std::map<std::uint64_t, std::string> by_index;
    json::Value terminal;
    if (!client.call(
            request,
            [&](const json::Value &event) {
                if (event.getString("event") == "result")
                    by_index[event.getU64("index", 0)] =
                        event.getString("payload");
            },
            terminal, &error))
        return false;
    if (terminal.getString("event") != "done") {
        error = terminal.getString("error", "request failed");
        return false; // structured error from the daemon
    }
    for (auto &entry : by_index)
        payloads.push_back(std::move(entry.second));
    cold_units += terminal.getU64("cold_units", 0);
    warm_units += terminal.getU64("warm_units", 0);
    return true;
}

/**
 * Print the collated experiments document. The "experiments" block is
 * byte-identical to `mcd_cli run --json`'s for the same specs — the
 * payloads are the exact per-experiment entries — while the trailer is
 * daemon-side bookkeeping instead of process-local cache counters.
 */
void
printExperimentsDocument(const std::vector<std::string> &payloads,
                         std::uint64_t cold_units,
                         std::uint64_t warm_units)
{
    std::string out = "{\n  \"experiments\": [\n";
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        out += payloads[i];
        out += i + 1 < payloads.size() ? ",\n" : "\n";
    }
    out += "  ],\n  \"serve\": {\"results\": " +
           json::u64(static_cast<std::uint64_t>(payloads.size())) +
           ", \"cold_units\": " + json::u64(cold_units) +
           ", \"warm_units\": " + json::u64(warm_units) + "}\n}\n";
    std::fputs(out.c_str(), stdout);
}

int
requestCli(const std::vector<std::string> &args)
{
    std::string socket;
    // "", "ping", "stats", "metrics", "shutdown", "tournament"
    std::string op;
    std::vector<std::string> benches;
    std::string controller;
    std::string mode = "mcd";
    Hertz freq = 0.0;
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::vector<std::string> tournament_scenarios;
    std::vector<std::string> tournament_controllers;
    double target_deg = 0.05;
    bool have_target_deg = false;

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };
    auto set_op = [&](const std::string &what) {
        if (!op.empty())
            mcd_fatal("request: --%s conflicts with --%s",
                      what.c_str(), op.c_str());
        op = what;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--socket") {
            socket = value(i);
        } else if (arg == "--ping" || arg == "--stats" ||
                   arg == "--metrics" || arg == "--shutdown" ||
                   arg == "--tournament") {
            set_op(arg.substr(2));
        } else if (arg == "--bench") {
            for (const auto &name : splitScenarioList(value(i)))
                benches.push_back(name);
        } else if (arg == "--controller") {
            controller = value(i);
        } else if (arg == "--mode") {
            mode = value(i);
            if (mode != "mcd" && mode != "sync")
                mcd_fatal("--mode must be 'mcd' or 'sync', not '%s'",
                          mode.c_str());
        } else if (arg == "--freq") {
            freq = std::strtod(value(i).c_str(), nullptr);
            if (freq <= 0.0)
                mcd_fatal("--freq needs a positive frequency in Hz");
        } else if (arg == "--seed") {
            seed = std::strtoull(value(i).c_str(), nullptr, 10);
            have_seed = true;
        } else if (arg == "--scenarios") {
            for (const auto &name : splitScenarioList(value(i)))
                tournament_scenarios.push_back(name);
        } else if (arg == "--controllers") {
            // Same ';'-separated grammar as `mcd_cli tournament`.
            std::string v = value(i);
            std::size_t pos = 0;
            while (pos <= v.size()) {
                auto semi = v.find(';', pos);
                std::string item = v.substr(
                    pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
                pos = semi == std::string::npos ? v.size() + 1
                                                : semi + 1;
                if (!item.empty())
                    tournament_controllers.push_back(item);
            }
        } else if (arg == "--target-deg") {
            target_deg = std::strtod(value(i).c_str(), nullptr);
            have_target_deg = true;
        } else if (arg == "--json") {
            // accepted for symmetry; request output is always JSON
        } else {
            mcd_fatal("request: unknown argument '%s'", arg.c_str());
        }
    }
    if (socket.empty())
        mcd_fatal("request needs --socket <path>");
    if (op.empty() && benches.empty())
        mcd_fatal("request needs --ping, --stats, --metrics, "
                  "--shutdown, --tournament, or --bench <name>[,...]");

    serve::ServeClient client;
    std::string error;
    if (!client.connect(socket, &error))
        mcd_fatal("%s", error.c_str());

    if (op == "ping" || op == "stats" || op == "metrics" ||
        op == "shutdown") {
        std::string request = op == "ping" ? "{\"op\": \"ping\"}"
                              : op == "stats"
                                  ? "{\"op\": \"cache-stats\"}"
                              : op == "metrics"
                                  ? "{\"op\": \"metrics\"}"
                                  : "{\"op\": \"shutdown\"}";
        json::Value terminal;
        std::string raw;
        if (!client.send(request, &error) ||
            client.recv(raw) != serve::FrameStatus::Ok)
            mcd_fatal("request failed: %s", error.c_str());
        std::printf("%s\n", raw.c_str());
        return 0;
    }

    if (op == "tournament") {
        std::string request = "{\"op\": \"tournament\"";
        if (!tournament_scenarios.empty()) {
            request += ", \"scenarios\": [";
            bool first = true;
            for (const auto &name : tournament_scenarios) {
                request += first ? "" : ", ";
                first = false;
                request += json::str(name);
            }
            request += "]";
        }
        if (!tournament_controllers.empty()) {
            request += ", \"controllers\": [";
            bool first = true;
            for (const auto &spec : tournament_controllers) {
                request += first ? "" : ", ";
                first = false;
                request += json::str(spec);
            }
            request += "]";
        }
        if (have_target_deg)
            request += ", \"target_deg\": " + json::num(target_deg);
        request += "}";

        std::string payload;
        json::Value terminal;
        if (!client.call(
                request,
                [&](const json::Value &event) {
                    if (event.getString("event") == "result")
                        payload = event.getString("payload");
                },
                terminal, &error))
            mcd_fatal("request failed: %s", error.c_str());
        if (terminal.getString("event") != "done")
            mcd_fatal("daemon: %s",
                      terminal.getString("error", "request failed")
                          .c_str());
        // The payload is the exact `mcd_cli tournament --json` stdout.
        std::fputs(payload.c_str(), stdout);
        return 0;
    }

    std::vector<std::string> payloads;
    std::uint64_t cold_units = 0;
    std::uint64_t warm_units = 0;
    if (!collectRun(client,
                    runRequestJson(benches, controller, mode, freq,
                                   seed, have_seed),
                    payloads, cold_units, warm_units, error))
        mcd_fatal("request failed: %s", error.c_str());
    if (payloads.size() != benches.size())
        mcd_fatal("daemon: %s", error.empty()
                                    ? "incomplete result stream"
                                    : error.c_str());
    printExperimentsDocument(payloads, cold_units, warm_units);
    return 0;
}

/**
 * fleet --socket: shard scenario targets across `procs` client
 * connections to one daemon instead of across worker processes. Each
 * target is one scenario name, dispatched as a single-bench `run`;
 * the per-experiment payloads are collated in submission order, so
 * stdout is byte-identical for any --procs (and its "experiments"
 * block matches `mcd_cli run --json --bench <all targets>`).
 */
int
fleetSocketCli(const std::vector<std::string> &names,
               const std::string &socket, int procs)
{
    struct Slot
    {
        std::string payload;
        std::string error;
        bool ok = false;
    };
    std::vector<Slot> slots(names.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> cold_units{0};
    std::atomic<std::uint64_t> warm_units{0};

    int threads = std::max(
        1, std::min(procs, static_cast<int>(names.size())));
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            serve::ServeClient client;
            std::string error;
            if (!client.connect(socket, &error)) {
                std::size_t i;
                while ((i = next.fetch_add(1)) < slots.size())
                    slots[i].error = error;
                return;
            }
            std::size_t i;
            while ((i = next.fetch_add(1)) < slots.size()) {
                std::vector<std::string> payloads;
                std::uint64_t cold = 0;
                std::uint64_t warm = 0;
                std::string err;
                if (collectRun(client,
                               runRequestJson({names[i]}, "", "mcd",
                                              0.0, 0, false),
                               payloads, cold, warm, err) &&
                    payloads.size() == 1) {
                    slots[i].payload = std::move(payloads[0]);
                    slots[i].ok = true;
                    cold_units.fetch_add(cold);
                    warm_units.fetch_add(warm);
                } else {
                    slots[i].error =
                        err.empty() ? "incomplete result stream"
                                    : err;
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    std::size_t failed = 0;
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].ok) {
            payloads.push_back(std::move(slots[i].payload));
        } else {
            ++failed;
            std::fprintf(stderr, "fleet: %s failed: %s\n",
                         names[i].c_str(), slots[i].error.c_str());
        }
    }
    printExperimentsDocument(payloads, cold_units.load(),
                             warm_units.load());
    std::fprintf(stderr,
                 "fleet socket: targets=%zu failed=%zu procs=%d\n",
                 names.size(), failed, threads);
    return failed == 0 ? 0 : 1;
}

void
usage()
{
    std::printf(
        "usage:\n"
        "  mcd_cli list [--json]            enumerate scenarios, "
        "scenario\n"
        "                                   families and controllers\n"
        "  mcd_cli run --bench <name>[,<name>...]\n"
        "              [--controller <name>[:<k=v>,...]]\n"
        "              [--mode mcd|sync] [--freq <hz>] [--seed <n>]\n"
        "              [--store <dir>] [--checkpoint-every <insns>]\n"
        "              [--json]\n"
        "                                   run experiments; with\n"
        "                                   --checkpoint-every, "
        "warm-up\n"
        "                                   resolves through stored\n"
        "                                   machine snapshots "
        "(bit-identical\n"
        "                                   fast-forward on a warm "
        "store)\n"
        "  mcd_cli cache [--store <dir>] [--json]\n"
        "                                   print artifact-store "
        "statistics\n"
        "  mcd_cli cache prune [--store <dir>] [--max-bytes <b>]\n"
        "              [--max-age <seconds>] [--tmp-age <seconds>] "
        "[--json]\n"
        "                                   garbage-collect the store\n"
        "  mcd_cli fleet <target>[,<target>...] [--procs <n>]\n"
        "              [--retries <n>] [--store <dir>] [--json]\n"
        "              [--socket <path>]\n"
        "                                   shard figure/ablation "
        "binaries\n"
        "                                   across worker processes "
        "sharing\n"
        "                                   one store; with --socket, "
        "shard\n"
        "                                   scenario targets across "
        "client\n"
        "                                   connections to a serve "
        "daemon\n"
        "  mcd_cli profile <scenario> [--controller <spec>] [--json]\n"
        "                                   run one experiment with "
        "the\n"
        "                                   phase profiler on and "
        "report\n"
        "                                   p50/p95/max and share of "
        "wall\n"
        "                                   per simulator phase\n"
        "  mcd_cli serve --socket <path> [--store <dir>] "
        "[--workers <n>]\n"
        "              [--max-inflight <m>] [--events <path>]\n"
        "                                   long-lived daemon: one "
        "warm\n"
        "                                   artifact cache + worker "
        "pool\n"
        "                                   serving concurrent "
        "clients over\n"
        "                                   a Unix socket (run / "
        "tournament /\n"
        "                                   cache-stats / metrics / "
        "ping /\n"
        "                                   shutdown); --events "
        "appends a\n"
        "                                   JSONL lifecycle trace per "
        "request\n"
        "  mcd_cli request --socket <path> (--ping | --stats | "
        "--metrics |\n"
        "              --shutdown |\n"
        "              --tournament [--scenarios ...] "
        "[--controllers ...]\n"
        "              [--target-deg <frac>] |\n"
        "              --bench <name>[,...] [--controller <spec>]\n"
        "              [--mode mcd|sync] [--freq <hz>] [--seed <n>])\n"
        "                                   one request against a "
        "running\n"
        "                                   daemon; run results are\n"
        "                                   byte-identical to "
        "`mcd_cli run`\n"
        "  mcd_cli tournament [--scenarios <name>[,...]|corpus]...\n"
        "              [--controllers <spec>[;<spec>...]]...\n"
        "              [--target-deg <frac>] [--procs <n>]\n"
        "              [--retries <n>] [--store <dir>] [--json]\n"
        "                                   oracle-regret tournament: "
        "score\n"
        "                                   controllers x scenarios "
        "against\n"
        "                                   the offline Dynamic-X% "
        "oracle\n"
        "                                   (default: the adversarial "
        "corpus\n"
        "                                   x attack_decay / "
        "attack_decay:slow\n"
        "                                   / none)\n"
        "\n"
        "examples:\n"
        "  mcd_cli list\n"
        "  mcd_cli run --bench gsm --controller "
        "attack_decay:decay=0.0125,perf_deg_threshold=0.015 --json\n"
        "  mcd_cli run --bench synthetic:mem=0.8,ilp=4,phases=6\n"
        "  mcd_cli run --bench gsm --store /tmp/mcd-store   # warm it\n"
        "  mcd_cli cache --store /tmp/mcd-store --json\n"
        "  mcd_cli fleet fig5,table6 --procs 4 --store /tmp/mcd-store\n"
        "  mcd_cli cache prune --store /tmp/mcd-store "
        "--max-bytes 100000000\n"
        "  mcd_cli tournament --store /tmp/mcd-store --json\n"
        "  mcd_cli tournament --scenarios "
        "synthetic:square=4000,mem=0.5,gsm \\\n"
        "      --controllers \"attack_decay;"
        "attack_decay:reaction_change=0.12\"\n"
        "  mcd_cli profile gsm --controller attack_decay --json\n"
        "  mcd_cli serve --socket /tmp/mcd.sock --store "
        "/tmp/mcd-store &\n"
        "  mcd_cli request --socket /tmp/mcd.sock --bench gsm,mcf\n"
        "  mcd_cli fleet gsm,mcf,adpcm --socket /tmp/mcd.sock "
        "--procs 3\n"
        "  mcd_cli request --socket /tmp/mcd.sock --shutdown\n"
        "\n"
        "fleet targets: fig2..fig7, table3, table6, endstop, frontend,\n"
        "               global, interval, listing, mcd_overhead, any\n"
        "               sibling binary name, or an explicit path\n"
        "\n"
        "environment: MCD_INSNS, MCD_WARMUP, MCD_INTERVAL, MCD_JOBS,\n"
        "             MCD_STORE (persistent artifact store root;\n"
        "             --store overrides), MCD_CHECKPOINT (checkpoint\n"
        "             ladder spacing in instructions;\n"
        "             --checkpoint-every overrides), MCD_PROF=1 (phase\n"
        "             profiler on for any tool), MCD_EVENTS (serve\n"
        "             request-trace path; --events overrides),\n"
        "             MCD_LOG_JSON=1 (structured JSON log lines)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        usage();
        return 2;
    }

    // The serving subcommands own their flag grammar (a socket
    // daemon/client has nothing in common with the batch flags), so
    // they dispatch before the shared parse loop.
    if (args[0] == "serve")
        return serveCli({args.begin() + 1, args.end()});
    if (args[0] == "request")
        return requestCli({args.begin() + 1, args.end()});
    if (args[0] == "profile")
        return profileCli({args.begin() + 1, args.end()});

    bool json = false;
    bool do_list = false;
    bool do_run = false;
    bool do_cache = false;
    bool do_prune = false;
    bool do_fleet = false;
    bool do_tournament = false;
    bool warm_only = false;
    std::vector<std::string> benches;
    std::vector<std::string> fleet_targets;
    std::vector<std::string> tournament_scenarios;
    std::vector<std::string> tournament_controllers;
    double target_deg = 0.05;
    ControllerSpec controller; // "none"
    ClockMode mode = ClockMode::Mcd;
    Hertz freq = 0.0;
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::uint64_t checkpoint_every = 0;
    bool have_checkpoint = false;
    std::string store; // --store; "" defers to MCD_STORE
    std::string fleet_socket; // fleet --socket: serve-daemon mode
    // Fleet worker processes. Deliberately defaults to serial: each
    // worker is itself fully multithreaded (MCD_JOBS), so fanning out
    // processes is an explicit --procs opt-in, not an ambient default.
    int procs = 1;
    int retries = 1;
    std::uint64_t max_bytes = 0;
    std::int64_t max_age = -1;
    std::int64_t tmp_age = 3600;

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "list" || arg == "--list") {
            do_list = true;
        } else if (arg == "run") {
            do_run = true;
        } else if (arg == "cache") {
            do_cache = true;
        } else if (arg == "prune" && do_cache) {
            do_prune = true;
        } else if (arg == "fleet") {
            do_fleet = true;
        } else if (arg == "tournament") {
            do_tournament = true;
        } else if (arg == "--scenarios") {
            tournament_scenarios.push_back(value(i));
        } else if (arg == "--controllers") {
            tournament_controllers.push_back(value(i));
        } else if (arg == "--target-deg") {
            char *end = nullptr;
            std::string v = value(i);
            target_deg = std::strtod(v.c_str(), &end);
            if (v.empty() || end != v.c_str() + v.size() ||
                target_deg < 0.0 || target_deg > 1.0)
                mcd_fatal("--target-deg needs a fraction in [0, 1], "
                          "not '%s'", v.c_str());
        } else if (arg == "--warm-only") {
            warm_only = true;
        } else if (arg == "--procs") {
            procs = static_cast<int>(
                parseU64Flag("--procs", value(i)));
            if (procs < 1)
                mcd_fatal("--procs needs a positive worker count");
        } else if (arg == "--retries") {
            retries = static_cast<int>(
                parseU64Flag("--retries", value(i)));
        } else if (arg == "--max-bytes") {
            max_bytes = parseU64Flag("--max-bytes", value(i));
        } else if (arg == "--max-age") {
            max_age = static_cast<std::int64_t>(
                parseU64Flag("--max-age", value(i)));
        } else if (arg == "--tmp-age") {
            tmp_age = static_cast<std::int64_t>(
                parseU64Flag("--tmp-age", value(i)));
        } else if (do_fleet && !arg.empty() && arg[0] != '-') {
            // Scenario-aware splitting: identical to splitList for
            // binary targets (no ':' in their names), and it keeps a
            // `synthetic:` scenario's knobs together for --socket
            // mode, where targets are scenario names.
            for (const auto &name : splitScenarioList(arg))
                fleet_targets.push_back(name);
        } else if (arg == "--socket") {
            fleet_socket = value(i);
            if (!do_fleet)
                mcd_fatal("--socket only applies to fleet (or the "
                          "serve/request subcommands)");
        } else if (arg == "--store") {
            store = value(i);
            if (store.empty())
                mcd_fatal("--store needs a non-empty directory");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--bench") {
            // Scenario-aware splitting: a family name keeps its own
            // comma-separated knobs, so
            // "gsm,synthetic:mem=0.8,ilp=4,mcf" is three scenarios.
            for (const auto &name : splitScenarioList(value(i)))
                benches.push_back(name);
        } else if (arg == "--controller") {
            controller = parseControllerSpec(value(i));
        } else if (arg == "--mode") {
            std::string v = value(i);
            if (v == "mcd")
                mode = ClockMode::Mcd;
            else if (v == "sync")
                mode = ClockMode::Synchronous;
            else
                mcd_fatal("--mode must be 'mcd' or 'sync', not '%s'",
                          v.c_str());
        } else if (arg == "--freq") {
            freq = std::strtod(value(i).c_str(), nullptr);
            if (freq <= 0.0)
                mcd_fatal("--freq needs a positive frequency in Hz");
        } else if (arg == "--seed") {
            seed = std::strtoull(value(i).c_str(), nullptr, 10);
            have_seed = true;
        } else if (arg == "--checkpoint-every") {
            checkpoint_every =
                parseU64Flag("--checkpoint-every", value(i));
            have_checkpoint = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            mcd_fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (do_list)
        listRegistries(json);
    if (do_run) {
        if (benches.empty())
            mcd_fatal("run needs --bench <name>[,<name>...]");
        return runExperimentsCli(benches, controller, mode, freq, seed,
                                 have_seed, store, checkpoint_every,
                                 have_checkpoint, json);
    }
    if (do_tournament) {
        // Workers share the parent's store; resolve the root here so
        // the fleet env and the parent's cache agree on it.
        std::string root =
            store.empty() ? standardConfig().store : store;
        return tournamentCli(tournament_scenarios,
                             tournament_controllers, target_deg, procs,
                             retries, root, warm_only, json);
    }
    if (do_fleet) {
        if (fleet_targets.empty())
            mcd_fatal("fleet needs at least one target "
                      "(e.g. fleet fig5,table6)");
        // Socket mode: targets are scenario names, dispatched to a
        // running serve daemon over --procs connections instead of
        // spawning worker processes.
        if (!fleet_socket.empty())
            return fleetSocketCli(fleet_targets, fleet_socket, procs);
        // Workers inherit MCD_STORE unless --store overrides; resolve
        // here so the merged report and the children agree on the root.
        std::string root =
            store.empty() ? standardConfig().store : store;
        return fleetCli(fleet_targets, procs, retries, root, json);
    }
    if (do_cache) {
        // Standalone `cache` reports on the persistent layer (--store
        // or MCD_STORE); after `run` in the same process it would also
        // reflect that run's counters, but subcommands are exclusive.
        std::string root =
            store.empty() ? standardConfig().store : store;
        if (do_prune)
            return pruneCli(root, max_bytes, max_age, tmp_age, json);
        return cacheStatsCli(root, json);
    }
    if (!do_list) {
        usage();
        return 2;
    }
    return 0;
}
