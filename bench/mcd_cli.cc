/**
 * @file
 * The unified experiment CLI over the declarative layer: enumerates
 * the scenario and controller registries, and runs any ExperimentSpec
 * — any registered scenario (the paper's 30 applications or a
 * parametric `synthetic:` instance) under any registered controller —
 * with human-readable or `--json` machine-readable output.
 *
 *   mcd_cli list [--json]
 *   mcd_cli run --bench <name>[,<name>...]
 *               [--controller <name>[:<k=v>,...]]
 *               [--mode mcd|sync] [--freq <hz>] [--seed <n>]
 *               [--store <dir>] [--json]
 *   mcd_cli cache [--store <dir>] [--json]
 *   mcd_cli cache prune [--store <dir>] [--max-bytes <b>]
 *               [--max-age <s>] [--tmp-age <s>] [--json]
 *   mcd_cli fleet <target>[,<target>...] [--procs <n>]
 *               [--retries <n>] [--store <dir>] [--json]
 *
 * The usual environment knobs (MCD_INSNS, MCD_WARMUP, MCD_INTERVAL,
 * MCD_JOBS, MCD_STORE) set the methodology. Runs resolve through the
 * process-wide ArtifactCache: repeated benchmarks in one invocation
 * simulate once, and with a persistent store (--store or MCD_STORE)
 * once across invocations. `cache` prints the store statistics;
 * `cache prune` garbage-collects the store (size/age budgets, stale
 * temp files). `fleet` shards figure/ablation targets — sibling bench
 * binaries, resolved next to this executable — across N concurrent
 * worker processes sharing one store, collating per-target stdout in
 * submission order (byte-identical for any --procs).
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "eval/tournament.hh"
#include "harness/artifact_store.hh"
#include "harness/experiment.hh"
#include "harness/fleet.hh"
#include "harness/table.hh"
#include "workload/scenario_registry.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

// ------------------------------------------------------------- JSON
// A minimal emitter: the output grammar is flat enough that a real
// JSON library would be all dependency and no benefit.

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonStr(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no infinities or NaNs; the stats never produce them,
    // but guard anyway.
    if (std::strchr(buf, 'n') || std::strchr(buf, 'i'))
        return "null";
    return buf;
}

std::string
jsonU64(std::uint64_t v)
{
    return std::to_string(v);
}

// ------------------------------------------------------------- list

void
listRegistries(bool json)
{
    ScenarioRegistry &scenarios = ScenarioRegistry::instance();
    ControllerRegistry &controllers = ControllerRegistry::instance();

    // Fixed scenarios grouped by family: the paper's applications by
    // suite (registration order kept within each group), then the
    // parametric template families with their full knob sets.
    std::vector<std::string> suites;
    for (const auto &name : scenarios.scenarioNames()) {
        std::string suite = scenarios.spec(name).suite;
        if (std::find(suites.begin(), suites.end(), suite) ==
            suites.end())
            suites.push_back(suite);
    }

    if (json) {
        std::string out = "{\n  \"scenarios\": [";
        bool first = true;
        for (const auto &suite : suites) {
            for (const auto &name : scenarios.scenarioNames()) {
                if (scenarios.spec(name).suite != suite)
                    continue;
                out += first ? "\n" : ",\n";
                first = false;
                out += "    {\"name\": " + jsonStr(name) +
                       ", \"suite\": " + jsonStr(suite) + "}";
            }
        }
        out += "\n  ],\n  \"families\": [";
        first = true;
        for (const auto &family : scenarios.families()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"prefix\": " + jsonStr(family.prefix) +
                   ", \"description\": " + jsonStr(family.description) +
                   ", \"knobs\": [";
            bool first_knob = true;
            for (const auto &knob : family.knobs) {
                out += first_knob ? "" : ", ";
                first_knob = false;
                out += "{\"name\": " + jsonStr(knob.name) +
                       ", \"doc\": " + jsonStr(knob.doc) + "}";
            }
            out += "]}";
        }
        out += "\n  ],\n  \"controllers\": [";
        first = true;
        for (const auto &info : controllers.list()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"name\": " + jsonStr(info.name) +
                   ", \"description\": " + jsonStr(info.description) +
                   "}";
        }
        out += "\n  ]\n}\n";
        std::fputs(out.c_str(), stdout);
        return;
    }

    for (const auto &suite : suites) {
        TextTable suite_table("paper applications — " + suite);
        suite_table.setHeader({"name"});
        for (const auto &name : scenarios.scenarioNames())
            if (scenarios.spec(name).suite == suite)
                suite_table.addRow({name});
        std::printf("%s\n", suite_table.render().c_str());
    }

    for (const auto &family : scenarios.families()) {
        TextTable family_table("scenario template — " + family.prefix +
                               "<k=v,...>  (" + family.description +
                               ")");
        family_table.setHeader({"knob", "doc"});
        for (const auto &knob : family.knobs)
            family_table.addRow({knob.name, knob.doc});
        std::printf("%s\n", family_table.render().c_str());
    }

    TextTable controller_table("controllers");
    controller_table.setHeader({"name", "description"});
    for (const auto &info : controllers.list())
        controller_table.addRow({info.name, info.description});
    std::printf("%s", controller_table.render().c_str());
}

// ------------------------------------------------------------ cache

std::string
cacheJsonObject(const ArtifactCache &cache)
{
    std::string out = "{";
    out += "\"lookups\": " + jsonU64(cache.lookups());
    out += ", \"hits\": " + jsonU64(cache.hits());
    out += ", \"disk_hits\": " + jsonU64(cache.diskHits());
    out += ", \"simulations\": " + jsonU64(cache.simulationsRun());
    out += ", \"memory_entries\": " +
           jsonU64(static_cast<std::uint64_t>(cache.size()));
    std::string root = cache.storeRoot();
    if (root.empty()) {
        out += ", \"store_root\": null";
    } else {
        out += ", \"store_root\": " + jsonStr(root);
        out += ", \"disk_entries\": " +
               jsonU64(static_cast<std::uint64_t>(cache.diskEntries()));
        out += ", \"disk_bytes\": " + jsonU64(cache.diskBytes());
    }
    out += "}";
    return out;
}

std::uint64_t
parseU64Flag(const std::string &flag, const std::string &text)
{
    // strtoull would silently wrap "-100" to a huge value; require a
    // plain digit string so negatives and signs fail loudly instead.
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || !std::isdigit(
            static_cast<unsigned char>(text[0])) ||
        errno != 0 || end == text.c_str() || *end != '\0')
        mcd_fatal("%s needs a non-negative integer, not '%s'",
                  flag.c_str(), text.c_str());
    return v;
}

int
pruneCli(const std::string &root, std::uint64_t max_bytes,
         std::int64_t max_age, std::int64_t tmp_age, bool json)
{
    if (root.empty())
        mcd_fatal("cache prune needs a store root "
                  "(--store or MCD_STORE)");
    DiskStore store(root);
    DiskStore::PruneOptions options;
    options.maxBytes = max_bytes;
    options.maxAgeSeconds = max_age;
    options.tmpAgeSeconds = tmp_age;
    DiskStore::PruneReport report = store.prune(options);

    if (json) {
        std::string out = "{\n  \"prune\": {";
        out += "\"store_root\": " + jsonStr(root);
        out += ", \"entries_removed\": " +
               jsonU64(report.entriesRemoved);
        out += ", \"bytes_removed\": " + jsonU64(report.bytesRemoved);
        out += ", \"tmps_removed\": " + jsonU64(report.tmpsRemoved);
        out += ", \"sidecars_removed\": " +
               jsonU64(report.sidecarsRemoved);
        out += ", \"entries_kept\": " + jsonU64(report.entriesKept);
        out += ", \"bytes_kept\": " + jsonU64(report.bytesKept);
        out += "}\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    TextTable table("cache prune");
    table.setHeader({"statistic", "value"});
    table.addRow({"store root", root});
    table.addRow({"entries removed",
                  std::to_string(report.entriesRemoved)});
    table.addRow({"bytes removed",
                  std::to_string(report.bytesRemoved)});
    table.addRow({"stale temp files removed",
                  std::to_string(report.tmpsRemoved)});
    table.addRow({"sidecars removed",
                  std::to_string(report.sidecarsRemoved)});
    table.addRow({"entries kept", std::to_string(report.entriesKept)});
    table.addRow({"bytes kept", std::to_string(report.bytesKept)});
    std::printf("%s", table.render().c_str());
    return 0;
}

// ------------------------------------------------------------- fleet

/** Short figure/table/ablation aliases -> sibling binary names. */
const std::map<std::string, std::string> &
fleetAliases()
{
    static const std::map<std::string, std::string> aliases = {
        {"fig2", "fig2_lsq_trace"},
        {"fig3", "fig3_fiq_trace"},
        {"fig4", "fig4_per_app"},
        {"fig5", "fig5_perfdeg_target"},
        {"fig6", "fig6_edp_sensitivity"},
        {"fig7", "fig7_ppr_sensitivity"},
        {"table3", "table3_gates"},
        {"table6", "table6_summary"},
        {"endstop", "ablation_endstop"},
        {"frontend", "ablation_frontend"},
        {"global", "ablation_global"},
        {"interval", "ablation_interval"},
        {"listing", "ablation_listing"},
        {"mcd_overhead", "ablation_mcd_overhead"},
    };
    return aliases;
}

/** The directory holding this executable (and its sibling benches). */
std::string
selfDirectory()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    return std::filesystem::path(buf).parent_path().string();
}

/**
 * Resolve a fleet target: an alias ("fig5"), an exact sibling binary
 * name ("table6_summary"), or an explicit path (contains '/').
 */
std::string
resolveFleetTarget(const std::string &name)
{
    if (name.find('/') != std::string::npos)
        return name;
    std::string binary = name;
    auto alias = fleetAliases().find(name);
    if (alias != fleetAliases().end())
        binary = alias->second;
    std::string path = selfDirectory() + "/" + binary;
    if (!std::filesystem::exists(path))
        mcd_fatal("fleet target '%s' resolves to '%s', which does not "
                  "exist (build it, or pass an explicit path)",
                  name.c_str(), path.c_str());
    return path;
}

int
fleetCli(const std::vector<std::string> &names, int procs, int retries,
         const std::string &store, bool json)
{
    std::vector<FleetTarget> targets;
    for (const auto &name : names) {
        FleetTarget target;
        target.name = name;
        target.argv = {resolveFleetTarget(name)};
        targets.push_back(std::move(target));
    }

    FleetOptions options;
    options.procs = procs;
    options.retries = retries;
    options.store = store;
    FleetReport report = runFleet(targets, options);

    if (json) {
        std::string out = "{\n  \"fleet\": {\n    \"procs\": " +
                          std::to_string(std::max(1, procs));
        out += ",\n    \"store\": " +
               (store.empty() ? std::string("null") : jsonStr(store));
        out += ",\n    \"failed\": " +
               jsonU64(static_cast<std::uint64_t>(report.failed));
        out += ",\n    \"retried\": " +
               jsonU64(static_cast<std::uint64_t>(report.retried));
        out += ",\n    \"targets\": [";
        bool first = true;
        for (const auto &t : report.targets) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "      {\"name\": " + jsonStr(t.name) +
                   ", \"succeeded\": " +
                   (t.succeeded ? "true" : "false") +
                   ", \"exit\": " + std::to_string(t.exitCode) +
                   ", \"attempts\": " + std::to_string(t.attempts) +
                   ", \"simulations\": " + jsonU64(t.store.simulations) +
                   ", \"lookups\": " + jsonU64(t.store.lookups) + "}";
        }
        out += "\n    ],\n    \"merged\": {";
        out += "\"lookups\": " + jsonU64(report.merged.lookups);
        out += ", \"hits\": " + jsonU64(report.merged.hits);
        out += ", \"disk_hits\": " + jsonU64(report.merged.diskHits);
        out += ", \"simulations\": " +
               jsonU64(report.merged.simulations);
        out += "}\n  }\n}\n";
        std::fputs(out.c_str(), stdout);
        return report.failed == 0 ? 0 : 1;
    }

    // Deterministic collation: each target's stdout, verbatim, in
    // submission order — byte-identical for any --procs, and for a
    // single target identical to running the binary directly. All
    // fleet bookkeeping goes to stderr.
    for (const auto &t : report.targets) {
        std::fwrite(t.stdoutText.data(), 1, t.stdoutText.size(),
                    stdout);
        if (!t.succeeded) {
            std::fprintf(stderr,
                         "fleet: ---- %s failed (exit %d); its stderr "
                         "follows ----\n",
                         t.name.c_str(), t.exitCode);
            std::fwrite(t.stderrText.data(), 1, t.stderrText.size(),
                        stderr);
        }
    }
    std::fprintf(stderr,
                 "fleet store: lookups=%llu hits=%llu disk_hits=%llu "
                 "simulations=%llu failed=%zu retried=%zu\n",
                 static_cast<unsigned long long>(report.merged.lookups),
                 static_cast<unsigned long long>(report.merged.hits),
                 static_cast<unsigned long long>(
                     report.merged.diskHits),
                 static_cast<unsigned long long>(
                     report.merged.simulations),
                 report.failed, report.retried);
    return report.failed == 0 ? 0 : 1;
}

// ------------------------------------------------------- tournament

std::string
tournamentCellJson(const TournamentCell &cell)
{
    std::string out = "      {";
    out += "\"scenario\": " + jsonStr(cell.scenario);
    out += ", \"controller\": " + jsonStr(cell.controller);
    out += ", \"mean_freq_error\": " +
           jsonNum(cell.regret.meanFreqError);
    out += ", \"worst_freq_error\": " +
           jsonNum(cell.regret.worstFreqError);
    out += ", \"edp_gap\": " + jsonNum(cell.regret.edpGap);
    out += ", \"energy_gap\": " + jsonNum(cell.regret.energyGap);
    out += ", \"time_gap\": " + jsonNum(cell.regret.timeGap);
    out += ", \"flips\": " +
           jsonU64(static_cast<std::uint64_t>(cell.regret.flips));
    out += ", \"flips_tracked\": " +
           jsonU64(static_cast<std::uint64_t>(
               cell.regret.flipsTracked));
    out += ", \"mean_reaction_intervals\": " +
           jsonNum(cell.regret.meanReactionIntervals);
    out += ", \"worst_reaction_intervals\": " +
           jsonNum(cell.regret.worstReactionIntervals);
    out += ", \"oracle_margin\": " + jsonNum(cell.oracle.margin);
    out += ", \"online_time_ps\": " +
           jsonU64(static_cast<std::uint64_t>(cell.online.time));
    out += ", \"oracle_time_ps\": " +
           jsonU64(static_cast<std::uint64_t>(cell.oracle.stats.time));
    out += ", \"online_energy_nj\": " + jsonNum(cell.online.chipEnergy);
    out += ", \"oracle_energy_nj\": " +
           jsonNum(cell.oracle.stats.chipEnergy);
    out += "}";
    return out;
}

std::string
tournamentStandingJson(const TournamentStanding &s, int rank)
{
    std::string out = "      {";
    out += "\"rank\": " + std::to_string(rank);
    out += ", \"controller\": " + jsonStr(s.controller);
    out += ", \"cells\": " +
           jsonU64(static_cast<std::uint64_t>(s.cells));
    out += ", \"mean_freq_error\": " + jsonNum(s.meanFreqError);
    out += ", \"worst_freq_error\": " + jsonNum(s.worstFreqError);
    out += ", \"mean_edp_gap\": " + jsonNum(s.meanEdpGap);
    out += ", \"worst_edp_gap\": " + jsonNum(s.worstEdpGap);
    out += ", \"mean_reaction_intervals\": " +
           jsonNum(s.meanReactionIntervals);
    out += ", \"flips\": " +
           jsonU64(static_cast<std::uint64_t>(s.flips));
    out += ", \"flips_tracked\": " +
           jsonU64(static_cast<std::uint64_t>(s.flipsTracked));
    out += "}";
    return out;
}

int
tournamentCli(const std::vector<std::string> &scenario_args,
              const std::vector<std::string> &controller_args,
              double target_deg, int procs, int retries,
              const std::string &store, bool warm_only, bool json)
{
    TournamentOptions options;
    options.config = standardConfig();
    if (!store.empty())
        options.config.store = store; // --store overrides MCD_STORE
    options.targetDeg = target_deg;
    options.procs = procs;
    options.retries = retries;

    // Scenarios: explicit names (scenario-aware comma splitting), with
    // the "corpus" alias expanding to the standing adversarial corpus.
    std::vector<std::string> scenario_lists = scenario_args;
    if (scenario_lists.empty())
        scenario_lists.push_back("corpus");
    for (const auto &arg : scenario_lists) {
        for (const auto &name : splitScenarioList(arg)) {
            if (name == "corpus") {
                for (const auto &c : adversarialCorpus())
                    options.scenarios.push_back(c);
            } else {
                options.scenarios.push_back(name);
            }
        }
    }

    // Controllers: each --controllers value holds ';'-separated
    // controller specs (commas belong to the specs' own parameters).
    for (const auto &arg : controller_args) {
        std::size_t pos = 0;
        while (pos <= arg.size()) {
            auto semi = arg.find(';', pos);
            std::string item = arg.substr(
                pos, semi == std::string::npos ? std::string::npos
                                               : semi - pos);
            pos = semi == std::string::npos ? arg.size() + 1
                                            : semi + 1;
            if (item.empty())
                continue;
            TournamentEntry entry;
            entry.label = item;
            entry.spec = parseControllerSpec(item);
            options.controllers.push_back(std::move(entry));
        }
    }
    if (options.controllers.empty())
        options.controllers = defaultTournamentEntries();

    // The warming fleet re-invokes this binary, one scenario per
    // worker, forwarding the controller arguments verbatim (defaults
    // are deterministic, so forwarding nothing reproduces them).
    if (procs > 1) {
        options.makeWorker =
            [&](const std::string &scenario) {
                FleetTarget target;
                target.name = scenario;
                target.argv = {selfDirectory() + "/mcd_cli",
                               "tournament", "--warm-only",
                               "--scenarios", scenario};
                for (const auto &arg : controller_args) {
                    target.argv.push_back("--controllers");
                    target.argv.push_back(arg);
                }
                target.argv.push_back("--target-deg");
                char deg[40];
                std::snprintf(deg, sizeof(deg), "%.17g", target_deg);
                target.argv.push_back(deg);
                return target;
            };
    }

    TournamentResult result = runTournament(options);
    if (warm_only) {
        // Warming worker: the artifacts are in the shared store; the
        // parent renders. Only the store line goes out (stderr).
        reportStoreStats();
        return 0;
    }

    if (json) {
        std::string out = "{\n  \"tournament\": {\n";
        out += "    \"target_deg\": " + jsonNum(options.targetDeg) +
               ",\n";
        out += "    \"scenarios\": [";
        bool first = true;
        for (const auto &scenario : options.scenarios) {
            out += first ? "" : ", ";
            first = false;
            out += jsonStr(scenario);
        }
        out += "],\n    \"controllers\": [";
        first = true;
        for (const auto &entry : options.controllers) {
            out += first ? "" : ", ";
            first = false;
            out += jsonStr(entry.label);
        }
        out += "],\n    \"cells\": [\n";
        for (std::size_t i = 0; i < result.cells.size(); ++i) {
            out += tournamentCellJson(result.cells[i]);
            out += i + 1 < result.cells.size() ? ",\n" : "\n";
        }
        out += "    ],\n    \"standings\": [\n";
        for (std::size_t i = 0; i < result.standings.size(); ++i) {
            out += tournamentStandingJson(result.standings[i],
                                          static_cast<int>(i) + 1);
            out += i + 1 < result.standings.size() ? ",\n" : "\n";
        }
        // No cache counters here, unlike `run --json`: tournament
        // stdout stays byte-identical between cold, warm, and fleet
        // runs (CI diffs it); the counters go to stderr below.
        out += "    ]\n  }\n}\n";
        std::fputs(out.c_str(), stdout);
        reportStoreStats();
        return 0;
    }

    printMethodology(options.config);
    std::printf("oracle: offline Dynamic-%g%% (degradation cap %s)\n\n",
                options.targetDeg * 100.0,
                pct(options.targetDeg, 1).c_str());
    std::printf("%s", renderTournament(result).c_str());
    reportStoreStats();
    return 0;
}

int
cacheStatsCli(const std::string &store, bool json)
{
    ArtifactCache &cache = ArtifactCache::instance();
    if (!store.empty())
        cache.attachDiskStore(store);

    if (json) {
        std::string out =
            "{\n  \"cache\": " + cacheJsonObject(cache) + "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    TextTable table("artifact store");
    table.setHeader({"statistic", "value"});
    table.addRow({"lookups", std::to_string(cache.lookups())});
    table.addRow({"hits", std::to_string(cache.hits())});
    table.addRow({"disk hits", std::to_string(cache.diskHits())});
    table.addRow({"simulations run",
                  std::to_string(cache.simulationsRun())});
    table.addRow({"memory entries", std::to_string(cache.size())});
    std::string root = cache.storeRoot();
    table.addRow({"store root", root.empty() ? "(memory only)" : root});
    if (!root.empty()) {
        table.addRow({"disk entries",
                      std::to_string(cache.diskEntries())});
        table.addRow({"disk bytes", std::to_string(cache.diskBytes())});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

// -------------------------------------------------------------- run

std::string
runJson(const ExperimentSpec &spec, const SimStats &stats)
{
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(spec.hash()));

    std::string params = "{";
    bool first = true;
    for (const auto &[key, value] : spec.controller.params) {
        params += first ? "" : ", ";
        first = false;
        params += jsonStr(key) + ": " + jsonNum(value);
    }
    params += "}";

    std::string out = "    {\n";
    out += "      \"benchmark\": " + jsonStr(spec.benchmark) + ",\n";
    out += "      \"mode\": " +
           jsonStr(spec.mode == ClockMode::Mcd ? "mcd" : "sync") +
           ",\n";
    out += "      \"controller\": " + jsonStr(spec.controller.name) +
           ",\n";
    out += "      \"params\": " + params + ",\n";
    out += "      \"start_freq_hz\": " +
           jsonNum(spec.resolvedStartFreq()) + ",\n";
    out += "      \"instructions\": " +
           jsonU64(spec.config.instructions) + ",\n";
    out += "      \"warmup\": " + jsonU64(spec.config.warmup) + ",\n";
    out += "      \"interval\": " +
           std::to_string(spec.config.intervalInstructions) + ",\n";
    out += "      \"clock_seed\": " + jsonU64(spec.config.clockSeed) +
           ",\n";
    out += "      \"spec_hash\": " + jsonStr(hash) + ",\n";
    out += "      \"stats\": {\n";
    out += "        \"instructions\": " + jsonU64(stats.instructions) +
           ",\n";
    out += "        \"fe_cycles\": " + jsonU64(stats.feCycles) + ",\n";
    out += "        \"time_ps\": " +
           jsonU64(static_cast<std::uint64_t>(stats.time)) + ",\n";
    out += "        \"chip_energy_nj\": " + jsonNum(stats.chipEnergy) +
           ",\n";
    out += "        \"cpi\": " + jsonNum(stats.cpi) + ",\n";
    out += "        \"epi_nj\": " + jsonNum(stats.epi) + ",\n";
    out += "        \"branches\": " + jsonU64(stats.branches) + ",\n";
    out += "        \"mispredicts\": " + jsonU64(stats.mispredicts) +
           ",\n";
    out += "        \"loads\": " + jsonU64(stats.loads) + ",\n";
    out += "        \"stores\": " + jsonU64(stats.stores) + ",\n";
    out += "        \"l1d_misses\": " + jsonU64(stats.l1dMisses) +
           ",\n";
    out += "        \"l2_misses\": " + jsonU64(stats.l2Misses) + "\n";
    out += "      }\n    }";
    return out;
}

int
runExperimentsCli(const std::vector<std::string> &benches,
                  const ControllerSpec &controller, ClockMode mode,
                  Hertz freq, std::uint64_t seed, bool have_seed,
                  const std::string &store, bool json)
{
    RunnerConfig config = standardConfig();
    if (have_seed)
        config.clockSeed = seed;
    if (!store.empty())
        config.store = store; // --store overrides MCD_STORE

    std::vector<ExperimentSpec> specs;
    for (const auto &bench : benches) {
        if (!ScenarioRegistry::instance().contains(bench))
            mcd_fatal("unknown scenario '%s' (try: mcd_cli list)",
                      bench.c_str());
        specs.push_back(makeSpec(config, bench, controller, mode,
                                 freq));
    }

    auto results = runExperiments(specs, config.jobs);
    ArtifactCache &cache = ArtifactCache::instance();

    if (json) {
        std::string out = "{\n  \"experiments\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            out += runJson(specs[i], results[i]);
            out += i + 1 < specs.size() ? ",\n" : "\n";
        }
        out += "  ],\n  \"cache\": " + cacheJsonObject(cache) +
               "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    printMethodology(config);
    TextTable table("results");
    table.setHeader({"benchmark", "controller", "mode", "time (ps)",
                     "energy (nJ)", "CPI", "EPI (nJ)"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        table.addRow({specs[i].benchmark, controller.name,
                      mode == ClockMode::Mcd ? "mcd" : "sync",
                      std::to_string(results[i].time),
                      num(results[i].chipEnergy, 1),
                      num(results[i].cpi, 3), num(results[i].epi, 3)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\ncache: %llu lookups, %llu hits (%llu from disk), "
                "%llu simulations%s%s\n",
                static_cast<unsigned long long>(cache.lookups()),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.diskHits()),
                static_cast<unsigned long long>(
                    cache.simulationsRun()),
                cache.storeRoot().empty() ? "" : ", store ",
                cache.storeRoot().c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "usage:\n"
        "  mcd_cli list [--json]            enumerate scenarios, "
        "scenario\n"
        "                                   families and controllers\n"
        "  mcd_cli run --bench <name>[,<name>...]\n"
        "              [--controller <name>[:<k=v>,...]]\n"
        "              [--mode mcd|sync] [--freq <hz>] [--seed <n>]\n"
        "              [--store <dir>] [--json]\n"
        "                                   run experiments\n"
        "  mcd_cli cache [--store <dir>] [--json]\n"
        "                                   print artifact-store "
        "statistics\n"
        "  mcd_cli cache prune [--store <dir>] [--max-bytes <b>]\n"
        "              [--max-age <seconds>] [--tmp-age <seconds>] "
        "[--json]\n"
        "                                   garbage-collect the store\n"
        "  mcd_cli fleet <target>[,<target>...] [--procs <n>]\n"
        "              [--retries <n>] [--store <dir>] [--json]\n"
        "                                   shard figure/ablation "
        "binaries\n"
        "                                   across worker processes "
        "sharing\n"
        "                                   one store\n"
        "  mcd_cli tournament [--scenarios <name>[,...]|corpus]...\n"
        "              [--controllers <spec>[;<spec>...]]...\n"
        "              [--target-deg <frac>] [--procs <n>]\n"
        "              [--retries <n>] [--store <dir>] [--json]\n"
        "                                   oracle-regret tournament: "
        "score\n"
        "                                   controllers x scenarios "
        "against\n"
        "                                   the offline Dynamic-X% "
        "oracle\n"
        "                                   (default: the adversarial "
        "corpus\n"
        "                                   x attack_decay / "
        "attack_decay:slow\n"
        "                                   / none)\n"
        "\n"
        "examples:\n"
        "  mcd_cli list\n"
        "  mcd_cli run --bench gsm --controller "
        "attack_decay:decay=0.0125,perf_deg_threshold=0.015 --json\n"
        "  mcd_cli run --bench synthetic:mem=0.8,ilp=4,phases=6\n"
        "  mcd_cli run --bench gsm --store /tmp/mcd-store   # warm it\n"
        "  mcd_cli cache --store /tmp/mcd-store --json\n"
        "  mcd_cli fleet fig5,table6 --procs 4 --store /tmp/mcd-store\n"
        "  mcd_cli cache prune --store /tmp/mcd-store "
        "--max-bytes 100000000\n"
        "  mcd_cli tournament --store /tmp/mcd-store --json\n"
        "  mcd_cli tournament --scenarios "
        "synthetic:square=4000,mem=0.5,gsm \\\n"
        "      --controllers \"attack_decay;"
        "attack_decay:reaction_change=0.12\"\n"
        "\n"
        "fleet targets: fig2..fig7, table3, table6, endstop, frontend,\n"
        "               global, interval, listing, mcd_overhead, any\n"
        "               sibling binary name, or an explicit path\n"
        "\n"
        "environment: MCD_INSNS, MCD_WARMUP, MCD_INTERVAL, MCD_JOBS,\n"
        "             MCD_STORE (persistent artifact store root;\n"
        "             --store overrides)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        usage();
        return 2;
    }

    bool json = false;
    bool do_list = false;
    bool do_run = false;
    bool do_cache = false;
    bool do_prune = false;
    bool do_fleet = false;
    bool do_tournament = false;
    bool warm_only = false;
    std::vector<std::string> benches;
    std::vector<std::string> fleet_targets;
    std::vector<std::string> tournament_scenarios;
    std::vector<std::string> tournament_controllers;
    double target_deg = 0.05;
    ControllerSpec controller; // "none"
    ClockMode mode = ClockMode::Mcd;
    Hertz freq = 0.0;
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::string store; // --store; "" defers to MCD_STORE
    // Fleet worker processes. Deliberately defaults to serial: each
    // worker is itself fully multithreaded (MCD_JOBS), so fanning out
    // processes is an explicit --procs opt-in, not an ambient default.
    int procs = 1;
    int retries = 1;
    std::uint64_t max_bytes = 0;
    std::int64_t max_age = -1;
    std::int64_t tmp_age = 3600;

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "list" || arg == "--list") {
            do_list = true;
        } else if (arg == "run") {
            do_run = true;
        } else if (arg == "cache") {
            do_cache = true;
        } else if (arg == "prune" && do_cache) {
            do_prune = true;
        } else if (arg == "fleet") {
            do_fleet = true;
        } else if (arg == "tournament") {
            do_tournament = true;
        } else if (arg == "--scenarios") {
            tournament_scenarios.push_back(value(i));
        } else if (arg == "--controllers") {
            tournament_controllers.push_back(value(i));
        } else if (arg == "--target-deg") {
            char *end = nullptr;
            std::string v = value(i);
            target_deg = std::strtod(v.c_str(), &end);
            if (v.empty() || end != v.c_str() + v.size() ||
                target_deg < 0.0 || target_deg > 1.0)
                mcd_fatal("--target-deg needs a fraction in [0, 1], "
                          "not '%s'", v.c_str());
        } else if (arg == "--warm-only") {
            warm_only = true;
        } else if (arg == "--procs") {
            procs = static_cast<int>(
                parseU64Flag("--procs", value(i)));
            if (procs < 1)
                mcd_fatal("--procs needs a positive worker count");
        } else if (arg == "--retries") {
            retries = static_cast<int>(
                parseU64Flag("--retries", value(i)));
        } else if (arg == "--max-bytes") {
            max_bytes = parseU64Flag("--max-bytes", value(i));
        } else if (arg == "--max-age") {
            max_age = static_cast<std::int64_t>(
                parseU64Flag("--max-age", value(i)));
        } else if (arg == "--tmp-age") {
            tmp_age = static_cast<std::int64_t>(
                parseU64Flag("--tmp-age", value(i)));
        } else if (do_fleet && !arg.empty() && arg[0] != '-') {
            for (const auto &name : splitList(arg))
                fleet_targets.push_back(name);
        } else if (arg == "--store") {
            store = value(i);
            if (store.empty())
                mcd_fatal("--store needs a non-empty directory");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--bench") {
            // Scenario-aware splitting: a family name keeps its own
            // comma-separated knobs, so
            // "gsm,synthetic:mem=0.8,ilp=4,mcf" is three scenarios.
            for (const auto &name : splitScenarioList(value(i)))
                benches.push_back(name);
        } else if (arg == "--controller") {
            controller = parseControllerSpec(value(i));
        } else if (arg == "--mode") {
            std::string v = value(i);
            if (v == "mcd")
                mode = ClockMode::Mcd;
            else if (v == "sync")
                mode = ClockMode::Synchronous;
            else
                mcd_fatal("--mode must be 'mcd' or 'sync', not '%s'",
                          v.c_str());
        } else if (arg == "--freq") {
            freq = std::strtod(value(i).c_str(), nullptr);
            if (freq <= 0.0)
                mcd_fatal("--freq needs a positive frequency in Hz");
        } else if (arg == "--seed") {
            seed = std::strtoull(value(i).c_str(), nullptr, 10);
            have_seed = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            mcd_fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (do_list)
        listRegistries(json);
    if (do_run) {
        if (benches.empty())
            mcd_fatal("run needs --bench <name>[,<name>...]");
        return runExperimentsCli(benches, controller, mode, freq, seed,
                                 have_seed, store, json);
    }
    if (do_tournament) {
        // Workers share the parent's store; resolve the root here so
        // the fleet env and the parent's cache agree on it.
        std::string root =
            store.empty() ? standardConfig().store : store;
        return tournamentCli(tournament_scenarios,
                             tournament_controllers, target_deg, procs,
                             retries, root, warm_only, json);
    }
    if (do_fleet) {
        if (fleet_targets.empty())
            mcd_fatal("fleet needs at least one target "
                      "(e.g. fleet fig5,table6)");
        // Workers inherit MCD_STORE unless --store overrides; resolve
        // here so the merged report and the children agree on the root.
        std::string root =
            store.empty() ? standardConfig().store : store;
        return fleetCli(fleet_targets, procs, retries, root, json);
    }
    if (do_cache) {
        // Standalone `cache` reports on the persistent layer (--store
        // or MCD_STORE); after `run` in the same process it would also
        // reflect that run's counters, but subcommands are exclusive.
        std::string root =
            store.empty() ? standardConfig().store : store;
        if (do_prune)
            return pruneCli(root, max_bytes, max_age, tmp_age, json);
        return cacheStatsCli(root, json);
    }
    if (!do_list) {
        usage();
        return 2;
    }
    return 0;
}
