/**
 * @file
 * The unified experiment CLI over the declarative layer: enumerates
 * the scenario and controller registries, and runs any ExperimentSpec
 * — any registered scenario (the paper's 30 applications or a
 * parametric `synthetic:` instance) under any registered controller —
 * with human-readable or `--json` machine-readable output.
 *
 *   mcd_cli list [--json]
 *   mcd_cli run --bench <name>[,<name>...]
 *               [--controller <name>[:<k=v>,...]]
 *               [--mode mcd|sync] [--freq <hz>] [--seed <n>]
 *               [--store <dir>] [--json]
 *   mcd_cli cache [--store <dir>] [--json]
 *
 * The usual environment knobs (MCD_INSNS, MCD_WARMUP, MCD_INTERVAL,
 * MCD_JOBS, MCD_STORE) set the methodology. Runs resolve through the
 * process-wide ArtifactCache: repeated benchmarks in one invocation
 * simulate once, and with a persistent store (--store or MCD_STORE)
 * once across invocations. `cache` prints the store statistics.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workload/scenario_registry.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

// ------------------------------------------------------------- JSON
// A minimal emitter: the output grammar is flat enough that a real
// JSON library would be all dependency and no benefit.

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonStr(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no infinities or NaNs; the stats never produce them,
    // but guard anyway.
    if (std::strchr(buf, 'n') || std::strchr(buf, 'i'))
        return "null";
    return buf;
}

std::string
jsonU64(std::uint64_t v)
{
    return std::to_string(v);
}

// ------------------------------------------------------------- list

void
listRegistries(bool json)
{
    ScenarioRegistry &scenarios = ScenarioRegistry::instance();
    ControllerRegistry &controllers = ControllerRegistry::instance();

    if (json) {
        std::string out = "{\n  \"scenarios\": [";
        bool first = true;
        for (const auto &name : scenarios.scenarioNames()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"name\": " + jsonStr(name) + ", \"suite\": " +
                   jsonStr(scenarios.spec(name).suite) + "}";
        }
        out += "\n  ],\n  \"families\": [";
        first = true;
        for (const auto &family : scenarios.families()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"prefix\": " + jsonStr(family.prefix) +
                   ", \"description\": " + jsonStr(family.description) +
                   "}";
        }
        out += "\n  ],\n  \"controllers\": [";
        first = true;
        for (const auto &info : controllers.list()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    {\"name\": " + jsonStr(info.name) +
                   ", \"description\": " + jsonStr(info.description) +
                   "}";
        }
        out += "\n  ]\n}\n";
        std::fputs(out.c_str(), stdout);
        return;
    }

    TextTable scenario_table("scenarios");
    scenario_table.setHeader({"name", "suite"});
    for (const auto &name : scenarios.scenarioNames())
        scenario_table.addRow({name, scenarios.spec(name).suite});
    std::printf("%s\n", scenario_table.render().c_str());

    TextTable family_table("scenario families");
    family_table.setHeader({"prefix", "description"});
    for (const auto &family : scenarios.families())
        family_table.addRow({family.prefix, family.description});
    std::printf("%s\n", family_table.render().c_str());

    TextTable controller_table("controllers");
    controller_table.setHeader({"name", "description"});
    for (const auto &info : controllers.list())
        controller_table.addRow({info.name, info.description});
    std::printf("%s", controller_table.render().c_str());
}

// ------------------------------------------------------------ cache

std::string
cacheJsonObject(const ArtifactCache &cache)
{
    std::string out = "{";
    out += "\"lookups\": " + jsonU64(cache.lookups());
    out += ", \"hits\": " + jsonU64(cache.hits());
    out += ", \"disk_hits\": " + jsonU64(cache.diskHits());
    out += ", \"simulations\": " + jsonU64(cache.simulationsRun());
    out += ", \"memory_entries\": " +
           jsonU64(static_cast<std::uint64_t>(cache.size()));
    std::string root = cache.storeRoot();
    if (root.empty()) {
        out += ", \"store_root\": null";
    } else {
        out += ", \"store_root\": " + jsonStr(root);
        out += ", \"disk_entries\": " +
               jsonU64(static_cast<std::uint64_t>(cache.diskEntries()));
        out += ", \"disk_bytes\": " + jsonU64(cache.diskBytes());
    }
    out += "}";
    return out;
}

int
cacheStatsCli(const std::string &store, bool json)
{
    ArtifactCache &cache = ArtifactCache::instance();
    if (!store.empty())
        cache.attachDiskStore(store);

    if (json) {
        std::string out =
            "{\n  \"cache\": " + cacheJsonObject(cache) + "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    TextTable table("artifact store");
    table.setHeader({"statistic", "value"});
    table.addRow({"lookups", std::to_string(cache.lookups())});
    table.addRow({"hits", std::to_string(cache.hits())});
    table.addRow({"disk hits", std::to_string(cache.diskHits())});
    table.addRow({"simulations run",
                  std::to_string(cache.simulationsRun())});
    table.addRow({"memory entries", std::to_string(cache.size())});
    std::string root = cache.storeRoot();
    table.addRow({"store root", root.empty() ? "(memory only)" : root});
    if (!root.empty()) {
        table.addRow({"disk entries",
                      std::to_string(cache.diskEntries())});
        table.addRow({"disk bytes", std::to_string(cache.diskBytes())});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

// -------------------------------------------------------------- run

std::string
runJson(const ExperimentSpec &spec, const SimStats &stats)
{
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(spec.hash()));

    std::string params = "{";
    bool first = true;
    for (const auto &[key, value] : spec.controller.params) {
        params += first ? "" : ", ";
        first = false;
        params += jsonStr(key) + ": " + jsonNum(value);
    }
    params += "}";

    std::string out = "    {\n";
    out += "      \"benchmark\": " + jsonStr(spec.benchmark) + ",\n";
    out += "      \"mode\": " +
           jsonStr(spec.mode == ClockMode::Mcd ? "mcd" : "sync") +
           ",\n";
    out += "      \"controller\": " + jsonStr(spec.controller.name) +
           ",\n";
    out += "      \"params\": " + params + ",\n";
    out += "      \"start_freq_hz\": " +
           jsonNum(spec.resolvedStartFreq()) + ",\n";
    out += "      \"instructions\": " +
           jsonU64(spec.config.instructions) + ",\n";
    out += "      \"warmup\": " + jsonU64(spec.config.warmup) + ",\n";
    out += "      \"interval\": " +
           std::to_string(spec.config.intervalInstructions) + ",\n";
    out += "      \"clock_seed\": " + jsonU64(spec.config.clockSeed) +
           ",\n";
    out += "      \"spec_hash\": " + jsonStr(hash) + ",\n";
    out += "      \"stats\": {\n";
    out += "        \"instructions\": " + jsonU64(stats.instructions) +
           ",\n";
    out += "        \"fe_cycles\": " + jsonU64(stats.feCycles) + ",\n";
    out += "        \"time_ps\": " +
           jsonU64(static_cast<std::uint64_t>(stats.time)) + ",\n";
    out += "        \"chip_energy_nj\": " + jsonNum(stats.chipEnergy) +
           ",\n";
    out += "        \"cpi\": " + jsonNum(stats.cpi) + ",\n";
    out += "        \"epi_nj\": " + jsonNum(stats.epi) + ",\n";
    out += "        \"branches\": " + jsonU64(stats.branches) + ",\n";
    out += "        \"mispredicts\": " + jsonU64(stats.mispredicts) +
           ",\n";
    out += "        \"loads\": " + jsonU64(stats.loads) + ",\n";
    out += "        \"stores\": " + jsonU64(stats.stores) + ",\n";
    out += "        \"l1d_misses\": " + jsonU64(stats.l1dMisses) +
           ",\n";
    out += "        \"l2_misses\": " + jsonU64(stats.l2Misses) + "\n";
    out += "      }\n    }";
    return out;
}

int
runExperimentsCli(const std::vector<std::string> &benches,
                  const ControllerSpec &controller, ClockMode mode,
                  Hertz freq, std::uint64_t seed, bool have_seed,
                  const std::string &store, bool json)
{
    RunnerConfig config = standardConfig();
    if (have_seed)
        config.clockSeed = seed;
    if (!store.empty())
        config.store = store; // --store overrides MCD_STORE

    std::vector<ExperimentSpec> specs;
    for (const auto &bench : benches) {
        if (!ScenarioRegistry::instance().contains(bench))
            mcd_fatal("unknown scenario '%s' (try: mcd_cli list)",
                      bench.c_str());
        specs.push_back(makeSpec(config, bench, controller, mode,
                                 freq));
    }

    auto results = runExperiments(specs, config.jobs);
    ArtifactCache &cache = ArtifactCache::instance();

    if (json) {
        std::string out = "{\n  \"experiments\": [\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            out += runJson(specs[i], results[i]);
            out += i + 1 < specs.size() ? ",\n" : "\n";
        }
        out += "  ],\n  \"cache\": " + cacheJsonObject(cache) +
               "\n}\n";
        std::fputs(out.c_str(), stdout);
        return 0;
    }

    printMethodology(config);
    TextTable table("results");
    table.setHeader({"benchmark", "controller", "mode", "time (ps)",
                     "energy (nJ)", "CPI", "EPI (nJ)"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        table.addRow({specs[i].benchmark, controller.name,
                      mode == ClockMode::Mcd ? "mcd" : "sync",
                      std::to_string(results[i].time),
                      num(results[i].chipEnergy, 1),
                      num(results[i].cpi, 3), num(results[i].epi, 3)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\ncache: %llu lookups, %llu hits (%llu from disk), "
                "%llu simulations%s%s\n",
                static_cast<unsigned long long>(cache.lookups()),
                static_cast<unsigned long long>(cache.hits()),
                static_cast<unsigned long long>(cache.diskHits()),
                static_cast<unsigned long long>(
                    cache.simulationsRun()),
                cache.storeRoot().empty() ? "" : ", store ",
                cache.storeRoot().c_str());
    return 0;
}

void
usage()
{
    std::printf(
        "usage:\n"
        "  mcd_cli list [--json]            enumerate scenarios, "
        "scenario\n"
        "                                   families and controllers\n"
        "  mcd_cli run --bench <name>[,<name>...]\n"
        "              [--controller <name>[:<k=v>,...]]\n"
        "              [--mode mcd|sync] [--freq <hz>] [--seed <n>]\n"
        "              [--store <dir>] [--json]\n"
        "                                   run experiments\n"
        "  mcd_cli cache [--store <dir>] [--json]\n"
        "                                   print artifact-store "
        "statistics\n"
        "\n"
        "examples:\n"
        "  mcd_cli list\n"
        "  mcd_cli run --bench gsm --controller "
        "attack_decay:decay=0.0125,perf_deg_threshold=0.015 --json\n"
        "  mcd_cli run --bench synthetic:mem=0.8,ilp=4,phases=6\n"
        "  mcd_cli run --bench gsm --store /tmp/mcd-store   # warm it\n"
        "  mcd_cli cache --store /tmp/mcd-store --json\n"
        "\n"
        "environment: MCD_INSNS, MCD_WARMUP, MCD_INTERVAL, MCD_JOBS,\n"
        "             MCD_STORE (persistent artifact store root;\n"
        "             --store overrides)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        usage();
        return 2;
    }

    bool json = false;
    bool do_list = false;
    bool do_run = false;
    bool do_cache = false;
    std::vector<std::string> benches;
    ControllerSpec controller; // "none"
    ClockMode mode = ClockMode::Mcd;
    Hertz freq = 0.0;
    std::uint64_t seed = 0;
    bool have_seed = false;
    std::string store; // --store; "" defers to MCD_STORE

    auto value = [&](std::size_t &i) -> std::string {
        if (i + 1 >= args.size())
            mcd_fatal("option '%s' needs a value", args[i].c_str());
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "list" || arg == "--list") {
            do_list = true;
        } else if (arg == "run") {
            do_run = true;
        } else if (arg == "cache") {
            do_cache = true;
        } else if (arg == "--store") {
            store = value(i);
            if (store.empty())
                mcd_fatal("--store needs a non-empty directory");
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--bench") {
            // Scenario-aware splitting: a family name keeps its own
            // comma-separated knobs, so
            // "gsm,synthetic:mem=0.8,ilp=4,mcf" is three scenarios.
            for (const auto &name : splitScenarioList(value(i)))
                benches.push_back(name);
        } else if (arg == "--controller") {
            controller = parseControllerSpec(value(i));
        } else if (arg == "--mode") {
            std::string v = value(i);
            if (v == "mcd")
                mode = ClockMode::Mcd;
            else if (v == "sync")
                mode = ClockMode::Synchronous;
            else
                mcd_fatal("--mode must be 'mcd' or 'sync', not '%s'",
                          v.c_str());
        } else if (arg == "--freq") {
            freq = std::strtod(value(i).c_str(), nullptr);
            if (freq <= 0.0)
                mcd_fatal("--freq needs a positive frequency in Hz");
        } else if (arg == "--seed") {
            seed = std::strtoull(value(i).c_str(), nullptr, 10);
            have_seed = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            mcd_fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (do_list)
        listRegistries(json);
    if (do_run) {
        if (benches.empty())
            mcd_fatal("run needs --bench <name>[,<name>...]");
        return runExperimentsCli(benches, controller, mode, freq, seed,
                                 have_seed, store, json);
    }
    if (do_cache) {
        // Standalone `cache` reports on the persistent layer (--store
        // or MCD_STORE); after `run` in the same process it would also
        // reflect that run's counters, but subcommands are exclusive.
        std::string root =
            store.empty() ? standardConfig().store : store;
        return cacheStatsCli(root, json);
    }
    if (!do_list && !do_run) {
        usage();
        return 2;
    }
    return 0;
}
