/**
 * @file
 * Regenerates Figure 2 of the paper: (a) the percent change in
 * load/store queue utilization between successive intervals for `epic`
 * (decode), against the +/- DeviationThreshold band (1.75 %), and
 * (b) the load/store domain frequency the Attack/Decay algorithm
 * chooses. The paper shows the 4-5M instruction window; we print the
 * proportional window of our scaled run (the middle 20 %).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Figure 2: load/store domain statistics for epic "
                "decode ===\n");
    RunnerConfig config = standardConfig();
    config.warmup = 0;
    printMethodology(config);
    Runner runner(config);

    struct Sample
    {
        std::uint64_t instructions;
        double lsqUtilization;
        double lsFreq;
    };
    std::vector<Sample> samples;

    std::uint64_t insns = 0;
    AttackDecayConfig adc = scaledAttackDecay();
    runner.runAttackDecay("epic", adc,
                          [&](const IntervalStats &stats) {
                              insns += stats.instructions;
                              samples.push_back(
                                  {insns,
                                   stats.domains[CTL_LS].queueUtilization,
                                   stats.domains[CTL_LS].frequency});
                          });

    // The paper's window is 4-5M of 6.7M instructions; take the same
    // relative slice (60 % - 75 % of the run).
    std::size_t begin = samples.size() * 60 / 100;
    std::size_t end = samples.size() * 75 / 100;

    std::printf("deviation threshold: +/- %s\n\n",
                pct(adc.deviationThreshold, 2).c_str());
    std::printf("instructions,lsq_util_change_pct,ls_freq_ghz\n");
    double prev = begin > 0 ? samples[begin - 1].lsqUtilization : 0.0;
    for (std::size_t i = begin; i < end && i < samples.size(); ++i) {
        double change = prev > 0.0
            ? (samples[i].lsqUtilization - prev) / prev
            : 0.0;
        std::printf("%llu,%.3f,%.4f\n",
                    static_cast<unsigned long long>(
                        samples[i].instructions),
                    change * 100.0, samples[i].lsFreq / 1e9);
        prev = samples[i].lsqUtilization;
    }

    std::printf("\nFigure 2(b) sketch (load/store frequency):\n");
    prev = begin > 0 ? samples[begin - 1].lsqUtilization : 0.0;
    for (std::size_t i = begin; i < end && i < samples.size(); ++i) {
        double f = samples[i].lsFreq / 1e9;
        int bar = static_cast<int>((f - 0.25) / 0.75 * 50.0 + 0.5);
        double change = prev > 0.0
            ? (samples[i].lsqUtilization - prev) / prev * 100.0
            : 0.0;
        prev = samples[i].lsqUtilization;
        std::printf("%9llu |%-50s| %.2f GHz  d=%+.1f%%\n",
                    static_cast<unsigned long long>(
                        samples[i].instructions),
                    std::string(static_cast<std::size_t>(
                                    std::max(bar, 0)), '#')
                        .c_str(),
                    f, change);
    }
    return 0;
}
