/**
 * @file
 * Shared machinery for the per-table / per-figure bench binaries: a
 * common environment-configurable methodology, spec builders for the
 * canonical machine variants, and the canonical result set (fully
 * synchronous, baseline MCD, Attack/Decay, Dynamic-1%, Dynamic-5%,
 * matched Global DVFS) each experiment draws from. Cacheable runs go
 * through the process-wide ArtifactCache, so a (benchmark, machine)
 * pair shared by several experiments in one process simulates once —
 * and with MCD_STORE set, across processes: a warm disk store
 * reproduces a figure's stdout byte-for-byte with zero simulations.
 *
 * Environment knobs (all optional):
 *   MCD_INSNS       measured instructions per run   (default 250000)
 *   MCD_WARMUP      warm-up instructions            (default 50000)
 *   MCD_INTERVAL    controller interval             (default 1000)
 *   MCD_BENCHMARKS  comma-separated scenario list   (default: all 30;
 *                   any registered scenario works, incl. synthetic:)
 *   MCD_JOBS        sweep worker threads            (default: all cores)
 *   MCD_STORE       persistent artifact store root  (default: none)
 */

#ifndef MCD_BENCH_BENCH_UTIL_HH
#define MCD_BENCH_BENCH_UTIL_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

namespace mcd::bench
{

/** All canonical results for one benchmark. */
struct BenchResults
{
    std::string name;
    SimStats sync;          //!< fully synchronous at 1 GHz
    SimStats mcdBase;       //!< baseline MCD, all domains at 1 GHz
    SimStats attackDecay;
    OfflineResult dynamic1; //!< off-line, 1 % cap over baseline MCD
    OfflineResult dynamic5; //!< off-line, 5 % cap
    std::optional<GlobalResult> globalAd;   //!< matched to A/D time
    std::optional<GlobalResult> globalDyn1;
    std::optional<GlobalResult> globalDyn5;
};

/** Which expensive pieces to compute. */
struct ComputeOptions
{
    bool offline = true;
    bool globals = true;
};

/** The standard runner config with env overrides applied. */
RunnerConfig standardConfig();

/**
 * The Attack/Decay configuration used for scaled runs: the paper's
 * Section 5 configuration with two interval-scaling compensations
 * (Decay = 1.25 %, PerfDegThreshold = 1.5 %). The single definition
 * — with the full rationale — is `scaledAttackDecayConfig()` in
 * control/attack_decay.hh; this wrapper is kept for the benches'
 * existing call sites.
 */
AttackDecayConfig scaledAttackDecay();

/** Scenarios selected via MCD_BENCHMARKS, or the paper's 30. */
std::vector<std::string> selectedBenchmarks();

/**
 * The methodology for benchmark index `i` of a batch: the base config
 * with the clock seed derived from `i`. The single seed-matching
 * point for every bench-side batch — all runs of one benchmark
 * (baseline or variant, in any batch over the same list) must use
 * this config so comparisons consume the same clock stream.
 */
RunnerConfig benchmarkConfig(const RunnerConfig &base,
                             std::size_t index);

/**
 * The declarative form of one canonical run: `bench` under
 * `controller` on the machine/methodology of `config`. Synchronous
 * variants pass ClockMode::Synchronous; startFreq 0 means f_max.
 */
ExperimentSpec makeSpec(const RunnerConfig &config,
                        const std::string &bench,
                        const ControllerSpec &controller,
                        ClockMode mode = ClockMode::Mcd,
                        Hertz startFreq = 0.0);

/** Run the canonical experiment set for one benchmark. */
BenchResults computeOne(Runner &runner, const std::string &name,
                        const ComputeOptions &options);

/**
 * Run the canonical experiment set for many benchmarks, fanned across
 * the ParallelSweep workers (MCD_JOBS), with progress lines on stderr.
 * Results are in `names` order and bit-identical for any worker count.
 */
std::vector<BenchResults>
computeAll(Runner &runner, const std::vector<std::string> &names,
           const ComputeOptions &options);

/** Print the methodology banner (window sizes, interval). */
void printMethodology(const RunnerConfig &config);

/**
 * Print the ArtifactCache counters — and, when a disk store is
 * attached, its root/entries/bytes — as one machine-greppable stderr
 * line (`store: lookups=... simulations=...`). Every figure binary
 * calls this last; stderr keeps a warm re-run's stdout byte-identical
 * to the cold run's while CI asserts `simulations=0` on the warm one.
 */
void reportStoreStats();

} // namespace mcd::bench

#endif // MCD_BENCH_BENCH_UTIL_HH
