/**
 * @file
 * Ablation: EndstopCount sensitivity. Section 5 reports the algorithm
 * is insensitive to this parameter between 2 and 25 but that an
 * infinite value (never forcing an attack off an extreme) degrades the
 * algorithm's effectiveness.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Ablation: EndstopCount sensitivity "
                "(paper: insensitive from 2-25, infinite degrades) "
                "===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    auto baselines = computeBaselines(runner, names);

    TextTable table("EndstopCount sweep, metrics vs baseline MCD");
    table.setHeader({"endstop count", "perf degradation",
                     "energy savings", "EDP improvement"});

    std::vector<int> values = {1, 2, 5, 10, 25, 0 /* infinite */};
    for (int count : values) {
        AttackDecayConfig adc = scaledAttackDecay();
        adc.endstopCount = count;
        std::fprintf(stderr, "  endstop = %d\n", count);

        auto stats = runVariant(runner, names, attackDecaySpec(adc));
        std::vector<ComparisonMetrics> vs_mcd;
        for (std::size_t i = 0; i < names.size(); ++i)
            vs_mcd.push_back(compare(baselines.mcd.at(names[i]),
                                     stats[i]));
        table.addRow({count == 0 ? "infinite" : std::to_string(count),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::perfDegradation)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::energySavings)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::edpImprovement))});
    }
    std::printf("%s", table.render().c_str());
    reportStoreStats();
    return 0;
}
