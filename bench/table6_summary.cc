/**
 * @file
 * Regenerates Table 6 of the paper: performance degradation, energy
 * savings, energy-delay-product improvement, and the power-savings to
 * performance-degradation ratio of Attack/Decay, Dynamic-1%, Dynamic-5%,
 * and the three Global(...) equivalents, all relative to the baseline
 * MCD processor. Also prints the headline Section 5 numbers relative to
 * a fully synchronous processor.
 *
 * Paper values for reference (Table 6):
 *   Attack/Decay        3.2%  19.0%  16.7%  4.6
 *   Dynamic-1%          3.4%  21.9%  19.6%  5.1
 *   Dynamic-5%          8.7%  33.0%  27.5%  3.8
 *   Global(A/D)         3.2%   6.5%   7.8%  2.0
 *   Global(Dynamic-1%)  3.4%   6.6%   3.6%  2.0
 *   Global(Dynamic-5%)  8.7%  12.4%   5.0%  1.9
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

struct AlgorithmSummary
{
    std::string name;
    std::vector<ComparisonMetrics> vsMcd;
};

void
addRow(TextTable &table, const AlgorithmSummary &s)
{
    table.addRow({
        s.name,
        pct(meanOf(s.vsMcd, &ComparisonMetrics::perfDegradation)),
        pct(meanOf(s.vsMcd, &ComparisonMetrics::energySavings)),
        pct(meanOf(s.vsMcd, &ComparisonMetrics::edpImprovement)),
        num(powerPerfRatio(s.vsMcd), 1),
    });
}

} // namespace

int
main()
{
    std::printf("=== Table 6: algorithm comparison relative to the "
                "baseline MCD processor ===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = selectedBenchmarks();
    auto all = computeAll(runner, names, ComputeOptions{});

    AlgorithmSummary ad{"Attack/Decay", {}};
    AlgorithmSummary dyn1{"Dynamic-1%", {}};
    AlgorithmSummary dyn5{"Dynamic-5%", {}};
    AlgorithmSummary gad{"Global (Attack/Decay)", {}};
    AlgorithmSummary gdyn1{"Global (Dynamic-1%)", {}};
    AlgorithmSummary gdyn5{"Global (Dynamic-5%)", {}};

    std::vector<ComparisonMetrics> ad_vs_sync;
    std::vector<ComparisonMetrics> mcd_vs_sync;

    for (const auto &r : all) {
        ad.vsMcd.push_back(compare(r.mcdBase, r.attackDecay));
        dyn1.vsMcd.push_back(compare(r.mcdBase, r.dynamic1.stats));
        dyn5.vsMcd.push_back(compare(r.mcdBase, r.dynamic5.stats));
        // The Global(...) rows compare the scaled synchronous machine
        // against the full-speed synchronous machine: each technique is
        // measured against its own natural baseline, which is how the
        // paper's global-scaling analysis arrives at a ratio near 2.
        if (r.globalAd)
            gad.vsMcd.push_back(compare(r.sync, r.globalAd->stats));
        if (r.globalDyn1)
            gdyn1.vsMcd.push_back(compare(r.sync, r.globalDyn1->stats));
        if (r.globalDyn5)
            gdyn5.vsMcd.push_back(compare(r.sync, r.globalDyn5->stats));
        ad_vs_sync.push_back(compare(r.sync, r.attackDecay));
        mcd_vs_sync.push_back(compare(r.sync, r.mcdBase));
    }

    TextTable table("");
    table.setHeader({"Algorithm", "Perf. Degradation", "Energy Savings",
                     "EDP Improvement", "Power/Perf Ratio"});
    addRow(table, ad);
    addRow(table, dyn1);
    addRow(table, dyn5);
    addRow(table, gad);
    addRow(table, gdyn1);
    addRow(table, gdyn5);
    std::printf("%s\n", table.render().c_str());

    std::printf("=== Section 5 headline numbers, relative to a fully "
                "synchronous processor ===\n");
    std::printf("Attack/Decay: EDP improvement %s (paper: 13.8%%), "
                "EPI reduction %s (paper: 17.5%%),\n"
                "              perf degradation %s (paper: 4.5%%)\n",
                pct(meanOf(ad_vs_sync,
                           &ComparisonMetrics::edpImprovement)).c_str(),
                pct(meanOf(ad_vs_sync,
                           &ComparisonMetrics::epiReduction)).c_str(),
                pct(meanOf(ad_vs_sync,
                           &ComparisonMetrics::perfDegradation)).c_str());
    std::printf("Inherent MCD degradation (baseline MCD vs synchronous): "
                "%s (paper: ~1.3%%, <2%%)\n",
                pct(meanOf(mcd_vs_sync,
                           &ComparisonMetrics::perfDegradation)).c_str());

    double ad_edp = meanOf(ad.vsMcd, &ComparisonMetrics::edpImprovement);
    double d1_edp =
        meanOf(dyn1.vsMcd, &ComparisonMetrics::edpImprovement);
    if (d1_edp > 0.0) {
        std::printf("Attack/Decay achieves %s of the Dynamic-1%% EDP "
                    "improvement (paper: 85.5%%)\n",
                    pct(ad_edp / d1_edp).c_str());
    }
    reportStoreStats();
    return 0;
}
