/**
 * @file
 * Regenerates Table 3 of the paper: gate-count estimates for the
 * hardware needed to implement the Attack/Decay algorithm, plus the
 * derived per-domain total (476 gates) and the "fewer than 2,500 gates
 * for a four-domain MCD processor" claim.
 */

#include <cstdio>

#include "control/gate_estimator.hh"
#include "harness/table.hh"

int
main()
{
    mcd::GateEstimator estimator;

    mcd::TextTable table(
        "Table 3: hardware resources for the Attack/Decay algorithm");
    table.setHeader({"Component", "Estimation", "Equivalent Gates"});
    for (const auto &row : estimator.rows()) {
        table.addRow({row.component, row.estimation,
                      std::to_string(row.gates)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("per controlled domain: %d gates (paper: 476)\n",
                estimator.gatesPerDomain());
    std::printf("shared interval counter: %d gates (paper: 112)\n",
                estimator.sharedGates());
    std::printf("three controlled domains + shared: %d gates\n",
                estimator.totalGates(3));
    std::printf("four domains + shared: %d gates "
                "(paper: fewer than 2,500)\n",
                estimator.totalGates(4));
    return 0;
}
