/**
 * @file
 * Ablation: front-end frequency scaling.
 *
 * Section 3 of the paper: "decreasing the frequency of the front end
 * causes a nearly linear performance degradation. For this reason, the
 * results presented are with the front end frequency fixed at 1.0 GHz",
 * and Section 7 names effective front-end scaling as future work.
 *
 * Part 1 pins the front end at a sequence of fixed frequencies and
 * measures the degradation, checking the near-linearity claim.
 * Part 2 runs the future-work extension: Attack/Decay applied to the
 * front end as well, with ROB occupancy as its queue signal.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

/** Pins the front end; back-end domains stay at maximum. */
class PinnedFrontEndController : public FrequencyController
{
  public:
    explicit PinnedFrontEndController(Hertz fe_freq)
        : fe_freq_(fe_freq)
    {
    }

    void
    onStart(ClockSystem &clocks) override
    {
        clocks.clock(DomainId::FrontEnd).setFrequencyImmediate(
            fe_freq_);
        for (int slot = 0; slot < NUM_CONTROLLED; ++slot)
            clocks.clock(controlledDomainId(slot))
                .setFrequencyImmediate(clocks.dvfs().config().freqMax);
    }

    void
    onInterval(const IntervalStats &stats, ClockSystem &clocks) override
    {
        (void)stats;
        (void)clocks;
    }

  private:
    Hertz fe_freq_;
};

/**
 * This ablation's controller is not part of the library: registering
 * it here is the extension path the registry exists for — one
 * registration and the spec-driven batch helpers (and mcd_cli, were
 * this registered in the library) can drive it.
 */
void
registerPinnedFrontEnd()
{
    ControllerRegistry::instance().add(
        "pinned_frontend",
        "front end pinned to `freq` (Hz); back end at maximum",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, {"freq"});
            auto it = spec.params.find("freq");
            if (it == spec.params.end())
                mcd_fatal("controller 'pinned_frontend' requires a "
                          "'freq' parameter (Hz)");
            return std::make_unique<PinnedFrontEndController>(
                it->second);
        });
}

ControllerSpec
pinnedFrontEndSpec(Hertz fe_freq)
{
    ControllerSpec spec;
    spec.name = "pinned_frontend";
    spec.params["freq"] = fe_freq;
    return spec;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: front-end frequency scaling ===\n");
    registerPinnedFrontEnd();
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    auto baselines = computeBaselines(runner, names);

    TextTable part1("Part 1: fixed front-end frequency "
                    "(back end at maximum), vs baseline MCD");
    part1.setHeader({"front-end freq", "freq cut", "perf degradation",
                     "deg / cut (1.0 = perfectly linear)"});
    for (Hertz fe : {0.9e9, 0.8e9, 0.7e9, 0.6e9}) {
        std::fprintf(stderr, "  front end at %.1f GHz\n", fe / 1e9);
        auto stats = runVariant(runner, names, pinnedFrontEndSpec(fe),
                                ClockMode::Mcd, config.dvfs.freqMax);
        std::vector<ComparisonMetrics> vs_mcd;
        for (std::size_t i = 0; i < names.size(); ++i)
            vs_mcd.push_back(compare(baselines.mcd.at(names[i]),
                                     stats[i]));
        double cut = 1.0e9 / fe - 1.0;
        double deg =
            meanOf(vs_mcd, &ComparisonMetrics::perfDegradation);
        part1.addRow({ghz(fe, 1), pct(cut), pct(deg),
                      num(deg / cut, 2)});
    }
    std::printf("%s\n", part1.render().c_str());
    std::printf("paper claim: front-end slowdown causes nearly linear "
                "degradation.\nIn this model the ratio approaches 1.0 "
                "only for applications whose IPC\napproaches the fetch "
                "bandwidth; memory-bound applications barely notice\n"
                "(see EXPERIMENTS.md for the deviation discussion).\n\n");

    TextTable part2("Part 2: Attack/Decay with and without the "
                    "front-end extension, vs baseline MCD");
    part2.setHeader({"controller", "perf degradation", "energy savings",
                     "EDP improvement"});
    {
        std::fprintf(stderr, "  A/D variants on %zu benchmarks\n",
                     names.size());
        auto ad_stats = runVariant(runner, names,
                                   attackDecaySpec(scaledAttackDecay()));
        auto fe_stats = runVariant(
            runner, names,
            attackDecaySpec(scaledAttackDecay(),
                            "frontend_attack_decay"),
            ClockMode::Mcd, config.dvfs.freqMax);
        std::vector<ComparisonMetrics> plain, extended;
        for (std::size_t i = 0; i < names.size(); ++i) {
            const SimStats &base = baselines.mcd.at(names[i]);
            plain.push_back(compare(base, ad_stats[i]));
            extended.push_back(compare(base, fe_stats[i]));
        }
        auto row = [&part2](const char *name,
                            const std::vector<ComparisonMetrics> &all) {
            part2.addRow(
                {name,
                 pct(meanOf(all, &ComparisonMetrics::perfDegradation)),
                 pct(meanOf(all, &ComparisonMetrics::energySavings)),
                 pct(meanOf(all, &ComparisonMetrics::edpImprovement))});
        };
        row("Attack/Decay (front end fixed, paper)", plain);
        row("Attack/Decay + front-end scaling (future work)", extended);
    }
    std::printf("%s", part2.render().c_str());
    reportStoreStats();
    return 0;
}
