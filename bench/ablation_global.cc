/**
 * @file
 * Ablation: the two readings of "global frequency/voltage scaling to
 * achieve the performance degradation of the respective algorithms"
 * (Table 6's Global rows):
 *  - frequency-matched (used in our Table 6): the synchronous chip is
 *    slowed by the target factor, f = f_max / (1 + deg);
 *  - time-matched: a search finds the frequency whose measured run time
 *    equals the target, which lets memory-bound applications cut
 *    frequency far deeper.
 * The paper's ratio-of-2 analysis corresponds to the first reading;
 * the second is shown for completeness.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"
#include "harness/metrics.hh"
#include "harness/parallel_sweep.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Ablation: global-DVFS matching interpretation "
                "===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    const double target_deg = 0.032; // the paper's A/D degradation

    TextTable table("global scaling at a 3.2% degradation target, "
                    "vs fully synchronous");
    table.setHeader({"benchmark", "freq-matched f", "deg", "savings",
                     "time-matched f", "deg", "savings"});

    struct Row
    {
        SimStats sync;
        GlobalResult fm;
        GlobalResult tm;
    };
    ParallelSweep sweep(config.jobs);
    std::fprintf(stderr, "  running %zu benchmarks on %d workers\n",
                 names.size(), sweep.workers());

    // The synchronous reference and the frequency-matched point are
    // plain declarative runs (the matched frequency is a closed-form
    // function of the target); only the time-matched search needs the
    // adaptive Runner driver.
    auto sync_stats = runVariant(runner, names, ControllerSpec{},
                                 ClockMode::Synchronous,
                                 config.dvfs.freqMax);
    const Hertz fm_freq = runner.globalMatchedFrequency(target_deg);
    auto fm_stats = runVariant(runner, names, ControllerSpec{},
                               ClockMode::Synchronous, fm_freq);
    auto rows = sweep.map<Row>(names.size(), [&](std::size_t i) {
        Runner local(benchmarkConfig(config, i));
        Row row;
        row.sync = sync_stats[i];
        row.fm = GlobalResult{fm_stats[i], fm_freq};
        Tick target_time = static_cast<Tick>(
            static_cast<double>(row.sync.time) * (1.0 + target_deg));
        row.tm = local.runGlobalMatching(names[i], target_time);
        return row;
    });

    std::vector<ComparisonMetrics> fm_all, tm_all;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Row &row = rows[i];
        ComparisonMetrics m_fm = compare(row.sync, row.fm.stats);
        ComparisonMetrics m_tm = compare(row.sync, row.tm.stats);
        fm_all.push_back(m_fm);
        tm_all.push_back(m_tm);
        table.addRow({names[i], ghz(row.fm.freq),
                      pct(m_fm.perfDegradation),
                      pct(m_fm.energySavings), ghz(row.tm.freq),
                      pct(m_tm.perfDegradation),
                      pct(m_tm.energySavings)});
    }
    table.addRow({"average", "",
                  pct(meanOf(fm_all,
                             &ComparisonMetrics::perfDegradation)),
                  pct(meanOf(fm_all, &ComparisonMetrics::energySavings)),
                  "",
                  pct(meanOf(tm_all,
                             &ComparisonMetrics::perfDegradation)),
                  pct(meanOf(tm_all,
                             &ComparisonMetrics::energySavings))});
    std::printf("%s", table.render().c_str());
    std::printf("\nfreq-matched power/perf ratio: %.2f (paper: ~2)\n",
                powerPerfRatio(fm_all));
    std::printf("time-matched power/perf ratio: %.2f (higher for "
                "memory-bound apps)\n", powerPerfRatio(tm_all));
    reportStoreStats();
    return 0;
}
