/**
 * @file
 * Regenerates Figure 7 of the paper: sensitivity of the power-savings
 * to performance-degradation ratio (relative to the baseline MCD
 * processor) to the same three parameters as Figure 6:
 *   (a) DecayPercent            (config 1.500_04.0_X.XXX_3.0)
 *   (b) ReactionChangePercent   (config 1.500_XX.X_0.750_3.0)
 *   (c) DeviationThresholdPercent (config X.XXX_06.0_0.175_2.5)
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

void
sweep(Runner &runner, const std::vector<std::string> &names,
      const SweepBaselines &baselines, const char *title,
      const std::vector<double> &values,
      AttackDecayConfig (*make)(double))
{
    TextTable table(title);
    table.setHeader({"parameter", "power/perf ratio (vs MCD)"});
    for (double v : values) {
        std::fprintf(stderr, "  sweep %s = %.3f%%\n", title, v * 100);
        SweepPoint p =
            runSweepPoint(runner, names, baselines, make(v), v);
        table.addRow({pct(v, 3), num(p.powerPerfRatio, 2)});
    }
    std::printf("%s\ncsv:\n%s\n", table.render().c_str(),
                table.csv().c_str());
}

} // namespace

int
main()
{
    std::printf("=== Figure 7: Attack/Decay sensitivity analysis, "
                "power/performance ratio ===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    auto baselines = computeBaselines(runner, names);

    sweep(runner, names, baselines,
          "Figure 7(a): DecayPercent sensitivity (1.500_04.0_X.XXX_3.0)",
          {0.0005, 0.00175, 0.005, 0.0075, 0.010, 0.015, 0.020},
          [](double v) {
              AttackDecayConfig adc;
              adc.deviationThreshold = 0.015;
              adc.reactionChange = 0.04;
              adc.decay = v;
              adc.perfDegThreshold = 0.03;
              return adc;
          });

    sweep(runner, names, baselines,
          "Figure 7(b): ReactionChange sensitivity "
          "(1.500_XX.X_0.750_3.0)",
          {0.005, 0.02, 0.04, 0.06, 0.09, 0.12, 0.155},
          [](double v) {
              AttackDecayConfig adc;
              adc.deviationThreshold = 0.015;
              adc.reactionChange = v;
              adc.decay = 0.0075;
              adc.perfDegThreshold = 0.03;
              return adc;
          });

    sweep(runner, names, baselines,
          "Figure 7(c): DeviationThreshold sensitivity "
          "(X.XXX_06.0_0.175_2.5)",
          {0.0, 0.005, 0.0075, 0.0125, 0.0175, 0.025},
          [](double v) {
              AttackDecayConfig adc;
              adc.deviationThreshold = v;
              adc.reactionChange = 0.06;
              adc.decay = 0.00175;
              adc.perfDegThreshold = 0.025;
              return adc;
          });

    std::printf("paper shape: the ratio stays in the 3.5-4.6 band over "
                "a broad middle range of each parameter.\n");
    reportStoreStats();
    return 0;
}
