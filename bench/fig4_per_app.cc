/**
 * @file
 * Regenerates Figure 4 of the paper: per-application (a) performance
 * degradation, (b) energy savings, and (c) energy-delay-product
 * improvement for the baseline MCD processor, Dynamic-1%, Dynamic-5%,
 * and Attack/Decay — all relative to the fully synchronous processor.
 * Each sub-figure is printed as one CSV-style series block plus an
 * aligned table, ending with the cross-application average (the
 * rightmost point of each paper plot).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

using namespace mcd;
using namespace mcd::bench;

namespace
{

void
printSeries(const char *title,
            const std::vector<BenchResults> &all,
            double ComparisonMetrics::*field)
{
    TextTable table(title);
    table.setHeader({"benchmark", "Baseline MCD", "Dynamic-1%",
                     "Dynamic-5%", "Attack/Decay"});

    std::vector<ComparisonMetrics> base_all, d1_all, d5_all, ad_all;
    for (const auto &r : all) {
        ComparisonMetrics base = compare(r.sync, r.mcdBase);
        ComparisonMetrics d1 = compare(r.sync, r.dynamic1.stats);
        ComparisonMetrics d5 = compare(r.sync, r.dynamic5.stats);
        ComparisonMetrics ad = compare(r.sync, r.attackDecay);
        base_all.push_back(base);
        d1_all.push_back(d1);
        d5_all.push_back(d5);
        ad_all.push_back(ad);
        table.addRow({r.name, pct(base.*field), pct(d1.*field),
                      pct(d5.*field), pct(ad.*field)});
    }
    table.addRow({"average",
                  pct(meanOf(base_all, field)),
                  pct(meanOf(d1_all, field)),
                  pct(meanOf(d5_all, field)),
                  pct(meanOf(ad_all, field))});
    std::printf("%s\n", table.render().c_str());
    std::printf("csv:\n%s\n", table.csv().c_str());
}

} // namespace

int
main()
{
    std::printf("=== Figure 4: per-application results relative to a "
                "fully synchronous processor ===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = selectedBenchmarks();
    ComputeOptions options;
    options.globals = false; // Figure 4 has no Global(...) series
    auto all = computeAll(runner, names, options);

    printSeries("Figure 4(a): Performance Degradation", all,
                &ComparisonMetrics::perfDegradation);
    printSeries("Figure 4(b): Energy Savings", all,
                &ComparisonMetrics::energySavings);
    printSeries("Figure 4(c): Energy-Delay Product Improvement", all,
                &ComparisonMetrics::edpImprovement);
    reportStoreStats();
    return 0;
}
