/**
 * @file
 * Ablation: Listing 1's literal PerfDegThreshold guard vs the prose
 * semantics (Section 3.1 text). Read literally, lines 19/25 permit a
 * frequency decrease only when `PrevIPC/IPC >= threshold`; the prose
 * says a decrease must be *blocked* when the IPC degradation exceeds
 * the threshold. This bench quantifies the difference (DESIGN.md,
 * substitution 6). A third column disables the guard entirely.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Ablation: PerfDegThreshold guard semantics ===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    auto baselines = computeBaselines(runner, names);

    struct Variant
    {
        const char *name;
        AttackDecayConfig adc;
    };
    std::vector<Variant> variants;

    AttackDecayConfig prose = scaledAttackDecay();
    variants.push_back({"prose guard (default)", prose});

    AttackDecayConfig literal = scaledAttackDecay();
    literal.literalListingGuard = true;
    variants.push_back({"literal Listing 1 guard", literal});

    AttackDecayConfig unguarded = scaledAttackDecay();
    unguarded.perfDegThreshold = 1e9; // never blocks
    variants.push_back({"guard disabled", unguarded});

    TextTable table("guard semantics, all metrics vs baseline MCD");
    table.setHeader({"variant", "perf degradation", "energy savings",
                     "EDP improvement", "power/perf ratio"});
    for (const auto &v : variants) {
        std::fprintf(stderr, "  variant: %s\n", v.name);
        auto stats = runVariant(runner, names, attackDecaySpec(v.adc));
        std::vector<ComparisonMetrics> vs_mcd;
        for (std::size_t i = 0; i < names.size(); ++i)
            vs_mcd.push_back(compare(baselines.mcd.at(names[i]),
                                     stats[i]));
        table.addRow({v.name,
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::perfDegradation)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::energySavings)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::edpImprovement)),
                      num(powerPerfRatio(vs_mcd), 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexpected: the literal guard rarely permits decreases "
                "after quiet intervals, giving up most of the energy "
                "savings;\nthe prose guard matches the paper's "
                "description of catching natural IPC drops.\n");
    reportStoreStats();
    return 0;
}
