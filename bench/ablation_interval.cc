/**
 * @file
 * Ablation: control-interval length. The paper chose 10,000
 * instructions (about 10x the control-loop delay); our scaled runs
 * default to 1,000 so the number of control epochs matches the paper's
 * (DESIGN.md, substitution 4). This bench sweeps the interval to show
 * the algorithm's behavior is stable across epoch sizes once there are
 * enough epochs, and that epochs shorter than the loop delay hurt.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Ablation: control interval length ===\n");
    RunnerConfig base_config = standardConfig();
    printMethodology(base_config);

    auto names = sweepBenchmarks();

    TextTable table("interval sweep, Attack/Decay vs baseline MCD "
                    "(same interval in both)");
    table.setHeader({"interval (insts)", "epochs/run",
                     "perf degradation", "energy savings",
                     "EDP improvement"});

    for (int interval : {100, 250, 500, 1000, 2500, 10000}) {
        std::fprintf(stderr, "  interval = %d\n", interval);
        RunnerConfig config = base_config;
        config.intervalInstructions = interval;
        Runner runner(config);

        // Baseline and A/D run of one benchmark share the derived
        // seed (same index in both batches), keeping them comparable.
        ControllerSpec profiling;
        profiling.name = "profiling";
        auto mcd_base = runVariant(runner, names, profiling);
        auto ad_stats = runVariant(runner, names,
                                   attackDecaySpec(scaledAttackDecay()));
        std::vector<ComparisonMetrics> vs_mcd;
        for (std::size_t i = 0; i < names.size(); ++i)
            vs_mcd.push_back(compare(mcd_base[i], ad_stats[i]));
        table.addRow({std::to_string(interval),
                      std::to_string(config.instructions /
                                     static_cast<std::uint64_t>(
                                         interval)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::perfDegradation)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::energySavings)),
                      pct(meanOf(vs_mcd,
                                 &ComparisonMetrics::edpImprovement))});
    }
    std::printf("%s", table.render().c_str());
    reportStoreStats();
    return 0;
}
