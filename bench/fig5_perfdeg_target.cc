/**
 * @file
 * Regenerates Figure 5 of the paper: (a) achieved performance
 * degradation versus the performance-degradation target
 * (PerfDegThreshold sweep, configuration 1.000_06.0_1.250_X.X), with
 * the ideal y = x line for reference, and (b) energy-delay-product
 * improvement versus the target. Degradations are measured against the
 * fully synchronous processor, i.e. they include the inherent MCD
 * offset, exactly as the paper's Figure 5(a) caption states.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Figure 5: performance degradation target analysis "
                "(config 1.000_06.0_1.250_X.X) ===\n");
    RunnerConfig config = standardConfig();
    printMethodology(config);
    Runner runner(config);

    auto names = sweepBenchmarks();
    auto baselines = computeBaselines(runner, names);

    std::vector<double> targets = {0.00, 0.02, 0.04, 0.06,
                                   0.08, 0.10, 0.12};
    std::vector<SweepPoint> points;
    for (double target : targets) {
        AttackDecayConfig adc;
        adc.deviationThreshold = 0.01;  // 1.000
        adc.reactionChange = 0.06;      // 06.0
        adc.decay = 0.0125;             // 1.250
        adc.perfDegThreshold = target;  // X.X
        std::fprintf(stderr, "  sweep target %.0f%%\n", target * 100);
        points.push_back(
            runSweepPoint(runner, names, baselines, adc, target));
    }

    TextTable table("Figure 5(a)/(b): achieved degradation and EDP "
                    "improvement vs target");
    table.setHeader({"target", "achieved deg (vs sync)", "ideal",
                     "EDP improvement (vs sync)"});
    for (const auto &p : points) {
        table.addRow({pct(p.parameter, 0),
                      pct(p.perfDegradationVsSync),
                      pct(p.parameter, 0),
                      pct(p.edpImprovementVsSync)});
    }
    std::printf("%s\ncsv:\n%s", table.render().c_str(),
                table.csv().c_str());
    std::printf("\npaper shape: achieved tracks the ideal line over the "
                "4-10%% range;\nEDP improvement flattens then declines "
                "past a ~9%% target.\n");
    reportStoreStats();
    return 0;
}
