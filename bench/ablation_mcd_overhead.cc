/**
 * @file
 * Ablation: the inherent cost of the MCD microarchitecture itself
 * (Section 2: less than 2 % performance degradation with the improved
 * clocking scheme; Section 4: +2.9 % total energy from the multiple-PLL
 * clock subsystem). Sweeps the synchronization window and toggles
 * jitter, comparing the baseline MCD machine against the fully
 * synchronous machine at the same 1 GHz.
 */

#include <cstdio>
#include <vector>

#include "sweep_util.hh"
#include "harness/metrics.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Ablation: inherent MCD overheads vs the fully "
                "synchronous processor ===\n");
    RunnerConfig base_config = standardConfig();
    printMethodology(base_config);

    auto names = sweepBenchmarks();

    struct Case
    {
        const char *name;
        double windowFraction;
        bool jitter;
    };
    std::vector<Case> cases = {
        {"window 300 ps, jitter on (paper)", 0.30, true},
        {"window 300 ps, jitter off", 0.30, false},
        {"window 150 ps, jitter on", 0.15, true},
        {"window 600 ps, jitter on", 0.60, true},
        {"window 0 (free sync), jitter on", 0.0, true},
    };

    TextTable table("baseline MCD vs synchronous, averaged over apps");
    table.setHeader({"configuration", "perf degradation",
                     "energy increase (EPI)"});
    for (const auto &c : cases) {
        std::fprintf(stderr, "  case: %s\n", c.name);
        RunnerConfig config = base_config;
        config.dvfs.syncWindowFraction = c.windowFraction;
        config.jitter = c.jitter;
        Runner runner(config);

        auto sync_stats = runVariant(runner, names, ControllerSpec{},
                                     ClockMode::Synchronous,
                                     config.dvfs.freqMax);
        ControllerSpec profiling;
        profiling.name = "profiling";
        auto mcd_stats = runVariant(runner, names, profiling);
        std::vector<ComparisonMetrics> vs_sync;
        for (std::size_t i = 0; i < names.size(); ++i)
            vs_sync.push_back(compare(sync_stats[i], mcd_stats[i]));
        table.addRow({c.name,
                      pct(meanOf(vs_sync,
                                 &ComparisonMetrics::perfDegradation)),
                      pct(-meanOf(vs_sync,
                                  &ComparisonMetrics::epiReduction))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\npaper: <2%% inherent degradation (1.3%% average) and "
                "+2.9%% total energy from the MCD clock subsystem.\n");
    reportStoreStats();
    return 0;
}
