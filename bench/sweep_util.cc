#include "sweep_util.hh"

#include <cstdio>
#include <cstdlib>

#include "harness/parallel_sweep.hh"

namespace mcd::bench
{

std::vector<std::string>
sweepBenchmarks()
{
    if (std::getenv("MCD_BENCHMARKS"))
        return selectedBenchmarks();
    // A representative mix: media, pointer-chasing, memory-bound,
    // compute-bound integer and floating point.
    return {"adpcm", "epic", "jpeg", "bh", "em3d", "health",
            "power", "art", "bzip2", "gcc", "mcf", "swim"};
}

std::vector<SimStats>
runPerBenchmark(
    const Runner &runner, const std::vector<std::string> &names,
    const std::function<SimStats(Runner &, const std::string &)>
        &measure)
{
    ParallelSweep sweep(runner.config().jobs);
    return sweep.map<SimStats>(names.size(), [&](std::size_t i) {
        Runner local(benchmarkConfig(runner.config(), i));
        return measure(local, names[i]);
    });
}

SweepBaselines
computeBaselines(Runner &runner, const std::vector<std::string> &names)
{
    // Both baseline batches derive benchmark i's seed from i
    // (benchmarkConfig), exactly like the Attack/Decay batches of
    // every sweep point, so each comparison consumes one clock stream
    // end to end.
    std::fprintf(stderr, "  running %zu baselines on %d workers ...",
                 2 * names.size(),
                 ParallelSweep(runner.config().jobs).workers());
    std::fflush(stderr);
    auto mcd = runPerBenchmark(
        runner, names, [](Runner &r, const std::string &name) {
            return r.runMcdBaseline(name);
        });
    auto sync = runPerBenchmark(
        runner, names, [](Runner &r, const std::string &name) {
            return r.runSynchronous(name, r.config().dvfs.freqMax);
        });
    std::fprintf(stderr, " done\n");

    SweepBaselines baselines;
    for (std::size_t i = 0; i < names.size(); ++i) {
        baselines.mcd[names[i]] = mcd[i];
        baselines.sync[names[i]] = sync[i];
    }
    return baselines;
}

SweepPoint
runSweepPoint(Runner &runner, const std::vector<std::string> &names,
              const SweepBaselines &baselines,
              const AttackDecayConfig &adc, double parameter)
{
    auto results = runPerBenchmark(
        runner, names, [&adc](Runner &r, const std::string &name) {
            return r.runAttackDecay(name, adc);
        });

    // Aggregate strictly in benchmark order on the collected batch, so
    // the floating-point sums never depend on completion order.
    std::vector<ComparisonMetrics> vs_mcd;
    std::vector<ComparisonMetrics> vs_sync;
    for (std::size_t i = 0; i < names.size(); ++i) {
        vs_mcd.push_back(compare(baselines.mcd.at(names[i]),
                                 results[i]));
        vs_sync.push_back(compare(baselines.sync.at(names[i]),
                                  results[i]));
    }

    SweepPoint point;
    point.parameter = parameter;
    point.edpImprovementVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::edpImprovement);
    point.powerPerfRatio = powerPerfRatio(vs_mcd);
    point.perfDegradationVsSync =
        meanOf(vs_sync, &ComparisonMetrics::perfDegradation);
    point.edpImprovementVsSync =
        meanOf(vs_sync, &ComparisonMetrics::edpImprovement);
    point.energySavingsVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::energySavings);
    return point;
}

} // namespace mcd::bench
