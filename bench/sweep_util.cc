#include "sweep_util.hh"

#include <cstdio>
#include <cstdlib>

#include "harness/parallel_sweep.hh"

namespace mcd::bench
{

std::vector<std::string>
sweepBenchmarks()
{
    if (std::getenv("MCD_BENCHMARKS"))
        return selectedBenchmarks();
    // A representative mix: media, pointer-chasing, memory-bound,
    // compute-bound integer and floating point.
    return {"adpcm", "epic", "jpeg", "bh", "em3d", "health",
            "power", "art", "bzip2", "gcc", "mcf", "swim"};
}

std::vector<ExperimentSpec>
seedMatchedSpecs(const RunnerConfig &base,
                 const std::vector<std::string> &names,
                 const ControllerSpec &controller, ClockMode mode,
                 Hertz startFreq)
{
    std::vector<ExperimentSpec> specs;
    specs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        specs.push_back(makeSpec(benchmarkConfig(base, i), names[i],
                                 controller, mode, startFreq));
    return specs;
}

std::vector<SimStats>
runVariant(const Runner &runner, const std::vector<std::string> &names,
           const ControllerSpec &controller, ClockMode mode,
           Hertz startFreq)
{
    return runExperiments(
        seedMatchedSpecs(runner.config(), names, controller, mode,
                         startFreq),
        runner.config().jobs);
}

SweepBaselines
computeBaselines(Runner &runner, const std::vector<std::string> &names)
{
    // Both baseline batches derive benchmark i's seed from i
    // (benchmarkConfig), exactly like the variant batches of every
    // sweep point, so each comparison consumes one clock stream end to
    // end. The cache makes re-requesting these baselines — by a later
    // sweep, or by another figure's worth of experiments in the same
    // process — free.
    std::fprintf(stderr, "  running %zu baselines on %d workers ...",
                 2 * names.size(),
                 ParallelSweep(runner.config().jobs).workers());
    std::fflush(stderr);
    ControllerSpec profiling;
    profiling.name = "profiling";
    auto mcd = runVariant(runner, names, profiling);
    auto sync = runVariant(runner, names, ControllerSpec{},
                           ClockMode::Synchronous);
    std::fprintf(stderr, " done\n");

    SweepBaselines baselines;
    for (std::size_t i = 0; i < names.size(); ++i) {
        baselines.mcd[names[i]] = mcd[i];
        baselines.sync[names[i]] = sync[i];
    }
    return baselines;
}

SweepPoint
runSweepPoint(Runner &runner, const std::vector<std::string> &names,
              const SweepBaselines &baselines,
              const AttackDecayConfig &adc, double parameter)
{
    auto results =
        runVariant(runner, names, attackDecaySpec(adc));

    // Aggregate strictly in benchmark order on the collected batch, so
    // the floating-point sums never depend on completion order.
    std::vector<ComparisonMetrics> vs_mcd;
    std::vector<ComparisonMetrics> vs_sync;
    for (std::size_t i = 0; i < names.size(); ++i) {
        vs_mcd.push_back(compare(baselines.mcd.at(names[i]),
                                 results[i]));
        vs_sync.push_back(compare(baselines.sync.at(names[i]),
                                  results[i]));
    }

    SweepPoint point;
    point.parameter = parameter;
    point.edpImprovementVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::edpImprovement);
    point.powerPerfRatio = powerPerfRatio(vs_mcd);
    point.perfDegradationVsSync =
        meanOf(vs_sync, &ComparisonMetrics::perfDegradation);
    point.edpImprovementVsSync =
        meanOf(vs_sync, &ComparisonMetrics::edpImprovement);
    point.energySavingsVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::energySavings);
    return point;
}

} // namespace mcd::bench
