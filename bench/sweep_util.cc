#include "sweep_util.hh"

#include <cstdio>
#include <cstdlib>

namespace mcd::bench
{

std::vector<std::string>
sweepBenchmarks()
{
    if (std::getenv("MCD_BENCHMARKS"))
        return selectedBenchmarks();
    // A representative mix: media, pointer-chasing, memory-bound,
    // compute-bound integer and floating point.
    return {"adpcm", "epic", "jpeg", "bh", "em3d", "health",
            "power", "art", "bzip2", "gcc", "mcf", "swim"};
}

SweepBaselines
computeBaselines(Runner &runner, const std::vector<std::string> &names)
{
    SweepBaselines baselines;
    for (const auto &name : names) {
        std::fprintf(stderr, "  baseline %-12s ...", name.c_str());
        std::fflush(stderr);
        baselines.mcd[name] = runner.runMcdBaseline(name);
        baselines.sync[name] = runner.runSynchronous(
            name, runner.config().dvfs.freqMax);
        std::fprintf(stderr, " done\n");
    }
    return baselines;
}

SweepPoint
runSweepPoint(Runner &runner, const std::vector<std::string> &names,
              const SweepBaselines &baselines,
              const AttackDecayConfig &adc, double parameter)
{
    std::vector<ComparisonMetrics> vs_mcd;
    std::vector<ComparisonMetrics> vs_sync;
    for (const auto &name : names) {
        SimStats stats = runner.runAttackDecay(name, adc);
        vs_mcd.push_back(compare(baselines.mcd.at(name), stats));
        vs_sync.push_back(compare(baselines.sync.at(name), stats));
    }

    SweepPoint point;
    point.parameter = parameter;
    point.edpImprovementVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::edpImprovement);
    point.powerPerfRatio = powerPerfRatio(vs_mcd);
    point.perfDegradationVsSync =
        meanOf(vs_sync, &ComparisonMetrics::perfDegradation);
    point.edpImprovementVsSync =
        meanOf(vs_sync, &ComparisonMetrics::edpImprovement);
    point.energySavingsVsMcd =
        meanOf(vs_mcd, &ComparisonMetrics::energySavings);
    return point;
}

} // namespace mcd::bench
