/**
 * @file
 * Regenerates Figure 3 of the paper: (a) floating-point issue queue
 * utilization and (b) the floating-point domain frequency chosen by the
 * Attack/Decay algorithm, over the run of `epic` (decode). The paper's
 * signature shape: the FP domain is unused except for two distinct
 * phases; frequency decays while unused and attacks upward when the
 * phases begin.
 *
 * The paper plots 0-6.7M instructions with 10k-instruction intervals
 * (~670 samples). Our scaled run keeps the same number of control
 * epochs; the instruction axis is proportionally compressed.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "harness/metrics.hh"

using namespace mcd;
using namespace mcd::bench;

int
main()
{
    std::printf("=== Figure 3: floating-point domain statistics for "
                "epic decode ===\n");
    RunnerConfig config = standardConfig();
    config.warmup = 0; // the figure starts at instruction 0
    printMethodology(config);
    Runner runner(config);

    struct Sample
    {
        std::uint64_t instructions;
        double fiqUtilization;
        double fpFreq;
    };
    std::vector<Sample> samples;

    std::uint64_t insns = 0;
    runner.runAttackDecay("epic", scaledAttackDecay(),
                          [&](const IntervalStats &stats) {
                              insns += stats.instructions;
                              samples.push_back(
                                  {insns,
                                   stats.domains[CTL_FP].queueUtilization,
                                   stats.domains[CTL_FP].frequency});
                          });

    std::printf("instructions,fiq_utilization,fp_freq_ghz\n");
    for (const auto &s : samples) {
        std::printf("%llu,%.3f,%.4f\n",
                    static_cast<unsigned long long>(s.instructions),
                    s.fiqUtilization, s.fpFreq / 1e9);
    }

    // Compact ASCII rendition of Figure 3(b).
    std::printf("\nFigure 3(b) sketch (each row = 1/40 of the run; "
                "# bar = FP frequency 0.25-1.0 GHz, u = utilization):\n");
    std::size_t stride = samples.size() / 40 + 1;
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        double f = samples[i].fpFreq / 1e9;
        int bar = static_cast<int>((f - 0.25) / 0.75 * 50.0 + 0.5);
        std::printf("%9llu |%-50s| %.2f GHz  u=%.2f\n",
                    static_cast<unsigned long long>(
                        samples[i].instructions),
                    std::string(static_cast<std::size_t>(
                                    std::max(bar, 0)), '#')
                        .c_str(),
                    f, samples[i].fiqUtilization);
    }
    return 0;
}
