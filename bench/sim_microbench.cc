/**
 * @file
 * google-benchmark microbenchmarks of the simulator's building blocks:
 * raw simulation throughput per machine mode, clock-edge generation,
 * cache access, branch prediction, and workload generation. These guard
 * against performance regressions in the hot paths that every
 * experiment binary depends on.
 */

#include <benchmark/benchmark.h>

#include "clock/domain_clock.hh"
#include "control/attack_decay.hh"
#include "core/simulator.hh"
#include "memory/cache.hh"
#include "predictor/branch_predictor.hh"
#include "workload/benchmark_factory.hh"

namespace
{

using namespace mcd;

void
BM_SimulatorMcd(benchmark::State &state)
{
    auto workload = BenchmarkFactory::create("gsm", 1u << 22);
    SimConfig config;
    Simulator sim(config, *workload);
    for (auto _ : state)
        sim.run(1000);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(sim.committed()));
}
BENCHMARK(BM_SimulatorMcd)->Unit(benchmark::kMillisecond);

void
BM_SimulatorMcdAttackDecay(benchmark::State &state)
{
    auto workload = BenchmarkFactory::create("gsm", 1u << 22);
    SimConfig config;
    config.core.intervalInstructions = 1000;
    AttackDecayController controller;
    Simulator sim(config, *workload, &controller);
    for (auto _ : state)
        sim.run(1000);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(sim.committed()));
}
BENCHMARK(BM_SimulatorMcdAttackDecay)->Unit(benchmark::kMillisecond);

void
BM_SimulatorSynchronous(benchmark::State &state)
{
    auto workload = BenchmarkFactory::create("gsm", 1u << 22);
    SimConfig config;
    config.clocks.mode = ClockMode::Synchronous;
    Simulator sim(config, *workload);
    for (auto _ : state)
        sim.run(1000);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(sim.committed()));
}
BENCHMARK(BM_SimulatorSynchronous)->Unit(benchmark::kMillisecond);

void
BM_ClockEdges(benchmark::State &state)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(clock.advance());
}
BENCHMARK(BM_ClockEdges);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{"l1", 64 * 1024, 2, 64});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 4096 + 64; // mixes hits and misses across sets
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bpred;
    std::uint64_t pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bpred.predict(pc, false, false, pc + 4));
        bpred.update(pc, taken, pc + 64, false, false);
        pc = (pc + 16) & 0xffff;
        taken = !taken;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = BenchmarkFactory::create("gcc", 1u << 22);
    for (auto _ : state)
        benchmark::DoNotOptimize(workload->next());
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace

BENCHMARK_MAIN();
