/**
 * @file
 * Microbenchmarks of the simulator's building blocks: raw simulation
 * throughput per machine mode, clock-edge generation, cache access,
 * branch prediction, and workload generation. These guard against
 * performance regressions in the hot paths every experiment binary
 * depends on.
 *
 * Self-contained (std::chrono) so it builds everywhere the library
 * does — no google-benchmark dependency. Each benchmark is run in
 * growing batches until the measured time passes `--min-time-ms`
 * (default 200 ms per benchmark), then reported as ns/op and items/s.
 *
 *   sim_microbench [--json] [--min-time-ms <ms>] [--filter <substr>]
 *
 * `--json` emits one machine-readable object per run — CI uploads it
 * as `BENCH_sim.json`, the repo's performance trajectory.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "clock/domain_clock.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "control/attack_decay.hh"
#include "core/simulator.hh"
#include "memory/cache.hh"
#include "predictor/branch_predictor.hh"
#include "telemetry/profiler.hh"
#include "workload/benchmark_factory.hh"

namespace
{

using namespace mcd;

/** Result of one benchmark: total time over `items` processed. */
struct BenchResult
{
    std::string name;
    std::uint64_t iterations = 0; //!< timed batch iterations
    std::uint64_t items = 0;      //!< items processed across batches
    double seconds = 0.0;         //!< measured wall-clock
};

double
nsPerItem(const BenchResult &r)
{
    return r.items > 0 ? r.seconds * 1e9 / static_cast<double>(r.items)
                       : 0.0;
}

double
itemsPerSecond(const BenchResult &r)
{
    return r.seconds > 0.0
        ? static_cast<double>(r.items) / r.seconds : 0.0;
}

/**
 * One registered benchmark: `items` is how many items one call of
 * `batch` processes. State setup happens in the factory closure, so
 * repeated batches reuse warm structures (google-benchmark's loop
 * semantics).
 */
struct Bench
{
    std::string name;
    std::uint64_t itemsPerBatch = 0;
    std::function<void()> batch;
};

BenchResult
run(const Bench &bench, double min_seconds)
{
    using clock = std::chrono::steady_clock;

    // Warm-up batches (untimed): first-touch allocation, cold caches,
    // branch-predictor and frequency-governor settling. Three batches
    // keep the first timed batch indistinguishable from the rest.
    for (int i = 0; i < 3; ++i)
        bench.batch();

    BenchResult result;
    result.name = bench.name;
    auto start = clock::now();
    for (;;) {
        bench.batch();
        ++result.iterations;
        result.items += bench.itemsPerBatch;
        result.seconds =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        if (result.seconds >= min_seconds)
            break;
    }
    return result;
}

std::vector<Bench>
allBenches()
{
    std::vector<Bench> benches;

    auto simBench = [](const std::string &name, ClockMode mode,
                       bool attack_decay) {
        // Shared state across batches: one long-lived simulator that
        // keeps committing instructions from a wrapping workload.
        struct State
        {
            std::unique_ptr<WorkloadGenerator> workload;
            std::unique_ptr<AttackDecayController> controller;
            std::unique_ptr<Simulator> sim;
        };
        auto state = std::make_shared<State>();
        state->workload = BenchmarkFactory::create("gsm", 1u << 22);
        SimConfig config;
        config.clocks.mode = mode;
        if (attack_decay) {
            config.core.intervalInstructions = 1000;
            state->controller =
                std::make_unique<AttackDecayController>();
        }
        state->sim = std::make_unique<Simulator>(
            config, *state->workload, state->controller.get());
        return Bench{name, 1000,
                     [state] { state->sim->run(1000); }};
    };
    benches.push_back(
        simBench("SimulatorMcd", ClockMode::Mcd, false));
    benches.push_back(
        simBench("SimulatorMcdAttackDecay", ClockMode::Mcd, true));
    benches.push_back(simBench("SimulatorSynchronous",
                               ClockMode::Synchronous, false));

    // Checkpoint fast-forward vs cold start. Both cases produce the
    // machine state at `WARMUP` committed instructions and then run
    // the same `MEASURE`-instruction window; items are the measured
    // window, so items/s compares end-to-end cost per measured run and
    // the resume/cold ratio is the fast-forward speedup a warm
    // checkpoint store delivers (the CI gate asserts it stays >= 5x).
    {
        constexpr std::uint64_t WARMUP = 100000;
        constexpr std::uint64_t MEASURE = 10000;
        constexpr std::uint64_t HORIZON = 1u << 22;

        auto makeSim = [](std::unique_ptr<WorkloadGenerator> &workload,
                          std::unique_ptr<Simulator> &sim) {
            workload = BenchmarkFactory::create("gsm", HORIZON);
            SimConfig config;
            sim = std::make_unique<Simulator>(config, *workload);
        };

        benches.push_back(Bench{"CheckpointColdRun", MEASURE, [=] {
            std::unique_ptr<WorkloadGenerator> workload;
            std::unique_ptr<Simulator> sim;
            makeSim(workload, sim);
            sim->run(WARMUP);
            sim->resetMeasurement();
            sim->run(MEASURE);
        }});

        // Snapshot once at setup; each batch restores and runs only
        // the measured window.
        struct Resume
        {
            std::string snapshot;
        };
        auto resume = std::make_shared<Resume>();
        {
            std::unique_ptr<WorkloadGenerator> workload;
            std::unique_ptr<Simulator> sim;
            makeSim(workload, sim);
            sim->run(WARMUP);
            sim->saveCheckpoint(resume->snapshot);
        }
        benches.push_back(Bench{"CheckpointResume", MEASURE, [=] {
            std::unique_ptr<WorkloadGenerator> workload;
            std::unique_ptr<Simulator> sim;
            makeSim(workload, sim);
            serial::Reader in(resume->snapshot);
            if (!sim->restoreCheckpoint(in))
                mcd_fatal("checkpoint restore failed in benchmark");
            sim->resetMeasurement();
            sim->run(MEASURE);
        }});
    }

    {
        struct State
        {
            DvfsModel dvfs;
            DomainClock clock{DomainId::Integer, dvfs, 1.0e9, 42};
            Tick sink = 0;
        };
        auto state = std::make_shared<State>();
        benches.push_back(Bench{"ClockEdges", 1000, [state] {
            for (int i = 0; i < 1000; ++i)
                state->sink += state->clock.advance();
        }});
    }

    {
        struct State
        {
            Cache cache{CacheConfig{"l1", 64 * 1024, 2, 64}};
            std::uint64_t addr = 0;
            std::uint64_t sink = 0;
        };
        auto state = std::make_shared<State>();
        benches.push_back(Bench{"CacheAccess", 1000, [state] {
            for (int i = 0; i < 1000; ++i) {
                state->sink +=
                    state->cache.access(state->addr, false).hit ? 1
                                                                : 0;
                state->addr += 4096 + 64; // mixes hits and misses
            }
        }});
    }

    {
        struct State
        {
            BranchPredictor bpred;
            std::uint64_t pc = 0x1000;
            bool taken = false;
            std::uint64_t sink = 0;
        };
        auto state = std::make_shared<State>();
        benches.push_back(Bench{"BranchPredict", 1000, [state] {
            for (int i = 0; i < 1000; ++i) {
                state->sink += state->bpred
                                   .predict(state->pc, false, false,
                                            state->pc + 4)
                                   .predictTaken
                    ? 1 : 0;
                state->bpred.update(state->pc, state->taken,
                                    state->pc + 64, false, false);
                state->pc = (state->pc + 16) & 0xffff;
                state->taken = !state->taken;
            }
        }});
    }

    {
        struct State
        {
            std::unique_ptr<WorkloadGenerator> workload =
                BenchmarkFactory::create("gcc", 1u << 22);
            std::uint64_t sink = 0;
        };
        auto state = std::make_shared<State>();
        benches.push_back(Bench{"WorkloadGeneration", 1000, [state] {
            for (int i = 0; i < 1000; ++i)
                state->sink += state->workload->next().pc;
        }});
    }

    return benches;
}

// -------------------------------------------------- telemetry cost

/** Telemetry overhead measurement: what the always-compiled-in phase
 *  probes cost with the profiler off (the shipped configuration) and
 *  on. The off-path overhead is derived, not asserted: probe cost x
 *  probe density / simulation cost, reported so CI's BENCH_sim.json
 *  records the trajectory. */
struct ProfileOverhead
{
    double nsPerDisabledProbe = 0.0;
    double nsPerEnabledProbe = 0.0;
    double probesPerInstruction = 0.0;
    double nsPerInstructionOff = 0.0;
    double itemsPerSecondOff = 0.0;
    double itemsPerSecondOn = 0.0;
    double overheadOffPercent = 0.0; //!< derived probe-cost estimate
    double overheadOnPercent = 0.0;  //!< measured items/s delta
};

/** Cost of one ScopedTimer construct/destruct pair at the current
 *  profiler setting. The escape asm keeps the otherwise side-effect-
 *  free disabled timer from being optimized away. */
double
probeCostNs()
{
    using clock = std::chrono::steady_clock;
    constexpr int N = 1 << 20;
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
        auto start = clock::now();
        for (int i = 0; i < N; ++i) {
            telemetry::ScopedTimer timer(telemetry::Phase::PoolTask);
            asm volatile("" : : "r"(&timer) : "memory");
        }
        double s =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        best = std::min(best, s * 1e9 / N);
    }
    return best;
}

ProfileOverhead
measureProfileOverhead(double min_seconds)
{
    ProfileOverhead p;

    telemetry::setProfiling(false);
    p.nsPerDisabledProbe = probeCostNs();
    telemetry::setProfiling(true);
    telemetry::resetPhaseHistograms();
    p.nsPerEnabledProbe = probeCostNs();

    // Simulator throughput, profiler off vs on, on the same workload
    // as the SimulatorMcd benchmark. Histograms are reset after the
    // warm-up batches so probe counts cover exactly the timed items.
    auto simItemsPerSecond = [&](bool profiling,
                                 std::uint64_t *items_out) {
        telemetry::setProfiling(profiling);
        auto workload = BenchmarkFactory::create("gsm", 1u << 22);
        SimConfig config;
        Simulator sim(config, *workload);
        for (int i = 0; i < 3; ++i)
            sim.run(1000);
        telemetry::resetPhaseHistograms();
        using clock = std::chrono::steady_clock;
        std::uint64_t items = 0;
        auto start = clock::now();
        double seconds = 0.0;
        do {
            sim.run(1000);
            items += 1000;
            seconds =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
        } while (seconds < min_seconds);
        if (items_out)
            *items_out = items;
        return static_cast<double>(items) / seconds;
    };

    p.itemsPerSecondOff = simItemsPerSecond(false, nullptr);
    std::uint64_t items_on = 0;
    p.itemsPerSecondOn = simItemsPerSecond(true, &items_on);

    // Probe density: how many sim.* probes fired per instruction of
    // the profiled run (issue/wakeup probes fire per cycle, so this
    // exceeds the number of instrumented phases).
    std::uint64_t probes = 0;
    for (int ph = 0; ph < telemetry::NUM_PHASES; ++ph) {
        auto phase = static_cast<telemetry::Phase>(ph);
        if (std::strncmp(telemetry::phaseName(phase), "sim.", 4) != 0)
            continue;
        probes += telemetry::phaseHistogram(phase).read().count;
    }
    telemetry::setProfiling(false);
    telemetry::resetPhaseHistograms();

    p.probesPerInstruction =
        items_on > 0
            ? static_cast<double>(probes) /
                  static_cast<double>(items_on)
            : 0.0;
    p.nsPerInstructionOff = p.itemsPerSecondOff > 0.0
                                ? 1e9 / p.itemsPerSecondOff
                                : 0.0;
    p.overheadOffPercent =
        p.nsPerInstructionOff > 0.0
            ? 100.0 * p.nsPerDisabledProbe * p.probesPerInstruction /
                  p.nsPerInstructionOff
            : 0.0;
    p.overheadOnPercent =
        p.itemsPerSecondOn > 0.0
            ? 100.0 * (p.itemsPerSecondOff / p.itemsPerSecondOn - 1.0)
            : 0.0;
    return p;
}

void
printText(const std::vector<BenchResult> &results,
          const ProfileOverhead &profile)
{
    std::printf("%-28s %14s %16s %12s\n", "benchmark", "ns/op",
                "items/s", "iterations");
    for (const BenchResult &r : results)
        std::printf("%-28s %14.1f %16.0f %12llu\n", r.name.c_str(),
                    nsPerItem(r), itemsPerSecond(r),
                    static_cast<unsigned long long>(r.iterations));
    std::printf(
        "\ntelemetry probes (always compiled in, gated on MCD_PROF):\n"
        "  ns/probe off %.2f, on %.2f; %.2f probes/instruction\n"
        "  estimated off-path overhead %.3f%% of %.1f ns/instruction\n"
        "  measured on-path slowdown %.1f%% "
        "(%.0f -> %.0f instructions/s)\n",
        profile.nsPerDisabledProbe, profile.nsPerEnabledProbe,
        profile.probesPerInstruction, profile.overheadOffPercent,
        profile.nsPerInstructionOff, profile.overheadOnPercent,
        profile.itemsPerSecondOff, profile.itemsPerSecondOn);
}

void
printJson(const std::vector<BenchResult> &results,
          const ProfileOverhead &profile)
{
    std::string out = "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                      "\"items_per_second\": %.1f, \"iterations\": "
                      "%llu, \"items\": %llu, \"seconds\": %.6f}",
                      r.name.c_str(), nsPerItem(r), itemsPerSecond(r),
                      static_cast<unsigned long long>(r.iterations),
                      static_cast<unsigned long long>(r.items),
                      r.seconds);
        out += buf;
        out += i + 1 < results.size() ? ",\n" : "\n";
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  ],\n  \"profile\": {\"ns_per_disabled_probe\": %.4f, "
        "\"ns_per_enabled_probe\": %.4f, "
        "\"probes_per_instruction\": %.4f, "
        "\"ns_per_instruction_off\": %.2f, "
        "\"items_per_second_off\": %.1f, "
        "\"items_per_second_on\": %.1f, "
        "\"overhead_off_percent\": %.4f, "
        "\"overhead_on_percent\": %.2f}\n}\n",
        profile.nsPerDisabledProbe, profile.nsPerEnabledProbe,
        profile.probesPerInstruction, profile.nsPerInstructionOff,
        profile.itemsPerSecondOff, profile.itemsPerSecondOn,
        profile.overheadOffPercent, profile.overheadOnPercent);
    out += buf;
    std::fputs(out.c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    double min_seconds = 0.2;
    std::string filter;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                mcd_fatal("option '%s' needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--min-time-ms") {
            std::string v = value();
            char *end = nullptr;
            min_seconds = std::strtod(v.c_str(), &end) / 1e3;
            if (v.empty() || end != v.c_str() + v.size() ||
                min_seconds <= 0.0)
                mcd_fatal("--min-time-ms needs a positive duration, "
                          "not '%s'", v.c_str());
        } else if (arg == "--filter") {
            filter = value();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: sim_microbench [--json] "
                        "[--min-time-ms <ms>] [--filter <substr>]\n");
            return 0;
        } else {
            mcd_fatal("unknown argument '%s' (try --help)",
                      arg.c_str());
        }
    }

    std::vector<BenchResult> results;
    for (const Bench &bench : allBenches()) {
        if (!filter.empty() &&
            bench.name.find(filter) == std::string::npos)
            continue;
        results.push_back(run(bench, min_seconds));
    }

    ProfileOverhead profile = measureProfileOverhead(min_seconds);

    if (json)
        printJson(results, profile);
    else
        printText(results, profile);
    return 0;
}
