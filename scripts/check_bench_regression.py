#!/usr/bin/env python3
"""Gate sim_microbench results against the committed baseline.

Usage: check_bench_regression.py <BENCH_sim.json>... [options]

Two checks:

 1. Hot-loop throughput: the simulated-instructions/sec of every
    simulator benchmark (SimulatorMcd and friends) must not drop more
    than --max-drop (default 15%) below the committed baseline
    (bench/BENCH_sim_baseline.json, or --baseline).
 2. Fast-forward speedup: CheckpointResume must stay at least
    --min-resume-ratio (default 5x) faster than CheckpointColdRun —
    a within-machine ratio, so it holds on any hardware.

Several result files may be passed; each benchmark is judged on its
best run — downward noise (a loaded machine, an unlucky scheduler)
can only make a single sample look slow, so best-of-N is the robust
reading. The absolute comparison (check 1) is meaningful only on
hardware comparable to the machine that produced the baseline; CI
runs it on a pinned runner class with three samples. The committed
baseline is a *low-water* reading (per-benchmark minimum over several
runs under varying load), so the gate only fires when even the best
current sample sits below what the slowest acceptable run achieved.
Refresh it deliberately — several runs, keep the minima:

    ./build/sim_microbench --json > bench/BENCH_sim_baseline.json
"""

import argparse
import json
import pathlib
import sys

# Benchmarks whose items/s are simulated instructions per second: the
# hot-loop throughput the tentpole refactor is not allowed to regress.
GATED = (
    "SimulatorMcd",
    "SimulatorMcdAttackDecay",
    "SimulatorSynchronous",
)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b for b in doc["benchmarks"]}


def best_of(paths):
    """Per-benchmark best items/s (and its run) across result files."""
    best = {}
    for path in paths:
        for name, bench in load(path).items():
            if (name not in best or bench["items_per_second"] >
                    best[name]["items_per_second"]):
                best[name] = bench
    return best


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", nargs="+",
                        help="BENCH_sim.json files from this run; "
                             "each benchmark is judged on its best")
    parser.add_argument(
        "--baseline",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent
            / "bench"
            / "BENCH_sim_baseline.json"
        ),
    )
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="max fractional items/s drop vs baseline")
    parser.add_argument("--min-resume-ratio", type=float, default=5.0,
                        help="min CheckpointResume/CheckpointColdRun")
    args = parser.parse_args()

    current = best_of(args.current)
    baseline = load(args.baseline)
    failures = []

    for name in GATED:
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        if name not in baseline:
            failures.append(f"{name}: missing from baseline")
            continue
        now = current[name]["items_per_second"]
        ref = baseline[name]["items_per_second"]
        drop = 1.0 - now / ref if ref > 0 else 0.0
        status = "FAIL" if drop > args.max_drop else "ok"
        print(
            f"{status:4s} {name}: {now:,.0f} insns/s "
            f"(baseline {ref:,.0f}, {-drop:+.1%})"
        )
        if drop > args.max_drop:
            failures.append(
                f"{name}: items/s dropped {drop:.1%} "
                f"(limit {args.max_drop:.0%})"
            )

    cold = current.get("CheckpointColdRun")
    resume = current.get("CheckpointResume")
    if not cold or not resume:
        failures.append("checkpoint benchmarks missing from results")
    else:
        ratio = (
            resume["items_per_second"] / cold["items_per_second"]
            if cold["items_per_second"] > 0
            else 0.0
        )
        status = "FAIL" if ratio < args.min_resume_ratio else "ok"
        print(
            f"{status:4s} checkpoint fast-forward: {ratio:.1f}x cold "
            f"(floor {args.min_resume_ratio:.1f}x)"
        )
        if ratio < args.min_resume_ratio:
            failures.append(
                f"checkpoint resume only {ratio:.1f}x faster than "
                f"cold (floor {args.min_resume_ratio:.1f}x)"
            )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
