/**
 * @file
 * The per-interval statistics the controller hardware of Section 3.2
 * would observe, and the controller interface. The simulator samples
 * every `intervalInstructions` committed instructions (10,000 in the
 * paper). Queue utilization follows Figure 3(a)'s definition: occupancy
 * is accumulated every domain cycle and divided by the interval's
 * instruction count, so it can exceed the queue size when an interval
 * takes more cycles than instructions.
 */

#ifndef MCD_CORE_INTERVAL_HH
#define MCD_CORE_INTERVAL_HH

#include <array>
#include <cstdint>

#include "clock/clock_system.hh"
#include "common/types.hh"

namespace mcd
{

/** Index of a controllable domain within interval arrays. */
enum ControlledDomain : int
{
    CTL_INT = 0,
    CTL_FP = 1,
    CTL_LS = 2,
    NUM_CONTROLLED = 3,
};

/** Map a controllable-domain slot to its DomainId. */
DomainId controlledDomainId(int slot);

/** One domain's view of an interval. */
struct DomainIntervalStats
{
    /** Sum over domain cycles of queue occupancy / interval instrs. */
    double queueUtilization = 0.0;
    /** Occupancy averaged over domain cycles instead. */
    double avgOccupancy = 0.0;
    /** Ops issued in this domain during the interval. */
    std::uint64_t issued = 0;
    /** Domain clock cycles in the interval. */
    std::uint64_t cycles = 0;
    /** Cycles with at least one op in queue or in execution. */
    std::uint64_t busyCycles = 0;
    /** Target frequency at the end of the interval. */
    Hertz frequency = 0.0;
};

/** Everything sampled at an interval boundary. */
struct IntervalStats
{
    std::uint64_t index = 0;         //!< interval number, from 0
    std::uint64_t instructions = 0;  //!< committed instrs in interval
    std::uint64_t feCycles = 0;      //!< front-end cycles in interval
    double ipc = 0.0;                //!< instructions / feCycles
    Tick startTime = 0;
    Tick endTime = 0;
    /** On-chip energy (nJ) spent during this interval. The paper's
     *  controller hardware would not see this; it exists for the
     *  telemetry traces of the controller stress lab (src/eval/). */
    NanoJoule chipEnergy = 0.0;
    std::array<DomainIntervalStats, NUM_CONTROLLED> domains{};

    /** ROB occupancy accumulated per front-end cycle / instructions
     *  (the front end's "queue utilization" for the Section 7
     *  front-end-scaling extension). */
    double robUtilization = 0.0;
    /** ROB occupancy averaged over front-end cycles. */
    double avgRobOccupancy = 0.0;
    /** Front-end target frequency at the end of the interval. */
    Hertz feFrequency = 0.0;
};

/**
 * Frequency controller interface. Implementations inspect the interval
 * sample and adjust domain target frequencies through the clock system.
 * The front end is never adjusted (the paper fixes it at 1 GHz).
 */
class FrequencyController
{
  public:
    virtual ~FrequencyController() = default;

    /** Called once before simulation begins. */
    virtual void onStart(ClockSystem &clocks) { (void)clocks; }

    /** Called at every interval boundary. */
    virtual void onInterval(const IntervalStats &stats,
                            ClockSystem &clocks) = 0;
};

} // namespace mcd

#endif // MCD_CORE_INTERVAL_HH
