/**
 * @file
 * The in-flight dynamic instruction record. Instructions live in the
 * simulator's program-order window — a flat power-of-two ring indexed by
 * `seq & mask` (see SimState) — and the issue queues, LSQ, and execution
 * lists reference them by sequence number, which both avoids pointer
 * chasing in the hot loop and lets whole machine states serialize for
 * checkpointing.
 */

#ifndef MCD_CORE_INST_HH
#define MCD_CORE_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "workload/micro_op.hh"

namespace mcd
{

/** One in-flight instruction. */
struct Inst
{
    MicroOp op;
    std::uint64_t seq = 0;      //!< global program-order sequence number
    DomainId execDomain = DomainId::Integer;

    // Rename state.
    int physDst = -1;
    int physA = -1;
    int physB = -1;
    int oldPhysDst = -1;        //!< previous mapping, freed at commit

    // Pipeline status.
    bool enqueued = false;  //!< latched into the consumer-domain queue
    bool issued = false;
    bool completed = false;
    bool committed = false;
    Tick dispatchTime = 0;      //!< front-end edge of dispatch
    Tick completeTime = 0;      //!< edge the result became available
    int remainingCycles = 0;    //!< execution countdown in domain edges
    Tick absDoneTime = MAX_TICK; //!< absolute-time gate (memory returns)

    // Control flow.
    bool mispredicted = false;  //!< fetch-time prediction was wrong

    // Memory state.
    bool isLoad = false;
    bool isStore = false;
    bool addrKnown = false;     //!< AGU has produced the address
    bool dataReady = false;     //!< store data operand is available
    bool memIssued = false;     //!< sent to cache / forwarded
    bool forwarded = false;     //!< satisfied by store-to-load forwarding
    bool committedStore = false; //!< retired store awaiting cache write
    bool writeIssued = false;   //!< store write sent to cache
    bool lsqFreed = false;      //!< LSQ slot released
    bool usesMshr = false;

    /** True once nothing in the machine references this entry. */
    bool
    retired() const
    {
        if (!committed)
            return false;
        if (isStore)
            return lsqFreed;
        return true;
    }

    bool hasDst() const { return op.dst > 0; }
    bool dstIsFp() const { return op.dst >= NUM_INT_ARCH_REGS; }
};

} // namespace mcd

#endif // MCD_CORE_INST_HH
