#include "core/sim_state.hh"

#include "common/logging.hh"

namespace mcd
{

namespace
{

std::uint64_t
nextPow2(std::uint64_t n)
{
    std::uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
saveInst(std::string &out, const Inst &inst)
{
    serial::appendU64(out, inst.op.pc);
    serial::appendI64(out, static_cast<int>(inst.op.cls));
    serial::appendI64(out, inst.op.srcA);
    serial::appendI64(out, inst.op.srcB);
    serial::appendI64(out, inst.op.dst);
    serial::appendU64(out, inst.op.memAddr);
    serial::appendU64(out, inst.op.taken ? 1 : 0);
    serial::appendU64(out, inst.op.target);

    serial::appendU64(out, inst.seq);
    serial::appendI64(out, static_cast<int>(inst.execDomain));
    serial::appendI64(out, inst.physDst);
    serial::appendI64(out, inst.physA);
    serial::appendI64(out, inst.physB);
    serial::appendI64(out, inst.oldPhysDst);

    std::uint64_t flags = 0;
    flags |= inst.enqueued ? 1ull << 0 : 0;
    flags |= inst.issued ? 1ull << 1 : 0;
    flags |= inst.completed ? 1ull << 2 : 0;
    flags |= inst.committed ? 1ull << 3 : 0;
    flags |= inst.mispredicted ? 1ull << 4 : 0;
    flags |= inst.isLoad ? 1ull << 5 : 0;
    flags |= inst.isStore ? 1ull << 6 : 0;
    flags |= inst.addrKnown ? 1ull << 7 : 0;
    flags |= inst.dataReady ? 1ull << 8 : 0;
    flags |= inst.memIssued ? 1ull << 9 : 0;
    flags |= inst.forwarded ? 1ull << 10 : 0;
    flags |= inst.committedStore ? 1ull << 11 : 0;
    flags |= inst.writeIssued ? 1ull << 12 : 0;
    flags |= inst.lsqFreed ? 1ull << 13 : 0;
    flags |= inst.usesMshr ? 1ull << 14 : 0;
    serial::appendU64(out, flags);

    serial::appendI64(out, inst.dispatchTime);
    serial::appendI64(out, inst.completeTime);
    serial::appendI64(out, inst.remainingCycles);
    serial::appendI64(out, inst.absDoneTime);
}

void
loadInst(serial::Reader &in, Inst &inst)
{
    inst.op.pc = in.readU64();
    inst.op.cls = static_cast<OpClass>(in.readI64());
    inst.op.srcA = static_cast<int>(in.readI64());
    inst.op.srcB = static_cast<int>(in.readI64());
    inst.op.dst = static_cast<int>(in.readI64());
    inst.op.memAddr = in.readU64();
    inst.op.taken = in.readU64() != 0;
    inst.op.target = in.readU64();

    inst.seq = in.readU64();
    inst.execDomain = static_cast<DomainId>(in.readI64());
    inst.physDst = static_cast<int>(in.readI64());
    inst.physA = static_cast<int>(in.readI64());
    inst.physB = static_cast<int>(in.readI64());
    inst.oldPhysDst = static_cast<int>(in.readI64());

    std::uint64_t flags = in.readU64();
    inst.enqueued = (flags >> 0) & 1;
    inst.issued = (flags >> 1) & 1;
    inst.completed = (flags >> 2) & 1;
    inst.committed = (flags >> 3) & 1;
    inst.mispredicted = (flags >> 4) & 1;
    inst.isLoad = (flags >> 5) & 1;
    inst.isStore = (flags >> 6) & 1;
    inst.addrKnown = (flags >> 7) & 1;
    inst.dataReady = (flags >> 8) & 1;
    inst.memIssued = (flags >> 9) & 1;
    inst.forwarded = (flags >> 10) & 1;
    inst.committedStore = (flags >> 11) & 1;
    inst.writeIssued = (flags >> 12) & 1;
    inst.lsqFreed = (flags >> 13) & 1;
    inst.usesMshr = (flags >> 14) & 1;

    inst.dispatchTime = in.readI64();
    inst.completeTime = in.readI64();
    inst.remainingCycles = static_cast<int>(in.readI64());
    inst.absDoneTime = in.readI64();
}

void
saveSeqList(std::string &out, const std::vector<std::uint64_t> &list)
{
    serial::appendU64(out, list.size());
    for (std::uint64_t s : list)
        serial::appendU64(out, s);
}

bool
loadSeqList(serial::Reader &in, std::vector<std::uint64_t> &list)
{
    std::uint64_t n = in.readU64();
    if (!in.ok() || n > (1u << 24))
        return false;
    list.resize(n);
    for (std::uint64_t &s : list)
        s = in.readU64();
    return in.ok();
}

} // namespace

SimState::SimState(int rob_size, int lsq_size)
{
    std::uint64_t capacity = nextPow2(
        static_cast<std::uint64_t>(rob_size + lsq_size) + 8);
    ring.resize(capacity);
    ringMask = capacity - 1;
    intIq.reserve(32);
    fpIq.reserve(32);
    lsq.reserve(static_cast<std::size_t>(lsq_size));
    intExec.reserve(32);
    fpExec.reserve(32);
    lsExec.reserve(32);
}

Inst &
SimState::allocate()
{
    if (liveSpan() >= ring.size())
        grow();
    Inst &slot = ring[nextSeq & ringMask];
    slot = Inst{};
    slot.seq = nextSeq++;
    return slot;
}

void
SimState::grow()
{
    std::uint64_t capacity = ring.size() * 2;
    std::vector<Inst> next(capacity);
    std::uint64_t mask = capacity - 1;
    for (std::uint64_t s = windowHead; s != nextSeq; ++s)
        next[s & mask] = ring[s & ringMask];
    ring = std::move(next);
    ringMask = mask;
}

void
SimState::retireHead()
{
    while (windowHead != nextSeq && inst(windowHead).retired())
        ++windowHead;
}

void
SimState::resetIntervalAccum()
{
    ivOccupancySum.fill(0.0);
    ivCycles.fill(0);
    ivBusyCycles.fill(0);
    ivIssued.fill(0);
    robOccupancySum = 0.0;
}

void
SimState::saveState(std::string &out) const
{
    serial::appendU64(out, windowHead);
    serial::appendU64(out, nextSeq);
    serial::appendU64(out, robHead);
    for (std::uint64_t s = windowHead; s != nextSeq; ++s)
        saveInst(out, inst(s));

    saveSeqList(out, intIq);
    saveSeqList(out, fpIq);
    saveSeqList(out, lsq);
    saveSeqList(out, intExec);
    saveSeqList(out, fpExec);
    saveSeqList(out, lsExec);

    serial::appendI64(out, intDivBusy);
    serial::appendI64(out, fpDivBusy);
    serial::appendI64(out, mshrInUse);

    serial::appendU64(out, havePendingOp ? 1 : 0);
    serial::appendU64(out, pendingOp.pc);
    serial::appendI64(out, static_cast<int>(pendingOp.cls));
    serial::appendI64(out, pendingOp.srcA);
    serial::appendI64(out, pendingOp.srcB);
    serial::appendI64(out, pendingOp.dst);
    serial::appendU64(out, pendingOp.memAddr);
    serial::appendU64(out, pendingOp.taken ? 1 : 0);
    serial::appendU64(out, pendingOp.target);
    serial::appendU64(out, lastFetchLine);
    serial::appendI64(out, icacheStallUntil);
    serial::appendU64(out, stallBranchSeq);
    serial::appendI64(out, branchResolveTime);
    serial::appendI64(out, static_cast<int>(branchResolveDomain));
    serial::appendI64(out, redirectPenaltyLeft);

    serial::appendI64(out, now);
    serial::appendU64(out, committed);
    serial::appendU64(out, feCycles);
    serial::appendU64(out, measCommittedBase);
    serial::appendU64(out, measFeCyclesBase);
    serial::appendI64(out, measTimeBase);

    serial::appendU64(out, branches.value());
    serial::appendU64(out, mispredicts.value());
    serial::appendU64(out, loads.value());
    serial::appendU64(out, stores.value());

    serial::appendU64(out, intervalIndex);
    serial::appendU64(out, intervalStartInsts);
    serial::appendU64(out, intervalStartFeCycles);
    serial::appendI64(out, intervalStartTime);
    serial::appendDouble(out, intervalStartEnergy);
    for (double x : ivOccupancySum)
        serial::appendDouble(out, x);
    for (std::uint64_t x : ivCycles)
        serial::appendU64(out, x);
    for (std::uint64_t x : ivBusyCycles)
        serial::appendU64(out, x);
    for (std::uint64_t x : ivIssued)
        serial::appendU64(out, x);
    serial::appendDouble(out, robOccupancySum);
}

bool
SimState::loadState(serial::Reader &in)
{
    std::uint64_t window_head = in.readU64();
    std::uint64_t next_seq = in.readU64();
    std::uint64_t rob_head = in.readU64();
    if (!in.ok() || next_seq < rob_head || rob_head < window_head ||
        next_seq - window_head > (1u << 24))
        return false;

    std::uint64_t span = next_seq - window_head;
    std::uint64_t capacity = ring.size();
    while (capacity < span)
        capacity *= 2;
    std::vector<Inst> new_ring(capacity);
    std::uint64_t mask = capacity - 1;
    for (std::uint64_t s = window_head; s != next_seq; ++s) {
        Inst &slot = new_ring[s & mask];
        loadInst(in, slot);
        if (slot.seq != s)
            return false; // stream out of step with header
    }
    if (!in.ok())
        return false;

    if (!loadSeqList(in, intIq) || !loadSeqList(in, fpIq) ||
        !loadSeqList(in, lsq) || !loadSeqList(in, intExec) ||
        !loadSeqList(in, fpExec) || !loadSeqList(in, lsExec))
        return false;

    ring = std::move(new_ring);
    ringMask = mask;
    windowHead = window_head;
    nextSeq = next_seq;
    robHead = rob_head;

    intDivBusy = static_cast<int>(in.readI64());
    fpDivBusy = static_cast<int>(in.readI64());
    mshrInUse = static_cast<int>(in.readI64());

    havePendingOp = in.readU64() != 0;
    pendingOp.pc = in.readU64();
    pendingOp.cls = static_cast<OpClass>(in.readI64());
    pendingOp.srcA = static_cast<int>(in.readI64());
    pendingOp.srcB = static_cast<int>(in.readI64());
    pendingOp.dst = static_cast<int>(in.readI64());
    pendingOp.memAddr = in.readU64();
    pendingOp.taken = in.readU64() != 0;
    pendingOp.target = in.readU64();
    lastFetchLine = in.readU64();
    icacheStallUntil = in.readI64();
    stallBranchSeq = in.readU64();
    branchResolveTime = in.readI64();
    branchResolveDomain = static_cast<DomainId>(in.readI64());
    redirectPenaltyLeft = static_cast<int>(in.readI64());

    now = in.readI64();
    committed = in.readU64();
    feCycles = in.readU64();
    measCommittedBase = in.readU64();
    measFeCyclesBase = in.readU64();
    measTimeBase = in.readI64();

    branches.set(in.readU64());
    mispredicts.set(in.readU64());
    loads.set(in.readU64());
    stores.set(in.readU64());

    intervalIndex = in.readU64();
    intervalStartInsts = in.readU64();
    intervalStartFeCycles = in.readU64();
    intervalStartTime = in.readI64();
    intervalStartEnergy = in.readDouble();
    for (double &x : ivOccupancySum)
        x = in.readDouble();
    for (std::uint64_t &x : ivCycles)
        x = in.readU64();
    for (std::uint64_t &x : ivBusyCycles)
        x = in.readU64();
    for (std::uint64_t &x : ivIssued)
        x = in.readU64();
    robOccupancySum = in.readDouble();

    return in.ok();
}

} // namespace mcd
