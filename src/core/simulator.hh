/**
 * @file
 * The cycle-level MCD out-of-order processor simulator.
 *
 * Structure follows Figure 1: a front-end domain (fetch, L1I, branch
 * prediction, rename, ROB, retire), integer and floating-point execution
 * domains (issue queue + FUs + register file each), and a load/store
 * domain (LSQ, L1D, unified L2), with main memory externally clocked.
 * Each domain runs on its own jittered clock; the main loop always
 * advances whichever clock has the earliest pending edge, so the
 * relationship among all clock edges is tracked cycle by cycle and every
 * cross-domain transfer (dispatch into an issue queue, register result
 * consumption, branch-resolution redirect, cache-fill return) pays the
 * synchronization-window penalty when edges fall too close (Section 4).
 *
 * The model is trace-driven on the correct path: fetch consults the real
 * predictor hierarchy and, on a wrong prediction, stalls at the branch
 * until it resolves plus the 7-cycle redirect penalty (wrong-path
 * instructions are not executed; fetch energy is still charged during
 * the redirect shadow). All Table 4 structures are modeled: 80-entry
 * ROB, 20/15-entry issue queues, 64-entry LSQ with store-to-load
 * forwarding and conservative disambiguation, 72+72 physical registers,
 * MSHR-limited non-blocking caches.
 *
 * All mutable machine state lives in a SimState aggregate (see
 * sim_state.hh), so a run can be checkpointed at any stopping point and
 * resumed bit-identically: runTo(X) followed by runTo(Y) executes the
 * exact same step sequence as a single runTo(Y). To keep stopping
 * behavior-free, the commit stage never caps commits at a run target —
 * a run may overshoot its target by up to retireWidth-1 instructions.
 *
 * Energy accounting is batched: per-edge cycle charges and per-access
 * structure charges accumulate in integer counters and are applied to
 * the PowerAccountant only when a domain voltage changes, at interval
 * boundaries, at measurement resets, and when stats are read. Setting
 * MCD_POWER_PEROP=1 in the environment flushes after every charge,
 * reproducing the old per-op accounting order (for equivalence tests).
 */

#ifndef MCD_CORE_SIMULATOR_HH
#define MCD_CORE_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clock/clock_system.hh"
#include "common/serial.hh"
#include "common/stats.hh"
#include "core/core_config.hh"
#include "core/inst.hh"
#include "core/interval.hh"
#include "core/regfile.hh"
#include "core/sim_state.hh"
#include "memory/memory_hierarchy.hh"
#include "power/power_accountant.hh"
#include "predictor/branch_predictor.hh"
#include "workload/workload.hh"

namespace mcd
{

/** Everything needed to instantiate one simulated machine. */
struct SimConfig
{
    CoreConfig core{};
    DvfsConfig dvfs{};
    ClockSystemConfig clocks{};
    EnergyConfig energy{};
};

/** Aggregate results of a run, in absolute units. */
struct SimStats
{
    std::uint64_t instructions = 0;
    std::uint64_t feCycles = 0;
    Tick time = 0;               //!< simulated wall-clock (ps)
    NanoJoule chipEnergy = 0.0;
    double cpi = 0.0;            //!< front-end cycles per instruction
    double epi = 0.0;            //!< nJ per instruction
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> domainEnergy{};
};

/** The MCD processor simulator. */
class Simulator
{
  public:
    /**
     * @param config      machine configuration
     * @param workload    correct-path micro-op stream (not owned)
     * @param controller  frequency controller, may be null (constant
     *                    maximum frequencies)
     */
    Simulator(const SimConfig &config, WorkloadGenerator &workload,
              FrequencyController *controller = nullptr);

    /**
     * Run until at least `instructions` more have committed. The run may
     * overshoot by up to retireWidth-1 commits; stopping is behavior-
     * free, so run(a); run(b) is identical to run(a + b).
     */
    void run(std::uint64_t instructions);

    /** Run until the absolute commit count reaches `target`. */
    void runTo(std::uint64_t target);

    /**
     * Install (or replace) the frequency controller mid-run; its
     * onStart hook fires immediately. Used to run warm-up uncontrolled
     * so warm-up checkpoints are shared across controllers.
     */
    void engageController(FrequencyController *controller);

    /**
     * Reset measurement state (energy, cycle/instruction counters,
     * interval numbering and accumulators) without flushing micro-
     * architectural state; used to exclude warm-up from measurements.
     */
    void resetMeasurement();

    /** Per-interval observer (figures 2/3 traces), called after the
     *  controller. */
    void
    setIntervalObserver(std::function<void(const IntervalStats &)> cb)
    {
        interval_observer_ = std::move(cb);
    }

    /** Results so far. */
    SimStats stats() const;

    /**
     * Full machine-readable statistics dump: run counters, per-domain
     * cycles/frequencies/energy, per-structure energy, cache and
     * predictor statistics, and main-memory channel metrics.
     */
    void dumpStats(StatDump &dump) const;

    /**
     * Serialize the entire machine — SimState, clocks, caches,
     * predictor, register files, energy accumulators (pending charge
     * batch included, so flush points replay identically), and the
     * workload position. Side-effect free: saving does not perturb the
     * run. A simulator built from the identical SimConfig + workload
     * spec that restores this blob continues bit-identically to the
     * run that saved it.
     */
    void saveCheckpoint(std::string &out) const;

    /** Inverse of saveCheckpoint; false leaves no guarantees about
     *  partial state, so callers must treat failure as fatal for this
     *  instance (checkpoint artifacts re-simulate on failure). */
    bool restoreCheckpoint(serial::Reader &in);

    ClockSystem &clocks() { return clocks_; }
    const PowerAccountant &power() const { return power_; }
    MemoryHierarchy &memory() { return memory_; }
    std::uint64_t committed() const { return state_.committed; }
    Tick now() const { return state_.now; }
    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
    WorkloadGenerator *workload_;
    FrequencyController *controller_;

    DvfsModel dvfs_;
    ClockSystem clocks_;
    EnergyModel energy_model_;
    mutable PowerAccountant power_;
    MemoryHierarchy memory_;
    BranchPredictor bpred_;

    PhysRegFile int_regs_;
    PhysRegFile fp_regs_;
    RenameMap rename_;

    /** All mutable machine state (window ring, queues, counters). */
    SimState state_;

    /**
     * Pending energy charges, accumulated as integer counts and applied
     * at the cached per-domain voltages on flush. Structure accesses
     * are keyed by (structure, charging domain) because a few charges
     * (result writeback) bill a structure at the producing domain's
     * voltage rather than the structure's own.
     */
    struct PowerBatch
    {
        std::array<Hertz, NUM_CLOCKED_DOMAINS> freq{};
        std::array<Volt, NUM_CLOCKED_DOMAINS> volt{};
        std::array<std::uint64_t, NUM_CLOCKED_DOMAINS> cycles{};
        std::array<std::array<std::uint64_t, NUM_CLOCKED_DOMAINS>,
                   NUM_STRUCTURES>
            accesses{};
        std::uint64_t memAccesses = 0;
    };
    mutable PowerBatch batch_;
    bool power_per_op_ = false; //!< MCD_POWER_PEROP: flush every charge

    std::function<void(const IntervalStats &)> interval_observer_;

    // --- energy batching ---
    void flushPower() const;
    void refreshBatchVoltages() const;
    void syncBatchVoltages();
    void chargeCycleB(DomainId domain);
    void chargeAccessB(StructureId structure, DomainId domain,
                       std::uint64_t count = 1);
    void chargeMemB();

    // --- main loop ---
    void step();
    void tickDomain(DomainId domain, Tick edge);

    // --- per-domain stages ---
    void frontEndTick(Tick edge);
    void integerTick(Tick edge);
    void fpTick(Tick edge);
    void loadStoreTick(Tick edge);

    // Front-end helpers.
    void commitStage(Tick edge);
    void fetchAndDispatch(Tick edge);
    bool dispatchOne(const MicroOp &op, Tick edge);
    bool resourcesAvailable(const MicroOp &op) const;
    void handleIntervalBoundary(Tick edge);

    // Execution helpers.
    void processCompletions(std::vector<std::uint64_t> &exec_list,
                            DomainId domain, Tick edge);
    void completeInst(Inst &inst, DomainId domain, Tick edge);
    void issueInteger(Tick edge);
    void issueFp(Tick edge);
    void issueLoadStore(Tick edge);
    bool operandsReady(const Inst &inst, DomainId domain,
                       Tick edge) const;
    bool regReady(int logical, int phys, DomainId domain,
                  Tick edge) const;
    int execLatency(OpClass cls) const;

    // Load/store helpers.
    bool olderStoreBlocks(const Inst &load, const Inst *&forward) const;
    void startDataAccess(Inst &inst, Tick edge, bool is_write);

    Volt voltage(DomainId domain) const;
    std::uint64_t lineOf(std::uint64_t addr) const;
};

} // namespace mcd

#endif // MCD_CORE_SIMULATOR_HH
