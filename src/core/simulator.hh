/**
 * @file
 * The cycle-level MCD out-of-order processor simulator.
 *
 * Structure follows Figure 1: a front-end domain (fetch, L1I, branch
 * prediction, rename, ROB, retire), integer and floating-point execution
 * domains (issue queue + FUs + register file each), and a load/store
 * domain (LSQ, L1D, unified L2), with main memory externally clocked.
 * Each domain runs on its own jittered clock; the main loop always
 * advances whichever clock has the earliest pending edge, so the
 * relationship among all clock edges is tracked cycle by cycle and every
 * cross-domain transfer (dispatch into an issue queue, register result
 * consumption, branch-resolution redirect, cache-fill return) pays the
 * synchronization-window penalty when edges fall too close (Section 4).
 *
 * The model is trace-driven on the correct path: fetch consults the real
 * predictor hierarchy and, on a wrong prediction, stalls at the branch
 * until it resolves plus the 7-cycle redirect penalty (wrong-path
 * instructions are not executed; fetch energy is still charged during
 * the redirect shadow). All Table 4 structures are modeled: 80-entry
 * ROB, 20/15-entry issue queues, 64-entry LSQ with store-to-load
 * forwarding and conservative disambiguation, 72+72 physical registers,
 * MSHR-limited non-blocking caches.
 */

#ifndef MCD_CORE_SIMULATOR_HH
#define MCD_CORE_SIMULATOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "clock/clock_system.hh"
#include "common/stats.hh"
#include "core/core_config.hh"
#include "core/inst.hh"
#include "core/interval.hh"
#include "core/regfile.hh"
#include "memory/memory_hierarchy.hh"
#include "power/power_accountant.hh"
#include "predictor/branch_predictor.hh"
#include "workload/workload.hh"

namespace mcd
{

/** Everything needed to instantiate one simulated machine. */
struct SimConfig
{
    CoreConfig core{};
    DvfsConfig dvfs{};
    ClockSystemConfig clocks{};
    EnergyConfig energy{};
};

/** Aggregate results of a run, in absolute units. */
struct SimStats
{
    std::uint64_t instructions = 0;
    std::uint64_t feCycles = 0;
    Tick time = 0;               //!< simulated wall-clock (ps)
    NanoJoule chipEnergy = 0.0;
    double cpi = 0.0;            //!< front-end cycles per instruction
    double epi = 0.0;            //!< nJ per instruction
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> domainEnergy{};
};

/** The MCD processor simulator. */
class Simulator
{
  public:
    /**
     * @param config      machine configuration
     * @param workload    correct-path micro-op stream (not owned)
     * @param controller  frequency controller, may be null (constant
     *                    maximum frequencies)
     */
    Simulator(const SimConfig &config, WorkloadGenerator &workload,
              FrequencyController *controller = nullptr);

    /** Run until `instructions` more have committed. */
    void run(std::uint64_t instructions);

    /**
     * Reset measurement state (energy, cycle/instruction counters,
     * interval accumulators) without flushing microarchitectural state;
     * used to exclude warm-up from measurements.
     */
    void resetMeasurement();

    /** Per-interval observer (figures 2/3 traces), called after the
     *  controller. */
    void
    setIntervalObserver(std::function<void(const IntervalStats &)> cb)
    {
        interval_observer_ = std::move(cb);
    }

    /** Results so far. */
    SimStats stats() const;

    /**
     * Full machine-readable statistics dump: run counters, per-domain
     * cycles/frequencies/energy, per-structure energy, cache and
     * predictor statistics, and main-memory channel metrics.
     */
    void dumpStats(StatDump &dump) const;

    ClockSystem &clocks() { return clocks_; }
    const PowerAccountant &power() const { return power_; }
    MemoryHierarchy &memory() { return memory_; }
    std::uint64_t committed() const { return committed_; }
    Tick now() const { return now_; }
    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
    WorkloadGenerator *workload_;
    FrequencyController *controller_;

    DvfsModel dvfs_;
    ClockSystem clocks_;
    EnergyModel energy_model_;
    PowerAccountant power_;
    MemoryHierarchy memory_;
    BranchPredictor bpred_;

    PhysRegFile int_regs_;
    PhysRegFile fp_regs_;
    RenameMap rename_;

    // Program-order window; references remain valid while entries live.
    std::deque<Inst> window_;
    std::uint64_t next_seq_ = 0;
    std::deque<Inst *> rob_; //!< uncommitted instructions, oldest first
    int rob_count_ = 0;

    std::vector<Inst *> int_iq_;
    std::vector<Inst *> fp_iq_;
    std::deque<Inst *> lsq_;
    int lsq_live_ = 0;

    std::vector<Inst *> int_exec_;
    std::vector<Inst *> fp_exec_;
    std::vector<Inst *> ls_exec_;

    // Non-pipelined unit occupancy (divide/sqrt), in remaining cycles.
    int int_div_busy_ = 0;
    int fp_div_busy_ = 0;

    int mshr_in_use_ = 0;

    // Fetch state.
    bool have_pending_op_ = false;
    MicroOp pending_op_{};
    std::uint64_t last_fetch_line_ = ~0ull;
    Tick icache_stall_until_ = 0;
    const Inst *stall_branch_ = nullptr; //!< mispredicted branch we wait on
    Tick branch_resolve_time_ = MAX_TICK;
    DomainId branch_resolve_domain_ = DomainId::Integer;
    int redirect_penalty_left_ = 0;

    // Global progress.
    Tick now_ = 0;
    std::uint64_t committed_ = 0;
    std::uint64_t fe_cycles_ = 0;
    std::uint64_t stop_at_ = ~0ull; //!< run() commit ceiling

    // Measurement window (excludes warm-up once reset).
    std::uint64_t meas_committed_base_ = 0;
    std::uint64_t meas_fe_cycles_base_ = 0;
    Tick meas_time_base_ = 0;

    // Event counters.
    Counter branches_;
    Counter mispredicts_;
    Counter loads_;
    Counter stores_;

    // Interval machinery.
    std::uint64_t interval_index_ = 0;
    std::uint64_t interval_start_insts_ = 0;
    std::uint64_t interval_start_fe_cycles_ = 0;
    Tick interval_start_time_ = 0;
    NanoJoule interval_start_energy_ = 0.0;
    struct DomainAccum
    {
        double occupancySum = 0.0;
        std::uint64_t cycles = 0;
        std::uint64_t busyCycles = 0;
        std::uint64_t issued = 0;
    };
    std::array<DomainAccum, NUM_CONTROLLED> interval_accum_{};
    double rob_occupancy_sum_ = 0.0; //!< per-FE-cycle, interval-local
    std::function<void(const IntervalStats &)> interval_observer_;

    // --- main loop ---
    void step();
    void tickDomain(DomainId domain, Tick edge);

    // --- per-domain stages ---
    void frontEndTick(Tick edge);
    void integerTick(Tick edge);
    void fpTick(Tick edge);
    void loadStoreTick(Tick edge);

    // Front-end helpers.
    void commitStage(Tick edge);
    void fetchAndDispatch(Tick edge);
    bool dispatchOne(const MicroOp &op, Tick edge);
    bool resourcesAvailable(const MicroOp &op) const;
    void handleIntervalBoundary(Tick edge);

    // Execution helpers.
    void processCompletions(std::vector<Inst *> &exec_list,
                            DomainId domain, Tick edge);
    void completeInst(Inst &inst, DomainId domain, Tick edge);
    void issueInteger(Tick edge);
    void issueFp(Tick edge);
    void issueLoadStore(Tick edge);
    bool operandsReady(const Inst &inst, DomainId domain,
                       Tick edge) const;
    bool regReady(int logical, int phys, DomainId domain,
                  Tick edge) const;
    int execLatency(OpClass cls) const;

    // Load/store helpers.
    bool olderStoreBlocks(const Inst &load, const Inst *&forward) const;
    void startDataAccess(Inst &inst, Tick edge, bool is_write);
    void retireWindowHead();

    Volt voltage(DomainId domain) const;
    std::uint64_t lineOf(std::uint64_t addr) const;
};

} // namespace mcd

#endif // MCD_CORE_SIMULATOR_HH
