/**
 * @file
 * Physical register file and rename map. The MCD extension of [22]
 * splits SimpleScalar's RUU into separate ROB / issue queue / physical
 * register file structures; this models the last of those, including the
 * cross-domain result visibility rule: a register written at time t by
 * domain D is usable in domain C only at a C edge that satisfies the
 * synchronization window against t.
 */

#ifndef MCD_CORE_REGFILE_HH
#define MCD_CORE_REGFILE_HH

#include <array>
#include <vector>

#include "common/serial.hh"
#include "clock/clock_system.hh"
#include "common/types.hh"
#include "workload/micro_op.hh"

namespace mcd
{

/** One physical register file (integer or floating point). */
class PhysRegFile
{
  public:
    explicit PhysRegFile(int num_regs);

    /** Allocate a free register (returned pending); -1 if exhausted. */
    int alloc();

    /** Return a register to the free list. */
    void free(int reg);

    /** Record the result write at `time` by `producer`. */
    void markWritten(int reg, Tick time, DomainId producer);

    /** Has the register been written at all? */
    bool written(int reg) const;

    /**
     * Is the register's value usable by `consumer` at `edge`, given the
     * producing domain and the synchronization rule?
     */
    bool readyAt(int reg, DomainId consumer, Tick edge,
                 const ClockSystem &clocks) const;

    int freeCount() const { return static_cast<int>(free_list_.size()); }
    int size() const { return static_cast<int>(regs_.size()); }

    /** Serialize entries and free-list order (checkpointing). The
     *  free list is a LIFO, so its order shapes future allocations
     *  and must round-trip exactly. */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on size mismatch. */
    bool loadState(serial::Reader &in);

  private:
    struct Entry
    {
        bool written = false;
        Tick writeTime = 0;
        DomainId producer = DomainId::Integer;
    };

    std::vector<Entry> regs_;
    std::vector<int> free_list_;
};

/**
 * Logical-to-physical mapping over the 64-entry logical namespace
 * (0-31 integer, 32-63 FP). Logical register 0 is the hardwired zero
 * register and is never renamed.
 */
class RenameMap
{
  public:
    /** Set up identity-ish initial mappings, drawing from both files. */
    RenameMap(PhysRegFile &int_file, PhysRegFile &fp_file);

    /** Current physical register for a logical register (-1 for reg 0). */
    int lookup(int logical) const;

    /** Update the mapping; returns the previous physical register. */
    int rename(int logical, int phys);

    /** Which file a logical register lives in. */
    static bool isFp(int logical) { return logical >= NUM_INT_ARCH_REGS; }

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    std::array<int, NUM_ARCH_REGS> map_;
};

} // namespace mcd

#endif // MCD_CORE_REGFILE_HH
