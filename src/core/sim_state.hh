/**
 * @file
 * The simulator's complete mutable state, factored out of the Simulator
 * class into one explicit, serializable aggregate.
 *
 * Layout is chosen for the hot loop: the program-order window is a flat
 * power-of-two ring of Inst records indexed by `seq & ringMask`, so the
 * ROB is just the half-open sequence range [robHead, nextSeq) and every
 * queue (issue queues, LSQ, execution lists) holds sequence numbers
 * instead of pointers. That removes the deque node-chasing of the old
 * representation, makes entry lookup a mask-and-index, and — because
 * sequence numbers survive serialization while pointers do not — is what
 * lets a whole machine state round-trip through a checkpoint byte-
 * identically (see Simulator::saveCheckpoint).
 *
 * Interval accumulators are kept structure-of-arrays (one array per
 * field across the controlled domains), matching the access pattern of
 * tickDomain, which touches exactly one field set per domain edge.
 */

#ifndef MCD_CORE_SIM_STATE_HH
#define MCD_CORE_SIM_STATE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/inst.hh"
#include "core/interval.hh"
#include "workload/micro_op.hh"

namespace mcd
{

/** Sentinel sequence number ("no instruction"). */
constexpr std::uint64_t NO_SEQ = ~0ull;

/** All mutable machine state of one simulated core. */
struct SimState
{
    /**
     * @param rob_size  ROB capacity (sizes the initial ring)
     * @param lsq_size  LSQ capacity (ditto)
     */
    SimState(int rob_size, int lsq_size);

    // --- program-order window (ring) ---
    std::vector<Inst> ring;        //!< power-of-two ring of live insts
    std::uint64_t ringMask = 0;
    std::uint64_t windowHead = 0;  //!< oldest not-yet-retired seq
    std::uint64_t nextSeq = 0;     //!< next seq to dispatch
    std::uint64_t robHead = 0;     //!< oldest uncommitted seq

    // --- scheduling queues (ordered oldest-first, by seq) ---
    std::vector<std::uint64_t> intIq;
    std::vector<std::uint64_t> fpIq;
    std::vector<std::uint64_t> lsq;

    // --- in-execution lists (unordered; swap-remove) ---
    std::vector<std::uint64_t> intExec;
    std::vector<std::uint64_t> fpExec;
    std::vector<std::uint64_t> lsExec;

    // Non-pipelined unit occupancy (divide/sqrt), in remaining cycles.
    int intDivBusy = 0;
    int fpDivBusy = 0;

    int mshrInUse = 0;

    // --- fetch state ---
    bool havePendingOp = false;
    MicroOp pendingOp{};
    std::uint64_t lastFetchLine = ~0ull;
    Tick icacheStallUntil = 0;
    std::uint64_t stallBranchSeq = NO_SEQ; //!< mispredicted branch waited on
    Tick branchResolveTime = MAX_TICK;
    DomainId branchResolveDomain = DomainId::Integer;
    int redirectPenaltyLeft = 0;

    // --- global progress ---
    Tick now = 0;
    std::uint64_t committed = 0;
    std::uint64_t feCycles = 0;

    // --- measurement window bases (exclude warm-up once reset) ---
    std::uint64_t measCommittedBase = 0;
    std::uint64_t measFeCyclesBase = 0;
    Tick measTimeBase = 0;

    // --- event counters ---
    Counter branches;
    Counter mispredicts;
    Counter loads;
    Counter stores;

    // --- interval machinery (structure-of-arrays accumulators) ---
    std::uint64_t intervalIndex = 0;
    std::uint64_t intervalStartInsts = 0;
    std::uint64_t intervalStartFeCycles = 0;
    Tick intervalStartTime = 0;
    NanoJoule intervalStartEnergy = 0.0;
    std::array<double, NUM_CONTROLLED> ivOccupancySum{};
    std::array<std::uint64_t, NUM_CONTROLLED> ivCycles{};
    std::array<std::uint64_t, NUM_CONTROLLED> ivBusyCycles{};
    std::array<std::uint64_t, NUM_CONTROLLED> ivIssued{};
    double robOccupancySum = 0.0; //!< per-FE-cycle, interval-local

    // --- accessors ---
    Inst &inst(std::uint64_t seq) { return ring[seq & ringMask]; }
    const Inst &
    inst(std::uint64_t seq) const
    {
        return ring[seq & ringMask];
    }

    /** Uncommitted (ROB-resident) instruction count. */
    int robCount() const { return static_cast<int>(nextSeq - robHead); }

    /** Live (dispatched, not yet retired) window span. */
    std::uint64_t liveSpan() const { return nextSeq - windowHead; }

    /**
     * Claim the ring slot for the next sequence number, growing the
     * ring if the live span has caught up with its capacity (possible
     * when slow-draining committed stores pin the window head). The
     * returned entry is reset with its seq assigned. Invalidates
     * references into the ring when growth occurs.
     */
    Inst &allocate();

    /** Advance the window head past retired entries. */
    void retireHead();

    /** Clear interval accumulators (boundary / measurement reset). */
    void resetIntervalAccum();

    /** Serialize everything, live window entries included. */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on malformed or oversized data. */
    bool loadState(serial::Reader &in);

  private:
    void grow();
};

} // namespace mcd

#endif // MCD_CORE_SIM_STATE_HH
