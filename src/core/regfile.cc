#include "core/regfile.hh"

#include "common/logging.hh"

namespace mcd
{

PhysRegFile::PhysRegFile(int num_regs)
    : regs_(static_cast<std::size_t>(num_regs))
{
    free_list_.reserve(static_cast<std::size_t>(num_regs));
    for (int r = num_regs - 1; r >= 0; --r)
        free_list_.push_back(r);
}

int
PhysRegFile::alloc()
{
    if (free_list_.empty())
        return -1;
    int reg = free_list_.back();
    free_list_.pop_back();
    regs_[static_cast<std::size_t>(reg)] = Entry{};
    return reg;
}

void
PhysRegFile::free(int reg)
{
    if (reg < 0 || reg >= size())
        mcd_panic("freeing bad physical register %d", reg);
    free_list_.push_back(reg);
}

void
PhysRegFile::markWritten(int reg, Tick time, DomainId producer)
{
    Entry &e = regs_[static_cast<std::size_t>(reg)];
    e.written = true;
    e.writeTime = time;
    e.producer = producer;
}

bool
PhysRegFile::written(int reg) const
{
    return regs_[static_cast<std::size_t>(reg)].written;
}

bool
PhysRegFile::readyAt(int reg, DomainId consumer, Tick edge,
                     const ClockSystem &clocks) const
{
    if (reg < 0)
        return true; // zero register / no operand
    const Entry &e = regs_[static_cast<std::size_t>(reg)];
    if (!e.written)
        return false;
    return clocks.visible(e.producer, e.writeTime, consumer, edge);
}

void
PhysRegFile::saveState(std::string &out) const
{
    serial::appendU64(out, regs_.size());
    for (const Entry &e : regs_) {
        serial::appendU64(out, e.written ? 1 : 0);
        serial::appendI64(out, e.writeTime);
        serial::appendI64(out, static_cast<int>(e.producer));
    }
    serial::appendU64(out, free_list_.size());
    for (int r : free_list_)
        serial::appendI64(out, r);
}

bool
PhysRegFile::loadState(serial::Reader &in)
{
    if (in.readU64() != regs_.size())
        return false;
    for (Entry &e : regs_) {
        e.written = in.readU64() != 0;
        e.writeTime = in.readI64();
        e.producer = static_cast<DomainId>(in.readI64());
    }
    std::uint64_t free_count = in.readU64();
    if (!in.ok() || free_count > regs_.size())
        return false;
    free_list_.clear();
    for (std::uint64_t i = 0; i < free_count; ++i)
        free_list_.push_back(static_cast<int>(in.readI64()));
    return in.ok();
}

void
RenameMap::saveState(std::string &out) const
{
    for (int phys : map_)
        serial::appendI64(out, phys);
}

bool
RenameMap::loadState(serial::Reader &in)
{
    for (int &phys : map_)
        phys = static_cast<int>(in.readI64());
    return in.ok();
}

RenameMap::RenameMap(PhysRegFile &int_file, PhysRegFile &fp_file)
{
    map_[0] = -1; // zero register
    for (int l = 1; l < NUM_INT_ARCH_REGS; ++l) {
        int phys = int_file.alloc();
        if (phys < 0)
            mcd_panic("too few integer physical registers");
        int_file.markWritten(phys, 0, DomainId::Integer);
        map_[static_cast<std::size_t>(l)] = phys;
    }
    for (int l = NUM_INT_ARCH_REGS; l < NUM_ARCH_REGS; ++l) {
        int phys = fp_file.alloc();
        if (phys < 0)
            mcd_panic("too few FP physical registers");
        fp_file.markWritten(phys, 0, DomainId::FloatingPoint);
        map_[static_cast<std::size_t>(l)] = phys;
    }
}

int
RenameMap::lookup(int logical) const
{
    if (logical <= 0)
        return -1;
    return map_[static_cast<std::size_t>(logical)];
}

int
RenameMap::rename(int logical, int phys)
{
    if (logical <= 0)
        mcd_panic("renaming the zero register");
    int old = map_[static_cast<std::size_t>(logical)];
    map_[static_cast<std::size_t>(logical)] = phys;
    return old;
}

} // namespace mcd
