/**
 * @file
 * Structural parameters of the simulated Alpha-21264-like MCD processor.
 * Defaults are Table 4 of the paper. Latencies are in cycles of the
 * owning domain's clock; the issue width of 6 is split 4 integer + 2
 * floating point as in the 21264, with 2 load/store ports.
 */

#ifndef MCD_CORE_CORE_CONFIG_HH
#define MCD_CORE_CORE_CONFIG_HH

#include "memory/memory_hierarchy.hh"

namespace mcd
{

/** Core structural configuration (Table 4). */
struct CoreConfig
{
    int decodeWidth = 4;      //!< fetch/rename/dispatch width
    int intIssueWidth = 4;    //!< integer ops issued per integer cycle
    int fpIssueWidth = 2;     //!< FP ops issued per FP cycle
    int memIssueWidth = 2;    //!< LSQ operations per load/store cycle
    int retireWidth = 11;

    int robSize = 80;
    int intIqSize = 20;
    int fpIqSize = 15;
    int lsqSize = 64;
    int intPhysRegs = 72;
    int fpPhysRegs = 72;

    int branchMispredictPenalty = 7; //!< front-end cycles after redirect

    int intAluCount = 4;      //!< plus 1 mult/div unit
    int fpAluCount = 2;       //!< plus 1 mult/div/sqrt unit

    int intAluLatency = 1;
    int intMultLatency = 3;
    int intDivLatency = 20;   //!< occupies the integer mult unit
    int fpAddLatency = 2;
    int fpMultLatency = 4;
    int fpDivLatency = 12;    //!< occupies the FP mult unit
    int fpSqrtLatency = 18;   //!< occupies the FP mult unit

    int mshrCount = 8;        //!< outstanding misses past L1

    MemoryHierarchyConfig memory{};

    /** Controller sampling interval in committed instructions. */
    int intervalInstructions = 10000;
};

} // namespace mcd

#endif // MCD_CORE_CORE_CONFIG_HH
