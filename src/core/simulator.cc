#include "core/simulator.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "telemetry/profiler.hh"

namespace mcd
{

namespace
{

using telemetry::Phase;
using telemetry::ScopedTimer;

/** Bumped whenever the checkpoint byte layout changes. */
constexpr std::uint64_t CHECKPOINT_FORMAT = 1;

/** Ordered erase of one sequence number from a queue. */
void
eraseSeq(std::vector<std::uint64_t> &queue, std::uint64_t seq)
{
    std::erase(queue, seq);
}

} // namespace

DomainId
controlledDomainId(int slot)
{
    switch (slot) {
      case CTL_INT: return DomainId::Integer;
      case CTL_FP:  return DomainId::FloatingPoint;
      case CTL_LS:  return DomainId::LoadStore;
      default: mcd_panic("bad controlled-domain slot %d", slot);
    }
}

Simulator::Simulator(const SimConfig &config, WorkloadGenerator &workload,
                     FrequencyController *controller)
    : config_(config), workload_(&workload), controller_(controller),
      dvfs_(config.dvfs),
      clocks_(dvfs_, config.clocks),
      energy_model_(config.energy,
                    config.clocks.mode == ClockMode::Mcd),
      power_(energy_model_),
      memory_(config.core.memory),
      int_regs_(config.core.intPhysRegs),
      fp_regs_(config.core.fpPhysRegs),
      rename_(int_regs_, fp_regs_),
      state_(config.core.robSize, config.core.lsqSize)
{
    const char *per_op = std::getenv("MCD_POWER_PEROP");
    power_per_op_ = per_op && *per_op && *per_op != '0';
    if (controller_)
        controller_->onStart(clocks_);
    refreshBatchVoltages();
}

Volt
Simulator::voltage(DomainId domain) const
{
    return clocks_.clock(domain).voltage();
}

std::uint64_t
Simulator::lineOf(std::uint64_t addr) const
{
    return addr & ~static_cast<std::uint64_t>(
        config_.core.memory.l1i.lineBytes - 1);
}

int
Simulator::execLatency(OpClass cls) const
{
    const CoreConfig &c = config_.core;
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
      case OpClass::Nop:
        return c.intAluLatency;
      case OpClass::IntMult: return c.intMultLatency;
      case OpClass::IntDiv:  return c.intDivLatency;
      case OpClass::FpAdd:   return c.fpAddLatency;
      case OpClass::FpMult:  return c.fpMultLatency;
      case OpClass::FpDiv:   return c.fpDivLatency;
      case OpClass::FpSqrt:  return c.fpSqrtLatency;
      default:
        mcd_panic("no execution latency for op class %d",
                  static_cast<int>(cls));
    }
}

// ---------------------------------------------------------------------
// Batched energy accounting
// ---------------------------------------------------------------------

void
Simulator::flushPower() const
{
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto di = static_cast<std::size_t>(d);
        if (batch_.cycles[di]) {
            power_.chargeCycle(static_cast<DomainId>(d), batch_.volt[di],
                               batch_.cycles[di]);
            batch_.cycles[di] = 0;
        }
    }
    for (int s = 0; s < NUM_STRUCTURES; ++s) {
        auto si = static_cast<std::size_t>(s);
        for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
            auto di = static_cast<std::size_t>(d);
            if (batch_.accesses[si][di]) {
                power_.chargeAccess(static_cast<StructureId>(s),
                                    batch_.volt[di],
                                    batch_.accesses[si][di]);
                batch_.accesses[si][di] = 0;
            }
        }
    }
    if (batch_.memAccesses) {
        power_.chargeMemoryAccess(batch_.memAccesses);
        batch_.memAccesses = 0;
    }
}

void
Simulator::refreshBatchVoltages() const
{
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto di = static_cast<std::size_t>(d);
        const DomainClock &clock = clocks_.clock(static_cast<DomainId>(d));
        batch_.freq[di] = clock.frequency();
        batch_.volt[di] = clock.voltage();
    }
}

void
Simulator::syncBatchVoltages()
{
    bool changed = false;
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        if (clocks_.clock(static_cast<DomainId>(d)).frequency() !=
            batch_.freq[static_cast<std::size_t>(d)]) {
            changed = true;
            break;
        }
    }
    if (changed) {
        // Pending charges predate the voltage change; apply them at the
        // voltages they were incurred under, then re-cache.
        flushPower();
        refreshBatchVoltages();
    }
}

void
Simulator::chargeCycleB(DomainId domain)
{
    ++batch_.cycles[static_cast<std::size_t>(domainIndex(domain))];
    if (power_per_op_)
        flushPower();
}

void
Simulator::chargeAccessB(StructureId structure, DomainId domain,
                         std::uint64_t count)
{
    batch_.accesses[static_cast<std::size_t>(structure)]
                   [static_cast<std::size_t>(domainIndex(domain))] +=
        count;
    if (power_per_op_)
        flushPower();
}

void
Simulator::chargeMemB()
{
    ++batch_.memAccesses;
    if (power_per_op_)
        flushPower();
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

void
Simulator::run(std::uint64_t instructions)
{
    runTo(state_.committed + instructions);
}

void
Simulator::runTo(std::uint64_t target)
{
    while (state_.committed < target)
        step();
}

void
Simulator::step()
{
    if (clocks_.mode() == ClockMode::Synchronous) {
        DomainClock &clock = clocks_.clock(DomainId::FrontEnd);
        Tick edge = clock.advance();
        state_.now = edge;
        syncBatchVoltages();
        // Execution domains tick before the front end so same-edge
        // completion -> commit and dispatch -> next-edge issue orderings
        // match a conventional synchronous pipeline.
        tickDomain(DomainId::Integer, edge);
        tickDomain(DomainId::FloatingPoint, edge);
        tickDomain(DomainId::LoadStore, edge);
        tickDomain(DomainId::FrontEnd, edge);
        return;
    }

    static constexpr DomainId ORDER[] = {
        DomainId::Integer, DomainId::FloatingPoint,
        DomainId::LoadStore, DomainId::FrontEnd,
    };
    DomainId best = ORDER[0];
    Tick best_edge = clocks_.clock(best).nextEdge();
    for (int i = 1; i < NUM_CLOCKED_DOMAINS; ++i) {
        Tick t = clocks_.clock(ORDER[i]).nextEdge();
        if (t < best_edge) {
            best = ORDER[i];
            best_edge = t;
        }
    }
    Tick edge = clocks_.clock(best).advance();
    state_.now = edge;
    syncBatchVoltages();
    tickDomain(best, edge);
}

void
Simulator::tickDomain(DomainId domain, Tick edge)
{
    chargeCycleB(domain);

    switch (domain) {
      case DomainId::FrontEnd:
        ++state_.feCycles;
        state_.robOccupancySum += static_cast<double>(state_.robCount());
        frontEndTick(edge);
        break;
      case DomainId::Integer:
        state_.ivOccupancySum[CTL_INT] +=
            static_cast<double>(state_.intIq.size());
        ++state_.ivCycles[CTL_INT];
        if (!state_.intIq.empty() || !state_.intExec.empty())
            ++state_.ivBusyCycles[CTL_INT];
        integerTick(edge);
        break;
      case DomainId::FloatingPoint:
        state_.ivOccupancySum[CTL_FP] +=
            static_cast<double>(state_.fpIq.size());
        ++state_.ivCycles[CTL_FP];
        if (!state_.fpIq.empty() || !state_.fpExec.empty())
            ++state_.ivBusyCycles[CTL_FP];
        fpTick(edge);
        break;
      case DomainId::LoadStore:
        state_.ivOccupancySum[CTL_LS] +=
            static_cast<double>(state_.lsq.size());
        ++state_.ivCycles[CTL_LS];
        if (!state_.lsq.empty())
            ++state_.ivBusyCycles[CTL_LS];
        loadStoreTick(edge);
        break;
      default:
        mcd_panic("cannot tick external domain");
    }
}

// ---------------------------------------------------------------------
// Front end: commit, then fetch + rename + dispatch
// ---------------------------------------------------------------------

void
Simulator::frontEndTick(Tick edge)
{
    commitStage(edge);
    fetchAndDispatch(edge);
}

void
Simulator::commitStage(Tick edge)
{
    // Profiler phases nest (the interval boundary fires inside this
    // loop), so sim.commit's time includes sim.interval's — the
    // breakdown is hierarchical, not a partition.
    ScopedTimer timer(Phase::SimCommit);
    // No run-target ceiling here: a run may overshoot its commit target
    // by the tail of one retire group, which keeps stopping behavior-
    // free (runTo composes exactly, the checkpoint contract relies on
    // it).
    int budget = config_.core.retireWidth;
    while (budget > 0 && state_.robHead != state_.nextSeq) {
        Inst &head = state_.inst(state_.robHead);
        if (!head.completed)
            break;
        if (!clocks_.visible(head.execDomain, head.completeTime,
                             DomainId::FrontEnd, edge))
            break;

        head.committed = true;
        chargeAccessB(StructureId::Rob, DomainId::FrontEnd);

        if (isControlClass(head.op.cls)) {
            bpred_.update(head.op.pc, head.op.taken, head.op.target,
                          head.op.cls == OpClass::Call,
                          head.op.cls == OpClass::Return);
        }
        if (head.hasDst() && head.oldPhysDst >= 0) {
            (head.dstIsFp() ? fp_regs_ : int_regs_).free(head.oldPhysDst);
        }
        if (head.isLoad) {
            head.lsqFreed = true;
            eraseSeq(state_.lsq, head.seq);
        }
        if (head.isStore)
            head.committedStore = true;

        ++state_.robHead;
        ++state_.committed;
        --budget;

        if (state_.committed - state_.intervalStartInsts >=
            static_cast<std::uint64_t>(config_.core.intervalInstructions))
            handleIntervalBoundary(edge);
    }
    state_.retireHead();
}

void
Simulator::handleIntervalBoundary(Tick edge)
{
    ScopedTimer timer(Phase::SimInterval);
    flushPower();

    IntervalStats stats;
    stats.index = state_.intervalIndex++;
    stats.instructions = state_.committed - state_.intervalStartInsts;
    stats.feCycles = state_.feCycles - state_.intervalStartFeCycles;
    stats.ipc = stats.feCycles
        ? static_cast<double>(stats.instructions) /
          static_cast<double>(stats.feCycles)
        : 0.0;
    stats.startTime = state_.intervalStartTime;
    stats.endTime = edge;
    stats.chipEnergy = power_.chipEnergy() - state_.intervalStartEnergy;

    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        auto si = static_cast<std::size_t>(slot);
        DomainIntervalStats &d = stats.domains[si];
        d.queueUtilization = stats.instructions
            ? state_.ivOccupancySum[si] /
              static_cast<double>(stats.instructions)
            : 0.0;
        d.avgOccupancy = state_.ivCycles[si]
            ? state_.ivOccupancySum[si] /
              static_cast<double>(state_.ivCycles[si])
            : 0.0;
        d.issued = state_.ivIssued[si];
        d.cycles = state_.ivCycles[si];
        d.busyCycles = state_.ivBusyCycles[si];
        d.frequency =
            clocks_.clock(controlledDomainId(slot)).targetFrequency();
    }

    stats.robUtilization = stats.instructions
        ? state_.robOccupancySum / static_cast<double>(stats.instructions)
        : 0.0;
    stats.avgRobOccupancy = stats.feCycles
        ? state_.robOccupancySum / static_cast<double>(stats.feCycles)
        : 0.0;
    stats.feFrequency =
        clocks_.clock(DomainId::FrontEnd).targetFrequency();

    if (controller_)
        controller_->onInterval(stats, clocks_);
    if (interval_observer_)
        interval_observer_(stats);
    // The controller may have jumped a frequency with no slew.
    syncBatchVoltages();

    state_.resetIntervalAccum();
    state_.intervalStartInsts = state_.committed;
    state_.intervalStartFeCycles = state_.feCycles;
    state_.intervalStartTime = edge;
    state_.intervalStartEnergy = power_.chipEnergy();
}

bool
Simulator::resourcesAvailable(const MicroOp &op) const
{
    const CoreConfig &c = config_.core;
    if (state_.robCount() >= c.robSize)
        return false;
    if (op.dst > 0) {
        const PhysRegFile &file =
            RenameMap::isFp(op.dst) ? fp_regs_ : int_regs_;
        if (file.freeCount() == 0)
            return false;
    }
    if (isMemClass(op.cls))
        return static_cast<int>(state_.lsq.size()) < c.lsqSize;
    if (isFpClass(op.cls))
        return static_cast<int>(state_.fpIq.size()) < c.fpIqSize;
    return static_cast<int>(state_.intIq.size()) < c.intIqSize;
}

void
Simulator::fetchAndDispatch(Tick edge)
{
    ScopedTimer timer(Phase::SimFetch);
    const CoreConfig &c = config_.core;

    if (state_.stallBranchSeq != NO_SEQ) {
        if (state_.branchResolveTime == MAX_TICK)
            return; // branch still executing
        if (!clocks_.visible(state_.branchResolveDomain,
                             state_.branchResolveTime,
                             DomainId::FrontEnd, edge))
            return; // redirect has not crossed into the front end yet
        if (state_.redirectPenaltyLeft > 0) {
            --state_.redirectPenaltyLeft;
            // Wrong-path fetch shadow: the fetch engine keeps running.
            chargeAccessB(StructureId::Icache, DomainId::FrontEnd);
            return;
        }
        state_.stallBranchSeq = NO_SEQ;
        state_.branchResolveTime = MAX_TICK;
    }

    if (state_.icacheStallUntil > edge)
        return;

    bool accessed_line = false;
    for (int budget = c.decodeWidth; budget > 0; --budget) {
        if (!state_.havePendingOp) {
            state_.pendingOp = workload_->next();
            state_.havePendingOp = true;
        }
        const MicroOp &op = state_.pendingOp;
        if (!resourcesAvailable(op))
            break;

        std::uint64_t line = lineOf(op.pc);
        if (line != state_.lastFetchLine) {
            if (accessed_line)
                break; // one I-cache line per fetch cycle
            accessed_line = true;
            chargeAccessB(StructureId::Icache, DomainId::FrontEnd);
            MemAccessOutcome outcome = memory_.accessInst(op.pc);
            state_.lastFetchLine = line;
            if (outcome.level != MemLevel::L1) {
                chargeAccessB(
                    StructureId::L2Cache, DomainId::LoadStore,
                    static_cast<std::uint64_t>(outcome.l2Accesses));
                Tick ls_period = periodFromFreq(
                    clocks_.clock(DomainId::LoadStore).frequency());
                Tick done = edge +
                    config_.core.memory.l2Latency * ls_period;
                for (int m = 0; m < outcome.memAccesses; ++m) {
                    done = memory_.memory().schedule(done);
                    chargeMemB();
                }
                state_.icacheStallUntil = done + clocks_.syncWindow();
                break;
            }
        }

        if (!dispatchOne(op, edge))
            break;
        state_.havePendingOp = false;

        const Inst &inst = state_.inst(state_.nextSeq - 1);
        if (isControlClass(op.cls)) {
            if (inst.mispredicted) {
                state_.stallBranchSeq = inst.seq;
                state_.redirectPenaltyLeft = c.branchMispredictPenalty;
                state_.branchResolveTime = MAX_TICK;
                break;
            }
            if (op.taken)
                break; // redirect to the predicted target next cycle
        }
    }
}

bool
Simulator::dispatchOne(const MicroOp &op, Tick edge)
{
    Inst &inst = state_.allocate();
    inst.op = op;
    inst.dispatchTime = edge;
    inst.isLoad = isLoadClass(op.cls);
    inst.isStore = isStoreClass(op.cls);
    inst.execDomain = isMemClass(op.cls) ? DomainId::LoadStore
        : isFpClass(op.cls)              ? DomainId::FloatingPoint
                                         : DomainId::Integer;

    inst.physA = rename_.lookup(op.srcA);
    inst.physB = rename_.lookup(op.srcB);

    if (isControlClass(op.cls)) {
        state_.branches.inc();
        chargeAccessB(StructureId::BranchPredictor, DomainId::FrontEnd);
        BranchPrediction pred = bpred_.predict(
            op.pc, op.cls == OpClass::Call, op.cls == OpClass::Return,
            op.fallthrough());
        bool correct = pred.predictTaken == op.taken &&
            (!op.taken || pred.target == op.target);
        inst.mispredicted = !correct;
        if (!correct)
            state_.mispredicts.inc();
    }

    if (op.dst > 0) {
        PhysRegFile &file =
            RenameMap::isFp(op.dst) ? fp_regs_ : int_regs_;
        int phys = file.alloc();
        if (phys < 0)
            mcd_panic("dispatch without a free physical register");
        inst.physDst = phys;
        inst.oldPhysDst = rename_.rename(op.dst, phys);
    }

    chargeAccessB(StructureId::RenameTable, DomainId::FrontEnd);
    chargeAccessB(StructureId::Rob, DomainId::FrontEnd);
    // ROB membership is implicit: every live seq >= robHead is in it.

    if (isMemClass(op.cls)) {
        state_.lsq.push_back(inst.seq);
        chargeAccessB(StructureId::Lsq, DomainId::LoadStore);
        state_.loads.inc(inst.isLoad ? 1 : 0);
        state_.stores.inc(inst.isStore ? 1 : 0);
    } else if (isFpClass(op.cls)) {
        state_.fpIq.push_back(inst.seq);
        chargeAccessB(StructureId::FpIssueQueue,
                      DomainId::FloatingPoint);
    } else {
        state_.intIq.push_back(inst.seq);
        chargeAccessB(StructureId::IntIssueQueue, DomainId::Integer);
    }
    return true;
}

// ---------------------------------------------------------------------
// Execution domains
// ---------------------------------------------------------------------

bool
Simulator::regReady(int logical, int phys, DomainId domain,
                    Tick edge) const
{
    if (logical <= 0)
        return true;
    const PhysRegFile &file =
        RenameMap::isFp(logical) ? fp_regs_ : int_regs_;
    return file.readyAt(phys, domain, edge, clocks_);
}

bool
Simulator::operandsReady(const Inst &inst, DomainId domain,
                         Tick edge) const
{
    return regReady(inst.op.srcA, inst.physA, domain, edge) &&
           regReady(inst.op.srcB, inst.physB, domain, edge);
}

void
Simulator::completeInst(Inst &inst, DomainId domain, Tick edge)
{
    inst.completed = true;
    inst.completeTime = edge;
    if (inst.physDst >= 0) {
        PhysRegFile &file =
            inst.dstIsFp() ? fp_regs_ : int_regs_;
        file.markWritten(inst.physDst, edge, domain);
        chargeAccessB(inst.dstIsFp() ? StructureId::FpRegFile
                                     : StructureId::IntRegFile,
                      domain);
        chargeAccessB(StructureId::ResultBus, domain);
    }
    if (inst.usesMshr && inst.isLoad) {
        --state_.mshrInUse;
        inst.usesMshr = false;
    }
    if (inst.mispredicted && isControlClass(inst.op.cls)) {
        state_.branchResolveTime = edge;
        state_.branchResolveDomain = domain;
    }
}

void
Simulator::processCompletions(std::vector<std::uint64_t> &exec_list,
                              DomainId domain, Tick edge)
{
    ScopedTimer timer(Phase::SimWakeup);
    for (std::size_t i = 0; i < exec_list.size();) {
        Inst &inst = state_.inst(exec_list[i]);
        if (inst.remainingCycles > 0)
            --inst.remainingCycles;
        if (inst.remainingCycles == 0 &&
            (inst.absDoneTime == MAX_TICK || edge >= inst.absDoneTime)) {
            if (inst.isStore && inst.writeIssued) {
                // A committed store write finishing: free the LSQ slot.
                inst.lsqFreed = true;
                if (inst.usesMshr) {
                    --state_.mshrInUse;
                    inst.usesMshr = false;
                }
                eraseSeq(state_.lsq, inst.seq);
            } else {
                completeInst(inst, domain, edge);
            }
            exec_list[i] = exec_list.back();
            exec_list.pop_back();
        } else {
            ++i;
        }
    }
}

void
Simulator::integerTick(Tick edge)
{
    if (state_.intDivBusy > 0)
        --state_.intDivBusy;
    processCompletions(state_.intExec, DomainId::Integer, edge);
    issueInteger(edge);
}

void
Simulator::fpTick(Tick edge)
{
    if (state_.fpDivBusy > 0)
        --state_.fpDivBusy;
    processCompletions(state_.fpExec, DomainId::FloatingPoint, edge);
    issueFp(edge);
}

void
Simulator::issueInteger(Tick edge)
{
    ScopedTimer timer(Phase::SimIssueInt);
    const CoreConfig &c = config_.core;
    std::vector<std::uint64_t> &q = state_.intIq;
    int budget = c.intIssueWidth;
    int alu_slots = c.intAluCount;
    int mult_slots = state_.intDivBusy == 0 ? 1 : 0;

    for (std::size_t i = 0; i < q.size() && budget > 0;) {
        Inst &inst = state_.inst(q[i]);
        // Queue-write latency: the entry is latched into the issue
        // queue on the first domain edge that satisfies the sync rule
        // and becomes issue-eligible the following edge.
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::Integer, edge))
                inst.enqueued = true;
            ++i;
            continue;
        }
        if (!operandsReady(inst, DomainId::Integer, edge)) {
            ++i;
            continue;
        }

        OpClass cls = inst.op.cls;
        if (cls == OpClass::IntMult) {
            if (mult_slots == 0) {
                ++i;
                continue;
            }
            --mult_slots;
            chargeAccessB(StructureId::IntMult, DomainId::Integer);
        } else if (cls == OpClass::IntDiv) {
            if (mult_slots == 0) {
                ++i;
                continue;
            }
            mult_slots = 0;
            state_.intDivBusy = c.intDivLatency;
            chargeAccessB(StructureId::IntMult, DomainId::Integer);
        } else {
            if (alu_slots == 0) {
                ++i;
                continue;
            }
            --alu_slots;
            chargeAccessB(StructureId::IntAlu, DomainId::Integer);
        }

        inst.issued = true;
        inst.remainingCycles = execLatency(cls);
        state_.intExec.push_back(inst.seq);
        chargeAccessB(StructureId::IntIssueQueue, DomainId::Integer);
        int reads = (inst.op.srcA > 0 ? 1 : 0) +
                    (inst.op.srcB > 0 ? 1 : 0);
        chargeAccessB(StructureId::IntRegFile, DomainId::Integer,
                      static_cast<std::uint64_t>(reads));
        ++state_.ivIssued[CTL_INT];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        --budget;
    }
}

void
Simulator::issueFp(Tick edge)
{
    ScopedTimer timer(Phase::SimIssueFp);
    const CoreConfig &c = config_.core;
    std::vector<std::uint64_t> &q = state_.fpIq;
    int budget = c.fpIssueWidth;
    int alu_slots = c.fpAluCount;
    int mult_slots = state_.fpDivBusy == 0 ? 1 : 0;

    for (std::size_t i = 0; i < q.size() && budget > 0;) {
        Inst &inst = state_.inst(q[i]);
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::FloatingPoint, edge))
                inst.enqueued = true;
            ++i;
            continue;
        }
        if (!operandsReady(inst, DomainId::FloatingPoint, edge)) {
            ++i;
            continue;
        }

        OpClass cls = inst.op.cls;
        if (cls == OpClass::FpMult) {
            if (mult_slots == 0) {
                ++i;
                continue;
            }
            --mult_slots;
            chargeAccessB(StructureId::FpMult, DomainId::FloatingPoint);
        } else if (cls == OpClass::FpDiv || cls == OpClass::FpSqrt) {
            if (mult_slots == 0) {
                ++i;
                continue;
            }
            mult_slots = 0;
            state_.fpDivBusy = cls == OpClass::FpDiv ? c.fpDivLatency
                                                     : c.fpSqrtLatency;
            chargeAccessB(StructureId::FpMult, DomainId::FloatingPoint);
        } else {
            if (alu_slots == 0) {
                ++i;
                continue;
            }
            --alu_slots;
            chargeAccessB(StructureId::FpAlu, DomainId::FloatingPoint);
        }

        inst.issued = true;
        inst.remainingCycles = execLatency(cls);
        state_.fpExec.push_back(inst.seq);
        chargeAccessB(StructureId::FpIssueQueue,
                      DomainId::FloatingPoint);
        int reads = (inst.op.srcA > 0 ? 1 : 0) +
                    (inst.op.srcB > 0 ? 1 : 0);
        chargeAccessB(StructureId::FpRegFile, DomainId::FloatingPoint,
                      static_cast<std::uint64_t>(reads));
        ++state_.ivIssued[CTL_FP];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
        --budget;
    }
}

// ---------------------------------------------------------------------
// Load/store domain
// ---------------------------------------------------------------------

bool
Simulator::olderStoreBlocks(const Inst &load, const Inst *&forward) const
{
    forward = nullptr;
    std::uint64_t load_word = load.op.memAddr >> 3;
    for (std::uint64_t seq : state_.lsq) {
        if (seq >= load.seq)
            break;
        const Inst &p = state_.inst(seq);
        if (!p.isStore)
            continue;
        if (!p.addrKnown)
            return true; // conservative disambiguation
        if ((p.op.memAddr >> 3) == load_word) {
            if (!p.dataReady)
                return true; // matching store, data not yet ready
            forward = &p;    // newest matching store wins
        }
    }
    return false;
}

void
Simulator::startDataAccess(Inst &inst, Tick edge, bool is_write)
{
    const CoreConfig &c = config_.core;

    MemAccessOutcome outcome =
        memory_.accessData(inst.op.memAddr, is_write);
    chargeAccessB(StructureId::Dcache, DomainId::LoadStore);
    chargeAccessB(StructureId::L2Cache, DomainId::LoadStore,
                  static_cast<std::uint64_t>(outcome.l2Accesses));

    int cycles = c.memory.l1Latency;
    Tick abs_done = MAX_TICK;
    if (outcome.level != MemLevel::L1) {
        cycles += c.memory.l2Latency;
        ++state_.mshrInUse;
        inst.usesMshr = true;
    }
    if (outcome.level == MemLevel::Memory) {
        Tick ls_period = periodFromFreq(
            clocks_.clock(DomainId::LoadStore).frequency());
        Tick request = edge + cycles * ls_period;
        for (int m = 0; m < outcome.memAccesses; ++m) {
            abs_done = memory_.memory().schedule(request);
            chargeMemB();
        }
        // Main memory is its own clock domain: crossing back into the
        // load/store domain pays the synchronization window.
        abs_done += clocks_.syncWindow();
    }

    inst.issued = true;
    inst.remainingCycles = cycles;
    inst.absDoneTime = abs_done;
    if (is_write)
        inst.writeIssued = true;
    else
        inst.memIssued = true;
    state_.lsExec.push_back(inst.seq);
}

void
Simulator::issueLoadStore(Tick edge)
{
    ScopedTimer timer(Phase::SimIssueLs);
    const CoreConfig &c = config_.core;
    int budget = c.memIssueWidth;

    for (std::size_t i = 0;
         i < state_.lsq.size() && budget > 0; ++i) {
        Inst &inst = state_.inst(state_.lsq[i]);
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::LoadStore, edge))
                inst.enqueued = true;
            continue;
        }

        if (inst.isStore) {
            if (!inst.addrKnown &&
                regReady(inst.op.srcA, inst.physA, DomainId::LoadStore,
                         edge)) {
                inst.addrKnown = true; // AGU operation
                chargeAccessB(StructureId::Lsq, DomainId::LoadStore);
                --budget;
            }
            if (!inst.dataReady &&
                regReady(inst.op.srcB, inst.physB, DomainId::LoadStore,
                         edge))
                inst.dataReady = true;
            if (inst.addrKnown && inst.dataReady && !inst.completed) {
                inst.completed = true;
                inst.completeTime = edge;
                inst.execDomain = DomainId::LoadStore;
                ++state_.ivIssued[CTL_LS];
            }
            continue;
        }

        if (!inst.isLoad || inst.memIssued)
            continue;
        if (!regReady(inst.op.srcA, inst.physA, DomainId::LoadStore,
                      edge))
            continue;

        const Inst *forward = nullptr;
        if (olderStoreBlocks(inst, forward))
            continue;

        if (forward) {
            inst.memIssued = true;
            inst.forwarded = true;
            inst.remainingCycles = 1;
            state_.lsExec.push_back(inst.seq);
            chargeAccessB(StructureId::Lsq, DomainId::LoadStore);
            ++state_.ivIssued[CTL_LS];
            --budget;
            continue;
        }

        bool hit = memory_.l1d().probe(inst.op.memAddr);
        if (!hit && state_.mshrInUse >= c.mshrCount)
            continue; // no MSHR free; retry next cycle
        chargeAccessB(StructureId::Lsq, DomainId::LoadStore);
        startDataAccess(inst, edge, false);
        ++state_.ivIssued[CTL_LS];
        --budget;
    }

    // Drain committed stores into the cache with leftover bandwidth.
    for (std::size_t i = 0;
         i < state_.lsq.size() && budget > 0; ++i) {
        Inst &inst = state_.inst(state_.lsq[i]);
        if (!inst.isStore || !inst.committedStore || inst.writeIssued)
            continue;
        bool hit = memory_.l1d().probe(inst.op.memAddr);
        if (!hit && state_.mshrInUse >= c.mshrCount)
            break; // stores drain in order
        chargeAccessB(StructureId::Lsq, DomainId::LoadStore);
        startDataAccess(inst, edge, true);
        --budget;
    }
}

void
Simulator::loadStoreTick(Tick edge)
{
    processCompletions(state_.lsExec, DomainId::LoadStore, edge);
    issueLoadStore(edge);
    state_.retireHead();
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

void
Simulator::engageController(FrequencyController *controller)
{
    flushPower();
    controller_ = controller;
    if (controller_)
        controller_->onStart(clocks_);
    syncBatchVoltages();
}

void
Simulator::resetMeasurement()
{
    // Pending batched charges predate the reset; drop them along with
    // the accumulators (identical to per-op accounting, where they
    // would already have been added and then zeroed here).
    batch_.cycles.fill(0);
    for (auto &per_domain : batch_.accesses)
        per_domain.fill(0);
    batch_.memAccesses = 0;
    power_.reset();

    state_.measCommittedBase = state_.committed;
    state_.measFeCyclesBase = state_.feCycles;
    state_.measTimeBase = state_.now;
    state_.branches.reset();
    state_.mispredicts.reset();
    state_.loads.reset();
    state_.stores.reset();
    state_.resetIntervalAccum();
    state_.intervalIndex = 0;
    state_.intervalStartInsts = state_.committed;
    state_.intervalStartFeCycles = state_.feCycles;
    state_.intervalStartTime = state_.now;
    state_.intervalStartEnergy = 0.0; // power_ was just reset
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

void
Simulator::saveCheckpoint(std::string &out) const
{
    ScopedTimer timer(Phase::CkptSave);
    serial::appendU64(out, CHECKPOINT_FORMAT);
    state_.saveState(out);
    clocks_.saveState(out);
    memory_.saveState(out);
    bpred_.saveState(out);
    int_regs_.saveState(out);
    fp_regs_.saveState(out);
    rename_.saveState(out);
    power_.saveState(out);
    // Pending charge batch: serialized rather than flushed, so the
    // resumed run flushes at the same points (and therefore sums the
    // same floating-point terms in the same order) as an unbroken run.
    for (std::uint64_t cycles : batch_.cycles)
        serial::appendU64(out, cycles);
    for (const auto &per_domain : batch_.accesses)
        for (std::uint64_t count : per_domain)
            serial::appendU64(out, count);
    serial::appendU64(out, batch_.memAccesses);
    workload_->saveState(out);
}

bool
Simulator::restoreCheckpoint(serial::Reader &in)
{
    ScopedTimer timer(Phase::CkptRestore);
    if (in.readU64() != CHECKPOINT_FORMAT)
        return false;
    if (!state_.loadState(in))
        return false;
    if (!clocks_.loadState(in))
        return false;
    if (!memory_.loadState(in))
        return false;
    if (!bpred_.loadState(in))
        return false;
    if (!int_regs_.loadState(in))
        return false;
    if (!fp_regs_.loadState(in))
        return false;
    if (!rename_.loadState(in))
        return false;
    if (!power_.loadState(in))
        return false;
    for (std::uint64_t &cycles : batch_.cycles)
        cycles = in.readU64();
    for (auto &per_domain : batch_.accesses)
        for (std::uint64_t &count : per_domain)
            count = in.readU64();
    batch_.memAccesses = in.readU64();
    if (!workload_->loadState(in))
        return false;
    // Voltage caches are derived state: recompute from the restored
    // clocks (cur_freq round-trips bit-exactly, so these match too).
    refreshBatchVoltages();
    return in.ok();
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

void
Simulator::dumpStats(StatDump &dump) const
{
    SimStats s = stats(); // flushes pending charges
    dump.set("run.instructions", static_cast<double>(s.instructions));
    dump.set("run.fe_cycles", static_cast<double>(s.feCycles));
    dump.set("run.time_ps", static_cast<double>(s.time));
    dump.set("run.cpi", s.cpi);
    dump.set("run.epi_nj", s.epi);
    dump.set("run.chip_energy_nj", s.chipEnergy);

    dump.set("bpred.branches", static_cast<double>(s.branches));
    dump.set("bpred.mispredicts", static_cast<double>(s.mispredicts));
    dump.set("bpred.accuracy",
             s.branches ? 1.0 - static_cast<double>(s.mispredicts) /
                                    static_cast<double>(s.branches)
                        : 0.0);

    dump.set("mem.loads", static_cast<double>(s.loads));
    dump.set("mem.stores", static_cast<double>(s.stores));
    dump.set("mem.l1d_miss_rate", memory_.l1d().missRate());
    dump.set("mem.l1i_miss_rate", memory_.l1i().missRate());
    dump.set("mem.l2_miss_rate", memory_.l2().missRate());
    dump.set("mem.main_transfers",
             static_cast<double>(memory_.memory().transfers()));
    dump.set("mem.channel_queueing_ps",
             static_cast<double>(memory_.memory().queueingTime()));

    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto id = static_cast<DomainId>(d);
        std::string prefix = std::string("domain.") + domainName(id);
        const DomainClock &clock = clocks_.clock(id);
        dump.set(prefix + ".cycles",
                 static_cast<double>(clock.cycles()));
        dump.set(prefix + ".frequency_hz", clock.frequency());
        dump.set(prefix + ".voltage", clock.voltage());
        dump.set(prefix + ".freq_changes",
                 static_cast<double>(clock.frequencyChanges()));
        dump.set(prefix + ".energy_nj", power_.domainEnergy(id));
        dump.set(prefix + ".base_energy_nj",
                 power_.domainBaseEnergy(id));
    }

    for (int st = 0; st < NUM_STRUCTURES; ++st) {
        auto id = static_cast<StructureId>(st);
        dump.set(std::string("structure.") + structureName(id) +
                     ".energy_nj",
                 power_.structureEnergy(id));
    }
    dump.set("external.energy_nj", power_.externalEnergy());
}

SimStats
Simulator::stats() const
{
    flushPower();
    SimStats s;
    s.instructions = state_.committed - state_.measCommittedBase;
    s.feCycles = state_.feCycles - state_.measFeCyclesBase;
    s.time = state_.now - state_.measTimeBase;
    s.chipEnergy = power_.chipEnergy();
    s.cpi = s.instructions
        ? static_cast<double>(s.feCycles) /
          static_cast<double>(s.instructions)
        : 0.0;
    s.epi = s.instructions
        ? s.chipEnergy / static_cast<double>(s.instructions)
        : 0.0;
    s.branches = state_.branches.value();
    s.mispredicts = state_.mispredicts.value();
    s.loads = state_.loads.value();
    s.stores = state_.stores.value();
    s.l1dMisses = memory_.l1d().misses().value();
    s.l2Misses = memory_.l2().misses().value();
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        s.domainEnergy[static_cast<std::size_t>(d)] =
            power_.domainEnergy(static_cast<DomainId>(d));
    }
    return s;
}

} // namespace mcd
