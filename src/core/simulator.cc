#include "core/simulator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcd
{

DomainId
controlledDomainId(int slot)
{
    switch (slot) {
      case CTL_INT: return DomainId::Integer;
      case CTL_FP:  return DomainId::FloatingPoint;
      case CTL_LS:  return DomainId::LoadStore;
      default: mcd_panic("bad controlled-domain slot %d", slot);
    }
}

Simulator::Simulator(const SimConfig &config, WorkloadGenerator &workload,
                     FrequencyController *controller)
    : config_(config), workload_(&workload), controller_(controller),
      dvfs_(config.dvfs),
      clocks_(dvfs_, config.clocks),
      energy_model_(config.energy,
                    config.clocks.mode == ClockMode::Mcd),
      power_(energy_model_),
      memory_(config.core.memory),
      int_regs_(config.core.intPhysRegs),
      fp_regs_(config.core.fpPhysRegs),
      rename_(int_regs_, fp_regs_)
{
    if (controller_)
        controller_->onStart(clocks_);
}

Volt
Simulator::voltage(DomainId domain) const
{
    return clocks_.clock(domain).voltage();
}

std::uint64_t
Simulator::lineOf(std::uint64_t addr) const
{
    return addr & ~static_cast<std::uint64_t>(
        config_.core.memory.l1i.lineBytes - 1);
}

int
Simulator::execLatency(OpClass cls) const
{
    const CoreConfig &c = config_.core;
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
      case OpClass::Nop:
        return c.intAluLatency;
      case OpClass::IntMult: return c.intMultLatency;
      case OpClass::IntDiv:  return c.intDivLatency;
      case OpClass::FpAdd:   return c.fpAddLatency;
      case OpClass::FpMult:  return c.fpMultLatency;
      case OpClass::FpDiv:   return c.fpDivLatency;
      case OpClass::FpSqrt:  return c.fpSqrtLatency;
      default:
        mcd_panic("no execution latency for op class %d",
                  static_cast<int>(cls));
    }
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

void
Simulator::run(std::uint64_t instructions)
{
    stop_at_ = committed_ + instructions;
    while (committed_ < stop_at_)
        step();
    stop_at_ = ~0ull;
}

void
Simulator::step()
{
    if (clocks_.mode() == ClockMode::Synchronous) {
        DomainClock &clock = clocks_.clock(DomainId::FrontEnd);
        Tick edge = clock.advance();
        now_ = edge;
        // Execution domains tick before the front end so same-edge
        // completion -> commit and dispatch -> next-edge issue orderings
        // match a conventional synchronous pipeline.
        tickDomain(DomainId::Integer, edge);
        tickDomain(DomainId::FloatingPoint, edge);
        tickDomain(DomainId::LoadStore, edge);
        tickDomain(DomainId::FrontEnd, edge);
        return;
    }

    static constexpr DomainId ORDER[] = {
        DomainId::Integer, DomainId::FloatingPoint,
        DomainId::LoadStore, DomainId::FrontEnd,
    };
    DomainId best = ORDER[0];
    Tick best_edge = clocks_.clock(best).nextEdge();
    for (int i = 1; i < NUM_CLOCKED_DOMAINS; ++i) {
        Tick t = clocks_.clock(ORDER[i]).nextEdge();
        if (t < best_edge) {
            best = ORDER[i];
            best_edge = t;
        }
    }
    Tick edge = clocks_.clock(best).advance();
    now_ = edge;
    tickDomain(best, edge);
}

void
Simulator::tickDomain(DomainId domain, Tick edge)
{
    power_.chargeCycle(domain, voltage(domain));

    switch (domain) {
      case DomainId::FrontEnd:
        ++fe_cycles_;
        rob_occupancy_sum_ += static_cast<double>(rob_count_);
        frontEndTick(edge);
        break;
      case DomainId::Integer:
        {
            DomainAccum &a = interval_accum_[CTL_INT];
            a.occupancySum += static_cast<double>(int_iq_.size());
            ++a.cycles;
            if (!int_iq_.empty() || !int_exec_.empty())
                ++a.busyCycles;
            integerTick(edge);
            break;
        }
      case DomainId::FloatingPoint:
        {
            DomainAccum &a = interval_accum_[CTL_FP];
            a.occupancySum += static_cast<double>(fp_iq_.size());
            ++a.cycles;
            if (!fp_iq_.empty() || !fp_exec_.empty())
                ++a.busyCycles;
            fpTick(edge);
            break;
        }
      case DomainId::LoadStore:
        {
            DomainAccum &a = interval_accum_[CTL_LS];
            a.occupancySum += static_cast<double>(lsq_.size());
            ++a.cycles;
            if (!lsq_.empty())
                ++a.busyCycles;
            loadStoreTick(edge);
            break;
        }
      default:
        mcd_panic("cannot tick external domain");
    }
}

// ---------------------------------------------------------------------
// Front end: commit, then fetch + rename + dispatch
// ---------------------------------------------------------------------

void
Simulator::frontEndTick(Tick edge)
{
    commitStage(edge);
    fetchAndDispatch(edge);
}

void
Simulator::commitStage(Tick edge)
{
    int budget = config_.core.retireWidth;
    while (budget > 0 && !rob_.empty() && committed_ < stop_at_) {
        Inst &head = *rob_.front();
        if (!head.completed)
            break;
        if (!clocks_.visible(head.execDomain, head.completeTime,
                             DomainId::FrontEnd, edge))
            break;

        head.committed = true;
        power_.chargeAccess(StructureId::Rob, voltage(DomainId::FrontEnd));

        if (isControlClass(head.op.cls)) {
            bpred_.update(head.op.pc, head.op.taken, head.op.target,
                          head.op.cls == OpClass::Call,
                          head.op.cls == OpClass::Return);
        }
        if (head.hasDst() && head.oldPhysDst >= 0) {
            (head.dstIsFp() ? fp_regs_ : int_regs_).free(head.oldPhysDst);
        }
        if (head.isLoad) {
            head.lsqFreed = true;
            std::erase(lsq_, &head);
        }
        if (head.isStore)
            head.committedStore = true;

        rob_.pop_front();
        --rob_count_;
        ++committed_;
        --budget;

        if (committed_ - interval_start_insts_ >=
            static_cast<std::uint64_t>(config_.core.intervalInstructions))
            handleIntervalBoundary(edge);
    }
    retireWindowHead();
}

void
Simulator::retireWindowHead()
{
    while (!window_.empty() && window_.front().retired())
        window_.pop_front();
}

void
Simulator::handleIntervalBoundary(Tick edge)
{
    IntervalStats stats;
    stats.index = interval_index_++;
    stats.instructions = committed_ - interval_start_insts_;
    stats.feCycles = fe_cycles_ - interval_start_fe_cycles_;
    stats.ipc = stats.feCycles
        ? static_cast<double>(stats.instructions) /
          static_cast<double>(stats.feCycles)
        : 0.0;
    stats.startTime = interval_start_time_;
    stats.endTime = edge;
    stats.chipEnergy = power_.chipEnergy() - interval_start_energy_;

    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        const DomainAccum &a = interval_accum_[static_cast<std::size_t>(
            slot)];
        DomainIntervalStats &d =
            stats.domains[static_cast<std::size_t>(slot)];
        d.queueUtilization = stats.instructions
            ? a.occupancySum / static_cast<double>(stats.instructions)
            : 0.0;
        d.avgOccupancy = a.cycles
            ? a.occupancySum / static_cast<double>(a.cycles)
            : 0.0;
        d.issued = a.issued;
        d.cycles = a.cycles;
        d.busyCycles = a.busyCycles;
        d.frequency =
            clocks_.clock(controlledDomainId(slot)).targetFrequency();
    }

    stats.robUtilization = stats.instructions
        ? rob_occupancy_sum_ / static_cast<double>(stats.instructions)
        : 0.0;
    stats.avgRobOccupancy = stats.feCycles
        ? rob_occupancy_sum_ / static_cast<double>(stats.feCycles)
        : 0.0;
    stats.feFrequency =
        clocks_.clock(DomainId::FrontEnd).targetFrequency();

    if (controller_)
        controller_->onInterval(stats, clocks_);
    if (interval_observer_)
        interval_observer_(stats);

    interval_accum_ = {};
    rob_occupancy_sum_ = 0.0;
    interval_start_insts_ = committed_;
    interval_start_fe_cycles_ = fe_cycles_;
    interval_start_time_ = edge;
    interval_start_energy_ = power_.chipEnergy();
}

bool
Simulator::resourcesAvailable(const MicroOp &op) const
{
    const CoreConfig &c = config_.core;
    if (rob_count_ >= c.robSize)
        return false;
    if (op.dst > 0) {
        const PhysRegFile &file =
            RenameMap::isFp(op.dst) ? fp_regs_ : int_regs_;
        if (file.freeCount() == 0)
            return false;
    }
    if (isMemClass(op.cls))
        return static_cast<int>(lsq_.size()) < c.lsqSize;
    if (isFpClass(op.cls))
        return static_cast<int>(fp_iq_.size()) < c.fpIqSize;
    return static_cast<int>(int_iq_.size()) < c.intIqSize;
}

void
Simulator::fetchAndDispatch(Tick edge)
{
    const CoreConfig &c = config_.core;
    Volt v_fe = voltage(DomainId::FrontEnd);

    if (stall_branch_) {
        if (branch_resolve_time_ == MAX_TICK)
            return; // branch still executing
        if (!clocks_.visible(branch_resolve_domain_, branch_resolve_time_,
                             DomainId::FrontEnd, edge))
            return; // redirect has not crossed into the front end yet
        if (redirect_penalty_left_ > 0) {
            --redirect_penalty_left_;
            // Wrong-path fetch shadow: the fetch engine keeps running.
            power_.chargeAccess(StructureId::Icache, v_fe);
            return;
        }
        stall_branch_ = nullptr;
        branch_resolve_time_ = MAX_TICK;
    }

    if (icache_stall_until_ > edge)
        return;

    bool accessed_line = false;
    for (int budget = c.decodeWidth; budget > 0; --budget) {
        if (!have_pending_op_) {
            pending_op_ = workload_->next();
            have_pending_op_ = true;
        }
        const MicroOp &op = pending_op_;
        if (!resourcesAvailable(op))
            break;

        std::uint64_t line = lineOf(op.pc);
        if (line != last_fetch_line_) {
            if (accessed_line)
                break; // one I-cache line per fetch cycle
            accessed_line = true;
            power_.chargeAccess(StructureId::Icache, v_fe);
            MemAccessOutcome outcome = memory_.accessInst(op.pc);
            last_fetch_line_ = line;
            if (outcome.level != MemLevel::L1) {
                Volt v_ls = voltage(DomainId::LoadStore);
                power_.chargeAccess(
                    StructureId::L2Cache, v_ls,
                    static_cast<std::uint64_t>(outcome.l2Accesses));
                Tick ls_period = periodFromFreq(
                    clocks_.clock(DomainId::LoadStore).frequency());
                Tick done = edge +
                    config_.core.memory.l2Latency * ls_period;
                for (int m = 0; m < outcome.memAccesses; ++m) {
                    done = memory_.memory().schedule(done);
                    power_.chargeMemoryAccess();
                }
                icache_stall_until_ = done + clocks_.syncWindow();
                break;
            }
        }

        if (!dispatchOne(op, edge))
            break;
        have_pending_op_ = false;

        const Inst &inst = window_.back();
        if (isControlClass(op.cls)) {
            if (inst.mispredicted) {
                stall_branch_ = &inst;
                redirect_penalty_left_ = c.branchMispredictPenalty;
                branch_resolve_time_ = MAX_TICK;
                break;
            }
            if (op.taken)
                break; // redirect to the predicted target next cycle
        }
    }
}

bool
Simulator::dispatchOne(const MicroOp &op, Tick edge)
{
    Volt v_fe = voltage(DomainId::FrontEnd);

    window_.push_back(Inst{});
    Inst &inst = window_.back();
    inst.op = op;
    inst.seq = next_seq_++;
    inst.dispatchTime = edge;
    inst.isLoad = isLoadClass(op.cls);
    inst.isStore = isStoreClass(op.cls);
    inst.execDomain = isMemClass(op.cls) ? DomainId::LoadStore
        : isFpClass(op.cls)              ? DomainId::FloatingPoint
                                         : DomainId::Integer;

    inst.physA = rename_.lookup(op.srcA);
    inst.physB = rename_.lookup(op.srcB);

    if (isControlClass(op.cls)) {
        branches_.inc();
        power_.chargeAccess(StructureId::BranchPredictor, v_fe);
        BranchPrediction pred = bpred_.predict(
            op.pc, op.cls == OpClass::Call, op.cls == OpClass::Return,
            op.fallthrough());
        bool correct = pred.predictTaken == op.taken &&
            (!op.taken || pred.target == op.target);
        inst.mispredicted = !correct;
        if (!correct)
            mispredicts_.inc();
    }

    if (op.dst > 0) {
        PhysRegFile &file =
            RenameMap::isFp(op.dst) ? fp_regs_ : int_regs_;
        int phys = file.alloc();
        if (phys < 0)
            mcd_panic("dispatch without a free physical register");
        inst.physDst = phys;
        inst.oldPhysDst = rename_.rename(op.dst, phys);
    }

    power_.chargeAccess(StructureId::RenameTable, v_fe);
    power_.chargeAccess(StructureId::Rob, v_fe);
    rob_.push_back(&inst);
    ++rob_count_;

    if (isMemClass(op.cls)) {
        lsq_.push_back(&inst);
        power_.chargeAccess(StructureId::Lsq,
                            voltage(DomainId::LoadStore));
        loads_.inc(inst.isLoad ? 1 : 0);
        stores_.inc(inst.isStore ? 1 : 0);
    } else if (isFpClass(op.cls)) {
        fp_iq_.push_back(&inst);
        power_.chargeAccess(StructureId::FpIssueQueue,
                            voltage(DomainId::FloatingPoint));
    } else {
        int_iq_.push_back(&inst);
        power_.chargeAccess(StructureId::IntIssueQueue,
                            voltage(DomainId::Integer));
    }
    return true;
}

// ---------------------------------------------------------------------
// Execution domains
// ---------------------------------------------------------------------

bool
Simulator::regReady(int logical, int phys, DomainId domain,
                    Tick edge) const
{
    if (logical <= 0)
        return true;
    const PhysRegFile &file =
        RenameMap::isFp(logical) ? fp_regs_ : int_regs_;
    return file.readyAt(phys, domain, edge, clocks_);
}

bool
Simulator::operandsReady(const Inst &inst, DomainId domain,
                         Tick edge) const
{
    return regReady(inst.op.srcA, inst.physA, domain, edge) &&
           regReady(inst.op.srcB, inst.physB, domain, edge);
}

void
Simulator::completeInst(Inst &inst, DomainId domain, Tick edge)
{
    inst.completed = true;
    inst.completeTime = edge;
    if (inst.physDst >= 0) {
        PhysRegFile &file =
            inst.dstIsFp() ? fp_regs_ : int_regs_;
        file.markWritten(inst.physDst, edge, domain);
        power_.chargeAccess(inst.dstIsFp() ? StructureId::FpRegFile
                                           : StructureId::IntRegFile,
                            voltage(domain));
        power_.chargeAccess(StructureId::ResultBus, voltage(domain));
    }
    if (inst.usesMshr && inst.isLoad) {
        --mshr_in_use_;
        inst.usesMshr = false;
    }
    if (inst.mispredicted && isControlClass(inst.op.cls)) {
        branch_resolve_time_ = edge;
        branch_resolve_domain_ = domain;
    }
}

void
Simulator::processCompletions(std::vector<Inst *> &exec_list,
                              DomainId domain, Tick edge)
{
    for (std::size_t i = 0; i < exec_list.size();) {
        Inst &inst = *exec_list[i];
        if (inst.remainingCycles > 0)
            --inst.remainingCycles;
        if (inst.remainingCycles == 0 &&
            (inst.absDoneTime == MAX_TICK || edge >= inst.absDoneTime)) {
            if (inst.isStore && inst.writeIssued) {
                // A committed store write finishing: free the LSQ slot.
                inst.lsqFreed = true;
                if (inst.usesMshr) {
                    --mshr_in_use_;
                    inst.usesMshr = false;
                }
                std::erase(lsq_, &inst);
            } else {
                completeInst(inst, domain, edge);
            }
            exec_list[i] = exec_list.back();
            exec_list.pop_back();
        } else {
            ++i;
        }
    }
}

void
Simulator::integerTick(Tick edge)
{
    if (int_div_busy_ > 0)
        --int_div_busy_;
    processCompletions(int_exec_, DomainId::Integer, edge);
    issueInteger(edge);
}

void
Simulator::fpTick(Tick edge)
{
    if (fp_div_busy_ > 0)
        --fp_div_busy_;
    processCompletions(fp_exec_, DomainId::FloatingPoint, edge);
    issueFp(edge);
}

void
Simulator::issueInteger(Tick edge)
{
    const CoreConfig &c = config_.core;
    Volt v = voltage(DomainId::Integer);
    int budget = c.intIssueWidth;
    int alu_slots = c.intAluCount;
    int mult_slots = int_div_busy_ == 0 ? 1 : 0;

    for (auto it = int_iq_.begin();
         it != int_iq_.end() && budget > 0;) {
        Inst &inst = **it;
        // Queue-write latency: the entry is latched into the issue
        // queue on the first domain edge that satisfies the sync rule
        // and becomes issue-eligible the following edge.
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::Integer, edge))
                inst.enqueued = true;
            ++it;
            continue;
        }
        if (!operandsReady(inst, DomainId::Integer, edge)) {
            ++it;
            continue;
        }

        OpClass cls = inst.op.cls;
        if (cls == OpClass::IntMult) {
            if (mult_slots == 0) {
                ++it;
                continue;
            }
            --mult_slots;
            power_.chargeAccess(StructureId::IntMult, v);
        } else if (cls == OpClass::IntDiv) {
            if (mult_slots == 0) {
                ++it;
                continue;
            }
            mult_slots = 0;
            int_div_busy_ = c.intDivLatency;
            power_.chargeAccess(StructureId::IntMult, v);
        } else {
            if (alu_slots == 0) {
                ++it;
                continue;
            }
            --alu_slots;
            power_.chargeAccess(StructureId::IntAlu, v);
        }

        inst.issued = true;
        inst.remainingCycles = execLatency(cls);
        int_exec_.push_back(&inst);
        power_.chargeAccess(StructureId::IntIssueQueue, v);
        int reads = (inst.op.srcA > 0 ? 1 : 0) +
                    (inst.op.srcB > 0 ? 1 : 0);
        power_.chargeAccess(StructureId::IntRegFile, v,
                            static_cast<std::uint64_t>(reads));
        ++interval_accum_[CTL_INT].issued;
        it = int_iq_.erase(it);
        --budget;
    }
}

void
Simulator::issueFp(Tick edge)
{
    const CoreConfig &c = config_.core;
    Volt v = voltage(DomainId::FloatingPoint);
    int budget = c.fpIssueWidth;
    int alu_slots = c.fpAluCount;
    int mult_slots = fp_div_busy_ == 0 ? 1 : 0;

    for (auto it = fp_iq_.begin(); it != fp_iq_.end() && budget > 0;) {
        Inst &inst = **it;
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::FloatingPoint, edge))
                inst.enqueued = true;
            ++it;
            continue;
        }
        if (!operandsReady(inst, DomainId::FloatingPoint, edge)) {
            ++it;
            continue;
        }

        OpClass cls = inst.op.cls;
        if (cls == OpClass::FpMult) {
            if (mult_slots == 0) {
                ++it;
                continue;
            }
            --mult_slots;
            power_.chargeAccess(StructureId::FpMult, v);
        } else if (cls == OpClass::FpDiv || cls == OpClass::FpSqrt) {
            if (mult_slots == 0) {
                ++it;
                continue;
            }
            mult_slots = 0;
            fp_div_busy_ = cls == OpClass::FpDiv ? c.fpDivLatency
                                                 : c.fpSqrtLatency;
            power_.chargeAccess(StructureId::FpMult, v);
        } else {
            if (alu_slots == 0) {
                ++it;
                continue;
            }
            --alu_slots;
            power_.chargeAccess(StructureId::FpAlu, v);
        }

        inst.issued = true;
        inst.remainingCycles = execLatency(cls);
        fp_exec_.push_back(&inst);
        power_.chargeAccess(StructureId::FpIssueQueue, v);
        int reads = (inst.op.srcA > 0 ? 1 : 0) +
                    (inst.op.srcB > 0 ? 1 : 0);
        power_.chargeAccess(StructureId::FpRegFile, v,
                            static_cast<std::uint64_t>(reads));
        ++interval_accum_[CTL_FP].issued;
        it = fp_iq_.erase(it);
        --budget;
    }
}

// ---------------------------------------------------------------------
// Load/store domain
// ---------------------------------------------------------------------

bool
Simulator::olderStoreBlocks(const Inst &load, const Inst *&forward) const
{
    forward = nullptr;
    std::uint64_t load_word = load.op.memAddr >> 3;
    for (const Inst *p : lsq_) {
        if (p->seq >= load.seq)
            break;
        if (!p->isStore)
            continue;
        if (!p->addrKnown)
            return true; // conservative disambiguation
        if ((p->op.memAddr >> 3) == load_word) {
            if (!p->dataReady)
                return true; // matching store, data not yet ready
            forward = p;     // newest matching store wins
        }
    }
    return false;
}

void
Simulator::startDataAccess(Inst &inst, Tick edge, bool is_write)
{
    const CoreConfig &c = config_.core;
    Volt v = voltage(DomainId::LoadStore);

    MemAccessOutcome outcome =
        memory_.accessData(inst.op.memAddr, is_write);
    power_.chargeAccess(StructureId::Dcache, v);
    power_.chargeAccess(StructureId::L2Cache, v,
                        static_cast<std::uint64_t>(outcome.l2Accesses));

    int cycles = c.memory.l1Latency;
    Tick abs_done = MAX_TICK;
    if (outcome.level != MemLevel::L1) {
        cycles += c.memory.l2Latency;
        ++mshr_in_use_;
        inst.usesMshr = true;
    }
    if (outcome.level == MemLevel::Memory) {
        Tick ls_period = periodFromFreq(
            clocks_.clock(DomainId::LoadStore).frequency());
        Tick request = edge + cycles * ls_period;
        for (int m = 0; m < outcome.memAccesses; ++m) {
            abs_done = memory_.memory().schedule(request);
            power_.chargeMemoryAccess();
        }
        // Main memory is its own clock domain: crossing back into the
        // load/store domain pays the synchronization window.
        abs_done += clocks_.syncWindow();
    }

    inst.issued = true;
    inst.remainingCycles = cycles;
    inst.absDoneTime = abs_done;
    if (is_write)
        inst.writeIssued = true;
    else
        inst.memIssued = true;
    ls_exec_.push_back(&inst);
}

void
Simulator::issueLoadStore(Tick edge)
{
    const CoreConfig &c = config_.core;
    Volt v = voltage(DomainId::LoadStore);
    int budget = c.memIssueWidth;

    for (Inst *p : lsq_) {
        if (budget == 0)
            break;
        Inst &inst = *p;
        if (!inst.enqueued) {
            if (clocks_.visible(DomainId::FrontEnd, inst.dispatchTime,
                                DomainId::LoadStore, edge))
                inst.enqueued = true;
            continue;
        }

        if (inst.isStore) {
            if (!inst.addrKnown &&
                regReady(inst.op.srcA, inst.physA, DomainId::LoadStore,
                         edge)) {
                inst.addrKnown = true; // AGU operation
                power_.chargeAccess(StructureId::Lsq, v);
                --budget;
            }
            if (!inst.dataReady &&
                regReady(inst.op.srcB, inst.physB, DomainId::LoadStore,
                         edge))
                inst.dataReady = true;
            if (inst.addrKnown && inst.dataReady && !inst.completed) {
                inst.completed = true;
                inst.completeTime = edge;
                inst.execDomain = DomainId::LoadStore;
                ++interval_accum_[CTL_LS].issued;
            }
            continue;
        }

        if (!inst.isLoad || inst.memIssued)
            continue;
        if (!regReady(inst.op.srcA, inst.physA, DomainId::LoadStore,
                      edge))
            continue;

        const Inst *forward = nullptr;
        if (olderStoreBlocks(inst, forward))
            continue;

        if (forward) {
            inst.memIssued = true;
            inst.forwarded = true;
            inst.remainingCycles = 1;
            ls_exec_.push_back(&inst);
            power_.chargeAccess(StructureId::Lsq, v);
            ++interval_accum_[CTL_LS].issued;
            --budget;
            continue;
        }

        bool hit = memory_.l1d().probe(inst.op.memAddr);
        if (!hit && mshr_in_use_ >= c.mshrCount)
            continue; // no MSHR free; retry next cycle
        power_.chargeAccess(StructureId::Lsq, v);
        startDataAccess(inst, edge, false);
        ++interval_accum_[CTL_LS].issued;
        --budget;
    }

    // Drain committed stores into the cache with leftover bandwidth.
    for (Inst *p : lsq_) {
        if (budget == 0)
            break;
        Inst &inst = *p;
        if (!inst.isStore || !inst.committedStore || inst.writeIssued)
            continue;
        bool hit = memory_.l1d().probe(inst.op.memAddr);
        if (!hit && mshr_in_use_ >= c.mshrCount)
            break; // stores drain in order
        power_.chargeAccess(StructureId::Lsq, v);
        startDataAccess(inst, edge, true);
        --budget;
    }
}

void
Simulator::loadStoreTick(Tick edge)
{
    processCompletions(ls_exec_, DomainId::LoadStore, edge);
    issueLoadStore(edge);
    retireWindowHead();
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

void
Simulator::resetMeasurement()
{
    power_.reset();
    meas_committed_base_ = committed_;
    meas_fe_cycles_base_ = fe_cycles_;
    meas_time_base_ = now_;
    branches_.reset();
    mispredicts_.reset();
    loads_.reset();
    stores_.reset();
    interval_accum_ = {};
    rob_occupancy_sum_ = 0.0;
    interval_start_insts_ = committed_;
    interval_start_fe_cycles_ = fe_cycles_;
    interval_start_time_ = now_;
    interval_start_energy_ = 0.0; // power_ was just reset
}

void
Simulator::dumpStats(StatDump &dump) const
{
    SimStats s = stats();
    dump.set("run.instructions", static_cast<double>(s.instructions));
    dump.set("run.fe_cycles", static_cast<double>(s.feCycles));
    dump.set("run.time_ps", static_cast<double>(s.time));
    dump.set("run.cpi", s.cpi);
    dump.set("run.epi_nj", s.epi);
    dump.set("run.chip_energy_nj", s.chipEnergy);

    dump.set("bpred.branches", static_cast<double>(s.branches));
    dump.set("bpred.mispredicts", static_cast<double>(s.mispredicts));
    dump.set("bpred.accuracy",
             s.branches ? 1.0 - static_cast<double>(s.mispredicts) /
                                    static_cast<double>(s.branches)
                        : 0.0);

    dump.set("mem.loads", static_cast<double>(s.loads));
    dump.set("mem.stores", static_cast<double>(s.stores));
    dump.set("mem.l1d_miss_rate", memory_.l1d().missRate());
    dump.set("mem.l1i_miss_rate", memory_.l1i().missRate());
    dump.set("mem.l2_miss_rate", memory_.l2().missRate());
    dump.set("mem.main_transfers",
             static_cast<double>(memory_.memory().transfers()));
    dump.set("mem.channel_queueing_ps",
             static_cast<double>(memory_.memory().queueingTime()));

    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto id = static_cast<DomainId>(d);
        std::string prefix = std::string("domain.") + domainName(id);
        const DomainClock &clock = clocks_.clock(id);
        dump.set(prefix + ".cycles",
                 static_cast<double>(clock.cycles()));
        dump.set(prefix + ".frequency_hz", clock.frequency());
        dump.set(prefix + ".voltage", clock.voltage());
        dump.set(prefix + ".freq_changes",
                 static_cast<double>(clock.frequencyChanges()));
        dump.set(prefix + ".energy_nj", power_.domainEnergy(id));
        dump.set(prefix + ".base_energy_nj",
                 power_.domainBaseEnergy(id));
    }

    for (int st = 0; st < NUM_STRUCTURES; ++st) {
        auto id = static_cast<StructureId>(st);
        dump.set(std::string("structure.") + structureName(id) +
                     ".energy_nj",
                 power_.structureEnergy(id));
    }
    dump.set("external.energy_nj", power_.externalEnergy());
}

SimStats
Simulator::stats() const
{
    SimStats s;
    s.instructions = committed_ - meas_committed_base_;
    s.feCycles = fe_cycles_ - meas_fe_cycles_base_;
    s.time = now_ - meas_time_base_;
    s.chipEnergy = power_.chipEnergy();
    s.cpi = s.instructions
        ? static_cast<double>(s.feCycles) /
          static_cast<double>(s.instructions)
        : 0.0;
    s.epi = s.instructions
        ? s.chipEnergy / static_cast<double>(s.instructions)
        : 0.0;
    s.branches = branches_.value();
    s.mispredicts = mispredicts_.value();
    s.loads = loads_.value();
    s.stores = stores_.value();
    s.l1dMisses = memory_.l1d().misses().value();
    s.l2Misses = memory_.l2().misses().value();
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        s.domainEnergy[static_cast<std::size_t>(d)] =
            power_.domainEnergy(static_cast<DomainId>(d));
    }
    return s;
}

} // namespace mcd
