#include "telemetry/profiler.hh"

#include <array>
#include <cstdlib>
#include <string>

namespace mcd
{
namespace telemetry
{

namespace
{

bool
envProfiling()
{
    const char *v = std::getenv("MCD_PROF");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::array<Histogram *, NUM_PHASES> &
histograms()
{
    // First use registers every phase histogram in the registry; the
    // pointers are then stable for the process. Only reached when
    // profiling is (or was) on, so the disabled path never pays for
    // the map lookup.
    static std::array<Histogram *, NUM_PHASES> hists = [] {
        std::array<Histogram *, NUM_PHASES> a{};
        StatRegistry &reg = StatRegistry::instance();
        for (int i = 0; i < NUM_PHASES; ++i)
            a[i] = &reg.histogram(
                std::string("prof.") +
                phaseName(static_cast<Phase>(i)));
        return a;
    }();
    return hists;
}

} // namespace

bool g_profiling = envProfiling();

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::SimCommit: return "sim.commit";
      case Phase::SimFetch: return "sim.fetch";
      case Phase::SimIssueInt: return "sim.issue.int";
      case Phase::SimIssueFp: return "sim.issue.fp";
      case Phase::SimIssueLs: return "sim.issue.ls";
      case Phase::SimWakeup: return "sim.wakeup";
      case Phase::SimInterval: return "sim.interval";
      case Phase::CkptSave: return "ckpt.save";
      case Phase::CkptRestore: return "ckpt.restore";
      case Phase::DiskRead: return "disk.read";
      case Phase::DiskWrite: return "disk.write";
      case Phase::PoolTask: return "pool.task";
      case Phase::COUNT: break;
    }
    return "unknown";
}

void
setProfiling(bool on)
{
    if (on)
        histograms(); // register before probes start firing
    g_profiling = on;
}

Histogram &
phaseHistogram(Phase p)
{
    return *histograms()[static_cast<int>(p)];
}

void
resetPhaseHistograms()
{
    for (Histogram *h : histograms())
        h->reset();
}

} // namespace telemetry
} // namespace mcd
