#include "telemetry/stat_registry.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace mcd
{
namespace telemetry
{

namespace
{

/** Lower edge of bucket b: 0, 1, 2, 4, 8, ... (bit_width inverse). */
std::uint64_t
bucketLow(int b)
{
    return b == 0 ? 0 : 1ull << (b - 1);
}

/** Inclusive upper edge of bucket b: 0, 1, 3, 7, 15, ... */
std::uint64_t
bucketHigh(int b)
{
    if (b == 0)
        return 0;
    if (b >= 64)
        return ~0ull;
    return (1ull << b) - 1;
}

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** %.17g emitter matching common/json.hh's number convention, but
 *  local so telemetry keeps a std-only dependency surface. */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += fmt("\\u%04x",
                           static_cast<unsigned>(
                               static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

std::string
promName(const std::string &path)
{
    std::string out = "mcd_";
    for (char c : path)
        out += (c == '.' || c == '-') ? '_' : c;
    return out;
}

} // namespace

double
HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the target sample, 1-based, nearest-rank rounded up.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count));
    if (rank < 1)
        rank = 1;
    if (rank > count)
        rank = count;

    std::uint64_t seen = 0;
    for (int b = 0; b < BUCKETS; ++b) {
        if (buckets[b] == 0)
            continue;
        if (seen + buckets[b] >= rank) {
            // Interpolate inside this bucket by rank position.
            double lo = static_cast<double>(bucketLow(b));
            double hi = static_cast<double>(bucketHigh(b));
            double within = buckets[b] > 1
                ? static_cast<double>(rank - seen - 1) /
                    static_cast<double>(buckets[b] - 1)
                : 0.0;
            double v = lo + (hi - lo) * within;
            // The exact extremes are known; never report outside them.
            v = std::max(v, static_cast<double>(min));
            v = std::min(v, static_cast<double>(max));
            return v;
        }
        seen += buckets[b];
    }
    return static_cast<double>(max);
}

void
Histogram::record(std::uint64_t v)
{
    int b = std::bit_width(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);

    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v,
                                       std::memory_order_relaxed)) {
    }
}

HistogramData
Histogram::read() const
{
    HistogramData d;
    d.count = count_.load(std::memory_order_relaxed);
    d.sum = sum_.load(std::memory_order_relaxed);
    std::uint64_t mn = min_.load(std::memory_order_relaxed);
    d.min = d.count > 0 && mn != ~0ull ? mn : 0;
    d.max = max_.load(std::memory_order_relaxed);
    for (int b = 0; b < HistogramData::BUCKETS; ++b)
        d.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    return d;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

StatRegistry &
StatRegistry::instance()
{
    // Leaked on purpose: subsystems bump stats from static-destruction
    // order we don't control, so the registry must never die first.
    static StatRegistry *registry = new StatRegistry();
    return *registry;
}

Counter &
StatRegistry::counter(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = stats_[path];
    if (!e.ownedCounter) {
        e = Entry{};
        e.kind = StatValue::Kind::Counter;
        e.ownedCounter = std::make_unique<Counter>();
    }
    return *e.ownedCounter;
}

Gauge &
StatRegistry::gauge(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = stats_[path];
    if (!e.ownedGauge) {
        e = Entry{};
        e.kind = StatValue::Kind::Gauge;
        e.ownedGauge = std::make_unique<Gauge>();
    }
    return *e.ownedGauge;
}

Histogram &
StatRegistry::histogram(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &e = stats_[path];
    if (!e.ownedHistogram) {
        e = Entry{};
        e.kind = StatValue::Kind::Histogram;
        e.ownedHistogram = std::make_unique<Histogram>();
    }
    return *e.ownedHistogram;
}

void
StatRegistry::bindCounter(const std::string &path, const Counter *stat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry e;
    e.kind = StatValue::Kind::Counter;
    e.boundCounter = stat;
    stats_[path] = std::move(e);
}

void
StatRegistry::bindGauge(const std::string &path, const Gauge *stat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry e;
    e.kind = StatValue::Kind::Gauge;
    e.boundGauge = stat;
    stats_[path] = std::move(e);
}

void
StatRegistry::bindHistogram(const std::string &path,
                            const Histogram *stat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry e;
    e.kind = StatValue::Kind::Histogram;
    e.boundHistogram = stat;
    stats_[path] = std::move(e);
}

void
StatRegistry::bindFn(const std::string &path,
                     std::function<std::uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry e;
    e.kind = StatValue::Kind::Counter;
    e.fn = std::move(fn);
    stats_[path] = std::move(e);
}

void
StatRegistry::unbind(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(path);
    if (it == stats_.end())
        return;
    const Entry &e = it->second;
    if (e.ownedCounter || e.ownedGauge || e.ownedHistogram)
        return; // owned stats are process-lifetime
    stats_.erase(it);
}

std::vector<StatValue>
StatRegistry::snapshot(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StatValue> out;
    out.reserve(stats_.size());
    for (const auto &[path, e] : stats_) {
        if (path.compare(0, prefix.size(), prefix) != 0)
            continue;
        StatValue v;
        v.path = path;
        v.kind = e.kind;
        switch (e.kind) {
          case StatValue::Kind::Counter:
            if (e.fn)
                v.counter = e.fn();
            else if (e.boundCounter)
                v.counter = e.boundCounter->value();
            else if (e.ownedCounter)
                v.counter = e.ownedCounter->value();
            break;
          case StatValue::Kind::Gauge:
            if (e.boundGauge)
                v.gauge = e.boundGauge->value();
            else if (e.ownedGauge)
                v.gauge = e.ownedGauge->value();
            break;
          case StatValue::Kind::Histogram:
            if (e.boundHistogram)
                v.hist = e.boundHistogram->read();
            else if (e.ownedHistogram)
                v.hist = e.ownedHistogram->read();
            break;
        }
        out.push_back(std::move(v));
    }
    // std::map iteration is already sorted; keep the contract explicit
    // in case the container ever changes.
    std::sort(out.begin(), out.end(),
              [](const StatValue &a, const StatValue &b) {
                  return a.path < b.path;
              });
    return out;
}

std::string
StatRegistry::renderTable(const std::vector<StatValue> &stats)
{
    std::string out =
        fmt("%-36s %14s %12s %12s %12s\n", "stat", "value/count",
            "p50", "p95", "max");
    for (const StatValue &s : stats) {
        switch (s.kind) {
          case StatValue::Kind::Counter:
            out += fmt("%-36s %14" PRIu64 "\n", s.path.c_str(),
                       s.counter);
            break;
          case StatValue::Kind::Gauge:
            out += fmt("%-36s %14" PRId64 "\n", s.path.c_str(),
                       s.gauge);
            break;
          case StatValue::Kind::Histogram:
            out += fmt("%-36s %14" PRIu64 " %12.0f %12.0f %12" PRIu64
                       "\n",
                       s.path.c_str(), s.hist.count,
                       s.hist.quantile(0.5), s.hist.quantile(0.95),
                       s.hist.max);
            break;
        }
    }
    return out;
}

std::string
StatRegistry::renderJson(const std::vector<StatValue> &stats)
{
    std::string out = "{";
    bool first = true;
    for (const StatValue &s : stats) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  \"" + jsonEscape(s.path) + "\": ";
        switch (s.kind) {
          case StatValue::Kind::Counter:
            out += fmt("%" PRIu64, s.counter);
            break;
          case StatValue::Kind::Gauge:
            out += fmt("%" PRId64, s.gauge);
            break;
          case StatValue::Kind::Histogram:
            out += fmt("{\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                       ", \"min\": %" PRIu64 ", \"max\": %" PRIu64,
                       s.hist.count, s.hist.sum, s.hist.min,
                       s.hist.max);
            out += ", \"mean\": " + num(s.hist.mean());
            out += ", \"p50\": " + num(s.hist.quantile(0.5));
            out += ", \"p95\": " + num(s.hist.quantile(0.95));
            out += ", \"p99\": " + num(s.hist.quantile(0.99));
            out += "}";
            break;
        }
    }
    out += first ? "}" : "\n}";
    return out;
}

std::string
StatRegistry::renderPrometheus(const std::vector<StatValue> &stats)
{
    std::string out;
    for (const StatValue &s : stats) {
        std::string name = promName(s.path);
        switch (s.kind) {
          case StatValue::Kind::Counter:
            out += fmt("# TYPE %s counter\n", name.c_str());
            out += fmt("%s %" PRIu64 "\n", name.c_str(), s.counter);
            break;
          case StatValue::Kind::Gauge:
            out += fmt("# TYPE %s gauge\n", name.c_str());
            out += fmt("%s %" PRId64 "\n", name.c_str(), s.gauge);
            break;
          case StatValue::Kind::Histogram:
            out += fmt("# TYPE %s summary\n", name.c_str());
            for (double q : {0.5, 0.95, 0.99})
                out += fmt("%s{quantile=\"%g\"} %s\n", name.c_str(),
                           q, num(s.hist.quantile(q)).c_str());
            out += fmt("%s_sum %" PRIu64 "\n", name.c_str(),
                       s.hist.sum);
            out += fmt("%s_count %" PRIu64 "\n", name.c_str(),
                       s.hist.count);
            break;
        }
    }
    return out;
}

} // namespace telemetry
} // namespace mcd
