/**
 * @file
 * Append-only JSONL event log for structured lifecycle tracing.
 *
 * The serve daemon writes one line per request-lifecycle event
 * (accepted → validated → queued → executing → streaming →
 * done/error) so a day of daemon traffic is greppable and
 * machine-parseable. The log is line-buffered under a mutex: events
 * from concurrent worker threads never interleave within a line, and
 * every line is flushed before append() returns so a crashed daemon
 * loses at most the event being written.
 *
 * The writer is generic — any subsystem can append any one-line JSON
 * object — but disabled (path empty / unopenable) it is a null
 * object: `enabled()` is false and `append()` is a no-op, so call
 * sites need no gating.
 */

#ifndef MCD_TELEMETRY_EVENTS_HH
#define MCD_TELEMETRY_EVENTS_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace mcd
{
namespace telemetry
{

/** Wall-clock nanoseconds since the Unix epoch, for event `ts`
 *  fields. Uses system_clock (not steady) so log lines from
 *  different processes are comparable. */
std::uint64_t wallClockNs();

class EventLog
{
  public:
    /** Opens `path` for append; an empty path (or open failure, which
     *  warns once) leaves the log disabled. */
    explicit EventLog(const std::string &path = "");
    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    bool enabled() const { return file_ != nullptr; }

    /** Append one JSON object as a single line. `json` must be a
     *  complete object without a trailing newline. */
    void append(const std::string &json);

  private:
    std::mutex mutex_;
    std::FILE *file_ = nullptr;
};

} // namespace telemetry
} // namespace mcd

#endif // MCD_TELEMETRY_EVENTS_HH
