#include "telemetry/events.hh"

#include <chrono>

#include "common/logging.hh"

namespace mcd
{
namespace telemetry
{

std::uint64_t
wallClockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

EventLog::EventLog(const std::string &path)
{
    if (path.empty())
        return;
    file_ = std::fopen(path.c_str(), "a");
    if (file_ == nullptr)
        mcd_warn("cannot open event log '%s'; tracing disabled",
                 path.c_str());
}

EventLog::~EventLog()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
EventLog::append(const std::string &json)
{
    if (file_ == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(json.data(), 1, json.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
}

} // namespace telemetry
} // namespace mcd
