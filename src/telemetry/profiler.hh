/**
 * @file
 * Phase profiler: RAII scoped wall-clock timers over the simulator's
 * per-cycle stages, checkpoint save/restore, artifact disk I/O, and
 * ThreadPool task execution.
 *
 * The timers are compiled in always but gated on one global flag, so
 * the disabled path is a single predicted-not-taken branch per probe
 * (measured by `sim_microbench --json`, "profile" section). Enable
 * with `MCD_PROF=1` in the environment or `setProfiling(true)`
 * (`mcd_cli profile` / `--profile` do the latter).
 *
 * Timers read std::chrono::steady_clock and record elapsed
 * nanoseconds into per-phase log2 histograms published in the
 * StatRegistry under `prof.<phase>`. They never touch simulated
 * state (Tick, energy, RNGs), so a profiled run's simulation results
 * are byte-identical to an unprofiled run's — pinned by
 * tests/telemetry_test.cc and the CI telemetry-smoke job.
 */

#ifndef MCD_TELEMETRY_PROFILER_HH
#define MCD_TELEMETRY_PROFILER_HH

#include <chrono>
#include <cstdint>

#include "telemetry/stat_registry.hh"

namespace mcd
{
namespace telemetry
{

/** The instrumented phases. Names double as registry paths under
 *  `prof.` — keep them dotted and lowercase. */
enum class Phase
{
    SimCommit,      //!< commit/retire stage
    SimFetch,       //!< fetch + rename + dispatch
    SimIssueInt,    //!< integer issue loop
    SimIssueFp,     //!< floating-point issue loop
    SimIssueLs,     //!< load/store issue loop
    SimWakeup,      //!< completion/wakeup processing
    SimInterval,    //!< interval boundary (controller + observer)
    CkptSave,       //!< Simulator::saveCheckpoint
    CkptRestore,    //!< Simulator::restoreCheckpoint
    DiskRead,       //!< DiskStore::get
    DiskWrite,      //!< DiskStore::put
    PoolTask,       //!< ThreadPool task execution
    COUNT,
};

constexpr int NUM_PHASES = static_cast<int>(Phase::COUNT);

/** Dotted phase name, e.g. "sim.commit". */
const char *phaseName(Phase p);

/** The one profiling switch. A plain (non-atomic) bool read on every
 *  probe: writes happen only at startup (env) or before a profiled
 *  run begins, never concurrently with probes. */
extern bool g_profiling;

inline bool
profilingEnabled()
{
    return g_profiling;
}

/** Flip profiling programmatically (the `--profile` path). Call
 *  before the work being profiled starts, not concurrently with it. */
void setProfiling(bool on);

/** The ns histogram behind `prof.<phaseName(p)>`. */
Histogram &phaseHistogram(Phase p);

/** Drop all recorded phase samples (microbenchmark hygiene). */
void resetPhaseHistograms();

/**
 * Times its scope into `phaseHistogram(phase)` when profiling is on;
 * otherwise costs one predicted branch in the constructor and one in
 * the destructor.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Phase phase)
        : phase_(phase), on_(g_profiling)
    {
        if (on_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (on_) {
            auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            phaseHistogram(phase_).record(
                static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Phase phase_;
    bool on_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace telemetry
} // namespace mcd

#endif // MCD_TELEMETRY_PROFILER_HH
