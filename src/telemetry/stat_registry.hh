/**
 * @file
 * Process-wide hierarchical statistic registry (gem5/Sniper-style).
 *
 * Subsystems expose counters, gauges, and log2-bucketed histograms
 * under dotted paths ("sim.commit.insns", "store.disk.read_bytes",
 * "serve.request.queue_ns", "pool.tasks"). Updates are relaxed
 * atomics — cheap enough for per-request and per-task paths — and a
 * snapshot is a point-in-time read of every stat, renderable as a
 * text table, JSON, or Prometheus-style exposition text.
 *
 * Two ownership models coexist:
 *
 *  - registry-owned stats: `counter(path)` / `gauge(path)` /
 *    `histogram(path)` create-or-get a stat that lives for the
 *    process. Callers cache the returned reference so hot paths
 *    never touch the name map.
 *
 *  - bound views: a subsystem that owns its own `Counter` members
 *    (so independent instances — e.g. test-local caches — stay
 *    unregistered) publishes the process-wide instance with
 *    `bindCounter(path, &member)`. Binding is latest-wins and
 *    reversible (`unbind`), so sequentially constructed servers in
 *    tests don't fight. `bindFn` binds a derived value computed at
 *    snapshot time (e.g. hits = lookups - computes).
 *
 * Nothing in here touches simulated state: stats observe wall-clock
 * reality only, so telemetry on vs off leaves every simulation
 * result byte-identical.
 */

#ifndef MCD_TELEMETRY_STAT_REGISTRY_HH
#define MCD_TELEMETRY_STAT_REGISTRY_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mcd
{
namespace telemetry
{

/** Monotonic event count. Relaxed increments; exact totals. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous level (queue depth, worker count). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void add(std::int64_t d)
    {
        value_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Point-in-time copy of a histogram, safe to aggregate offline. */
struct HistogramData
{
    /** Bucket b holds values with bit_width == b, i.e. [2^(b-1), 2^b)
     *  (bucket 0 holds exactly 0). 65 buckets cover all of uint64. */
    static constexpr int BUCKETS = 65;

    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0; //!< valid only when count > 0
    std::uint64_t max = 0;
    std::uint64_t buckets[BUCKETS] = {};

    double mean() const
    {
        return count > 0
            ? static_cast<double>(sum) / static_cast<double>(count)
            : 0.0;
    }

    /**
     * Approximate quantile (q in [0,1]) by linear interpolation
     * inside the bucket holding the q-th sample, clamped to the
     * exact observed [min, max]. Log2 buckets bound the relative
     * error at 2x — plenty for a latency breakdown.
     */
    double quantile(double q) const;
};

/**
 * Fixed-bucket log2 histogram of non-negative samples (typically
 * nanoseconds or bytes). Recording is wait-free except for the
 * min/max CAS loops, which only retry under contention on fresh
 * extremes.
 */
class Histogram
{
  public:
    void record(std::uint64_t v);

    HistogramData read() const;

    /** Forget all samples (microbenchmark hygiene, test isolation). */
    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~0ull};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[HistogramData::BUCKETS] = {};
};

/** One stat in a snapshot. */
struct StatValue
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    std::string path;
    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;   //!< Kind::Counter
    std::int64_t gauge = 0;      //!< Kind::Gauge
    HistogramData hist;          //!< Kind::Histogram
};

/** The process-wide registry. See file comment for the model. */
class StatRegistry
{
  public:
    /** The singleton every subsystem publishes into. */
    static StatRegistry &instance();

    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Create-or-get an owned stat. The reference stays valid for
     *  the registry's lifetime; cache it outside hot loops. A path
     *  already bound or owned with a different kind is fatal-free:
     *  the owned stat wins and the call returns it (create) or the
     *  existing one (get). */
    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    Histogram &histogram(const std::string &path);

    /** Publish an externally-owned stat under `path` (latest wins).
     *  The pointer must outlive the binding; call `unbind` from the
     *  owner's destructor when the owner can die before the process
     *  does. */
    void bindCounter(const std::string &path, const Counter *stat);
    void bindGauge(const std::string &path, const Gauge *stat);
    void bindHistogram(const std::string &path, const Histogram *stat);

    /** Bind a derived value computed at snapshot time. Keep the
     *  callback cheap and reentrancy-free: it runs under the
     *  registry mutex and must not touch the registry itself. */
    void bindFn(const std::string &path,
                std::function<std::uint64_t()> fn);

    /** Remove a binding (no-op when absent). Owned stats cannot be
     *  unbound — they are process-lifetime by design. */
    void unbind(const std::string &path);

    /** Point-in-time values of every stat whose path starts with
     *  `prefix`, sorted by path. */
    std::vector<StatValue> snapshot(const std::string &prefix = "") const;

    // --- renderers (pure functions of a snapshot) ---

    /** Fixed-width text table: path, value or count/p50/p95/max. */
    static std::string renderTable(const std::vector<StatValue> &stats);

    /** One flat JSON object keyed by dotted path, sorted; histograms
     *  become {count,sum,min,max,mean,p50,p95,p99}. */
    static std::string renderJson(const std::vector<StatValue> &stats);

    /** Prometheus exposition text: counters/gauges as-is, histograms
     *  as summaries (quantile labels + _sum/_count). Dots become
     *  underscores and every name gains the `mcd_` prefix. */
    static std::string
    renderPrometheus(const std::vector<StatValue> &stats);

  private:
    struct Entry
    {
        StatValue::Kind kind = StatValue::Kind::Counter;
        // Owned storage (exactly one non-null for owned entries).
        std::unique_ptr<Counter> ownedCounter;
        std::unique_ptr<Gauge> ownedGauge;
        std::unique_ptr<Histogram> ownedHistogram;
        // Bound views (non-owning).
        const Counter *boundCounter = nullptr;
        const Gauge *boundGauge = nullptr;
        const Histogram *boundHistogram = nullptr;
        std::function<std::uint64_t()> fn;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Entry> stats_;
};

} // namespace telemetry
} // namespace mcd

#endif // MCD_TELEMETRY_STAT_REGISTRY_HH
