/**
 * @file
 * The Table 4 branch prediction hierarchy: a bimodal predictor (1 K
 * 2-bit counters), a two-level adaptive predictor (level 1: 1 K entries
 * of 10-bit local history; level 2: 1 K 2-bit counters), a combining
 * chooser (4 K 2-bit counters), a 4096-set 2-way BTB, and a return
 * address stack. Mispredictions cost 7 front-end cycles (the paper's
 * branch mispredict penalty), enforced by the core.
 */

#ifndef MCD_PREDICTOR_BRANCH_PREDICTOR_HH
#define MCD_PREDICTOR_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serial.hh"
#include "common/stats.hh"

namespace mcd
{

/** Shared 2-bit saturating counter helpers. */
namespace satcnt
{

inline std::uint8_t
update(std::uint8_t counter, bool up)
{
    if (up)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

inline bool taken(std::uint8_t counter) { return counter >= 2; }

} // namespace satcnt

/** Classic bimodal table of 2-bit counters indexed by PC. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(int entries = 1024);

    bool predict(std::uint64_t pc) const;
    void update(std::uint64_t pc, bool taken);

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    std::vector<std::uint8_t> counters_;
    std::uint64_t mask_;
};

/** Two-level adaptive predictor with per-PC local history. */
class TwoLevelPredictor
{
  public:
    TwoLevelPredictor(int l1_entries = 1024, int history_bits = 10,
                      int l2_entries = 1024);

    bool predict(std::uint64_t pc) const;
    void update(std::uint64_t pc, bool taken);

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    std::vector<std::uint16_t> history_;
    std::vector<std::uint8_t> pht_;
    std::uint64_t l1_mask_;
    std::uint64_t l2_mask_;
    std::uint16_t history_mask_;

    std::size_t phtIndex(std::uint64_t pc) const;
};

/** McFarling-style combining predictor with a chooser table. */
class CombiningPredictor
{
  public:
    CombiningPredictor(int chooser_entries = 4096,
                       int bimodal_entries = 1024,
                       int l1_entries = 1024, int history_bits = 10,
                       int l2_entries = 1024);

    bool predict(std::uint64_t pc) const;
    void update(std::uint64_t pc, bool taken);

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    BimodalPredictor bimodal_;
    TwoLevelPredictor two_level_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t chooser_mask_;
};

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(int sets = 4096, int ways = 2);

    /** Predicted target for `pc`, if the BTB knows it. */
    std::optional<std::uint64_t> lookup(std::uint64_t pc) const;

    /** Install/refresh the target for a taken branch. */
    void update(std::uint64_t pc, std::uint64_t target);

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    int sets_;
    int ways_;
    std::vector<Entry> entries_;
    std::uint64_t lru_clock_ = 0;

    std::size_t setBase(std::uint64_t pc) const;
};

/** Return address stack with wrap-around overwrite semantics. */
class Ras
{
  public:
    explicit Ras(int entries = 16);

    void push(std::uint64_t return_pc);
    std::optional<std::uint64_t> pop();
    bool empty() const { return size_ == 0; }

    void saveState(std::string &out) const;
    bool loadState(serial::Reader &in);

  private:
    std::vector<std::uint64_t> stack_;
    int top_ = 0;
    int size_ = 0;
};

/** What fetch learns about a control-flow instruction. */
struct BranchPrediction
{
    bool predictTaken = false;
    std::uint64_t target = 0; //!< valid only when predictTaken
    bool fromRas = false;
    bool btbHit = false;
};

/** Facade combining direction predictor, BTB, and RAS. */
class BranchPredictor
{
  public:
    BranchPredictor();

    /**
     * Predict a control instruction at `pc`.
     * @param is_call     pushes the return address on the RAS
     * @param is_return   predicted via the RAS
     * @param fallthrough pc of the next sequential instruction
     */
    BranchPrediction predict(std::uint64_t pc, bool is_call,
                             bool is_return, std::uint64_t fallthrough);

    /** Train with the resolved outcome. */
    void update(std::uint64_t pc, bool taken, std::uint64_t target,
                bool is_call, bool is_return);

    const Counter &lookups() const { return lookups_; }

    /** Serialize every predictor table (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on table-size mismatch. */
    bool loadState(serial::Reader &in);

  private:
    CombiningPredictor direction_;
    Btb btb_;
    Ras ras_;
    Counter lookups_;
};

} // namespace mcd

#endif // MCD_PREDICTOR_BRANCH_PREDICTOR_HH
