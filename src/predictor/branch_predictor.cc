#include "predictor/branch_predictor.hh"

#include "common/logging.hh"

namespace mcd
{

namespace
{

std::uint64_t
maskFor(int entries)
{
    if (entries <= 0 || (entries & (entries - 1)) != 0)
        mcd_fatal("predictor table size %d must be a power of two",
                  entries);
    return static_cast<std::uint64_t>(entries - 1);
}

/** Drop the low two PC bits (instruction alignment) before indexing. */
inline std::uint64_t
pcIndex(std::uint64_t pc)
{
    return pc >> 2;
}

/** Byte-table serialization shared by the counter arrays. */
template <typename T>
void
saveTable(std::string &out, const std::vector<T> &table)
{
    serial::appendU64(out, table.size());
    for (T v : table)
        serial::appendU64(out, static_cast<std::uint64_t>(v));
}

template <typename T>
bool
loadTable(serial::Reader &in, std::vector<T> &table)
{
    if (in.readU64() != table.size())
        return false;
    for (T &v : table)
        v = static_cast<T>(in.readU64());
    return in.ok();
}

} // namespace

BimodalPredictor::BimodalPredictor(int entries)
    : counters_(static_cast<std::size_t>(entries), 2), // weakly taken
      mask_(maskFor(entries))
{
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return satcnt::taken(counters_[pcIndex(pc) & mask_]);
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = counters_[pcIndex(pc) & mask_];
    counter = satcnt::update(counter, taken);
}

TwoLevelPredictor::TwoLevelPredictor(int l1_entries, int history_bits,
                                     int l2_entries)
    : history_(static_cast<std::size_t>(l1_entries), 0),
      pht_(static_cast<std::size_t>(l2_entries), 2),
      l1_mask_(maskFor(l1_entries)),
      l2_mask_(maskFor(l2_entries)),
      history_mask_(static_cast<std::uint16_t>((1u << history_bits) - 1))
{
}

std::size_t
TwoLevelPredictor::phtIndex(std::uint64_t pc) const
{
    std::uint16_t hist = history_[pcIndex(pc) & l1_mask_];
    // XOR-fold history with the PC so distinct branches sharing history
    // patterns interfere less (gshare-flavored second level).
    return static_cast<std::size_t>(
        (hist ^ pcIndex(pc)) & l2_mask_);
}

bool
TwoLevelPredictor::predict(std::uint64_t pc) const
{
    return satcnt::taken(pht_[phtIndex(pc)]);
}

void
TwoLevelPredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = pht_[phtIndex(pc)];
    counter = satcnt::update(counter, taken);
    auto &hist = history_[pcIndex(pc) & l1_mask_];
    hist = static_cast<std::uint16_t>(
        ((hist << 1) | (taken ? 1u : 0u)) & history_mask_);
}

CombiningPredictor::CombiningPredictor(int chooser_entries,
                                       int bimodal_entries,
                                       int l1_entries, int history_bits,
                                       int l2_entries)
    : bimodal_(bimodal_entries),
      two_level_(l1_entries, history_bits, l2_entries),
      chooser_(static_cast<std::size_t>(chooser_entries), 2),
      chooser_mask_(maskFor(chooser_entries))
{
}

bool
CombiningPredictor::predict(std::uint64_t pc) const
{
    bool use_two_level =
        satcnt::taken(chooser_[pcIndex(pc) & chooser_mask_]);
    return use_two_level ? two_level_.predict(pc) : bimodal_.predict(pc);
}

void
CombiningPredictor::update(std::uint64_t pc, bool taken)
{
    bool bimodal_correct = bimodal_.predict(pc) == taken;
    bool two_level_correct = two_level_.predict(pc) == taken;
    if (bimodal_correct != two_level_correct) {
        auto &counter = chooser_[pcIndex(pc) & chooser_mask_];
        counter = satcnt::update(counter, two_level_correct);
    }
    bimodal_.update(pc, taken);
    two_level_.update(pc, taken);
}

Btb::Btb(int sets, int ways)
    : sets_(sets), ways_(ways),
      entries_(static_cast<std::size_t>(sets) *
               static_cast<std::size_t>(ways))
{
    maskFor(sets); // validates power of two
}

std::size_t
Btb::setBase(std::uint64_t pc) const
{
    std::uint64_t set = pcIndex(pc) &
        static_cast<std::uint64_t>(sets_ - 1);
    return static_cast<std::size_t>(set) *
           static_cast<std::size_t>(ways_);
}

std::optional<std::uint64_t>
Btb::lookup(std::uint64_t pc) const
{
    std::size_t base = setBase(pc);
    for (int w = 0; w < ways_; ++w) {
        const Entry &entry = entries_[base + static_cast<std::size_t>(w)];
        if (entry.valid && entry.tag == pcIndex(pc))
            return entry.target;
    }
    return std::nullopt;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    ++lru_clock_;
    std::size_t base = setBase(pc);
    Entry *victim = &entries_[base];
    for (int w = 0; w < ways_; ++w) {
        Entry &entry = entries_[base + static_cast<std::size_t>(w)];
        if (entry.valid && entry.tag == pcIndex(pc)) {
            entry.target = target;
            entry.lruStamp = lru_clock_;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (!victim->valid ? false
                                  : entry.lruStamp < victim->lruStamp) {
            victim = &entry;
        }
    }
    victim->valid = true;
    victim->tag = pcIndex(pc);
    victim->target = target;
    victim->lruStamp = lru_clock_;
}

Ras::Ras(int entries)
    : stack_(static_cast<std::size_t>(entries), 0)
{
    if (entries <= 0)
        mcd_fatal("RAS needs at least one entry");
}

void
Ras::push(std::uint64_t return_pc)
{
    stack_[static_cast<std::size_t>(top_)] = return_pc;
    top_ = (top_ + 1) % static_cast<int>(stack_.size());
    if (size_ < static_cast<int>(stack_.size()))
        ++size_;
}

std::optional<std::uint64_t>
Ras::pop()
{
    if (size_ == 0)
        return std::nullopt;
    top_ = (top_ + static_cast<int>(stack_.size()) - 1) %
           static_cast<int>(stack_.size());
    --size_;
    return stack_[static_cast<std::size_t>(top_)];
}

void
BimodalPredictor::saveState(std::string &out) const
{
    saveTable(out, counters_);
}

bool
BimodalPredictor::loadState(serial::Reader &in)
{
    return loadTable(in, counters_);
}

void
TwoLevelPredictor::saveState(std::string &out) const
{
    saveTable(out, history_);
    saveTable(out, pht_);
}

bool
TwoLevelPredictor::loadState(serial::Reader &in)
{
    return loadTable(in, history_) && loadTable(in, pht_);
}

void
CombiningPredictor::saveState(std::string &out) const
{
    bimodal_.saveState(out);
    two_level_.saveState(out);
    saveTable(out, chooser_);
}

bool
CombiningPredictor::loadState(serial::Reader &in)
{
    return bimodal_.loadState(in) && two_level_.loadState(in) &&
           loadTable(in, chooser_);
}

void
Btb::saveState(std::string &out) const
{
    serial::appendU64(out, entries_.size());
    for (const Entry &entry : entries_) {
        serial::appendU64(out, entry.tag);
        serial::appendU64(out, entry.target);
        serial::appendU64(out, entry.valid ? 1 : 0);
        serial::appendU64(out, entry.lruStamp);
    }
    serial::appendU64(out, lru_clock_);
}

bool
Btb::loadState(serial::Reader &in)
{
    if (in.readU64() != entries_.size())
        return false;
    for (Entry &entry : entries_) {
        entry.tag = in.readU64();
        entry.target = in.readU64();
        entry.valid = in.readU64() != 0;
        entry.lruStamp = in.readU64();
    }
    lru_clock_ = in.readU64();
    return in.ok();
}

void
Ras::saveState(std::string &out) const
{
    saveTable(out, stack_);
    serial::appendI64(out, top_);
    serial::appendI64(out, size_);
}

bool
Ras::loadState(serial::Reader &in)
{
    if (!loadTable(in, stack_))
        return false;
    top_ = static_cast<int>(in.readI64());
    size_ = static_cast<int>(in.readI64());
    return in.ok();
}

void
BranchPredictor::saveState(std::string &out) const
{
    direction_.saveState(out);
    btb_.saveState(out);
    ras_.saveState(out);
    serial::appendU64(out, lookups_.value());
}

bool
BranchPredictor::loadState(serial::Reader &in)
{
    if (!direction_.loadState(in) || !btb_.loadState(in) ||
        !ras_.loadState(in))
        return false;
    lookups_.set(in.readU64());
    return in.ok();
}

BranchPredictor::BranchPredictor() = default;

BranchPrediction
BranchPredictor::predict(std::uint64_t pc, bool is_call, bool is_return,
                         std::uint64_t fallthrough)
{
    lookups_.inc();
    BranchPrediction prediction;

    if (is_return) {
        if (auto target = ras_.pop()) {
            prediction.predictTaken = true;
            prediction.target = *target;
            prediction.fromRas = true;
            return prediction;
        }
        // Fall through to BTB below if the RAS is empty.
    }

    auto btb_target = btb_.lookup(pc);
    prediction.btbHit = btb_target.has_value();
    bool taken = direction_.predict(pc);
    // Unconditional calls are always taken once the target is known.
    if (is_call)
        taken = true;
    if (taken && btb_target) {
        prediction.predictTaken = true;
        prediction.target = *btb_target;
    }
    // Without a BTB target the front end cannot redirect, so the
    // effective prediction is not-taken even if the direction said taken.

    if (is_call)
        ras_.push(fallthrough);
    return prediction;
}

void
BranchPredictor::update(std::uint64_t pc, bool taken, std::uint64_t target,
                        bool is_call, bool is_return)
{
    if (!is_return)
        direction_.update(pc, taken);
    if (taken && !is_return)
        btb_.update(pc, target);
    (void)is_call;
}

} // namespace mcd
