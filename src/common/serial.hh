/**
 * @file
 * Exact byte serialization shared by the cache keys and the artifact
 * store, plus the FNV-1a string hash. ControllerSpec::appendTo, the
 * spec cacheKey() builders, and the artifact encoders jointly build
 * their byte strings from these helpers, so there is exactly one
 * definition of the byte layout: equal serializations are the store's
 * proof of bit-identical values (doubles are appended as raw IEEE-754
 * bits, strings length-prefixed, so no two distinct values ever
 * collide), and `Reader` is the exact inverse used to decode persisted
 * artifacts (any truncation or trailing garbage marks the blob
 * corrupt instead of decoding to a wrong value).
 */

#ifndef MCD_COMMON_SERIAL_HH
#define MCD_COMMON_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace mcd::serial
{

inline void
appendU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

inline void
appendI64(std::string &out, std::int64_t v)
{
    appendU64(out, static_cast<std::uint64_t>(v));
}

inline void
appendDouble(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(out, bits);
}

inline void
appendString(std::string &out, const std::string &s)
{
    appendU64(out, s.size());
    out += s;
}

/** FNV-1a: a build-independent deterministic string hash. */
inline std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Sequential decoder over a byte string written with the append
 * helpers. Every read checks bounds; the first short or malformed
 * field latches `ok()` false and makes all subsequent reads return
 * zero values, so a decoder can run to completion and test `ok()`
 * (plus `atEnd()` for trailing garbage) once at the end.
 */
class Reader
{
  public:
    explicit Reader(const std::string &data) : data_(data) {}

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == data_.size(); }

    std::uint64_t
    readU64()
    {
        if (!take(sizeof(std::uint64_t)))
            return 0;
        std::uint64_t v;
        std::memcpy(&v, data_.data() + pos_ - sizeof(v), sizeof(v));
        return v;
    }

    std::int64_t
    readI64()
    {
        return static_cast<std::int64_t>(readU64());
    }

    double
    readDouble()
    {
        std::uint64_t bits = readU64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return ok_ ? v : 0.0;
    }

    std::string
    readString()
    {
        std::uint64_t n = readU64();
        if (!ok_ || n > data_.size() - pos_) {
            ok_ = false;
            return {};
        }
        std::string s = data_.substr(pos_, n);
        pos_ += n;
        return s;
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || n > data_.size() - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const std::string &data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace mcd::serial

#endif // MCD_COMMON_SERIAL_HH
