/**
 * @file
 * Exact byte serialization for cache keys plus the FNV-1a string
 * hash. ControllerSpec::appendTo and ExperimentSpec::cacheKey()
 * jointly build one key from these helpers, so there must be exactly
 * one definition of the byte layout: equal serializations are the
 * cache's proof of bit-identical runs (doubles are appended as raw
 * IEEE-754 bits, strings length-prefixed, so no two distinct values
 * ever collide).
 */

#ifndef MCD_COMMON_SERIAL_HH
#define MCD_COMMON_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace mcd::serial
{

inline void
appendU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

inline void
appendI64(std::string &out, std::int64_t v)
{
    appendU64(out, static_cast<std::uint64_t>(v));
}

inline void
appendDouble(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    appendU64(out, bits);
}

inline void
appendString(std::string &out, const std::string &s)
{
    appendU64(out, s.size());
    out += s;
}

/** FNV-1a: a build-independent deterministic string hash. */
inline std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace mcd::serial

#endif // MCD_COMMON_SERIAL_HH
