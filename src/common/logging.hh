/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic() is for internal invariant violations (simulator bugs): it
 * aborts. fatal() is for user errors (bad configuration): it exits with a
 * nonzero status. warn()/inform() report conditions without stopping the
 * simulation.
 */

#ifndef MCD_COMMON_LOGGING_HH
#define MCD_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mcd
{

/**
 * What mcd_fatal raises instead of exiting while a FatalErrorScope is
 * active on the calling thread. Carries the formatted message.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard turning mcd_fatal into a thrown FatalError on this
 * thread. User errors (bad configuration text, unknown registry
 * names, out-of-range knobs) exit the process in batch tools — the
 * right behavior for a CLI — but a long-lived daemon serving many
 * clients must survive one client's typo. The serve layer wraps
 * request validation and execution in a scope, catches FatalError,
 * and turns it into a structured error reply. Scopes nest; mcd_panic
 * (invariant violations) still aborts regardless.
 */
class FatalErrorScope
{
  public:
    FatalErrorScope();
    ~FatalErrorScope();

    FatalErrorScope(const FatalErrorScope &) = delete;
    FatalErrorScope &operator=(const FatalErrorScope &) = delete;
};

namespace logging_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace logging_detail

/** Abort on an internal invariant violation (a simulator bug). */
#define mcd_panic(...)                                                       \
    ::mcd::logging_detail::panicImpl(                                        \
        __FILE__, __LINE__, ::mcd::logging_detail::format(__VA_ARGS__))

/** Exit on a user/configuration error. */
#define mcd_fatal(...)                                                       \
    ::mcd::logging_detail::fatalImpl(                                        \
        __FILE__, __LINE__, ::mcd::logging_detail::format(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define mcd_warn(...)                                                        \
    ::mcd::logging_detail::warnImpl(::mcd::logging_detail::format(__VA_ARGS__))

/** Report normal status. */
#define mcd_inform(...)                                                      \
    ::mcd::logging_detail::informImpl(                                       \
        ::mcd::logging_detail::format(__VA_ARGS__))

} // namespace mcd

#endif // MCD_COMMON_LOGGING_HH
