#include "common/thread_pool.hh"

#include <algorithm>

#include "telemetry/profiler.hh"
#include "telemetry/stat_registry.hh"

namespace mcd
{

ThreadPool::ThreadPool(int workers)
{
    int count = std::max(1, workers);
    threads_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock,
                   [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        task_ready_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        {
            static telemetry::Counter &tasks =
                telemetry::StatRegistry::instance().counter(
                    "pool.tasks");
            tasks.inc();
            telemetry::ScopedTimer timer(
                telemetry::Phase::PoolTask);
            task();
        }
        lock.lock();
        --running_;
        if (queue_.empty() && running_ == 0)
            all_done_.notify_all();
    }
}

} // namespace mcd
