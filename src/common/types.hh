/**
 * @file
 * Fundamental simulation types shared by every MCD-DVFS module.
 *
 * Time is kept in integer picoseconds so that clock-edge arithmetic with
 * sub-period jitter (sigma = 110 ps) and the 300 ps synchronization window
 * is exact. At 1 GHz a cycle is 1,000 ticks; a 64-bit tick counter covers
 * more than 100 days of simulated time.
 */

#ifndef MCD_COMMON_TYPES_HH
#define MCD_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace mcd
{

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** One nanosecond in ticks. */
constexpr Tick TICKS_PER_NS = 1000;

/** One microsecond in ticks. */
constexpr Tick TICKS_PER_US = 1000 * TICKS_PER_NS;

/** Sentinel for "no event scheduled / never". */
constexpr Tick MAX_TICK = std::numeric_limits<Tick>::max();

/** Frequency in hertz. Stored as double; quantization is explicit. */
using Hertz = double;

/** Supply voltage in volts. */
using Volt = double;

/** Energy in nanojoules. */
using NanoJoule = double;

/** Convert a frequency to its clock period in ticks (picoseconds). */
constexpr Tick
periodFromFreq(Hertz freq_hz)
{
    return static_cast<Tick>(1e12 / freq_hz + 0.5);
}

/** Convert a clock period in ticks to frequency in hertz. */
constexpr Hertz
freqFromPeriod(Tick period_ps)
{
    return 1e12 / static_cast<double>(period_ps);
}

/**
 * Identifier of a clock domain in the four-domain MCD processor of
 * Semeraro et al. (Figure 1). External covers main memory, which is
 * independently clocked but not controllable.
 */
enum class DomainId : std::uint8_t
{
    FrontEnd = 0,       //!< fetch, L1I, branch prediction, rename, ROB
    Integer = 1,        //!< integer issue queue, ALUs, register file
    FloatingPoint = 2,  //!< FP issue queue, ALUs, register file
    LoadStore = 3,      //!< LSQ, L1D, unified L2
    External = 4,       //!< main memory; fixed frequency/voltage
};

/** Number of on-chip, controllable-clock domains. */
constexpr int NUM_CLOCKED_DOMAINS = 4;

/** Number of domains including the external (main memory) domain. */
constexpr int NUM_DOMAINS = 5;

/** The domains whose frequency the controller may change. */
constexpr DomainId CONTROLLABLE_DOMAINS[] = {
    DomainId::Integer, DomainId::FloatingPoint, DomainId::LoadStore
};

/** Human-readable domain name. */
const char *domainName(DomainId id);

/** Iteration helper: numeric index of a domain. */
constexpr int
domainIndex(DomainId id)
{
    return static_cast<int>(id);
}

} // namespace mcd

#endif // MCD_COMMON_TYPES_HH
