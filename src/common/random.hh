/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Clock jitter is sampled once per domain cycle (Section 4 of the paper:
 * normally distributed, zero mean, sigma = 110 ps), i.e. tens of millions
 * of draws per run, so the normal sampler must be cheap. We use
 * xoshiro256** for the uniform stream and a 4,096-entry inverse-CDF table
 * (linear interpolation between quantiles) for the normal distribution.
 * Everything is seeded explicitly: identical seeds reproduce identical
 * simulations bit-for-bit.
 */

#ifndef MCD_COMMON_RANDOM_HH
#define MCD_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace mcd
{

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna). Fast,
 * high-quality, and trivially seedable via splitmix64.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) without modulo bias for small bound. */
    std::uint64_t range(std::uint64_t bound);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Standard-normal draw via a precomputed inverse-CDF table with
     * linear interpolation. Mean 0, standard deviation 1 (to within the
     * table's quantization; see tests for measured moments).
     */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double sigma);

    /**
     * Geometric-ish burst length: number of consecutive successes with
     * continuation probability p, capped at `cap`. Used by the workload
     * generators for run lengths.
     */
    int burstLength(double p, int cap);

    /** Raw generator state (checkpointing). Every draw is a pure
     *  function of this state, so save/restore reproduces the stream
     *  bit-for-bit. */
    const std::array<std::uint64_t, 4> &state() const { return state_; }
    void setState(const std::array<std::uint64_t, 4> &s) { state_ = s; }

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace mcd

#endif // MCD_COMMON_RANDOM_HH
