/**
 * @file
 * Lightweight statistics primitives in the spirit of the gem5 stats
 * package: named scalar counters, running means/variances, and fixed-bin
 * histograms. These are deliberately simple — the harness layer turns
 * them into the paper's derived metrics.
 */

#ifndef MCD_COMMON_STATS_HH
#define MCD_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcd
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Restore a saved value (checkpointing). */
    void set(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming mean / variance / min / max via Welford's algorithm.
 * Numerically stable for long runs.
 */
class RunningStats
{
  public:
    void push(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi); out-of-range goes to end bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int bins);

    void push(double x);

    std::uint64_t count() const { return count_; }
    int bins() const { return static_cast<int>(counts_.size()); }
    std::uint64_t binCount(int bin) const;
    /** Lower edge of the given bin. */
    double binLow(int bin) const;
    /** Fraction of samples in the given bin. */
    double binFraction(int bin) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::uint64_t count_ = 0;
    std::vector<std::uint64_t> counts_;
};

/**
 * A registry mapping stat names to scalar values, used for machine-
 * readable dumps of a run. Values are doubles; counters are widened.
 */
class StatDump
{
  public:
    void set(const std::string &name, double value);
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    /** Render "name value" lines, sorted by name. */
    std::string render() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace mcd

#endif // MCD_COMMON_STATS_HH
