#include "common/json.hh"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <cstdlib>

namespace mcd::json
{

namespace
{

/** Recursive-descent parser over a borrowed text buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    run(Value &out, std::string *error)
    {
        bool ok = parseValue(out, 0) && (skipSpace(), pos_ == text_.size());
        if (!ok) {
            if (error_.empty())
                error_ = "trailing characters";
            if (error)
                *error = error_ + " at byte " + std::to_string(pos_);
        }
        return ok;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t length)
    {
        if (text_.compare(pos_, length, word) != 0)
            return false;
        pos_ += length;
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true", 4) || fail("bad literal");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false", 5) || fail("bad literal");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null", 4) || fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    hexQuad(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!hexQuad(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: require a paired low surrogate.
                    if (!literal("\\u", 2))
                        return fail("unpaired surrogate");
                    unsigned low = 0;
                    if (!hexQuad(low))
                        return false;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("unpaired surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (low - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("bad escape");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == digits)
            return fail("expected a value");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == frac)
                return fail("bad number");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            std::size_t exp = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == exp)
                return fail("bad number");
        }
        out.kind = Value::Kind::Number;
        out.number =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

const Value *
Value::get(const std::string &key) const
{
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = get(key);
    return v && v->isString() ? v->string : fallback;
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = get(key);
    return v && v->isNumber() ? v->number : fallback;
}

std::uint64_t
Value::getU64(const std::string &key, std::uint64_t fallback) const
{
    const Value *v = get(key);
    if (!v || !v->isNumber() || v->number < 0.0)
        return fallback;
    return static_cast<std::uint64_t>(v->number);
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = get(key);
    return v && v->isBool() ? v->boolean : fallback;
}

bool
parse(const std::string &text, Value &out, std::string *error)
{
    out = Value{};
    return Parser(text).run(out, error);
}

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
str(const std::string &text)
{
    // Built with += (not `"\"" + ... + "\""`): GCC 12's -Wrestrict
    // false-positives on prepending a literal to an rvalue string.
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    out += escape(text);
    out += '"';
    return out;
}

std::string
num(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // JSON has no infinities or NaNs; the stats never produce them,
    // but guard anyway.
    if (std::strchr(buf, 'n') || std::strchr(buf, 'i'))
        return "null";
    return buf;
}

std::string
u64(std::uint64_t value)
{
    return std::to_string(value);
}

} // namespace mcd::json
