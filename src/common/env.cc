#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace mcd
{

std::int64_t
envInt64(const char *name, std::int64_t fallback, std::int64_t min)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0')
        return fallback;
    if (v < min)
        return fallback;
    return static_cast<std::int64_t>(v);
}

int
envInt(const char *name, int fallback, int min)
{
    std::int64_t v = envInt64(name, fallback, min);
    // Out-of-int-range counts as malformed, like any other bad value:
    // silently wrapping a typo into a tiny interval would be worse
    // than keeping the default.
    if (v > std::numeric_limits<int>::max())
        return fallback;
    return static_cast<int>(v);
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback, std::uint64_t min)
{
    std::int64_t v = envInt64(name, -1, static_cast<std::int64_t>(min));
    if (v < 0)
        return fallback;
    return static_cast<std::uint64_t>(v);
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    bool blank = true;
    for (const char *p = s; *p; ++p)
        blank = blank && std::isspace(static_cast<unsigned char>(*p));
    if (blank)
        return fallback;
    return s;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> items;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            items.push_back(item);
    return items;
}

std::vector<std::string>
envList(const char *name)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return {};
    return splitList(s);
}

std::vector<std::string>
splitScenarioList(const std::string &text)
{
    std::vector<std::string> items;
    for (const std::string &item : splitList(text)) {
        bool knob = item.find('=') != std::string::npos &&
                    item.find(':') == std::string::npos;
        if (knob && !items.empty() &&
            items.back().find(':') != std::string::npos) {
            items.back() += "," + item;
        } else {
            items.push_back(item);
        }
    }
    return items;
}

std::vector<std::string>
envScenarioList(const char *name)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return {};
    return splitScenarioList(s);
}

} // namespace mcd
