/**
 * @file
 * A fixed-size worker pool executing submitted tasks FIFO.
 *
 * The pool is the low-level substrate of the batch sweep engine
 * (harness/parallel_sweep.hh): simulation jobs are coarse (whole runs,
 * seconds each), so a simple mutex-protected queue is more than fast
 * enough and keeps the scheduling semantics easy to reason about.
 * Determinism is the callers' concern: tasks must write to disjoint,
 * pre-assigned slots so results do not depend on execution order.
 */

#ifndef MCD_COMMON_THREAD_POOL_HH
#define MCD_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcd
{

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (clamped to at least one). */
    explicit ThreadPool(int workers);

    /** Waits for queued work to finish, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one task. Safe from any thread, including workers.
     *
     * Tasks must not let exceptions escape: one thrown from a task
     * propagates out of the worker thread and terminates the process.
     * Callers that need error propagation wrap the task body and
     * capture the exception themselves, as ParallelSweep::forEach
     * does.
     */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

    int workerCount() const
    {
        return static_cast<int>(threads_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    int running_ = 0;    //!< tasks currently executing
    bool stopping_ = false;
};

} // namespace mcd

#endif // MCD_COMMON_THREAD_POOL_HH
