/**
 * @file
 * Minimal JSON support for the serving layer and the CLI: a
 * recursive-descent parser into a small `Value` tree, and the emit
 * helpers (`escape`/`str`/`num`/`u64`) the JSON-producing surfaces
 * share. The grammar we exchange is flat and small — requests and
 * replies of the `mcd_cli serve` protocol, the CLI's `--json` output —
 * so a dependency-free ~300-line implementation beats vendoring a
 * library the container may not have.
 *
 * Parser notes:
 *  - Full JSON value grammar (objects, arrays, strings, numbers,
 *    true/false/null), UTF-8 passed through verbatim; `\uXXXX`
 *    escapes decode to UTF-8 (surrogate pairs included).
 *  - Object member order is preserved (vector of pairs, not a map);
 *    duplicate keys keep the first occurrence for `get()`.
 *  - Depth-limited (64) so hostile input cannot overflow the stack —
 *    this code sits behind a network-facing socket.
 */

#ifndef MCD_COMMON_JSON_HH
#define MCD_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcd::json
{

/** One parsed JSON value (a tree; cheap enough at protocol sizes). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only): first match, or nullptr. */
    const Value *get(const std::string &key) const;

    /** The member's string value, or `fallback` when absent/not a
     *  string. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** The member's number, or `fallback` when absent/not a number. */
    double getNumber(const std::string &key, double fallback) const;

    /** getNumber narrowed to a non-negative integer (truncated);
     *  negative numbers return `fallback`. */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;

    /** The member's bool, or `fallback` when absent/not a bool. */
    bool getBool(const std::string &key, bool fallback) const;
};

/**
 * Parse `text` (one complete JSON value, surrounding whitespace
 * allowed). Returns false — with a position-annotated message in
 * `error` when non-null — on any syntax violation, trailing garbage,
 * or excessive nesting; `out` is unspecified on failure.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

/** Escape a string's content for embedding inside JSON quotes. */
std::string escape(const std::string &text);

/** A quoted, escaped JSON string literal. */
std::string str(const std::string &text);

/** A JSON number via %.17g (round-trips doubles); non-finite values
 *  emit `null`, which the flat stats grammar treats as absent. */
std::string num(double value);

/** A JSON integer literal. */
std::string u64(std::uint64_t value);

} // namespace mcd::json

#endif // MCD_COMMON_JSON_HH
