#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace mcd
{

void
RunningStats::push(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0)
{
    if (bins <= 0 || hi <= lo)
        mcd_fatal("invalid histogram range [%f, %f) with %d bins",
                  lo, hi, bins);
}

void
Histogram::push(double x)
{
    ++count_;
    int bin;
    if (x < lo_) {
        bin = 0;
    } else if (x >= hi_) {
        bin = bins() - 1;
    } else {
        bin = static_cast<int>((x - lo_) / width_);
        bin = std::min(bin, bins() - 1);
    }
    ++counts_[static_cast<std::size_t>(bin)];
}

std::uint64_t
Histogram::binCount(int bin) const
{
    if (bin < 0 || bin >= bins())
        mcd_panic("histogram bin %d out of range", bin);
    return counts_[static_cast<std::size_t>(bin)];
}

double
Histogram::binLow(int bin) const
{
    return lo_ + width_ * bin;
}

double
Histogram::binFraction(int bin) const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(binCount(bin)) /
           static_cast<double>(count_);
}

void
StatDump::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatDump::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        mcd_panic("unknown stat '%s'", name.c_str());
    return it->second;
}

bool
StatDump::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
StatDump::render() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << name << " " << value << "\n";
    return os.str();
}

} // namespace mcd
