#include "common/logging.hh"

#include <cstdarg>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "telemetry/events.hh"
#include "telemetry/stat_registry.hh"

namespace mcd
{

namespace
{

// Depth of active FatalErrorScopes on this thread. A scope must be
// entered on the thread that hits the fatal — the serve layer enters
// one on each connection and worker thread it owns.
thread_local int fatal_scope_depth = 0;

// MCD_LOG_JSON=1 switches warn/inform to one-line JSON records so
// daemon and fleet stderr is machine-parseable. Checked live (not
// cached): log calls are never hot, and tests flip the variable.
bool
logJson()
{
    const char *v = std::getenv("MCD_LOG_JSON");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
emitLog(std::FILE *stream, const char *level, const std::string &msg)
{
    if (!logJson()) {
        std::fprintf(stream, "%s: %s\n", level, msg.c_str());
        return;
    }
    std::fprintf(
        stream,
        "{\"ts\": %llu, \"level\": \"%s\", \"thread\": %llu, "
        "\"msg\": \"%s\"}\n",
        static_cast<unsigned long long>(telemetry::wallClockNs()),
        level,
        static_cast<unsigned long long>(
            std::hash<std::thread::id>{}(std::this_thread::get_id())),
        jsonEscape(msg).c_str());
}

} // namespace

FatalErrorScope::FatalErrorScope() { ++fatal_scope_depth; }

FatalErrorScope::~FatalErrorScope() { --fatal_scope_depth; }

namespace logging_detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatal_scope_depth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    static telemetry::Counter &count =
        telemetry::StatRegistry::instance().counter("log.warn");
    count.inc();
    emitLog(stderr, "warn", msg);
}

void
informImpl(const std::string &msg)
{
    static telemetry::Counter &count =
        telemetry::StatRegistry::instance().counter("log.inform");
    count.inc();
    emitLog(stdout, "info", msg);
}

} // namespace logging_detail
} // namespace mcd
