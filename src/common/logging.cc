#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace mcd
{

namespace
{

// Depth of active FatalErrorScopes on this thread. A scope must be
// entered on the thread that hits the fatal — the serve layer enters
// one on each connection and worker thread it owns.
thread_local int fatal_scope_depth = 0;

} // namespace

FatalErrorScope::FatalErrorScope() { ++fatal_scope_depth; }

FatalErrorScope::~FatalErrorScope() { --fatal_scope_depth; }

namespace logging_detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatal_scope_depth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace logging_detail
} // namespace mcd
