/**
 * @file
 * One place for `MCD_*` environment-variable parsing. Every consumer
 * (RunnerConfig, the bench binaries, mcd_cli) goes through these
 * helpers, so the edge-case rules are uniform: malformed, zero-when-
 * positive-required, or negative values are ignored and the caller's
 * default kept, while explicitly-permitted zeros (e.g. MCD_WARMUP=0)
 * are honored.
 */

#ifndef MCD_COMMON_ENV_HH
#define MCD_COMMON_ENV_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mcd
{

/**
 * Parse environment variable `name` as a decimal integer. Returns
 * `fallback` when the variable is unset, not a number (leading junk or
 * trailing junk both disqualify), or below `min`.
 */
std::int64_t envInt64(const char *name, std::int64_t fallback,
                      std::int64_t min = 1);

/** envInt64 narrowed to int. */
int envInt(const char *name, int fallback, int min = 1);

/** envInt64 for unsigned quantities (counts of instructions). */
std::uint64_t envU64(const char *name, std::uint64_t fallback,
                     std::uint64_t min = 1);

/**
 * Read environment variable `name` as a non-empty string (e.g. the
 * MCD_STORE artifact-store root). Returns `fallback` when the
 * variable is unset, empty, or all whitespace — a blank path is a
 * typo, not a request for a store rooted at "" — and the value
 * verbatim otherwise.
 */
std::string envString(const char *name,
                      const std::string &fallback = "");

/**
 * Split environment variable `name` on commas, dropping empty items.
 * Returns an empty vector when the variable is unset or holds no
 * non-empty items ("", ",,,").
 */
std::vector<std::string> envList(const char *name);

/** Split an arbitrary string on commas, dropping empty items. */
std::vector<std::string> splitList(const std::string &text);

/**
 * Split a comma-separated scenario list, keeping parametric family
 * names whole: a fragment that looks like a bare knob ("ilp=4" — has
 * '=' but no ':') is re-joined onto the preceding family item
 * ("synthetic:mem=0.8"), so "gsm,synthetic:mem=0.8,ilp=4,mcf" yields
 * {"gsm", "synthetic:mem=0.8,ilp=4", "mcf"}.
 */
std::vector<std::string> splitScenarioList(const std::string &text);

/** splitScenarioList over environment variable `name` ({} if unset). */
std::vector<std::string> envScenarioList(const char *name);

} // namespace mcd

#endif // MCD_COMMON_ENV_HH
