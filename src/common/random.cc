#include "common/random.hh"

#include <cmath>

namespace mcd
{

namespace
{

constexpr int NORMAL_TABLE_SIZE = 4096;

/** Acklam's rational approximation to the inverse normal CDF. */
double
inverseNormalCdf(double p)
{
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00
    };
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01
    };
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00
    };
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00
    };
    const double p_low = 0.02425;
    const double p_high = 1 - p_low;

    if (p < p_low) {
        double q = std::sqrt(-2 * std::log(p));
        return (((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
               ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1);
    }
    if (p <= p_high) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0]*r + a[1])*r + a[2])*r + a[3])*r + a[4])*r + a[5])*q /
               (((((b[0]*r + b[1])*r + b[2])*r + b[3])*r + b[4])*r + 1);
    }
    double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0]*q + c[1])*q + c[2])*q + c[3])*q + c[4])*q + c[5]) /
           ((((d[0]*q + d[1])*q + d[2])*q + d[3])*q + 1);
}

/** Lazily built quantile table shared by all Rng instances. */
const std::array<double, NORMAL_TABLE_SIZE + 1> &
normalTable()
{
    static const auto table = [] {
        std::array<double, NORMAL_TABLE_SIZE + 1> t{};
        for (int i = 0; i <= NORMAL_TABLE_SIZE; ++i) {
            // Clamp the tails so the table stays finite; the extreme
            // quantiles map to about +/- 3.7 sigma, which is ample for
            // jitter modeling.
            double p = (i + 0.5) / (NORMAL_TABLE_SIZE + 1.0);
            t[static_cast<std::size_t>(i)] = inverseNormalCdf(p);
        }
        return t;
    }();
    return table;
}

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // All-zero state is invalid for xoshiro; splitmix64 of any seed
    // cannot produce four zero words, but be defensive anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    return next() % bound;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    const auto &table = normalTable();
    // Index with 12 bits, interpolate with the remaining fraction.
    std::uint64_t r = next();
    std::uint32_t idx = static_cast<std::uint32_t>(r >> 52); // 12 bits
    double frac = static_cast<double>((r >> 20) & 0xffffffffull) * 0x1.0p-32;
    double lo = table[idx];
    double hi = table[idx + (idx < NORMAL_TABLE_SIZE ? 1u : 0u)];
    return lo + (hi - lo) * frac;
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

int
Rng::burstLength(double p, int cap)
{
    int n = 1;
    while (n < cap && chance(p))
        ++n;
    return n;
}

} // namespace mcd
