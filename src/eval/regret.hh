/**
 * @file
 * Oracle-regret metrics of the controller stress lab: how far an
 * online controller's per-interval decisions land from the offline
 * Dynamic-X% oracle's, computed from an `EvalTrace` whose points
 * carry both the online and the oracle frequency per domain.
 *
 * Three families of metrics (all fractions unless noted):
 *  - frequency-tracking regret: |f_online - f_oracle| / f_max,
 *    averaged (and maximized) over sampled intervals, overall and per
 *    domain. Zero means the controller reproduced the oracle's
 *    schedule exactly.
 *  - outcome gaps: relative energy, run-time, and energy-delay-
 *    product excess of the online run over the oracle's replayed run
 *    (EDP gap > 0 means the online controller paid more than the
 *    oracle; the paper's headline result is that Attack/Decay keeps
 *    this within a fraction of a percent on the 30 applications).
 *  - reaction latency: after each oracle regime flip (a per-domain
 *    oracle-frequency step larger than `flipThreshold`), the number
 *    of intervals until the online frequency first comes within
 *    `trackTolerance` of the oracle's post-flip level. Flips the
 *    controller never tracks within `maxReactionIntervals` count as
 *    detected but untracked.
 */

#ifndef MCD_EVAL_REGRET_HH
#define MCD_EVAL_REGRET_HH

#include <array>
#include <cstddef>

#include "eval/trace.hh"

namespace mcd
{

/** Thresholds and windows of the regret computation. */
struct RegretOptions
{
    /** Leading intervals to ignore. Since methodology v2 traces start
     *  at the measurement boundary, the tournament passes 0; the knob
     *  remains for ad-hoc analyses that trim a settling prefix. */
    std::size_t skipIntervals = 0;

    /** Oracle step, as a fraction of f_max, that counts as a flip. */
    double flipThreshold = 0.10;

    /** "Arrived" band around the post-flip level (fraction of f_max). */
    double trackTolerance = 0.10;

    /** Give-up window for reaction tracking, in intervals. */
    std::size_t maxReactionIntervals = 64;
};

/** Regret of one online run against its embedded oracle. */
struct RegretReport
{
    std::size_t intervals = 0; //!< sampled intervals (post-skip)

    // Frequency-tracking regret, fractions of f_max.
    double meanFreqError = 0.0;  //!< mean over intervals x domains
    double worstFreqError = 0.0; //!< max over intervals x domains
    std::array<double, NUM_CONTROLLED> domainFreqError{}; //!< per-
                                 //!< domain means

    // Outcome gaps vs the oracle's replayed run, relative.
    double energyGap = 0.0; //!< E_online / E_oracle - 1
    double timeGap = 0.0;   //!< T_online / T_oracle - 1
    double edpGap = 0.0;    //!< (E*T)_online / (E*T)_oracle - 1

    // Reaction latency after oracle regime flips.
    std::size_t flips = 0;        //!< detected (domain, interval) flips
    std::size_t flipsTracked = 0; //!< flips tracked within the window
    double meanReactionIntervals = 0.0;  //!< over tracked flips
    double worstReactionIntervals = 0.0; //!< over tracked flips
};

/**
 * Compute all regret metrics of `trace` against the oracle choices it
 * embeds, with `oracleStats` the aggregate results of the oracle's
 * replayed run (an OfflineResult's stats) and `fMax` the DVFS
 * ceiling normalizing frequency errors.
 */
RegretReport computeRegret(const EvalTrace &trace,
                           const SimStats &oracleStats, Hertz fMax,
                           const RegretOptions &options = {});

} // namespace mcd

#endif // MCD_EVAL_REGRET_HH
