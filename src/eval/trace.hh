/**
 * @file
 * Per-interval telemetry traces for the controller stress lab.
 *
 * An `EvalTrace` records, for every control interval of one run, what
 * the online controller actually did — per-domain target frequency and
 * queue utilization, plus interval IPC and on-chip energy — alongside
 * the frequency the offline Dynamic-X% oracle chose for that interval.
 * It is a first-class versioned artifact (`ArtifactTraits<EvalTrace>`)
 * requested through a `TraceSpec` and resolved by the process-wide
 * `ArtifactCache` via its generic spec path, so traces share the
 * layered memory-over-disk store, dedup across processes, and replay
 * from a warm store with zero simulations like every other experiment
 * product.
 *
 * Intervals are recorded from the measurement boundary (methodology
 * v2: the controller and observer engage after the uncontrolled
 * warm-up, and interval numbering restarts there), so trace index i
 * aligns directly with profile index i and oracle-schedule index i —
 * no warm-up prefix to skip.
 */

#ifndef MCD_EVAL_TRACE_HH
#define MCD_EVAL_TRACE_HH

#include <array>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace mcd
{

/** One controlled domain's telemetry at one interval boundary. */
struct TraceDomainPoint
{
    Hertz frequency = 0.0;        //!< online target frequency
    double queueUtilization = 0.0;
    Hertz oracleFrequency = 0.0;  //!< the oracle schedule's choice
};

/** Everything the stress lab keeps about one control interval. */
struct TracePoint
{
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    Tick endTime = 0;
    NanoJoule chipEnergy = 0.0; //!< on-chip energy in this interval
    std::array<TraceDomainPoint, NUM_CONTROLLED> domains{};
};

/** The per-interval telemetry artifact of one controlled run. */
struct EvalTrace
{
    SimStats stats;                 //!< the run's aggregate results
    std::vector<TracePoint> points; //!< one per interval, from start
};

template <> struct ArtifactTraits<EvalTrace>
{
    static constexpr const char *name = "eval_trace";
    // v2: points cover the measured window only (post-warm-up
    // engagement); v1 traces included the warm-up prefix.
    static constexpr std::uint64_t version = 2;
    static void encodePayload(std::string &out, const EvalTrace &t);
    static bool decodePayload(serial::Reader &in, EvalTrace &t);
};

/**
 * Request spec for one telemetry trace: run `benchmark` under
 * `controller` (MCD machine, starting at f_max) and annotate every
 * interval with the oracle schedule's choice. The oracle schedule
 * enters the cache key as a fixed-width digest of its exact
 * serialization (the OfflineSearchSpec convention): under the
 * determinism contract it is a pure function of the profiling pass
 * and the tuned margin, so the digest is collision-safe in practice
 * and keeps keys small.
 */
struct TraceSpec
{
    using Artifact = EvalTrace;

    std::string benchmark;
    ControllerSpec controller;
    std::vector<FrequencyVector> oracle; //!< per-interval schedule
    RunnerConfig config;

    /** Exact artifact key (namespace "eval_trace/2"). */
    std::string cacheKey() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;

    /** Simulate the run with an interval observer (one simulation). */
    EvalTrace build(ArtifactCache &cache) const;
};

} // namespace mcd

#endif // MCD_EVAL_TRACE_HH
