#include "eval/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcd
{

using serial::appendDouble;
using serial::appendU64;
using serial::Reader;

void
ArtifactTraits<EvalTrace>::encodePayload(std::string &out,
                                         const EvalTrace &t)
{
    ArtifactTraits<SimStats>::encodePayload(out, t.stats);
    appendU64(out, t.points.size());
    for (const TracePoint &p : t.points) {
        appendU64(out, p.instructions);
        appendDouble(out, p.ipc);
        serial::appendI64(out, p.endTime);
        appendDouble(out, p.chipEnergy);
        for (const TraceDomainPoint &d : p.domains) {
            appendDouble(out, d.frequency);
            appendDouble(out, d.queueUtilization);
            appendDouble(out, d.oracleFrequency);
        }
    }
}

bool
ArtifactTraits<EvalTrace>::decodePayload(Reader &in, EvalTrace &t)
{
    if (!ArtifactTraits<SimStats>::decodePayload(in, t.stats))
        return false;
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    t.points.clear();
    // No reserve(count): the count field of a corrupt blob can be
    // arbitrary, and a giant reserve would throw instead of letting
    // the loop fail cleanly (the store heals decode failures; it
    // cannot heal std::terminate).
    for (std::uint64_t k = 0; k < count && in.ok(); ++k) {
        TracePoint p;
        p.instructions = in.readU64();
        p.ipc = in.readDouble();
        p.endTime = in.readI64();
        p.chipEnergy = in.readDouble();
        for (TraceDomainPoint &d : p.domains) {
            d.frequency = in.readDouble();
            d.queueUtilization = in.readDouble();
            d.oracleFrequency = in.readDouble();
        }
        t.points.push_back(p);
    }
    return in.ok();
}

std::string
TraceSpec::cacheKey() const
{
    std::string key;
    serial::appendString(key, "eval_trace/2");
    serial::appendString(key, benchmark);
    controller.appendTo(key);
    std::string sched;
    for (const FrequencyVector &freqs : oracle)
        for (Hertz f : freqs)
            appendDouble(sched, f);
    appendU64(key, serial::fnv1a(sched));
    appendU64(key, sched.size());
    config.appendTo(key);
    return key;
}

std::string
TraceSpec::describe() const
{
    return logging_detail::format(
        "type=eval_trace benchmark=%s controller=%s "
        "oracle_intervals=%zu %s",
        benchmark.c_str(), controller.name.c_str(), oracle.size(),
        config.describe().c_str());
}

EvalTrace
TraceSpec::build(ArtifactCache &cache) const
{
    auto instance = ControllerRegistry::instance().create(controller);
    Runner runner(config);
    EvalTrace trace;
    trace.stats = runner.runWithOptionalController(
        benchmark, ClockMode::Mcd, config.dvfs.freqMax, instance.get(),
        [&](const IntervalStats &stats) {
            TracePoint point;
            point.instructions = stats.instructions;
            point.ipc = stats.ipc;
            point.endTime = stats.endTime;
            point.chipEnergy = stats.chipEnergy;
            for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
                auto s = static_cast<std::size_t>(slot);
                point.domains[s].frequency =
                    stats.domains[s].frequency;
                point.domains[s].queueUtilization =
                    stats.domains[s].queueUtilization;
            }
            trace.points.push_back(point);
        });
    cache.noteSimulation();
    // Annotate with the oracle's per-interval choices; past the end of
    // the schedule the oracle holds its last entry (the schedule
    // replayer's own convention).
    for (std::size_t i = 0; i < trace.points.size(); ++i) {
        if (oracle.empty())
            break;
        const FrequencyVector &freqs =
            oracle[std::min(i, oracle.size() - 1)];
        for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
            auto s = static_cast<std::size_t>(slot);
            trace.points[i].domains[s].oracleFrequency = freqs[s];
        }
    }
    return trace;
}

} // namespace mcd
