#include "eval/regret.hh"

#include <algorithm>
#include <cmath>

namespace mcd
{

RegretReport
computeRegret(const EvalTrace &trace, const SimStats &oracleStats,
              Hertz fMax, const RegretOptions &options)
{
    RegretReport report;
    const auto &points = trace.points;
    std::size_t first = std::min(options.skipIntervals, points.size());

    // Frequency-tracking regret.
    std::array<double, NUM_CONTROLLED> domain_sum{};
    for (std::size_t i = first; i < points.size(); ++i) {
        for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
            auto s = static_cast<std::size_t>(slot);
            const TraceDomainPoint &d = points[i].domains[s];
            double err =
                std::abs(d.frequency - d.oracleFrequency) / fMax;
            domain_sum[s] += err;
            report.worstFreqError =
                std::max(report.worstFreqError, err);
        }
        ++report.intervals;
    }
    if (report.intervals > 0) {
        double total = 0.0;
        for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
            auto s = static_cast<std::size_t>(slot);
            report.domainFreqError[s] =
                domain_sum[s] / static_cast<double>(report.intervals);
            total += domain_sum[s];
        }
        report.meanFreqError = total /
            static_cast<double>(report.intervals * NUM_CONTROLLED);
    }

    // Outcome gaps.
    double e_on = trace.stats.chipEnergy;
    double t_on = static_cast<double>(trace.stats.time);
    double e_or = oracleStats.chipEnergy;
    double t_or = static_cast<double>(oracleStats.time);
    if (e_or > 0.0)
        report.energyGap = e_on / e_or - 1.0;
    if (t_or > 0.0)
        report.timeGap = t_on / t_or - 1.0;
    if (e_or > 0.0 && t_or > 0.0)
        report.edpGap = (e_on * t_on) / (e_or * t_or) - 1.0;

    // Reaction latency: a flip is a per-domain oracle step above the
    // threshold; its latency is the distance to the first interval
    // where the online frequency reaches the post-flip level's
    // tolerance band. Scanning is per domain, in interval order, so
    // the report is deterministic.
    double reaction_sum = 0.0;
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        auto s = static_cast<std::size_t>(slot);
        for (std::size_t i = first + 1; i < points.size(); ++i) {
            double step = std::abs(
                points[i].domains[s].oracleFrequency -
                points[i - 1].domains[s].oracleFrequency);
            if (step <= options.flipThreshold * fMax)
                continue;
            ++report.flips;
            double target = points[i].domains[s].oracleFrequency;
            std::size_t limit = std::min(
                points.size(), i + options.maxReactionIntervals);
            for (std::size_t j = i; j < limit; ++j) {
                if (std::abs(points[j].domains[s].frequency - target) <=
                    options.trackTolerance * fMax) {
                    double latency = static_cast<double>(j - i);
                    ++report.flipsTracked;
                    reaction_sum += latency;
                    report.worstReactionIntervals = std::max(
                        report.worstReactionIntervals, latency);
                    break;
                }
            }
        }
    }
    if (report.flipsTracked > 0)
        report.meanReactionIntervals =
            reaction_sum / static_cast<double>(report.flipsTracked);
    return report;
}

} // namespace mcd
