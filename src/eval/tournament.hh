/**
 * @file
 * The oracle-regret tournament of the controller stress lab: run a
 * cross-product of workload scenarios x online controllers, score
 * every cell against the offline Dynamic-X% oracle (frequency-
 * tracking regret, reaction latency, outcome gaps; src/eval/regret.hh)
 * and rank the controllers in a deterministic league table.
 *
 * Every product resolves through the process-wide ArtifactCache —
 * the profiling pass and baseline per scenario, the whole offline
 * search, and one EvalTrace per cell — so a warm store replays an
 * entire tournament with zero simulations and byte-identical output.
 * With `procs > 1` and a shared store, a warming fleet of worker
 * processes (harness/fleet.hh) computes disjoint scenario slices
 * first; the parent then assembles the table entirely from the store,
 * which is why the output is byte-identical for any process count.
 *
 * The standing adversarial corpus (`adversarialCorpus()`) is the
 * controller-regression suite: regime-switching `synthetic:` inputs
 * (markov/square/drift/burst/phases) built to defeat a pure
 * attack/decay law harder than any of the paper's 30 applications.
 */

#ifndef MCD_EVAL_TOURNAMENT_HH
#define MCD_EVAL_TOURNAMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "eval/regret.hh"
#include "harness/fleet.hh"

namespace mcd
{

/** One competing controller: display label + declarative spec. */
struct TournamentEntry
{
    std::string label; //!< as parsed from the CLI, or a builtin name
    ControllerSpec spec;
};

/** How to run a tournament. */
struct TournamentOptions
{
    std::vector<std::string> scenarios;      //!< any registered names
    std::vector<TournamentEntry> controllers;

    /** Degradation cap the offline oracle is tuned to. */
    double targetDeg = 0.05;

    /** Methodology + machine; `store` enables cross-process reuse. */
    RunnerConfig config;

    /** Warming worker processes (1 = in-process only). > 1 requires
     *  `config.store` and `makeWorker`. */
    int procs = 1;

    /** Respawns per warming worker after a crash. */
    int retries = 1;

    /**
     * Builds the warming fleet target for one scenario: a process
     * that computes that scenario's column of the tournament against
     * the shared store (e.g. `mcd_cli tournament --scenarios <s>
     * --warm-only`). Unset disables the fleet path.
     */
    std::function<FleetTarget(const std::string &scenario)> makeWorker;

    /** Flip/tolerance thresholds; `skipIntervals` is derived from the
     *  warm-up window, not taken from here. */
    RegretOptions regret;
};

/** One (scenario, controller) cell, fully scored. */
struct TournamentCell
{
    std::string scenario;
    std::string controller; //!< entry label
    RegretReport regret;
    SimStats online;        //!< the online controller's run
    OfflineResult oracle;   //!< the memoized offline search result
};

/** One controller's aggregate line in the league table. */
struct TournamentStanding
{
    std::string controller;
    std::size_t cells = 0;
    double meanFreqError = 0.0;  //!< mean over scenarios
    double worstFreqError = 0.0; //!< max over scenarios
    double meanEdpGap = 0.0;     //!< mean over scenarios
    double worstEdpGap = 0.0;    //!< max over scenarios
    /** Flip-weighted mean reaction latency over all cells. */
    double meanReactionIntervals = 0.0;
    std::size_t flips = 0;
    std::size_t flipsTracked = 0;
};

/** A whole tournament: cells scenario-major, standings ranked. */
struct TournamentResult
{
    std::vector<TournamentCell> cells;
    std::vector<TournamentStanding> standings; //!< best regret first
};

/** The standing adversarial scenario corpus (the `corpus` alias):
 *  regime-switching synthetic: inputs for controller regression. */
std::vector<std::string> adversarialCorpus();

/** The default competitors: the paper's scaled Attack/Decay, a
 *  sluggish Attack/Decay variant, and the uncontrolled baseline. */
std::vector<TournamentEntry> defaultTournamentEntries();

/** Run the full cross-product; deterministic for any worker/process
 *  count. Fatal on unknown scenario or controller names. */
TournamentResult runTournament(const TournamentOptions &options);

/** Render the per-cell table + league table as text (mcd_cli's
 *  non-JSON output; byte-stable across runs and process counts). */
std::string renderTournament(const TournamentResult &result);

/**
 * Render the full `{"tournament": ...}` JSON document — the single
 * renderer behind `mcd_cli tournament --json` and the serve daemon's
 * `tournament` verb, so a served tournament reply is byte-identical
 * to the direct CLI's stdout. Deliberately carries no cache counters:
 * the document stays byte-stable between cold, warm, and fleet runs.
 */
std::string renderTournamentJson(const TournamentOptions &options,
                                 const TournamentResult &result);

} // namespace mcd

#endif // MCD_EVAL_TOURNAMENT_HH
