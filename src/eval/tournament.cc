#include "eval/tournament.hh"

#include <algorithm>
#include <cmath>

#include "common/json.hh"
#include "common/logging.hh"
#include "control/basic_controllers.hh"
#include "harness/parallel_sweep.hh"
#include "harness/table.hh"
#include "workload/scenario_registry.hh"

namespace mcd
{

namespace
{

/** One scenario's column: profile, oracle, one trace per entry. */
std::vector<TournamentCell>
scoreScenario(const std::string &scenario,
              const TournamentOptions &options)
{
    RunnerConfig config = options.config;
    config.jobs = 1; // parallelism lives at the scenario level
    Runner runner(config);

    std::vector<IntervalProfile> profile;
    SimStats base = runner.runMcdBaseline(scenario, &profile);
    OfflineResult oracle = runner.runOfflineDynamic(
        scenario, options.targetDeg, base, profile);

    // The oracle's per-interval choices, re-derived from its tuned
    // margin. (The search's per-domain refinement can land on a
    // slightly more aggressive schedule than the shared margin alone;
    // the shared-margin schedule is the conservative upper envelope
    // and keeps the reference reproducible from the memoized result.)
    DvfsModel dvfs(config.dvfs);
    std::array<double, NUM_CONTROLLED> margins;
    margins.fill(oracle.margin);
    std::vector<FrequencyVector> schedule =
        deriveSchedule(profile, dvfs, margins);

    // Methodology v2: traces, profiles, and oracle schedules all start
    // at the measurement boundary, so their indices align from 0 and
    // regret skips nothing.
    RegretOptions regret = options.regret;
    regret.skipIntervals = 0;

    std::vector<TournamentCell> cells;
    for (const TournamentEntry &entry : options.controllers) {
        TraceSpec spec;
        spec.benchmark = scenario;
        spec.controller = entry.spec;
        spec.oracle = schedule;
        spec.config = config;
        EvalTrace trace = ArtifactCache::instance().getOrRun(spec);

        TournamentCell cell;
        cell.scenario = scenario;
        cell.controller = entry.label;
        cell.online = trace.stats;
        cell.oracle = oracle;
        cell.regret = computeRegret(trace, oracle.stats,
                                    config.dvfs.freqMax, regret);
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::vector<TournamentStanding>
rankStandings(const TournamentOptions &options,
              const std::vector<TournamentCell> &cells)
{
    std::vector<TournamentStanding> standings;
    for (const TournamentEntry &entry : options.controllers) {
        TournamentStanding standing;
        standing.controller = entry.label;
        double reaction_sum = 0.0;
        bool first_cell = true;
        for (const TournamentCell &cell : cells) {
            if (cell.controller != entry.label)
                continue;
            ++standing.cells;
            standing.meanFreqError += cell.regret.meanFreqError;
            standing.worstFreqError = std::max(
                standing.worstFreqError, cell.regret.worstFreqError);
            standing.meanEdpGap += cell.regret.edpGap;
            // EDP gaps can be negative (an online run can beat the
            // shared-margin oracle replay); seed the maximum from the
            // first cell so an all-negative controller reports its
            // actual worst gap, not the 0.0 initializer.
            standing.worstEdpGap = first_cell
                ? cell.regret.edpGap
                : std::max(standing.worstEdpGap, cell.regret.edpGap);
            first_cell = false;
            standing.flips += cell.regret.flips;
            standing.flipsTracked += cell.regret.flipsTracked;
            reaction_sum += cell.regret.meanReactionIntervals *
                static_cast<double>(cell.regret.flipsTracked);
        }
        if (standing.cells > 0) {
            standing.meanFreqError /=
                static_cast<double>(standing.cells);
            standing.meanEdpGap /= static_cast<double>(standing.cells);
        }
        if (standing.flipsTracked > 0)
            standing.meanReactionIntervals = reaction_sum /
                static_cast<double>(standing.flipsTracked);
        standings.push_back(std::move(standing));
    }
    // Best tracker first; ties broken on worst-case error, then label,
    // so the league table is deterministic.
    std::sort(standings.begin(), standings.end(),
              [](const TournamentStanding &a,
                 const TournamentStanding &b) {
                  if (a.meanFreqError != b.meanFreqError)
                      return a.meanFreqError < b.meanFreqError;
                  if (a.worstFreqError != b.worstFreqError)
                      return a.worstFreqError < b.worstFreqError;
                  return a.controller < b.controller;
              });
    return standings;
}

} // namespace

std::vector<std::string>
adversarialCorpus()
{
    return {
        "synthetic:square=4000,mem=0.5",
        "synthetic:square=16000,mem=0.5",
        "synthetic:markov=24,mem=0.5",
        "synthetic:markov=48,mem=0.5,ilp=16",
        "synthetic:drift=0.8,mem=0.5",
        "synthetic:burst=0.5,phases=8,mem=0.6",
        "synthetic:phases=12,mem=0.5",
    };
}

std::vector<TournamentEntry>
defaultTournamentEntries()
{
    std::vector<TournamentEntry> entries;
    entries.push_back(
        {"attack_decay", attackDecaySpec(scaledAttackDecayConfig())});
    AttackDecayConfig sluggish = scaledAttackDecayConfig();
    sluggish.reactionChange = 0.015; // 4x slower attack steps
    entries.push_back(
        {"attack_decay:slow", attackDecaySpec(sluggish)});
    entries.push_back({"none", ControllerSpec{}});
    return entries;
}

TournamentResult
runTournament(const TournamentOptions &options)
{
    if (options.scenarios.empty())
        mcd_fatal("tournament needs at least one scenario");
    if (options.controllers.empty())
        mcd_fatal("tournament needs at least one controller");
    for (const auto &scenario : options.scenarios)
        if (!ScenarioRegistry::instance().contains(scenario))
            mcd_fatal("unknown scenario '%s' (try: mcd_cli list)",
                      scenario.c_str());
    for (const auto &entry : options.controllers)
        if (!ControllerRegistry::instance().contains(entry.spec.name))
            mcd_fatal("unknown controller '%s' (try: mcd_cli list)",
                      entry.spec.name.c_str());

    // Fleet warming: worker processes fill the shared store with
    // disjoint scenario columns; the parent then reads everything
    // back from it. A failed worker only costs its unwritten
    // artifacts — the parent recomputes whatever is missing, so the
    // result is identical either way.
    if (options.procs > 1 && options.makeWorker) {
        if (options.config.store.empty())
            mcd_fatal("tournament --procs %d needs a shared --store",
                      options.procs);
        std::vector<FleetTarget> targets;
        for (const auto &scenario : options.scenarios)
            targets.push_back(options.makeWorker(scenario));
        FleetOptions fleet;
        fleet.procs = options.procs;
        fleet.retries = options.retries;
        fleet.store = options.config.store;
        FleetReport report = runFleet(targets, fleet);
        for (const FleetResult &target : report.targets)
            if (!target.succeeded)
                mcd_warn("tournament warm worker '%s' failed (exit "
                         "%d); recomputing in-process",
                         target.name.c_str(), target.exitCode);
    }

    // Scenario columns fan out across the sweep workers; each column
    // is serial inside. Collation is in scenario order, controllers
    // in entry order within a column, so the cell list is
    // deterministic for any worker count.
    ParallelSweep sweep(options.config.jobs);
    auto columns = sweep.map<std::vector<TournamentCell>>(
        options.scenarios.size(), [&](std::size_t i) {
            return scoreScenario(options.scenarios[i], options);
        });

    TournamentResult result;
    for (auto &column : columns)
        for (auto &cell : column)
            result.cells.push_back(std::move(cell));
    result.standings = rankStandings(options, result.cells);
    return result;
}

std::string
renderTournament(const TournamentResult &result)
{
    TextTable cells("tournament cells (online vs offline oracle)");
    cells.setHeader({"scenario", "controller", "freq regret",
                     "worst regret", "reaction", "flips", "EDP gap",
                     "energy gap", "time gap", "margin"});
    for (const TournamentCell &cell : result.cells) {
        cells.addRow(
            {cell.scenario, cell.controller,
             pct(cell.regret.meanFreqError, 2),
             pct(cell.regret.worstFreqError, 1),
             cell.regret.flipsTracked > 0
                 ? num(cell.regret.meanReactionIntervals, 1)
                 : "-",
             std::to_string(cell.regret.flipsTracked) + "/" +
                 std::to_string(cell.regret.flips),
             pct(cell.regret.edpGap, 2), pct(cell.regret.energyGap, 2),
             pct(cell.regret.timeGap, 2),
             num(cell.oracle.margin, 3)});
    }

    TextTable league("league table (mean regret, best first)");
    league.setHeader({"rank", "controller", "freq regret",
                      "worst regret", "reaction", "EDP gap",
                      "worst EDP gap", "flips"});
    int rank = 1;
    for (const TournamentStanding &s : result.standings) {
        league.addRow(
            {std::to_string(rank++), s.controller,
             pct(s.meanFreqError, 2), pct(s.worstFreqError, 1),
             s.flipsTracked > 0 ? num(s.meanReactionIntervals, 1)
                                : "-",
             pct(s.meanEdpGap, 2), pct(s.worstEdpGap, 2),
             std::to_string(s.flipsTracked) + "/" +
                 std::to_string(s.flips)});
    }

    return cells.render() + "\n" + league.render();
}

namespace
{

std::string
tournamentCellJson(const TournamentCell &cell)
{
    std::string out = "      {";
    out += "\"scenario\": " + json::str(cell.scenario);
    out += ", \"controller\": " + json::str(cell.controller);
    out += ", \"mean_freq_error\": " +
           json::num(cell.regret.meanFreqError);
    out += ", \"worst_freq_error\": " +
           json::num(cell.regret.worstFreqError);
    out += ", \"edp_gap\": " + json::num(cell.regret.edpGap);
    out += ", \"energy_gap\": " + json::num(cell.regret.energyGap);
    out += ", \"time_gap\": " + json::num(cell.regret.timeGap);
    out += ", \"flips\": " +
           json::u64(static_cast<std::uint64_t>(cell.regret.flips));
    out += ", \"flips_tracked\": " +
           json::u64(static_cast<std::uint64_t>(
               cell.regret.flipsTracked));
    out += ", \"mean_reaction_intervals\": " +
           json::num(cell.regret.meanReactionIntervals);
    out += ", \"worst_reaction_intervals\": " +
           json::num(cell.regret.worstReactionIntervals);
    out += ", \"oracle_margin\": " + json::num(cell.oracle.margin);
    out += ", \"online_time_ps\": " +
           json::u64(static_cast<std::uint64_t>(cell.online.time));
    out += ", \"oracle_time_ps\": " +
           json::u64(static_cast<std::uint64_t>(cell.oracle.stats.time));
    out += ", \"online_energy_nj\": " + json::num(cell.online.chipEnergy);
    out += ", \"oracle_energy_nj\": " +
           json::num(cell.oracle.stats.chipEnergy);
    out += "}";
    return out;
}

std::string
tournamentStandingJson(const TournamentStanding &s, int rank)
{
    std::string out = "      {";
    out += "\"rank\": " + std::to_string(rank);
    out += ", \"controller\": " + json::str(s.controller);
    out += ", \"cells\": " +
           json::u64(static_cast<std::uint64_t>(s.cells));
    out += ", \"mean_freq_error\": " + json::num(s.meanFreqError);
    out += ", \"worst_freq_error\": " + json::num(s.worstFreqError);
    out += ", \"mean_edp_gap\": " + json::num(s.meanEdpGap);
    out += ", \"worst_edp_gap\": " + json::num(s.worstEdpGap);
    out += ", \"mean_reaction_intervals\": " +
           json::num(s.meanReactionIntervals);
    out += ", \"flips\": " +
           json::u64(static_cast<std::uint64_t>(s.flips));
    out += ", \"flips_tracked\": " +
           json::u64(static_cast<std::uint64_t>(s.flipsTracked));
    out += "}";
    return out;
}

} // namespace

std::string
renderTournamentJson(const TournamentOptions &options,
                     const TournamentResult &result)
{
    std::string out = "{\n  \"tournament\": {\n";
    out += "    \"target_deg\": " + json::num(options.targetDeg) +
           ",\n";
    out += "    \"scenarios\": [";
    bool first = true;
    for (const auto &scenario : options.scenarios) {
        out += first ? "" : ", ";
        first = false;
        out += json::str(scenario);
    }
    out += "],\n    \"controllers\": [";
    first = true;
    for (const auto &entry : options.controllers) {
        out += first ? "" : ", ";
        first = false;
        out += json::str(entry.label);
    }
    out += "],\n    \"cells\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        out += tournamentCellJson(result.cells[i]);
        out += i + 1 < result.cells.size() ? ",\n" : "\n";
    }
    out += "    ],\n    \"standings\": [\n";
    for (std::size_t i = 0; i < result.standings.size(); ++i) {
        out += tournamentStandingJson(result.standings[i],
                                      static_cast<int>(i) + 1);
        out += i + 1 < result.standings.size() ? ",\n" : "\n";
    }
    // No cache counters: tournament stdout stays byte-identical
    // between cold, warm, fleet, and served runs (CI diffs it); the
    // counters travel separately (stderr / the daemon's stats reply).
    out += "    ]\n  }\n}\n";
    return out;
}

} // namespace mcd
