#include "clock/clock_system.hh"

#include "common/logging.hh"

namespace mcd
{

ClockSystem::ClockSystem(const DvfsModel &dvfs,
                         const ClockSystemConfig &config)
    : dvfs_(&dvfs), config_(config)
{
    if (config_.mode == ClockMode::Synchronous) {
        clocks_[0] = std::make_unique<DomainClock>(
            DomainId::FrontEnd, dvfs, config_.startFreq, config_.seed,
            config_.jittered);
    } else {
        for (int i = 0; i < NUM_CLOCKED_DOMAINS; ++i) {
            clocks_[static_cast<std::size_t>(i)] =
                std::make_unique<DomainClock>(
                    static_cast<DomainId>(i), dvfs, config_.startFreq,
                    config_.seed + static_cast<std::uint64_t>(i) * 7919,
                    config_.jittered);
        }
    }
}

int
ClockSystem::clockIndex(DomainId id) const
{
    if (id == DomainId::External)
        mcd_panic("the external domain has no controllable clock");
    if (config_.mode == ClockMode::Synchronous)
        return 0;
    return domainIndex(id);
}

DomainClock &
ClockSystem::clock(DomainId id)
{
    return *clocks_[static_cast<std::size_t>(clockIndex(id))];
}

const DomainClock &
ClockSystem::clock(DomainId id) const
{
    return *clocks_[static_cast<std::size_t>(clockIndex(id))];
}

bool
ClockSystem::sameClock(DomainId a, DomainId b) const
{
    if (config_.mode == ClockMode::Synchronous)
        return true;
    return a == b;
}

bool
ClockSystem::visible(DomainId src, Tick write_edge,
                     DomainId dst, Tick read_edge) const
{
    if (read_edge < write_edge)
        return false;
    if (sameClock(src, dst))
        return true;
    return read_edge - write_edge >= dvfs_->syncWindow();
}

void
ClockSystem::saveState(std::string &out) const
{
    int physical =
        config_.mode == ClockMode::Synchronous ? 1 : NUM_CLOCKED_DOMAINS;
    serial::appendI64(out, physical);
    for (int i = 0; i < physical; ++i)
        clocks_[static_cast<std::size_t>(i)]->saveState(out);
}

bool
ClockSystem::loadState(serial::Reader &in)
{
    int physical =
        config_.mode == ClockMode::Synchronous ? 1 : NUM_CLOCKED_DOMAINS;
    if (in.readI64() != physical)
        return false;
    for (int i = 0; i < physical; ++i) {
        if (!clocks_[static_cast<std::size_t>(i)]->loadState(in))
            return false;
    }
    return in.ok();
}

Tick
ClockSystem::syncWindow() const
{
    return config_.mode == ClockMode::Synchronous ? 0
                                                  : dvfs_->syncWindow();
}

} // namespace mcd
