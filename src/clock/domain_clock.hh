/**
 * @file
 * An independently clocked MCD domain.
 *
 * Following Section 4 of the paper, each domain clock keeps a nominal
 * edge time that advances by the (possibly slewing) period; the visible
 * edge is the nominal time plus a per-cycle jitter draw from N(0, 110 ps).
 * Starting phases are randomized. The simulator interleaves domains by
 * repeatedly advancing whichever clock has the earliest next edge, which
 * tracks the relationship among all clock edges cycle by cycle — exactly
 * the scheme the paper describes for accounting synchronization costs.
 *
 * Frequency changes follow the XScale model: the clock keeps running
 * during a change, with the period recomputed each edge while the
 * frequency slews toward its target at 49.1 ns/MHz. Voltage follows the
 * linear V(f) map of the DvfsModel during the ramp.
 */

#ifndef MCD_CLOCK_DOMAIN_CLOCK_HH
#define MCD_CLOCK_DOMAIN_CLOCK_HH

#include <cstdint>

#include "clock/dvfs_model.hh"
#include "common/random.hh"
#include "common/serial.hh"
#include "common/types.hh"

namespace mcd
{

/** One domain's clock generator. */
class DomainClock
{
  public:
    /**
     * @param id          domain this clock drives (for reporting)
     * @param dvfs        shared operating-point model
     * @param start_freq  initial (quantized) frequency
     * @param seed        jitter/phase RNG seed; same seed -> same edges
     * @param jittered    disable to get an ideal jitter-free clock
     */
    DomainClock(DomainId id, const DvfsModel &dvfs, Hertz start_freq,
                std::uint64_t seed, bool jittered = true);

    DomainId id() const { return id_; }

    /** Time of the next (not yet consumed) clock edge. */
    Tick nextEdge() const { return next_edge_; }

    /** Time of the most recently consumed edge. */
    Tick lastEdge() const { return last_edge_; }

    /** Number of edges consumed so far. */
    std::uint64_t cycles() const { return cycles_; }

    /**
     * Consume the pending edge and schedule the following one. Returns
     * the time of the consumed edge. Steps the frequency slew by one
     * period's worth of time.
     */
    Tick advance();

    /** Instantaneous frequency (may be mid-slew). */
    Hertz frequency() const { return cur_freq_; }

    /** The frequency the slew is heading toward. */
    Hertz targetFrequency() const { return target_freq_; }

    /** True while the frequency is still slewing toward its target. */
    bool slewing() const { return cur_freq_ != target_freq_; }

    /** Instantaneous supply voltage via the V(f) map. */
    Volt voltage() const { return dvfs_->voltage(cur_freq_); }

    /**
     * Request a new target frequency (quantized to the grid). Takes
     * effect gradually via the slew model; the clock never stops.
     * Returns the quantized target actually set.
     */
    Hertz setTargetFrequency(Hertz freq);

    /**
     * Immediately jump to a (quantized) frequency with no slew. Used for
     * the off-line algorithms, which request changes ahead of need so
     * the slew completes before the interval begins (Section 5), and for
     * tests.
     */
    Hertz setFrequencyImmediate(Hertz freq);

    /** Count of target-frequency change requests (PLL activations). */
    std::uint64_t frequencyChanges() const { return freq_changes_; }

    /** Serialize frequency/slew/edge/RNG state (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on short data. */
    bool loadState(serial::Reader &in);

  private:
    DomainId id_;
    const DvfsModel *dvfs_;
    Rng rng_;
    bool jittered_;

    Hertz cur_freq_;
    Hertz target_freq_;

    Tick nominal_time_;     //!< jitter-free accumulated edge time
    Tick next_edge_;        //!< nominal + jitter, monotonic-clamped
    Tick last_edge_;
    std::uint64_t cycles_ = 0;
    std::uint64_t freq_changes_ = 0;

    /** Advance the slew by `elapsed` ticks of wall time. */
    void stepSlew(Tick elapsed);

    /** Compute the jittered edge for the current nominal time. */
    Tick jitteredEdge();
};

} // namespace mcd

#endif // MCD_CLOCK_DOMAIN_CLOCK_HH
