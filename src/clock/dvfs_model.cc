#include "clock/dvfs_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mcd
{

DvfsModel::DvfsModel(const DvfsConfig &config)
    : config_(config)
{
    if (config_.numPoints < 2)
        mcd_fatal("DVFS grid needs at least 2 points, got %d",
                  config_.numPoints);
    if (config_.freqMax <= config_.freqMin)
        mcd_fatal("DVFS frequency range is empty");
    step_ = (config_.freqMax - config_.freqMin) / (config_.numPoints - 1);
    sync_window_ = static_cast<Tick>(
        config_.syncWindowFraction * 1e12 / config_.freqMax + 0.5);
    // slewNsPerMhz nanoseconds per megahertz of change:
    // rate = 1 MHz / (slewNsPerMhz ns) = 1e6 Hz / (slewNsPerMhz * 1e3 ticks)
    slew_hz_per_tick_ = 1e6 / (config_.slewNsPerMhz * 1e3);
}

Hertz
DvfsModel::quantize(Hertz freq) const
{
    Hertz clamped = std::clamp(freq, config_.freqMin, config_.freqMax);
    double idx = std::round((clamped - config_.freqMin) / step_);
    return config_.freqMin + idx * step_;
}

int
DvfsModel::pointIndex(Hertz freq) const
{
    Hertz clamped = std::clamp(freq, config_.freqMin, config_.freqMax);
    return static_cast<int>(
        std::round((clamped - config_.freqMin) / step_));
}

Hertz
DvfsModel::pointFreq(int index) const
{
    if (index < 0 || index >= config_.numPoints)
        mcd_panic("operating point index %d out of range", index);
    return config_.freqMin + index * step_;
}

Volt
DvfsModel::voltage(Hertz freq) const
{
    Hertz clamped = std::clamp(freq, config_.freqMin, config_.freqMax);
    double t = (clamped - config_.freqMin) /
               (config_.freqMax - config_.freqMin);
    return config_.voltMin + t * (config_.voltMax - config_.voltMin);
}

Tick
DvfsModel::slewTime(Hertz from, Hertz to) const
{
    double delta_mhz = std::abs(to - from) / 1e6;
    return static_cast<Tick>(delta_mhz * config_.slewNsPerMhz * 1e3 + 0.5);
}

} // namespace mcd
