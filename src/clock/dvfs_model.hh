/**
 * @file
 * The DVFS operating-point model of Table 1 / Section 4.
 *
 * 320 frequency points span a linear range from 1.0 GHz down to 250 MHz;
 * a linear voltage range from 1.2 V down to 0.65 V corresponds to the
 * frequency points (the paper's approximation of XScale's smooth
 * transitions). Frequency changes slew at 49.1 ns/MHz and the processor
 * executes through the change. Inter-domain communication is guarded by a
 * synchronization window of 30 % of the 1.0 GHz period (300 ps).
 */

#ifndef MCD_CLOCK_DVFS_MODEL_HH
#define MCD_CLOCK_DVFS_MODEL_HH

#include "common/types.hh"

namespace mcd
{

/** Configuration of the DVFS model; defaults are the paper's Table 1. */
struct DvfsConfig
{
    Hertz freqMax = 1.0e9;          //!< 1.0 GHz
    Hertz freqMin = 250.0e6;        //!< 250 MHz
    Volt voltMax = 1.20;            //!< at freqMax
    Volt voltMin = 0.65;            //!< at freqMin
    int numPoints = 320;            //!< linear frequency grid
    double slewNsPerMhz = 49.1;     //!< XScale frequency change rate [7]
    double jitterSigmaPs = 110.0;   //!< per-edge clock jitter, N(0, sigma)
    double syncWindowFraction = 0.30; //!< of the 1.0 GHz period
};

/**
 * Immutable operating-point table: quantization to the 320-point grid and
 * the linear V(f) map.
 */
class DvfsModel
{
  public:
    explicit DvfsModel(const DvfsConfig &config = DvfsConfig{});

    const DvfsConfig &config() const { return config_; }

    /** Grid spacing in hertz between adjacent operating points. */
    Hertz stepHz() const { return step_; }

    /** Number of operating points. */
    int numPoints() const { return config_.numPoints; }

    /** Clamp to [freqMin, freqMax] and snap to the nearest grid point. */
    Hertz quantize(Hertz freq) const;

    /** Index of the grid point for a (quantized) frequency; 0 = freqMin. */
    int pointIndex(Hertz freq) const;

    /** Frequency of the grid point with the given index. */
    Hertz pointFreq(int index) const;

    /** Supply voltage for a frequency via the linear map (clamped). */
    Volt voltage(Hertz freq) const;

    /** Synchronization window in ticks (300 ps for default config). */
    Tick syncWindow() const { return sync_window_; }

    /**
     * Time to slew between two frequencies, in ticks:
     * |f1 - f0| (MHz) * slewNsPerMhz.
     */
    Tick slewTime(Hertz from, Hertz to) const;

    /** Frequency slew rate in hertz per tick. */
    double slewHzPerTick() const { return slew_hz_per_tick_; }

  private:
    DvfsConfig config_;
    Hertz step_;
    Tick sync_window_;
    double slew_hz_per_tick_;
};

} // namespace mcd

#endif // MCD_CLOCK_DVFS_MODEL_HH
