#include "clock/domain_clock.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcd
{

DomainClock::DomainClock(DomainId id, const DvfsModel &dvfs,
                         Hertz start_freq, std::uint64_t seed, bool jittered)
    : id_(id), dvfs_(&dvfs),
      rng_(seed ^ (0x5bd1e995u * (static_cast<std::uint64_t>(id) + 1))),
      jittered_(jittered)
{
    cur_freq_ = dvfs_->quantize(start_freq);
    target_freq_ = cur_freq_;
    // Randomized starting phase within one period (Section 4).
    Tick period = periodFromFreq(cur_freq_);
    nominal_time_ = jittered_
        ? static_cast<Tick>(rng_.uniform() * static_cast<double>(period))
        : 0;
    last_edge_ = -1; // allows a first edge at time 0
    next_edge_ = jitteredEdge();
}

Tick
DomainClock::advance()
{
    Tick edge = next_edge_;
    last_edge_ = edge;
    ++cycles_;

    Tick period = periodFromFreq(cur_freq_);
    stepSlew(period);
    // Period for the upcoming cycle reflects the post-slew frequency.
    nominal_time_ += periodFromFreq(cur_freq_);
    next_edge_ = jitteredEdge();
    return edge;
}

void
DomainClock::stepSlew(Tick elapsed)
{
    if (cur_freq_ == target_freq_)
        return;
    double delta = dvfs_->slewHzPerTick() * static_cast<double>(elapsed);
    if (cur_freq_ < target_freq_)
        cur_freq_ = std::min(target_freq_, cur_freq_ + delta);
    else
        cur_freq_ = std::max(target_freq_, cur_freq_ - delta);
}

Tick
DomainClock::jitteredEdge()
{
    Tick edge = nominal_time_;
    if (jittered_) {
        double jitter = rng_.normal(0.0, dvfs_->config().jitterSigmaPs);
        edge += static_cast<Tick>(jitter);
    }
    // Edges must remain strictly monotonic even under extreme jitter
    // draws; clamp to one tick past the previous edge.
    return std::max(edge, last_edge_ + 1);
}

void
DomainClock::saveState(std::string &out) const
{
    serial::appendDouble(out, cur_freq_);
    serial::appendDouble(out, target_freq_);
    serial::appendI64(out, nominal_time_);
    serial::appendI64(out, next_edge_);
    serial::appendI64(out, last_edge_);
    serial::appendU64(out, cycles_);
    serial::appendU64(out, freq_changes_);
    for (std::uint64_t word : rng_.state())
        serial::appendU64(out, word);
}

bool
DomainClock::loadState(serial::Reader &in)
{
    cur_freq_ = in.readDouble();
    target_freq_ = in.readDouble();
    nominal_time_ = in.readI64();
    next_edge_ = in.readI64();
    last_edge_ = in.readI64();
    cycles_ = in.readU64();
    freq_changes_ = in.readU64();
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t &word : rng_state)
        word = in.readU64();
    rng_.setState(rng_state);
    return in.ok();
}

Hertz
DomainClock::setTargetFrequency(Hertz freq)
{
    Hertz quantized = dvfs_->quantize(freq);
    if (quantized != target_freq_) {
        target_freq_ = quantized;
        ++freq_changes_;
    }
    return quantized;
}

Hertz
DomainClock::setFrequencyImmediate(Hertz freq)
{
    Hertz quantized = dvfs_->quantize(freq);
    if (quantized != cur_freq_)
        ++freq_changes_;
    cur_freq_ = quantized;
    target_freq_ = quantized;
    return quantized;
}

} // namespace mcd
