/**
 * @file
 * The collection of domain clocks plus the inter-domain synchronization
 * rule of Sjogren & Myers as adopted by the paper: a source-generated
 * signal can be latched at a destination edge only if that edge falls at
 * least one synchronization window (300 ps) after the source edge;
 * otherwise the destination must wait for its next edge.
 *
 * The same class also models the fully synchronous comparison processor:
 * in Synchronous mode all four domains share one physical clock, no
 * synchronization penalties apply, and a global frequency change scales
 * the whole chip (classic DVS).
 */

#ifndef MCD_CLOCK_CLOCK_SYSTEM_HH
#define MCD_CLOCK_CLOCK_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>

#include "clock/domain_clock.hh"
#include "clock/dvfs_model.hh"
#include "common/types.hh"

namespace mcd
{

/** Whether the chip is an MCD (GALS) design or fully synchronous. */
enum class ClockMode
{
    Mcd,         //!< four independent clocks, sync windows apply
    Synchronous, //!< one global clock, no sync penalties
};

/** Per-chip clock configuration. */
struct ClockSystemConfig
{
    ClockMode mode = ClockMode::Mcd;
    Hertz startFreq = 1.0e9;
    std::uint64_t seed = 1;
    bool jittered = true;
};

/** Owns the domain clocks and answers cross-domain visibility queries. */
class ClockSystem
{
  public:
    ClockSystem(const DvfsModel &dvfs, const ClockSystemConfig &config);

    ClockMode mode() const { return config_.mode; }
    const DvfsModel &dvfs() const { return *dvfs_; }

    /** The clock driving the given domain (shared in Synchronous mode). */
    DomainClock &clock(DomainId id);
    const DomainClock &clock(DomainId id) const;

    /** True if the two domains are driven by the same physical clock. */
    bool sameClock(DomainId a, DomainId b) const;

    /**
     * Synchronization predicate: may a value written at source edge
     * `write_edge` in domain `src` be latched at destination edge
     * `read_edge` in domain `dst`? Same-clock pairs only require
     * read_edge >= write_edge; cross-clock pairs additionally require
     * the edges to be separated by the synchronization window.
     */
    bool visible(DomainId src, Tick write_edge,
                 DomainId dst, Tick read_edge) const;

    /** The synchronization window in ticks (0 when synchronous). */
    Tick syncWindow() const;

    /** Serialize every physical clock (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on mode mismatch or short data. */
    bool loadState(serial::Reader &in);

  private:
    const DvfsModel *dvfs_;
    ClockSystemConfig config_;
    /** In MCD mode: one clock per clocked domain. In Synchronous mode:
     *  only element 0 exists and all domains map to it. */
    std::array<std::unique_ptr<DomainClock>, NUM_CLOCKED_DOMAINS> clocks_;

    int clockIndex(DomainId id) const;
};

} // namespace mcd

#endif // MCD_CLOCK_CLOCK_SYSTEM_HH
