#include "workload/workload.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"

namespace mcd
{

namespace
{

/** Length of the fixed call subroutine: 4 ALU ops plus a return. */
constexpr int SUB_LENGTH = 5;

/** Deterministic address scrambler for pointer-chase streams. */
std::uint64_t
chaseHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Probabilistic rounding: floor(x) or ceil(x) with fractional chance. */
int
stochasticRound(double x, Rng &rng)
{
    double fl = std::floor(x);
    int base = static_cast<int>(fl);
    return base + (rng.chance(x - fl) ? 1 : 0);
}

} // namespace

SyntheticProgram::SyntheticProgram(const BenchmarkSpec &spec,
                                   std::uint64_t horizon)
    : spec_(spec), horizon_(horizon), rng_(spec.seed)
{
    if (spec_.phases.empty())
        mcd_fatal("benchmark '%s' has no phases", spec_.name.c_str());
    if (horizon_ == 0)
        mcd_fatal("workload horizon must be nonzero");

    double total_weight = 0.0;
    for (const auto &p : spec_.phases)
        total_weight += p.weight;
    if (total_weight <= 0.0)
        mcd_fatal("benchmark '%s' has zero total phase weight",
                  spec_.name.c_str());

    // Phase boundaries span one period: the whole horizon by default,
    // or the spec's absolute periodInstructions (the program then
    // cycles through the phase list until the horizon).
    period_ = spec_.periodInstructions > 0 ? spec_.periodInstructions
                                           : horizon_;
    double acc = 0.0;
    for (const auto &p : spec_.phases) {
        acc += p.weight / total_weight;
        phase_end_.push_back(static_cast<std::uint64_t>(
            acc * static_cast<double>(period_)));
    }
    phase_end_.back() = period_; // absorb rounding

    recent_int_.assign(8, 0);
    recent_fp_.assign(8, 32);

    selectPhase();
}

const PhaseSpec &
SyntheticProgram::phase() const
{
    return spec_.phases[static_cast<std::size_t>(phase_index_)];
}

void
SyntheticProgram::selectPhase()
{
    std::uint64_t pos = instructions_ % period_;
    int index = 0;
    while (pos >= phase_end_[static_cast<std::size_t>(index)])
        ++index;
    if (index != phase_index_)
        enterPhase(index);
}

void
SyntheticProgram::enterPhase(int index)
{
    phase_index_ = index;
    const PhaseSpec &p = phase();

    // Code layout: codeLoops regions, contiguous and line-aligned so the
    // phase's instruction footprint is codeLoops * regionBytes.
    int loops = std::max(1, p.codeLoops);
    std::uint64_t body_slots = static_cast<std::uint64_t>(
        std::max(6, p.loopLength));
    // body + region jump + pad + subroutine
    std::uint64_t region_bytes =
        (body_slots + 2 + SUB_LENGTH + 2) * 4;
    region_bytes = (region_bytes + 63) & ~63ull;
    region_stride_ = region_bytes;

    std::uint64_t code_base =
        0x01000000ull * (static_cast<std::uint64_t>(index) + 1);
    region_base_.assign(static_cast<std::size_t>(loops), 0);
    for (int r = 0; r < loops; ++r) {
        region_base_[static_cast<std::size_t>(r)] =
            code_base + static_cast<std::uint64_t>(r) * region_bytes;
    }

    // Data layout: a handful of streams partitioning the footprint.
    std::uint64_t footprint = std::max<std::uint64_t>(p.dataFootprint, 512);
    int num_streams = static_cast<int>(
        std::clamp<std::uint64_t>(footprint / (16 * 1024), 2, 8));
    int num_chase = static_cast<int>(
        std::lround(p.chaseFrac * num_streams));
    std::uint64_t data_base = 0x400000000000ull +
        0x100000000ull * static_cast<std::uint64_t>(index);
    std::uint64_t stream_size =
        (footprint / static_cast<std::uint64_t>(num_streams)) & ~63ull;
    stream_size = std::max<std::uint64_t>(stream_size, 128);

    streams_.clear();
    for (int s = 0; s < num_streams; ++s) {
        StreamState st;
        st.base = data_base + static_cast<std::uint64_t>(s) * stream_size;
        st.size = stream_size;
        st.pos = (static_cast<std::uint64_t>(s) * 64) % stream_size;
        st.stride = p.strideBytes;
        st.chase = s < num_chase;
        streams_.push_back(st);
    }

    region_ = 0;
    bodies_.clear();
    bodies_.reserve(static_cast<std::size_t>(loops));
    for (int r = 0; r < loops; ++r)
        bodies_.push_back(buildBody());
    startVisit();
}

void
SyntheticProgram::startVisit()
{
    const PhaseSpec &p = phase();
    body_index_ = 0;
    iteration_ = 0;
    double iters = p.loopIterations * rng_.uniform(0.5, 1.5);
    iterations_left_ = static_cast<std::uint64_t>(
        std::max(2.0, std::round(iters)));
}

std::vector<SyntheticProgram::StaticOp>
SyntheticProgram::buildBody()
{
    const PhaseSpec &p = phase();
    int body_len = std::max(6, p.loopLength);

    // Expected slot counts for this body, probabilistically rounded so
    // small fractions still appear over many loop instances.
    double len = static_cast<double>(body_len);
    int n_load = stochasticRound(len * p.loadFrac, rng_);
    int n_store = stochasticRound(len * p.storeFrac, rng_);
    int n_branch = std::max(
        0, stochasticRound(len * p.branchFrac, rng_) - 1);
    int n_fp = stochasticRound(len * p.fpFrac, rng_);
    int n_imult = stochasticRound(len * p.intMultFrac, rng_);
    int n_call = stochasticRound(len * p.callFrac, rng_);

    // Leave room for the loop-back branch in the last slot and keep the
    // body from being all special slots.
    int budget = body_len - 1;
    auto clampTo = [&budget](int n) {
        int taken = std::min(n, budget);
        budget -= taken;
        return taken;
    };
    n_load = clampTo(n_load);
    n_store = clampTo(n_store);
    n_branch = clampTo(n_branch);
    n_fp = clampTo(n_fp);
    n_imult = clampTo(n_imult);
    n_call = clampTo(n_call);

    std::vector<StaticOp> slots;
    slots.reserve(static_cast<std::size_t>(body_len));

    double fp_load_share =
        p.fpFrac > 0.0 ? std::min(0.7, p.fpFrac * 1.2) : 0.0;

    for (int i = 0; i < n_load; ++i) {
        StaticOp op;
        op.cls = rng_.chance(fp_load_share) ? OpClass::FpLoad
                                            : OpClass::Load;
        op.stream = static_cast<int>(rng_.range(streams_.size()));
        slots.push_back(op);
    }
    for (int i = 0; i < n_store; ++i) {
        StaticOp op;
        op.cls = rng_.chance(fp_load_share * 0.5) ? OpClass::FpStore
                                                  : OpClass::Store;
        op.stream = static_cast<int>(rng_.range(streams_.size()));
        slots.push_back(op);
    }
    for (int i = 0; i < n_branch; ++i) {
        StaticOp op;
        op.cls = OpClass::Branch;
        op.noisyBranch = rng_.chance(p.branchNoise);
        // Quiet branches are strongly biased per-PC, like most branches
        // in real programs; only noisy branches are data-dependent.
        op.fixedTaken = rng_.chance(p.branchBias);
        op.takenBias = p.branchBias;
        op.skipCount = 1 + static_cast<int>(rng_.range(3));
        slots.push_back(op);
    }
    for (int i = 0; i < n_fp; ++i) {
        StaticOp op;
        if (rng_.chance(p.fpMultShare)) {
            double r = rng_.uniform();
            op.cls = r < 0.10 ? OpClass::FpDiv
                   : r < 0.14 ? OpClass::FpSqrt
                              : OpClass::FpMult;
        } else {
            op.cls = OpClass::FpAdd;
        }
        slots.push_back(op);
    }
    for (int i = 0; i < n_imult; ++i) {
        StaticOp op;
        op.cls = rng_.chance(0.15) ? OpClass::IntDiv : OpClass::IntMult;
        slots.push_back(op);
    }
    for (int i = 0; i < n_call; ++i) {
        StaticOp op;
        op.cls = OpClass::Call;
        slots.push_back(op);
    }
    while (static_cast<int>(slots.size()) < body_len - 1)
        slots.push_back(StaticOp{}); // IntAlu filler

    // Deterministic Fisher-Yates shuffle of all but the loop-back slot.
    for (std::size_t i = slots.size(); i > 1; --i) {
        std::size_t j = rng_.range(i);
        std::swap(slots[i - 1], slots[j]);
    }

    // Calls may not sit in the last two slots (the return must land on a
    // real body op before the loop-back branch).
    for (std::size_t i = slots.size() >= 2 ? slots.size() - 2 : 0;
         i < slots.size(); ++i) {
        if (slots[i].cls == OpClass::Call)
            slots[i].cls = OpClass::IntAlu;
    }

    StaticOp loop_back;
    loop_back.cls = OpClass::Branch;
    slots.push_back(loop_back);
    return slots;
}

void
SyntheticProgram::noteIntWrite(int reg)
{
    recent_int_[instructions_ % recent_int_.size()] = reg;
    last_int_dst_ = reg;
}

void
SyntheticProgram::noteFpWrite(int reg)
{
    recent_fp_[instructions_ % recent_fp_.size()] = reg;
}

int
SyntheticProgram::allocIntDst()
{
    int reg = 1 + (int_reg_rr_ % (NUM_INT_ARCH_REGS - 5));
    ++int_reg_rr_;
    return reg;
}

int
SyntheticProgram::allocFpDst()
{
    int reg = NUM_INT_ARCH_REGS + (fp_reg_rr_ % NUM_FP_ARCH_REGS);
    ++fp_reg_rr_;
    return reg;
}

int
SyntheticProgram::pickIntSrc()
{
    const PhaseSpec &p = phase();
    // Small dependence windows produce serial chains: frequently source
    // the most recent writer. Large windows spread sources out.
    double serial_prob = 1.5 / std::max(2, p.depWindow);
    if (last_int_dst_ != NO_REG && rng_.chance(serial_prob))
        return last_int_dst_;
    return recent_int_[rng_.range(recent_int_.size())];
}

int
SyntheticProgram::pickFpSrc()
{
    return recent_fp_[rng_.range(recent_fp_.size())];
}

std::uint64_t
SyntheticProgram::nextStreamAddr(int stream)
{
    StreamState &st = streams_[static_cast<std::size_t>(stream)];
    if (st.chase) {
        st.pos = (chaseHash(st.pos + 0x9e3779b97f4a7c15ull) % st.size) &
                 ~7ull;
    } else {
        st.pos = (st.pos + static_cast<std::uint64_t>(st.stride)) %
                 st.size;
    }
    return st.base + st.pos;
}

MicroOp
SyntheticProgram::next()
{
    MicroOp op;

    if (sub_ops_left_ > 0) {
        // Inside the fixed call subroutine.
        op.pc = sub_pc_;
        sub_pc_ += 4;
        if (sub_ops_left_ == 1) {
            op.cls = OpClass::Return;
            op.taken = true;
            op.target = sub_return_to_;
        } else {
            op.cls = OpClass::IntAlu;
            op.srcA = pickIntSrc();
            op.dst = allocIntDst();
            noteIntWrite(op.dst);
        }
        --sub_ops_left_;
        ++instructions_;
        return op;
    }

    if (at_region_jump_) {
        // Unconditional jump from the end of this region to the start of
        // the next (cycling the phase's code footprint).
        std::uint64_t pc = region_base_[static_cast<std::size_t>(region_)] +
            static_cast<std::uint64_t>(
                bodies_[static_cast<std::size_t>(region_)].size()) * 4;
        int prev_phase = phase_index_;
        selectPhase();
        if (phase_index_ == prev_phase) {
            region_ = (region_ + 1) %
                static_cast<int>(region_base_.size());
            startVisit();
        }
        op.pc = pc;
        op.cls = OpClass::Branch;
        op.taken = true;
        op.target = region_base_[static_cast<std::size_t>(region_)];
        at_region_jump_ = false;
        ++instructions_;
        return op;
    }

    op = emitBodyOp();
    ++instructions_;
    return op;
}

MicroOp
SyntheticProgram::emitBodyOp()
{
    const std::vector<StaticOp> &body =
        bodies_[static_cast<std::size_t>(region_)];
    const StaticOp &sop = body[static_cast<std::size_t>(body_index_)];
    std::uint64_t base = region_base_[static_cast<std::size_t>(region_)];
    std::uint64_t pc = base +
        static_cast<std::uint64_t>(body_index_) * 4;
    bool is_loop_back =
        body_index_ == static_cast<int>(body.size()) - 1;

    MicroOp op;
    op.pc = pc;
    op.cls = sop.cls;

    if (is_loop_back) {
        op.cls = OpClass::Branch;
        op.srcA = pickIntSrc();
        if (iterations_left_ > 1) {
            op.taken = true;
            op.target = base;
            --iterations_left_;
            ++iteration_;
            body_index_ = 0;
        } else {
            op.taken = false;
            at_region_jump_ = true;
            body_index_ = 0;
        }
        return op;
    }

    switch (sop.cls) {
      case OpClass::Load:
      case OpClass::FpLoad:
        {
            const StreamState &st =
                streams_[static_cast<std::size_t>(sop.stream)];
            op.srcA = st.chase && last_chase_dst_ != NO_REG
                ? last_chase_dst_ : pickIntSrc();
            op.memAddr = nextStreamAddr(sop.stream);
            if (sop.cls == OpClass::FpLoad) {
                op.dst = allocFpDst();
                noteFpWrite(op.dst);
            } else {
                op.dst = allocIntDst();
                noteIntWrite(op.dst);
                if (st.chase)
                    last_chase_dst_ = op.dst;
            }
            ++body_index_;
            break;
        }
      case OpClass::Store:
      case OpClass::FpStore:
        op.srcA = pickIntSrc(); // address register
        op.srcB = sop.cls == OpClass::FpStore ? pickFpSrc()
                                              : pickIntSrc();
        op.memAddr = nextStreamAddr(sop.stream);
        ++body_index_;
        break;
      case OpClass::Branch:
        {
            op.srcA = pickIntSrc();
            bool taken;
            if (sop.noisyBranch) {
                taken = rng_.chance(sop.takenBias);
            } else {
                // Strongly biased branch with a rare flip.
                taken = sop.fixedTaken != rng_.chance(0.02);
            }
            int max_skip = static_cast<int>(body.size()) - 2 -
                body_index_;
            int skip = std::min(sop.skipCount, std::max(0, max_skip));
            if (taken && skip > 0) {
                op.taken = true;
                op.target = pc + 4 *
                    (static_cast<std::uint64_t>(skip) + 1);
                body_index_ += skip + 1;
            } else {
                op.taken = false;
                ++body_index_;
            }
            break;
        }
      case OpClass::Call:
        op.taken = true;
        op.target = base + static_cast<std::uint64_t>(
            body.size() + 2) * 4;
        sub_pc_ = op.target;
        sub_return_to_ = pc + 4;
        sub_ops_left_ = SUB_LENGTH;
        ++body_index_;
        break;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        op.srcA = pickFpSrc();
        op.srcB = pickFpSrc();
        op.dst = allocFpDst();
        noteFpWrite(op.dst);
        ++body_index_;
        break;
      case OpClass::IntMult:
      case OpClass::IntDiv:
      case OpClass::IntAlu:
      default:
        op.srcA = pickIntSrc();
        if (rng_.chance(0.5))
            op.srcB = pickIntSrc();
        op.dst = allocIntDst();
        noteIntWrite(op.dst);
        ++body_index_;
        break;
    }

    return op;
}

void
SyntheticProgram::saveState(std::string &out) const
{
    for (std::uint64_t w : rng_.state())
        serial::appendU64(out, w);
    serial::appendU64(out, instructions_);
    serial::appendI64(out, phase_index_);

    // The phase layout (streams_, region_base_, bodies_) is rebuilt with
    // fresh RNG draws on every enterPhase(), so it must be serialized
    // verbatim: a restore cannot re-enter the phase without consuming
    // different random numbers than the original run did.
    serial::appendU64(out, streams_.size());
    for (const StreamState &s : streams_) {
        serial::appendU64(out, s.base);
        serial::appendU64(out, s.size);
        serial::appendU64(out, s.pos);
        serial::appendI64(out, s.stride);
        serial::appendU64(out, s.chase ? 1 : 0);
        serial::appendU64(out, s.fp ? 1 : 0);
    }
    serial::appendU64(out, region_base_.size());
    for (std::uint64_t b : region_base_)
        serial::appendU64(out, b);
    serial::appendU64(out, bodies_.size());
    for (const std::vector<StaticOp> &body : bodies_) {
        serial::appendU64(out, body.size());
        for (const StaticOp &sop : body) {
            serial::appendI64(out, static_cast<int>(sop.cls));
            serial::appendI64(out, sop.stream);
            serial::appendU64(out, sop.noisyBranch ? 1 : 0);
            serial::appendU64(out, sop.fixedTaken ? 1 : 0);
            serial::appendDouble(out, sop.takenBias);
            serial::appendI64(out, sop.skipCount);
        }
    }
    serial::appendU64(out, region_stride_);

    serial::appendI64(out, region_);
    serial::appendI64(out, body_index_);
    serial::appendU64(out, iterations_left_);
    serial::appendU64(out, iteration_);
    serial::appendU64(out, at_region_jump_ ? 1 : 0);

    serial::appendI64(out, sub_ops_left_);
    serial::appendU64(out, sub_pc_);
    serial::appendU64(out, sub_return_to_);

    serial::appendI64(out, int_reg_rr_);
    serial::appendI64(out, fp_reg_rr_);
    serial::appendU64(out, recent_int_.size());
    for (int r : recent_int_)
        serial::appendI64(out, r);
    serial::appendU64(out, recent_fp_.size());
    for (int r : recent_fp_)
        serial::appendI64(out, r);
    serial::appendI64(out, last_int_dst_);
    serial::appendI64(out, last_chase_dst_);
}

bool
SyntheticProgram::loadState(serial::Reader &in)
{
    std::array<std::uint64_t, 4> rng_state{};
    for (std::uint64_t &w : rng_state)
        w = in.readU64();
    std::uint64_t instructions = in.readU64();
    int phase_index = static_cast<int>(in.readI64());

    std::uint64_t n_streams = in.readU64();
    if (!in.ok() || n_streams > (1u << 20))
        return false;
    std::vector<StreamState> streams(n_streams);
    for (StreamState &s : streams) {
        s.base = in.readU64();
        s.size = in.readU64();
        s.pos = in.readU64();
        s.stride = in.readI64();
        s.chase = in.readU64() != 0;
        s.fp = in.readU64() != 0;
    }
    std::uint64_t n_bases = in.readU64();
    if (!in.ok() || n_bases > (1u << 20))
        return false;
    std::vector<std::uint64_t> region_base(n_bases);
    for (std::uint64_t &b : region_base)
        b = in.readU64();
    std::uint64_t n_bodies = in.readU64();
    if (!in.ok() || n_bodies > (1u << 20))
        return false;
    std::vector<std::vector<StaticOp>> bodies(n_bodies);
    for (std::vector<StaticOp> &body : bodies) {
        std::uint64_t n_ops = in.readU64();
        if (!in.ok() || n_ops > (1u << 20))
            return false;
        body.resize(n_ops);
        for (StaticOp &sop : body) {
            sop.cls = static_cast<OpClass>(in.readI64());
            sop.stream = static_cast<int>(in.readI64());
            sop.noisyBranch = in.readU64() != 0;
            sop.fixedTaken = in.readU64() != 0;
            sop.takenBias = in.readDouble();
            sop.skipCount = static_cast<int>(in.readI64());
        }
    }
    std::uint64_t region_stride = in.readU64();

    int region = static_cast<int>(in.readI64());
    int body_index = static_cast<int>(in.readI64());
    std::uint64_t iterations_left = in.readU64();
    std::uint64_t iteration = in.readU64();
    bool at_region_jump = in.readU64() != 0;

    int sub_ops_left = static_cast<int>(in.readI64());
    std::uint64_t sub_pc = in.readU64();
    std::uint64_t sub_return_to = in.readU64();

    int int_reg_rr = static_cast<int>(in.readI64());
    int fp_reg_rr = static_cast<int>(in.readI64());
    std::uint64_t n_recent_int = in.readU64();
    if (!in.ok() || n_recent_int > (1u << 20))
        return false;
    std::vector<int> recent_int(n_recent_int);
    for (int &r : recent_int)
        r = static_cast<int>(in.readI64());
    std::uint64_t n_recent_fp = in.readU64();
    if (!in.ok() || n_recent_fp > (1u << 20))
        return false;
    std::vector<int> recent_fp(n_recent_fp);
    for (int &r : recent_fp)
        r = static_cast<int>(in.readI64());
    int last_int_dst = static_cast<int>(in.readI64());
    int last_chase_dst = static_cast<int>(in.readI64());

    if (!in.ok())
        return false;

    rng_.setState(rng_state);
    instructions_ = instructions;
    phase_index_ = phase_index;
    streams_ = std::move(streams);
    region_base_ = std::move(region_base);
    bodies_ = std::move(bodies);
    region_stride_ = region_stride;
    region_ = region;
    body_index_ = body_index;
    iterations_left_ = iterations_left;
    iteration_ = iteration;
    at_region_jump_ = at_region_jump;
    sub_ops_left_ = sub_ops_left;
    sub_pc_ = sub_pc;
    sub_return_to_ = sub_return_to;
    int_reg_rr_ = int_reg_rr;
    fp_reg_rr_ = fp_reg_rr;
    recent_int_ = std::move(recent_int);
    recent_fp_ = std::move(recent_fp);
    last_int_dst_ = last_int_dst;
    last_chase_dst_ = last_chase_dst;
    return true;
}

TraceWorkload::TraceWorkload(std::string name, std::vector<MicroOp> ops)
    : name_(std::move(name)), ops_(std::move(ops))
{
    if (ops_.empty())
        mcd_fatal("trace workload '%s' is empty", name_.c_str());
}

MicroOp
TraceWorkload::next()
{
    MicroOp op = ops_[index_];
    index_ = (index_ + 1) % ops_.size();
    return op;
}

void
TraceWorkload::saveState(std::string &out) const
{
    serial::appendU64(out, index_);
}

bool
TraceWorkload::loadState(serial::Reader &in)
{
    std::uint64_t index = in.readU64();
    if (!in.ok() || index >= ops_.size())
        return false;
    index_ = static_cast<std::size_t>(index);
    return true;
}

} // namespace mcd
