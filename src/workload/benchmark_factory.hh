/**
 * @file
 * Behavioral specifications for the paper's 30 benchmark applications
 * (Table 5): 9 MediaBench, 10 Olden, 7 SPEC2000 integer, 4 SPEC2000
 * floating point. Each spec is a synthetic stand-in tuned to the
 * application's published class — instruction mix, working set, branch
 * predictability, pointer-chasing, ILP and phase structure — per
 * DESIGN.md substitution 1. The SPEC FP `mesa` is registered as
 * `mesa_spec` to keep names unique.
 */

#ifndef MCD_WORKLOAD_BENCHMARK_FACTORY_HH
#define MCD_WORKLOAD_BENCHMARK_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace mcd
{

/**
 * The paper's benchmark applications, resolved through the open
 * ScenarioRegistry: `spec`/`create` accept any registered scenario,
 * including the parametric `synthetic:` family and scenarios user code
 * registers, so every name-driven consumer (bench binaries,
 * MCD_BENCHMARKS, mcd_cli) is automatically open too.
 */
class BenchmarkFactory
{
  public:
    /** All 30 paper benchmark names, in the paper's Figure 4 order. */
    static const std::vector<std::string> &allNames();

    /** Registered scenario names belonging to one suite
     *  ("MediaBench"/"Olden"/"Spec2000"/...). */
    static std::vector<std::string> suiteNames(const std::string &suite);

    /** The behavioral spec for a scenario; fatal on unknown names. */
    static BenchmarkSpec spec(const std::string &name);

    /** Instantiate the generator for a scenario. */
    static std::unique_ptr<WorkloadGenerator>
    create(const std::string &name, std::uint64_t horizon);

    /**
     * The raw Table 5 spec of one paper application, bypassing the
     * ScenarioRegistry (which is seeded from exactly these; ordinary
     * callers want `spec`).
     */
    static BenchmarkSpec paperSpec(const std::string &name);
};

} // namespace mcd

#endif // MCD_WORKLOAD_BENCHMARK_FACTORY_HH
