#include "workload/scenario_registry.hh"

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "common/serial.hh"
#include "workload/benchmark_factory.hh"

namespace mcd
{

namespace
{

std::mutex registry_mutex;

double
knobOr(const std::map<std::string, double> &knobs, const char *key,
       double fallback)
{
    auto it = knobs.find(key);
    return it == knobs.end() ? fallback : it->second;
}

double
requireRange(const std::string &name, const char *key, double v,
             double lo, double hi)
{
    if (v < lo || v > hi)
        mcd_fatal("%s: knob '%s'=%g outside [%g, %g]", name.c_str(),
                  key, v, lo, hi);
    return v;
}

std::map<std::string, double>
parseKnobs(const std::string &name, const std::string &text,
           const std::vector<std::string> &allowed)
{
    std::map<std::string, double> knobs;
    std::size_t pos = 0;
    while (pos < text.size()) {
        auto comma = text.find(',', pos);
        std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? text.size() : comma + 1;
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            mcd_fatal("%s: knob '%s' is not key=value", name.c_str(),
                      item.c_str());
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        bool known = false;
        for (const auto &a : allowed)
            known = known || a == key;
        if (!known)
            mcd_fatal("%s: unknown knob '%s'", name.c_str(),
                      key.c_str());
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size())
            mcd_fatal("%s: knob '%s'='%s' is not a number",
                      name.c_str(), key.c_str(), value.c_str());
        knobs[key] = v;
    }
    return knobs;
}

/**
 * The parametric synthetic family (see the header comment for knob
 * semantics). With phases=N the program alternates N phases around the
 * requested memory-boundedness (+/- 0.3, clamped), giving the
 * controller a genuine phase structure to track; the phase period is
 * horizon/N. With burst=B > 0 the program instead alternates N
 * busy/idle pairs: each period spends share B in an io-like idle
 * phase — serial pointer-chasing over a footprint far beyond L2, so
 * the core mostly waits — before the busy mix (at the requested `mem`)
 * resumes, the abrupt activity swings that stress a controller's
 * attack and decay paths.
 */
BenchmarkSpec
buildSynthetic(const std::string &name)
{
    const std::string prefix = "synthetic:";
    std::string text = name.substr(prefix.size());
    auto knobs = parseKnobs(
        name, text,
        {"mem", "ilp", "phases", "burst", "fp", "branch", "seed"});

    double mem =
        requireRange(name, "mem", knobOr(knobs, "mem", 0.3), 0.0, 1.0);
    int ilp = static_cast<int>(requireRange(
        name, "ilp", knobOr(knobs, "ilp", 8.0), 1.0, 64.0));
    int phases = static_cast<int>(requireRange(
        name, "phases", knobOr(knobs, "phases", 1.0), 1.0, 64.0));
    double burst = requireRange(name, "burst",
                                knobOr(knobs, "burst", 0.0), 0.0, 1.0);
    double fp =
        requireRange(name, "fp", knobOr(knobs, "fp", 0.0), 0.0, 1.0);
    double branch = requireRange(name, "branch",
                                 knobOr(knobs, "branch", 0.25), 0.0,
                                 1.0);
    std::uint64_t seed = static_cast<std::uint64_t>(
        knobOr(knobs, "seed",
               static_cast<double>(serial::fnv1a(name) % 100000)));

    auto makePhase = [&](double m) {
        PhaseSpec phase;
        phase.loadFrac = 0.16 + 0.20 * m;
        phase.storeFrac = 0.08;
        phase.branchFrac = 0.14;
        phase.fpFrac = fp * 0.4;
        phase.branchNoise = branch;
        phase.depWindow = ilp;
        phase.chaseFrac = 0.6 * m;
        // Geometric footprint sweep, 16 KB (cache-resident) to 24 MB
        // (far beyond L2): the knob moves the scenario from compute-
        // bound to memory-bound.
        phase.dataFootprint = static_cast<std::uint64_t>(
            16.0 * 1024.0 * std::pow(24.0 * 1024.0 / 16.0, m));
        phase.loopLength = 24 + ilp;
        phase.loopIterations = 64;
        phase.codeLoops = 4;
        return phase;
    };

    // The io-like idle phase burst > 0 interleaves: every load is a
    // serial pointer chase over a footprint far beyond L2, with no
    // exploitable ILP, so the core sits nearly idle waiting on main
    // memory — the synthetic stand-in for a thread blocked on io.
    auto makeIdlePhase = [&] {
        PhaseSpec idle;
        idle.loadFrac = 0.50;
        idle.storeFrac = 0.02;
        idle.branchFrac = 0.06;
        idle.fpFrac = 0.0;
        idle.branchNoise = 0.1;
        idle.depWindow = 1;
        idle.chaseFrac = 1.0;
        idle.dataFootprint = 24 * 1024 * 1024;
        idle.loopLength = 16;
        idle.loopIterations = 128;
        idle.codeLoops = 1;
        return idle;
    };

    BenchmarkSpec spec;
    spec.name = name;
    spec.suite = "synthetic";
    spec.seed = seed;
    if (burst > 0.0) {
        // N busy/idle pairs; each period is horizon/phases with share
        // `burst` of it idle. Zero busy weight (burst = 1) is legal:
        // the generator skips zero-length phases.
        for (int i = 0; i < phases; ++i) {
            PhaseSpec busy = makePhase(mem);
            busy.weight = (1.0 - burst) / phases;
            spec.phases.push_back(busy);
            PhaseSpec idle = makeIdlePhase();
            idle.weight = burst / phases;
            spec.phases.push_back(idle);
        }
    } else if (phases == 1) {
        spec.phases.push_back(makePhase(mem));
    } else {
        for (int i = 0; i < phases; ++i) {
            double m = i % 2 == 0 ? std::min(1.0, mem + 0.3)
                                  : std::max(0.0, mem - 0.3);
            PhaseSpec phase = makePhase(m);
            phase.weight = 1.0 / phases;
            spec.phases.push_back(phase);
        }
    }
    return spec;
}

} // namespace

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry *registry = [] {
        auto *r = new ScenarioRegistry();
        // The paper's 30 applications, in Figure 4 order.
        for (const auto &name : BenchmarkFactory::allNames())
            r->add(BenchmarkFactory::paperSpec(name));
        r->addFamily("synthetic:",
                     "parametric workload: mem=[0..1], ilp=[1..64], "
                     "phases=[1..64], burst=[0..1] (io-like idle/burst "
                     "alternation), fp=[0..1], branch=[0..1], seed",
                     buildSynthetic);
        return r;
    }();
    return *registry;
}

void
ScenarioRegistry::add(BenchmarkSpec spec)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    if (fixed_.count(spec.name))
        mcd_fatal("scenario '%s' registered twice", spec.name.c_str());
    order_.push_back(spec.name);
    fixed_[spec.name] = std::move(spec);
}

void
ScenarioRegistry::addFamily(const std::string &prefix,
                            const std::string &description, FamilyFn fn)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (const auto &family : families_)
        if (family.info.prefix == prefix)
            mcd_fatal("scenario family '%s' registered twice",
                      prefix.c_str());
    families_.push_back(
        Family{FamilyInfo{prefix, description}, std::move(fn)});
}

bool
ScenarioRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    if (fixed_.count(name))
        return true;
    for (const auto &family : families_)
        if (name.rfind(family.info.prefix, 0) == 0)
            return true;
    return false;
}

BenchmarkSpec
ScenarioRegistry::spec(const std::string &name) const
{
    FamilyFn fn;
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        auto it = fixed_.find(name);
        if (it != fixed_.end())
            return it->second;
        for (const auto &family : families_) {
            if (name.rfind(family.info.prefix, 0) == 0) {
                fn = family.fn;
                break;
            }
        }
    }
    if (!fn)
        mcd_fatal("unknown scenario '%s' (mcd_cli list shows "
                  "registered names)", name.c_str());
    return fn(name);
}

std::vector<std::string>
ScenarioRegistry::scenarioNames() const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    return order_;
}

std::vector<ScenarioRegistry::FamilyInfo>
ScenarioRegistry::families() const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    std::vector<FamilyInfo> infos;
    for (const auto &family : families_)
        infos.push_back(family.info);
    return infos;
}

} // namespace mcd
