#include "workload/scenario_registry.hh"

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/serial.hh"
#include "workload/benchmark_factory.hh"

namespace mcd
{

namespace
{

std::mutex registry_mutex;

double
knobOr(const std::map<std::string, double> &knobs, const char *key,
       double fallback)
{
    auto it = knobs.find(key);
    return it == knobs.end() ? fallback : it->second;
}

double
requireRange(const std::string &name, const char *key, double v,
             double lo, double hi)
{
    if (v < lo || v > hi)
        mcd_fatal("%s: knob '%s'=%g outside [%g, %g]", name.c_str(),
                  key, v, lo, hi);
    return v;
}

std::map<std::string, double>
parseKnobs(const std::string &name, const std::string &text,
           const std::vector<std::string> &allowed)
{
    std::map<std::string, double> knobs;
    std::size_t pos = 0;
    while (pos < text.size()) {
        auto comma = text.find(',', pos);
        std::string item = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? text.size() : comma + 1;
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            mcd_fatal("%s: knob '%s' is not key=value", name.c_str(),
                      item.c_str());
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        bool known = false;
        for (const auto &a : allowed)
            known = known || a == key;
        if (!known) {
            std::string valid;
            for (const auto &a : allowed)
                valid += (valid.empty() ? "" : ", ") + a;
            mcd_fatal("%s: unknown knob '%s' (valid knobs: %s)",
                      name.c_str(), key.c_str(), valid.c_str());
        }
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size())
            mcd_fatal("%s: knob '%s'='%s' is not a number",
                      name.c_str(), key.c_str(), value.c_str());
        knobs[key] = v;
    }
    return knobs;
}

/**
 * The parametric synthetic family (see the header comment for knob
 * semantics). With phases=N the program alternates N phases around the
 * requested memory-boundedness (+/- 0.3, clamped), giving the
 * controller a genuine phase structure to track; the phase period is
 * horizon/N. With burst=B > 0 the program instead alternates N
 * busy/idle pairs: each period spends share B in an io-like idle
 * phase — serial pointer-chasing over a footprint far beyond L2, so
 * the core mostly waits — before the busy mix (at the requested `mem`)
 * resumes, the abrupt activity swings that stress a controller's
 * attack and decay paths.
 *
 * The adversarial knobs are regime-switching stressors for the
 * controller stress lab (src/eval/):
 *  - markov=N: a seeded Markov chain over three regimes (compute,
 *    mixed at `mem`, memory-bound), N segments per run. Sticky
 *    transitions reward a controller that settles, abrupt regime
 *    switches punish one that only decays.
 *  - square=P: a two-regime square wave with an *absolute* flip
 *    period of P instructions (spec.periodInstructions), so the flip
 *    rate can be pinned near the Attack/Decay reaction window
 *    independent of the measured window size.
 *  - drift=D: a monotonic memory-boundedness ramp spanning D around
 *    `mem` in 48 equal steps over the whole run; each step is small
 *    enough that the relative utilization change stays below the
 *    deviation threshold, starving the attack path.
 */
BenchmarkSpec
buildSynthetic(const std::string &name)
{
    const std::string prefix = "synthetic:";
    std::string text = name.substr(prefix.size());
    auto knobs = parseKnobs(
        name, text,
        {"mem", "ilp", "phases", "burst", "markov", "square", "drift",
         "fp", "branch", "seed"});

    double mem =
        requireRange(name, "mem", knobOr(knobs, "mem", 0.3), 0.0, 1.0);
    int ilp = static_cast<int>(requireRange(
        name, "ilp", knobOr(knobs, "ilp", 8.0), 1.0, 64.0));
    int phases = static_cast<int>(requireRange(
        name, "phases", knobOr(knobs, "phases", 1.0), 1.0, 64.0));
    double burst = requireRange(name, "burst",
                                knobOr(knobs, "burst", 0.0), 0.0, 1.0);
    // The adversarial count/period knobs are integers; a fractional
    // value would truncate — markov=0.5 to 0, silently disabling the
    // stressor — so reject it instead.
    auto requireWhole = [&](const char *key, double v) {
        if (v != std::floor(v))
            mcd_fatal("%s: knob '%s'=%g must be a whole number",
                      name.c_str(), key, v);
        return v;
    };
    int markov = static_cast<int>(requireWhole(
        "markov", requireRange(name, "markov",
                               knobOr(knobs, "markov", 0.0), 0.0,
                               256.0)));
    if (markov == 1)
        mcd_fatal("%s: knob 'markov' needs at least 2 segments",
                  name.c_str());
    double square_v = requireRange(
        name, "square", knobOr(knobs, "square", 0.0), 0.0, 1.0e7);
    if (square_v > 0.0 && square_v < 500.0)
        mcd_fatal("%s: knob 'square'=%g below the 500-instruction "
                  "minimum half-period", name.c_str(), square_v);
    std::uint64_t square =
        static_cast<std::uint64_t>(requireWhole("square", square_v));
    double drift = requireRange(name, "drift",
                                knobOr(knobs, "drift", 0.0), 0.0, 1.0);
    double fp =
        requireRange(name, "fp", knobOr(knobs, "fp", 0.0), 0.0, 1.0);
    double branch = requireRange(name, "branch",
                                 knobOr(knobs, "branch", 0.25), 0.0,
                                 1.0);
    std::uint64_t seed = static_cast<std::uint64_t>(
        knobOr(knobs, "seed",
               static_cast<double>(serial::fnv1a(name) % 100000)));

    int adversarial = (markov > 0) + (square > 0) + (drift > 0.0);
    if (adversarial > 1 ||
        (adversarial == 1 && (burst > 0.0 || phases > 1)))
        mcd_fatal("%s: knobs markov/square/drift are mutually "
                  "exclusive, and exclusive with burst and phases",
                  name.c_str());

    auto makePhase = [&](double m, int dep) {
        PhaseSpec phase;
        phase.loadFrac = 0.16 + 0.20 * m;
        phase.storeFrac = 0.08;
        phase.branchFrac = 0.14;
        phase.fpFrac = fp * 0.4;
        phase.branchNoise = branch;
        phase.depWindow = dep;
        phase.chaseFrac = 0.6 * m;
        // Geometric footprint sweep, 16 KB (cache-resident) to 24 MB
        // (far beyond L2): the knob moves the scenario from compute-
        // bound to memory-bound.
        phase.dataFootprint = static_cast<std::uint64_t>(
            16.0 * 1024.0 * std::pow(24.0 * 1024.0 / 16.0, m));
        phase.loopLength = 24 + dep;
        phase.loopIterations = 64;
        phase.codeLoops = 4;
        return phase;
    };

    // The io-like idle phase burst > 0 interleaves: every load is a
    // serial pointer chase over a footprint far beyond L2, with no
    // exploitable ILP, so the core sits nearly idle waiting on main
    // memory — the synthetic stand-in for a thread blocked on io.
    auto makeIdlePhase = [&] {
        PhaseSpec idle;
        idle.loadFrac = 0.50;
        idle.storeFrac = 0.02;
        idle.branchFrac = 0.06;
        idle.fpFrac = 0.0;
        idle.branchNoise = 0.1;
        idle.depWindow = 1;
        idle.chaseFrac = 1.0;
        idle.dataFootprint = 24 * 1024 * 1024;
        idle.loopLength = 16;
        idle.loopIterations = 128;
        idle.codeLoops = 1;
        return idle;
    };

    BenchmarkSpec spec;
    spec.name = name;
    spec.suite = "synthetic";
    spec.seed = seed;
    if (markov > 0) {
        // Seeded Markov chain over three regimes: compute-bound (low
        // mem, deep ILP), the requested mix, and memory-bound (high
        // mem, serial). Sticky self-transitions (p = 0.55) make
        // regimes dwell a few segments; switches jump anywhere.
        struct Regime { double m; int dep; };
        const Regime regimes[3] = {
            {std::max(0.0, mem - 0.45), std::min(64, ilp * 4)},
            {mem, ilp},
            {std::min(1.0, mem + 0.45), std::max(1, ilp / 4)},
        };
        Rng rng(seed ^ 0x6d61726b6f766bull); // decoupled from the
                                             // instruction stream RNG
        int state = 1;
        for (int i = 0; i < markov; ++i) {
            PhaseSpec phase = makePhase(regimes[state].m,
                                        regimes[state].dep);
            phase.weight = 1.0 / markov;
            spec.phases.push_back(phase);
            if (!rng.chance(0.55)) {
                int other = static_cast<int>(rng.range(2));
                state = other >= state ? other + 1 : other;
            }
        }
    } else if (square > 0) {
        // Two-regime square wave with an absolute half-period of
        // `square` instructions: the flip rate stays pinned to the
        // controller's reaction window at any measured window size.
        // Short loop visits (phase switches only happen at region
        // jumps) keep the realized flips within a fraction of the
        // requested period instead of quantizing to multi-thousand-
        // instruction loop visits.
        PhaseSpec lo = makePhase(std::max(0.0, mem - 0.45),
                                 std::min(64, ilp * 4));
        lo.weight = 0.5;
        lo.loopIterations = 8;
        PhaseSpec hi = makePhase(std::min(1.0, mem + 0.45),
                                 std::max(1, ilp / 4));
        hi.weight = 0.5;
        hi.loopIterations = 8;
        spec.phases.push_back(lo);
        spec.phases.push_back(hi);
        spec.periodInstructions = 2 * square;
    } else if (drift > 0.0) {
        // Monotonic ramp in 48 equal steps spanning `drift` around
        // `mem`: adjacent steps move memory-boundedness by drift/47,
        // a relative utilization change small enough to stay under
        // the Attack/Decay deviation threshold.
        constexpr int STEPS = 48;
        double lo = std::max(0.0, mem - drift / 2.0);
        double hi = std::min(1.0, mem + drift / 2.0);
        for (int i = 0; i < STEPS; ++i) {
            double m = lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(STEPS - 1);
            PhaseSpec phase = makePhase(m, ilp);
            phase.weight = 1.0 / STEPS;
            spec.phases.push_back(phase);
        }
    } else if (burst > 0.0) {
        // N busy/idle pairs; each period is horizon/phases with share
        // `burst` of it idle. Zero busy weight (burst = 1) is legal:
        // the generator skips zero-length phases.
        for (int i = 0; i < phases; ++i) {
            PhaseSpec busy = makePhase(mem, ilp);
            busy.weight = (1.0 - burst) / phases;
            spec.phases.push_back(busy);
            PhaseSpec idle = makeIdlePhase();
            idle.weight = burst / phases;
            spec.phases.push_back(idle);
        }
    } else if (phases == 1) {
        spec.phases.push_back(makePhase(mem, ilp));
    } else {
        for (int i = 0; i < phases; ++i) {
            double m = i % 2 == 0 ? std::min(1.0, mem + 0.3)
                                  : std::max(0.0, mem - 0.3);
            PhaseSpec phase = makePhase(m, ilp);
            phase.weight = 1.0 / phases;
            spec.phases.push_back(phase);
        }
    }
    return spec;
}

} // namespace

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry *registry = [] {
        auto *r = new ScenarioRegistry();
        // The paper's 30 applications, in Figure 4 order.
        for (const auto &name : BenchmarkFactory::allNames())
            r->add(BenchmarkFactory::paperSpec(name));
        r->addFamily(
            "synthetic:",
            "parametric workload; adversarial regime-switching knobs "
            "(markov/square/drift) stress the online controller",
            buildSynthetic,
            {{"mem", "[0..1] memory-boundedness: load fraction, "
                     "footprint (16 KB..24 MB), pointer-chase share "
                     "(default 0.3)"},
             {"ilp", "[1..64] dependence window; bigger = more ILP "
                     "(default 8)"},
             {"phases", "[1..64] alternating busy/memory phases over "
                        "the run (default 1)"},
             {"burst", "[0..1] share of each phase period spent in an "
                       "io-like idle phase (default 0)"},
             {"markov", "[2..256] adversarial: seeded Markov chain "
                        "over compute/mixed/memory regimes, that many "
                        "segments (default off)"},
             {"square", "[500..1e7] adversarial: compute<->memory "
                        "square wave, flipping every `square` "
                        "instructions (default off)"},
             {"drift", "(0..1] adversarial: slow monotonic memory-"
                       "boundedness ramp spanning `drift` around "
                       "`mem` (default off)"},
             {"fp", "[0..1] floating-point fraction (default 0)"},
             {"branch", "[0..1] data-branch unpredictability "
                        "(default 0.25)"},
             {"seed", "integer workload RNG seed (default: hashed "
                      "from the scenario name)"}});
        return r;
    }();
    return *registry;
}

void
ScenarioRegistry::add(BenchmarkSpec spec)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    if (fixed_.count(spec.name))
        mcd_fatal("scenario '%s' registered twice", spec.name.c_str());
    order_.push_back(spec.name);
    fixed_[spec.name] = std::move(spec);
}

void
ScenarioRegistry::addFamily(const std::string &prefix,
                            const std::string &description, FamilyFn fn,
                            std::vector<KnobInfo> knobs)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (const auto &family : families_)
        if (family.info.prefix == prefix)
            mcd_fatal("scenario family '%s' registered twice",
                      prefix.c_str());
    families_.push_back(Family{
        FamilyInfo{prefix, description, std::move(knobs)},
        std::move(fn)});
}

bool
ScenarioRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    if (fixed_.count(name))
        return true;
    for (const auto &family : families_)
        if (name.rfind(family.info.prefix, 0) == 0)
            return true;
    return false;
}

BenchmarkSpec
ScenarioRegistry::spec(const std::string &name) const
{
    FamilyFn fn;
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        auto it = fixed_.find(name);
        if (it != fixed_.end())
            return it->second;
        for (const auto &family : families_) {
            if (name.rfind(family.info.prefix, 0) == 0) {
                fn = family.fn;
                break;
            }
        }
    }
    if (!fn)
        mcd_fatal("unknown scenario '%s' (mcd_cli list shows "
                  "registered names)", name.c_str());
    return fn(name);
}

std::vector<std::string>
ScenarioRegistry::scenarioNames() const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    return order_;
}

std::vector<ScenarioRegistry::FamilyInfo>
ScenarioRegistry::families() const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    std::vector<FamilyInfo> infos;
    for (const auto &family : families_)
        infos.push_back(family.info);
    return infos;
}

} // namespace mcd
