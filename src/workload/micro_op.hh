/**
 * @file
 * The dynamic micro-op IR executed by the simulator.
 *
 * The paper runs Alpha binaries under SimpleScalar; we substitute a
 * micro-op stream that carries exactly the information the timing model
 * consumes: operation class, logical register dependences, memory
 * address, and resolved control flow. Logical registers 0-31 are
 * integer (0 is the always-ready zero register), 32-63 floating point.
 */

#ifndef MCD_WORKLOAD_MICRO_OP_HH
#define MCD_WORKLOAD_MICRO_OP_HH

#include <cstdint>

namespace mcd
{

/** Operation classes with distinct scheduling/latency behavior. */
enum class OpClass : std::uint8_t
{
    IntAlu = 0,
    IntMult,
    IntDiv,
    FpAdd,
    FpMult,
    FpDiv,
    FpSqrt,
    Load,
    FpLoad,
    Store,
    FpStore,
    Branch,
    Call,
    Return,
    Nop,
};

/** True for classes executed by the floating-point domain. */
bool isFpClass(OpClass cls);

/** True for loads and stores (handled by the load/store domain). */
bool isMemClass(OpClass cls);

/** True for any control transfer. */
bool isControlClass(OpClass cls);

/** True for loads (int or fp destination). */
bool isLoadClass(OpClass cls);

/** True for stores (int or fp data). */
bool isStoreClass(OpClass cls);

/** Number of architectural integer registers (reg 0 is the zero reg). */
constexpr int NUM_INT_ARCH_REGS = 32;

/** Number of architectural FP registers (logical ids 32..63). */
constexpr int NUM_FP_ARCH_REGS = 32;

/** Total logical register namespace. */
constexpr int NUM_ARCH_REGS = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS;

/** Sentinel for "no register operand". */
constexpr int NO_REG = -1;

/** One dynamic instruction on the correct execution path. */
struct MicroOp
{
    std::uint64_t pc = 0;     //!< instruction address (4-byte ops)
    OpClass cls = OpClass::Nop;
    int srcA = NO_REG;        //!< first source logical register
    int srcB = NO_REG;        //!< second source logical register
    int dst = NO_REG;         //!< destination logical register
    std::uint64_t memAddr = 0; //!< effective address for loads/stores
    bool taken = false;       //!< resolved direction for control ops
    std::uint64_t target = 0; //!< resolved target for taken control ops

    /** Address of the next sequential instruction. */
    std::uint64_t fallthrough() const { return pc + 4; }

    /** Address of the next instruction on the correct path. */
    std::uint64_t
    nextPc() const
    {
        return (isControlClass(cls) && taken) ? target : fallthrough();
    }
};

} // namespace mcd

#endif // MCD_WORKLOAD_MICRO_OP_HH
