/**
 * @file
 * Workload generator interface plus the phase-structured behavioral
 * specification used to stand in for the paper's MediaBench / Olden /
 * SPEC2000 applications (see DESIGN.md, substitution 1).
 */

#ifndef MCD_WORKLOAD_WORKLOAD_HH
#define MCD_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/serial.hh"
#include "workload/micro_op.hh"

namespace mcd
{

/** Produces the correct-path dynamic micro-op stream of a program. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Next dynamic instruction; streams are unbounded (they wrap). */
    virtual MicroOp next() = 0;

    /** Workload name for reporting. */
    virtual const std::string &name() const = 0;

    /**
     * Serialize the generator position (checkpointing). Restoring the
     * saved bytes into a generator built from the identical spec +
     * horizon must reproduce the remaining op stream bit-for-bit.
     * Stateless generators may keep the no-op defaults.
     */
    virtual void saveState(std::string &out) const { (void)out; }

    /** Inverse of saveState; false on malformed data. */
    virtual bool loadState(serial::Reader &in) { return in.ok(); }
};

/**
 * Behavior of one program phase. Fractions are of all dynamic
 * instructions and need not sum to 1; the remainder is integer ALU work.
 */
struct PhaseSpec
{
    /** Relative share of the program's instructions spent here. */
    double weight = 1.0;

    // Instruction mix.
    double loadFrac = 0.22;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double fpFrac = 0.0;      //!< FP arithmetic (adds + mults + divs)
    double fpMultShare = 0.35; //!< share of fpFrac that is mult/div/sqrt
    double intMultFrac = 0.01;
    double callFrac = 0.004;  //!< call/return pairs

    // Control behavior.
    int loopLength = 24;        //!< static micro-ops per loop body
    double loopIterations = 48; //!< mean iterations before loop exit
    double branchBias = 0.72;   //!< taken probability of data branches
    double branchNoise = 0.25;  //!< fraction of data branches that are
                                //!< random (unpredictable) vs patterned
    int codeLoops = 6;          //!< distinct loop bodies cycled through
                                //!< (I-cache footprint knob)

    // Memory behavior.
    std::uint64_t dataFootprint = 48 * 1024; //!< bytes touched
    double chaseFrac = 0.0;   //!< loads that serially pointer-chase
    int strideBytes = 8;      //!< stride of streaming accesses

    // Parallelism.
    int depWindow = 8; //!< how far back sources reach; bigger = more ILP
};

/** A named program: an ordered list of phases plus a seed. */
struct BenchmarkSpec
{
    std::string name;
    std::string suite;        //!< "MediaBench", "Olden", "Spec2000"
    std::vector<PhaseSpec> phases;
    std::uint64_t seed = 1;

    /**
     * Absolute length, in instructions, of one pass through the phase
     * list; the program cycles through it until the horizon. 0 (the
     * default) keeps the classic behavior: weights scale over the
     * whole horizon. Absolute periods let a scenario pin its phase-
     * flip rate to the controller's reaction window regardless of the
     * measured window size (the `synthetic:square=` stressor).
     */
    std::uint64_t periodInstructions = 0;
};

/**
 * The deterministic synthetic program generator. Reproduces, per phase:
 * loop-structured control flow (predictable loop-back branches plus
 * noisy data-dependent branches), streaming and pointer-chasing memory
 * references over a configurable footprint, FP bursts, call/return
 * pairs, and tunable dependence distance. The same spec + seed + horizon
 * always produces the identical stream.
 */
class SyntheticProgram : public WorkloadGenerator
{
  public:
    /**
     * @param spec     behavioral specification
     * @param horizon  planned instruction count used to scale phase
     *                 boundaries; the stream wraps past the horizon
     */
    SyntheticProgram(const BenchmarkSpec &spec, std::uint64_t horizon);

    MicroOp next() override;
    const std::string &name() const override { return spec_.name; }

    void saveState(std::string &out) const override;
    bool loadState(serial::Reader &in) override;

    /** Index of the phase the generator is currently in. */
    int currentPhase() const { return phase_index_; }

  private:
    struct StreamState
    {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
        std::uint64_t pos = 0;
        std::int64_t stride = 8;
        bool chase = false;
        bool fp = false;
    };

    struct StaticOp
    {
        OpClass cls = OpClass::IntAlu;
        int stream = -1;
        bool noisyBranch = false;
        bool fixedTaken = true; //!< biased direction of quiet branches
        double takenBias = 0.5;
        int skipCount = 0; //!< hammock size for internal branches
    };

    BenchmarkSpec spec_;
    std::uint64_t horizon_;
    std::uint64_t period_;  //!< instructions per pass through the phases
    std::vector<std::uint64_t> phase_end_; //!< cumulative boundaries

    Rng rng_;
    std::uint64_t instructions_ = 0;
    int phase_index_ = -1;

    // Current phase's code layout and data streams. Bodies are built
    // once per phase entry: the static code of a region never changes
    // between visits (real programs have static code), so the branch
    // predictor sees stable per-PC behavior.
    std::vector<StreamState> streams_;
    std::vector<std::uint64_t> region_base_; //!< per-loop-slot code base
    std::vector<std::vector<StaticOp>> bodies_; //!< per-region static code
    std::uint64_t region_stride_ = 0;

    // Current loop visit.
    int region_ = 0;       //!< which of the phase's codeLoops we run
    int body_index_ = 0;
    std::uint64_t iterations_left_ = 1;
    std::uint64_t iteration_ = 0;
    bool at_region_jump_ = false;

    // Subroutine (call/return) state.
    int sub_ops_left_ = 0;
    std::uint64_t sub_pc_ = 0;
    std::uint64_t sub_return_to_ = 0;

    // Register allocation.
    int int_reg_rr_ = 1;   //!< round-robin integer dst allocator
    int fp_reg_rr_ = 0;    //!< round-robin fp dst allocator
    std::vector<int> recent_int_;
    std::vector<int> recent_fp_;
    int last_int_dst_ = NO_REG;
    int last_chase_dst_ = NO_REG;

    const PhaseSpec &phase() const;
    void selectPhase();
    void enterPhase(int index);
    std::vector<StaticOp> buildBody();
    void startVisit();
    void noteIntWrite(int reg);
    void noteFpWrite(int reg);
    int allocIntDst();
    int allocFpDst();
    int pickIntSrc();
    int pickFpSrc();
    std::uint64_t nextStreamAddr(int stream);
    MicroOp emitBodyOp();
};

/** Fixed, caller-supplied micro-op sequence (wraps); for tests. */
class TraceWorkload : public WorkloadGenerator
{
  public:
    TraceWorkload(std::string name, std::vector<MicroOp> ops);

    MicroOp next() override;
    const std::string &name() const override { return name_; }

    void saveState(std::string &out) const override;
    bool loadState(serial::Reader &in) override;

  private:
    std::string name_;
    std::vector<MicroOp> ops_;
    std::size_t index_ = 0;
};

} // namespace mcd

#endif // MCD_WORKLOAD_WORKLOAD_HH
