#include "workload/benchmark_factory.hh"

#include <map>

#include "common/logging.hh"
#include "workload/scenario_registry.hh"

namespace mcd
{

namespace
{

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/**
 * Spec table. Mixes and footprints follow the published character of
 * each application:
 *  - MediaBench: small kernels, tiny-to-moderate working sets, highly
 *    predictable branches, little FP except epic/mesa/mpeg2.
 *  - Olden: pointer codes; the memory-bound ones (em3d, health, mst,
 *    treeadd) chase through multi-megabyte heaps; power/bh carry FP.
 *  - SPECint: mixed; mcf is the extreme memory-bound pointer chaser,
 *    gcc has a huge instruction footprint with near-perfect branch
 *    prediction (Section 5's 99 % figure).
 *  - SPECfp: long predictable vector loops with wide ILP and streaming
 *    working sets larger than L2.
 */
std::map<std::string, BenchmarkSpec>
buildTable()
{
    std::map<std::string, BenchmarkSpec> table;

    auto add = [&table](const std::string &name, const std::string &suite,
                        std::vector<PhaseSpec> phases,
                        std::uint64_t seed) {
        BenchmarkSpec spec;
        spec.name = name;
        spec.suite = suite;
        spec.phases = std::move(phases);
        spec.seed = seed;
        table[name] = std::move(spec);
    };

    // ------------------------------------------------------------------
    // MediaBench
    // ------------------------------------------------------------------
    add("adpcm", "MediaBench",
        {PhaseSpec{.loadFrac = 0.14, .storeFrac = 0.07,
                   .branchFrac = 0.18, .fpFrac = 0.0,
                   .loopLength = 16, .loopIterations = 2000,
                   .branchBias = 0.8, .branchNoise = 0.10, .codeLoops = 2,
                   .dataFootprint = 8 * KB, .depWindow = 4}},
        11);

    // epic decode: FP silent except two distinct phases (Figures 2/3).
    add("epic", "MediaBench",
        {PhaseSpec{.weight = 0.21, .loadFrac = 0.24, .storeFrac = 0.10,
                   .branchFrac = 0.16, .fpFrac = 0.0,
                   .loopLength = 28, .loopIterations = 120,
                   .branchNoise = 0.15, .codeLoops = 4,
                   .dataFootprint = 256 * KB, .depWindow = 8},
         PhaseSpec{.weight = 0.19, .loadFrac = 0.26, .storeFrac = 0.08,
                   .branchFrac = 0.08, .fpFrac = 0.34, .fpMultShare = 0.45,
                   .loopLength = 48, .loopIterations = 300,
                   .branchNoise = 0.05, .codeLoops = 3,
                   .dataFootprint = 384 * KB, .depWindow = 12},
         PhaseSpec{.weight = 0.40, .loadFrac = 0.22, .storeFrac = 0.12,
                   .branchFrac = 0.17, .fpFrac = 0.0,
                   .loopLength = 24, .loopIterations = 90,
                   .branchNoise = 0.22, .codeLoops = 5,
                   .dataFootprint = 192 * KB, .depWindow = 7},
         PhaseSpec{.weight = 0.13, .loadFrac = 0.26, .storeFrac = 0.08,
                   .branchFrac = 0.08, .fpFrac = 0.34, .fpMultShare = 0.45,
                   .loopLength = 48, .loopIterations = 300,
                   .branchNoise = 0.05, .codeLoops = 3,
                   .dataFootprint = 384 * KB, .depWindow = 12},
         PhaseSpec{.weight = 0.07, .loadFrac = 0.20, .storeFrac = 0.14,
                   .branchFrac = 0.18, .fpFrac = 0.0,
                   .loopLength = 20, .loopIterations = 60,
                   .branchNoise = 0.20, .codeLoops = 3,
                   .dataFootprint = 128 * KB, .depWindow = 6}},
        13);

    add("jpeg", "MediaBench",
        {PhaseSpec{.loadFrac = 0.22, .storeFrac = 0.11,
                   .branchFrac = 0.13, .fpFrac = 0.0, .intMultFrac = 0.06,
                   .loopLength = 40, .loopIterations = 64,
                   .branchNoise = 0.12, .codeLoops = 6,
                   .dataFootprint = 128 * KB, .depWindow = 10}},
        17);

    add("g721", "MediaBench",
        {PhaseSpec{.loadFrac = 0.18, .storeFrac = 0.08,
                   .branchFrac = 0.20, .fpFrac = 0.0, .intMultFrac = 0.04,
                   .loopLength = 18, .loopIterations = 800,
                   .branchBias = 0.75, .branchNoise = 0.18, .codeLoops = 3,
                   .dataFootprint = 16 * KB, .depWindow = 3}},
        19);

    add("gsm", "MediaBench",
        {PhaseSpec{.loadFrac = 0.20, .storeFrac = 0.09,
                   .branchFrac = 0.14, .fpFrac = 0.0, .intMultFrac = 0.08,
                   .loopLength = 32, .loopIterations = 160,
                   .branchNoise = 0.08, .codeLoops = 4,
                   .dataFootprint = 32 * KB, .depWindow = 9}},
        23);

    add("ghostscript", "MediaBench",
        {PhaseSpec{.loadFrac = 0.25, .storeFrac = 0.12,
                   .branchFrac = 0.17, .fpFrac = 0.03, .callFrac = 0.012,
                   .loopLength = 48, .loopIterations = 24,
                   .branchNoise = 0.25, .codeLoops = 24,
                   .dataFootprint = 2 * MB, .depWindow = 6}},
        29);

    add("mesa", "MediaBench",
        {PhaseSpec{.weight = 0.6, .loadFrac = 0.24, .storeFrac = 0.12,
                   .branchFrac = 0.10, .fpFrac = 0.22, .fpMultShare = 0.4,
                   .loopLength = 56, .loopIterations = 96,
                   .branchNoise = 0.10, .codeLoops = 8,
                   .dataFootprint = 1 * MB, .depWindow = 12},
         PhaseSpec{.weight = 0.4, .loadFrac = 0.20, .storeFrac = 0.16,
                   .branchFrac = 0.14, .fpFrac = 0.10,
                   .loopLength = 30, .loopIterations = 48,
                   .branchNoise = 0.18, .codeLoops = 6,
                   .dataFootprint = 512 * KB, .depWindow = 8}},
        31);

    add("mpeg2", "MediaBench",
        {PhaseSpec{.weight = 0.7, .loadFrac = 0.26, .storeFrac = 0.10,
                   .branchFrac = 0.11, .fpFrac = 0.08, .intMultFrac = 0.07,
                   .loopLength = 44, .loopIterations = 128,
                   .branchNoise = 0.10, .codeLoops = 5,
                   .dataFootprint = 768 * KB, .depWindow = 11},
         PhaseSpec{.weight = 0.3, .loadFrac = 0.22, .storeFrac = 0.14,
                   .branchFrac = 0.15, .fpFrac = 0.0, .intMultFrac = 0.04,
                   .loopLength = 26, .loopIterations = 64,
                   .branchNoise = 0.16, .codeLoops = 4,
                   .dataFootprint = 384 * KB, .depWindow = 8}},
        37);

    add("pegwit", "MediaBench",
        {PhaseSpec{.loadFrac = 0.16, .storeFrac = 0.07,
                   .branchFrac = 0.12, .fpFrac = 0.0, .intMultFrac = 0.12,
                   .loopLength = 36, .loopIterations = 400,
                   .branchBias = 0.85, .branchNoise = 0.05, .codeLoops = 3,
                   .dataFootprint = 24 * KB, .depWindow = 4}},
        41);

    // ------------------------------------------------------------------
    // Olden
    // ------------------------------------------------------------------
    add("bh", "Olden",
        {PhaseSpec{.loadFrac = 0.28, .storeFrac = 0.08,
                   .branchFrac = 0.13, .fpFrac = 0.18, .fpMultShare = 0.5,
                   .callFrac = 0.010,
                   .loopLength = 40, .loopIterations = 40,
                   .branchNoise = 0.20, .codeLoops = 8,
                   .dataFootprint = 4 * MB, .chaseFrac = 0.35,
                   .depWindow = 7}},
        43);

    add("bisort", "Olden",
        {PhaseSpec{.loadFrac = 0.27, .storeFrac = 0.12,
                   .branchFrac = 0.19, .fpFrac = 0.0, .callFrac = 0.015,
                   .loopLength = 22, .loopIterations = 32,
                   .branchNoise = 0.35, .codeLoops = 4,
                   .dataFootprint = 1 * MB, .chaseFrac = 0.5,
                   .depWindow = 4}},
        47);

    add("em3d", "Olden",
        {PhaseSpec{.loadFrac = 0.36, .storeFrac = 0.09,
                   .branchFrac = 0.12, .fpFrac = 0.06,
                   .loopLength = 26, .loopIterations = 200,
                   .branchNoise = 0.08, .codeLoops = 3,
                   .dataFootprint = 10 * MB, .chaseFrac = 0.45,
                   .depWindow = 4}},
        53);

    add("health", "Olden",
        {PhaseSpec{.loadFrac = 0.33, .storeFrac = 0.13,
                   .branchFrac = 0.17, .fpFrac = 0.0, .callFrac = 0.012,
                   .loopLength = 28, .loopIterations = 48,
                   .branchNoise = 0.25, .codeLoops = 5,
                   .dataFootprint = 8 * MB, .chaseFrac = 0.5,
                   .depWindow = 4}},
        59);

    add("mst", "Olden",
        {PhaseSpec{.loadFrac = 0.34, .storeFrac = 0.08,
                   .branchFrac = 0.15, .fpFrac = 0.0,
                   .loopLength = 24, .loopIterations = 300,
                   .branchNoise = 0.15, .codeLoops = 3,
                   .dataFootprint = 8 * MB, .chaseFrac = 0.5,
                   .depWindow = 5}},
        61);

    add("perimeter", "Olden",
        {PhaseSpec{.loadFrac = 0.29, .storeFrac = 0.07,
                   .branchFrac = 0.21, .fpFrac = 0.0, .callFrac = 0.03,
                   .loopLength = 20, .loopIterations = 12,
                   .branchNoise = 0.30, .codeLoops = 6,
                   .dataFootprint = 2 * MB, .chaseFrac = 0.6,
                   .depWindow = 5}},
        67);

    add("power", "Olden",
        {PhaseSpec{.loadFrac = 0.20, .storeFrac = 0.08,
                   .branchFrac = 0.10, .fpFrac = 0.28, .fpMultShare = 0.5,
                   .callFrac = 0.008,
                   .loopLength = 52, .loopIterations = 220,
                   .branchNoise = 0.06, .codeLoops = 4,
                   .dataFootprint = 96 * KB, .depWindow = 12}},
        71);

    add("treeadd", "Olden",
        {PhaseSpec{.loadFrac = 0.30, .storeFrac = 0.05,
                   .branchFrac = 0.16, .fpFrac = 0.0, .callFrac = 0.05,
                   .loopLength = 14, .loopIterations = 16,
                   .branchBias = 0.7, .branchNoise = 0.12, .codeLoops = 2,
                   .dataFootprint = 8 * MB, .chaseFrac = 0.45,
                   .depWindow = 5}},
        73);

    add("tsp", "Olden",
        {PhaseSpec{.loadFrac = 0.27, .storeFrac = 0.09,
                   .branchFrac = 0.15, .fpFrac = 0.16, .fpMultShare = 0.45,
                   .loopLength = 34, .loopIterations = 64,
                   .branchNoise = 0.22, .codeLoops = 5,
                   .dataFootprint = 3 * MB, .chaseFrac = 0.45,
                   .depWindow = 7}},
        79);

    add("voronoi", "Olden",
        {PhaseSpec{.loadFrac = 0.26, .storeFrac = 0.11,
                   .branchFrac = 0.16, .fpFrac = 0.20, .fpMultShare = 0.5,
                   .callFrac = 0.015,
                   .loopLength = 38, .loopIterations = 28,
                   .branchNoise = 0.25, .codeLoops = 7,
                   .dataFootprint = 3 * MB, .chaseFrac = 0.4,
                   .depWindow = 7}},
        83);

    // ------------------------------------------------------------------
    // SPEC2000 integer
    // ------------------------------------------------------------------
    add("bzip2", "Spec2000",
        {PhaseSpec{.weight = 0.55, .loadFrac = 0.26, .storeFrac = 0.10,
                   .branchFrac = 0.15, .fpFrac = 0.0,
                   .loopLength = 30, .loopIterations = 90,
                   .branchNoise = 0.30, .codeLoops = 5,
                   .dataFootprint = 4 * MB, .depWindow = 7},
         PhaseSpec{.weight = 0.45, .loadFrac = 0.22, .storeFrac = 0.14,
                   .branchFrac = 0.17, .fpFrac = 0.0,
                   .loopLength = 22, .loopIterations = 140,
                   .branchNoise = 0.22, .codeLoops = 4,
                   .dataFootprint = 2 * MB, .depWindow = 6}},
        89);

    // gcc 2.0-2.1B window: large I-footprint, 99 % branch accuracy.
    add("gcc", "Spec2000",
        {PhaseSpec{.loadFrac = 0.30, .storeFrac = 0.13,
                   .branchFrac = 0.18, .fpFrac = 0.0, .callFrac = 0.015,
                   .loopLength = 120, .loopIterations = 10,
                   .branchBias = 0.8, .branchNoise = 0.02, .codeLoops = 40,
                   .dataFootprint = 8 * MB, .chaseFrac = 0.3,
                   .depWindow = 7}},
        97);

    add("gzip", "Spec2000",
        {PhaseSpec{.loadFrac = 0.24, .storeFrac = 0.10,
                   .branchFrac = 0.16, .fpFrac = 0.0,
                   .loopLength = 26, .loopIterations = 180,
                   .branchNoise = 0.20, .codeLoops = 4,
                   .dataFootprint = 1 * MB, .depWindow = 7}},
        101);

    // mcf: the extreme memory-bound pointer chaser; 84 % branch accuracy.
    add("mcf", "Spec2000",
        {PhaseSpec{.loadFrac = 0.34, .storeFrac = 0.09,
                   .branchFrac = 0.17, .fpFrac = 0.0,
                   .loopLength = 24, .loopIterations = 260,
                   .branchNoise = 0.45, .codeLoops = 3,
                   .dataFootprint = 16 * MB, .chaseFrac = 0.55,
                   .depWindow = 5}},
        103);

    add("parser", "Spec2000",
        {PhaseSpec{.loadFrac = 0.28, .storeFrac = 0.12,
                   .branchFrac = 0.19, .fpFrac = 0.0, .callFrac = 0.02,
                   .loopLength = 34, .loopIterations = 20,
                   .branchNoise = 0.30, .codeLoops = 14,
                   .dataFootprint = 6 * MB, .chaseFrac = 0.45,
                   .depWindow = 5}},
        107);

    add("vortex", "Spec2000",
        {PhaseSpec{.loadFrac = 0.29, .storeFrac = 0.16,
                   .branchFrac = 0.16, .fpFrac = 0.0, .callFrac = 0.025,
                   .loopLength = 64, .loopIterations = 14,
                   .branchBias = 0.8, .branchNoise = 0.08, .codeLoops = 24,
                   .dataFootprint = 4 * MB, .chaseFrac = 0.3,
                   .depWindow = 7}},
        109);

    add("vpr", "Spec2000",
        {PhaseSpec{.loadFrac = 0.26, .storeFrac = 0.10,
                   .branchFrac = 0.16, .fpFrac = 0.06,
                   .loopLength = 30, .loopIterations = 44,
                   .branchNoise = 0.28, .codeLoops = 7,
                   .dataFootprint = 2 * MB, .chaseFrac = 0.35,
                   .depWindow = 6}},
        113);

    // ------------------------------------------------------------------
    // SPEC2000 floating point
    // ------------------------------------------------------------------
    add("art", "Spec2000",
        {PhaseSpec{.loadFrac = 0.30, .storeFrac = 0.07,
                   .branchFrac = 0.08, .fpFrac = 0.30, .fpMultShare = 0.5,
                   .loopLength = 64, .loopIterations = 400,
                   .branchNoise = 0.04, .codeLoops = 3,
                   .dataFootprint = 16 * MB, .strideBytes = 8,
                   .depWindow = 14}},
        127);

    add("equake", "Spec2000",
        {PhaseSpec{.loadFrac = 0.32, .storeFrac = 0.09,
                   .branchFrac = 0.08, .fpFrac = 0.33, .fpMultShare = 0.55,
                   .loopLength = 72, .loopIterations = 250,
                   .branchNoise = 0.05, .codeLoops = 4,
                   .dataFootprint = 20 * MB, .chaseFrac = 0.25,
                   .depWindow = 12}},
        131);

    add("mesa_spec", "Spec2000",
        {PhaseSpec{.loadFrac = 0.25, .storeFrac = 0.12,
                   .branchFrac = 0.10, .fpFrac = 0.26, .fpMultShare = 0.45,
                   .loopLength = 58, .loopIterations = 110,
                   .branchNoise = 0.08, .codeLoops = 8,
                   .dataFootprint = 2 * MB, .depWindow = 12}},
        137);

    add("swim", "Spec2000",
        {PhaseSpec{.loadFrac = 0.33, .storeFrac = 0.11,
                   .branchFrac = 0.03, .fpFrac = 0.42, .fpMultShare = 0.5,
                   .loopLength = 160, .loopIterations = 500,
                   .branchNoise = 0.01, .codeLoops = 3,
                   .dataFootprint = 32 * MB, .strideBytes = 8,
                   .depWindow = 18}},
        139);

    return table;
}

const std::map<std::string, BenchmarkSpec> &
table()
{
    static const std::map<std::string, BenchmarkSpec> t = buildTable();
    return t;
}

} // namespace

const std::vector<std::string> &
BenchmarkFactory::allNames()
{
    // Figure 4 x-axis order.
    static const std::vector<std::string> names = {
        "adpcm", "epic", "jpeg", "g721", "gsm", "ghostscript", "mesa",
        "mpeg2", "pegwit",
        "bh", "bisort", "em3d", "health", "mst", "perimeter", "power",
        "treeadd", "tsp", "voronoi",
        "art", "bzip2", "equake", "gcc", "gzip", "mcf", "mesa_spec",
        "parser", "swim", "vortex", "vpr",
    };
    return names;
}

std::vector<std::string>
BenchmarkFactory::suiteNames(const std::string &suite)
{
    std::vector<std::string> names;
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    for (const auto &name : registry.scenarioNames()) {
        if (registry.spec(name).suite == suite)
            names.push_back(name);
    }
    return names;
}

BenchmarkSpec
BenchmarkFactory::spec(const std::string &name)
{
    return ScenarioRegistry::instance().spec(name);
}

BenchmarkSpec
BenchmarkFactory::paperSpec(const std::string &name)
{
    auto it = table().find(name);
    if (it == table().end())
        mcd_fatal("unknown benchmark '%s'", name.c_str());
    return it->second;
}

std::unique_ptr<WorkloadGenerator>
BenchmarkFactory::create(const std::string &name, std::uint64_t horizon)
{
    return std::make_unique<SyntheticProgram>(spec(name), horizon);
}

} // namespace mcd
