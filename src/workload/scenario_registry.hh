/**
 * @file
 * Open workload-scenario registry. Fixed scenarios (the paper's 30
 * Table 5 applications, plus anything user code registers) and
 * parametric families (prefix + knob string -> spec) resolve through
 * one lookup, so every spec-driven consumer — the Runner, the
 * ExperimentSpec layer, the figure benches, `mcd_cli`, and
 * `MCD_BENCHMARKS` — accepts a new scenario the moment it is
 * registered.
 *
 * Built-in family:
 *   synthetic:<k=v,...>   parametric workload, e.g.
 *                         "synthetic:mem=0.8,ilp=4,phases=6". Knobs:
 *       mem     [0..1]  memory-boundedness: scales load fraction,
 *                       data footprint (16 KB .. 24 MB, geometric)
 *                       and pointer-chase share      (default 0.3)
 *       ilp     [1..64] dependence window: how far back sources
 *                       reach, bigger = more ILP     (default 8)
 *       phases  [1..64] alternating busy/memory phase count; the
 *                       phase period is horizon/phases (default 1:
 *                       one uniform phase)
 *       burst   [0..1]  io-like idle/burst alternation: the share of
 *                       each phase period spent in an "idle" phase of
 *                       serial pointer-chasing over a huge footprint
 *                       (the core mostly waits, as if blocked on io)
 *                       before the busy mix resumes   (default 0:
 *                       no idle phases)
 *       markov  [2..256] adversarial: seeded Markov chain over
 *                       compute/mixed/memory regimes, that many
 *                       segments per run — sticky enough to reward
 *                       tracking, abrupt enough to punish decay
 *                       (default 0: off)
 *       square  [500..10000000] adversarial: square wave between a
 *                       compute-bound and a memory-bound regime,
 *                       flipping every `square` *instructions*
 *                       (an absolute period — pick it near the
 *                       controller's reaction window) (default 0: off)
 *       drift   (0..1]  adversarial: slow monotonic memory-boundedness
 *                       ramp spanning `drift` around `mem` over the
 *                       whole run; per-interval deltas stay below the
 *                       attack threshold, so only decay can track it
 *                       (default 0: off)
 *       fp      [0..1]  floating-point fraction      (default 0)
 *       branch  [0..1]  data-branch unpredictability (default 0.25)
 *       seed    integer workload RNG seed            (default: from
 *                       the scenario name)
 *   The adversarial knobs (markov, square, drift) are mutually
 *   exclusive, and exclusive with burst and phases.
 */

#ifndef MCD_WORKLOAD_SCENARIO_REGISTRY_HH
#define MCD_WORKLOAD_SCENARIO_REGISTRY_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace mcd
{

/** Fixed scenarios + parametric families, resolved by name. */
class ScenarioRegistry
{
  public:
    /** Builds the spec for one full family name ("prefix:knobs"). */
    using FamilyFn =
        std::function<BenchmarkSpec(const std::string &name)>;

    /** One knob of a parametric family, for listings and errors. */
    struct KnobInfo
    {
        std::string name;
        std::string doc; //!< range + one-line semantics
    };

    struct FamilyInfo
    {
        std::string prefix;      //!< including the trailing ':'
        std::string description; //!< one line for `mcd_cli list`
        std::vector<KnobInfo> knobs; //!< full knob set, in doc order
    };

    /** The process-wide registry, with built-ins pre-registered. */
    static ScenarioRegistry &instance();

    /** Register a fixed scenario; fatal on duplicate names. */
    void add(BenchmarkSpec spec);

    /**
     * Register a parametric family under "prefix:"; any lookup whose
     * name starts with the prefix is delegated to `fn`. `knobs`
     * documents the family's full knob set for `mcd_cli list`.
     */
    void addFamily(const std::string &prefix,
                   const std::string &description, FamilyFn fn,
                   std::vector<KnobInfo> knobs = {});

    /** True for registered fixed names and family-prefixed names. */
    bool contains(const std::string &name) const;

    /** Resolve a name to its spec; fatal on unknown names. */
    BenchmarkSpec spec(const std::string &name) const;

    /** Fixed scenario names, in registration order (paper order for
     *  the built-in 30). */
    std::vector<std::string> scenarioNames() const;

    /** Registered parametric families. */
    std::vector<FamilyInfo> families() const;

  private:
    ScenarioRegistry() = default;

    std::vector<std::string> order_;
    std::map<std::string, BenchmarkSpec> fixed_;
    struct Family
    {
        FamilyInfo info;
        FamilyFn fn;
    };
    std::vector<Family> families_;
};

} // namespace mcd

#endif // MCD_WORKLOAD_SCENARIO_REGISTRY_HH
