#include "workload/micro_op.hh"

namespace mcd
{

bool
isFpClass(OpClass cls)
{
    switch (cls) {
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return true;
      default:
        return false;
    }
}

bool
isMemClass(OpClass cls)
{
    switch (cls) {
      case OpClass::Load:
      case OpClass::FpLoad:
      case OpClass::Store:
      case OpClass::FpStore:
        return true;
      default:
        return false;
    }
}

bool
isControlClass(OpClass cls)
{
    switch (cls) {
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return:
        return true;
      default:
        return false;
    }
}

bool
isLoadClass(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::FpLoad;
}

bool
isStoreClass(OpClass cls)
{
    return cls == OpClass::Store || cls == OpClass::FpStore;
}

} // namespace mcd
