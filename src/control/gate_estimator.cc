#include "control/gate_estimator.hh"

namespace mcd
{

namespace
{

constexpr int ADDER_GATES_PER_BIT = 7;
constexpr int DFF_GATES_PER_BIT = 4;
constexpr int COMPARATOR_GATES_PER_BIT = 6;
constexpr int MULT_GATES_PER_BIT = 1;
constexpr int HALF_ADDER_GATES_PER_BIT = 3;

} // namespace

GateEstimator::GateEstimator(const GateEstimatorConfig &config)
    : config_(config)
{
}

std::vector<GateEstimate>
GateEstimator::rows() const
{
    const int n = config_.deviceBits;
    std::vector<GateEstimate> rows;

    rows.push_back({"Queue Utilization Counter (Accumulator)",
                    "7n (Adder) + 4n (D Flip-Flop) = 11n", n,
                    (ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) * n});
    rows.push_back({"Comparators (2 required)",
                    "6n x 2 = 12n", n,
                    COMPARATOR_GATES_PER_BIT * n * config_.numComparators});
    rows.push_back({"Multiplier (partial-product accumulation)",
                    "1n (Multiplier) + 4n (D Flip-Flop) = 5n", n,
                    (MULT_GATES_PER_BIT + DFF_GATES_PER_BIT) * n});
    rows.push_back({"Interval Counter (14-bit)",
                    "3n (Half-adder) + 4n (D Flip-Flop) = 7n", n,
                    (HALF_ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) * n});
    rows.push_back({"Endstop Counter (4-bit)",
                    "3n (Half-adder) + 4n (D Flip-Flop) = 7n",
                    config_.endstopCounterBits,
                    (HALF_ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) *
                        config_.endstopCounterBits});
    return rows;
}

int
GateEstimator::gatesPerDomain() const
{
    // Per-domain hardware: utilization accumulator, two comparators,
    // the frequency-scaling multiplier, and the end-stop counter. The
    // interval counter is shared across domains.
    const int n = config_.deviceBits;
    int accumulator = (ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) * n;
    int comparators =
        COMPARATOR_GATES_PER_BIT * n * config_.numComparators;
    int multiplier = (MULT_GATES_PER_BIT + DFF_GATES_PER_BIT) * n;
    int endstop = (HALF_ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) *
        config_.endstopCounterBits;
    return accumulator + comparators + multiplier + endstop;
}

int
GateEstimator::sharedGates() const
{
    // A single interval counter frames the 10,000-instruction windows;
    // Table 3 sizes its logic at the 16-bit device width.
    const int n = config_.deviceBits;
    return (HALF_ADDER_GATES_PER_BIT + DFF_GATES_PER_BIT) * n;
}

int
GateEstimator::totalGates(int domains) const
{
    return gatesPerDomain() * domains + sharedGates();
}

} // namespace mcd
