#include "control/attack_decay.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mcd
{

namespace
{

/** May the controller lower a domain's frequency this interval? */
bool
decreasePermitted(double prev_ipc, double ipc,
                  const AttackDecayConfig &config)
{
    if (ipc <= 0.0)
        return false;
    double ratio = prev_ipc > 0.0 ? prev_ipc / ipc : 1.0;
    if (config.literalListingGuard)
        return ratio >= 1.0 + config.perfDegThreshold;
    return ratio <= 1.0 + config.perfDegThreshold;
}

} // namespace

Hertz
attackDecayStep(AttackDecayDomainState &state, double utilization,
                double ipc, const AttackDecayConfig &config,
                Hertz f_min, Hertz f_max)
{
    double period_scale = 1.0; // assume no frequency change

    bool force = config.endstopCount > 0;
    if (force && state.upperEndstop == config.endstopCount) {
        // Held at the maximum: force a frequency decrease.
        period_scale = 1.0 + config.reactionChange;
    } else if (force && state.lowerEndstop == config.endstopCount) {
        // Held at the minimum: force a frequency increase.
        period_scale = 1.0 - config.reactionChange;
    } else {
        double delta = utilization - state.prevUtilization;
        double band = state.prevUtilization * config.deviationThreshold;
        if (delta > band) {
            // Significant increase: attack upward.
            period_scale = 1.0 - config.reactionChange;
        } else if (-delta > band &&
                   decreasePermitted(state.prevIpc, ipc, config)) {
            // Significant decrease: attack downward.
            period_scale = 1.0 + config.reactionChange;
        } else if (decreasePermitted(state.prevIpc, ipc, config)) {
            // Unused or unchanged: decay.
            period_scale = 1.0 + config.decay;
        }
    }

    // Listing 1 line 32: the hardware scales the *period* register, so
    // compute 1 / ((1 / f) * scale) exactly as written (not f / scale,
    // which differs in the last ulp and can flip the end-stop
    // comparisons), then range-check against the DVFS window. A scale
    // factor of exactly 1 programs nothing (the PLL register is only
    // written on a change), keeping an unchanged frequency bit-exact.
    if (period_scale != 1.0) {
        state.freq = std::clamp(
            1.0 / ((1.0 / state.freq) * period_scale), f_min, f_max);
    }

    // Set up for the next interval (Listing 1 lines 35-47).
    state.prevIpc = ipc;
    state.prevUtilization = utilization;
    if (config.endstopCount > 0) {
        if (state.freq <= f_min &&
            state.lowerEndstop != config.endstopCount)
            ++state.lowerEndstop;
        else
            state.lowerEndstop = 0;
        if (state.freq >= f_max &&
            state.upperEndstop != config.endstopCount)
            ++state.upperEndstop;
        else
            state.upperEndstop = 0;
    }
    return state.freq;
}

AttackDecayController::AttackDecayController(
    const AttackDecayConfig &config)
    : config_(config)
{
}

void
AttackDecayController::onStart(ClockSystem &clocks)
{
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        AttackDecayDomainState &s =
            state_[static_cast<std::size_t>(slot)];
        s = AttackDecayDomainState{};
        s.freq = clocks.clock(controlledDomainId(slot)).targetFrequency();
    }
    started_ = true;
}

Hertz
AttackDecayController::internalFrequency(int slot) const
{
    return state_[static_cast<std::size_t>(slot)].freq;
}

void
AttackDecayController::onInterval(const IntervalStats &stats,
                                  ClockSystem &clocks)
{
    if (!started_)
        mcd_panic("controller used before onStart");

    const DvfsModel &dvfs = clocks.dvfs();
    const Hertz f_min = dvfs.config().freqMin;
    const Hertz f_max = dvfs.config().freqMax;

    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        AttackDecayDomainState &s =
            state_[static_cast<std::size_t>(slot)];
        const DomainIntervalStats &d =
            stats.domains[static_cast<std::size_t>(slot)];
        Hertz freq = attackDecayStep(s, d.queueUtilization, stats.ipc,
                                     config_, f_min, f_max);
        clocks.clock(controlledDomainId(slot)).setTargetFrequency(freq);
    }
}

FrontEndAttackDecayController::FrontEndAttackDecayController(
    const AttackDecayConfig &config)
    : back_end_(config), config_(config)
{
}

void
FrontEndAttackDecayController::onStart(ClockSystem &clocks)
{
    back_end_.onStart(clocks);
    fe_state_ = AttackDecayDomainState{};
    fe_state_.freq =
        clocks.clock(DomainId::FrontEnd).targetFrequency();
}

void
FrontEndAttackDecayController::onInterval(const IntervalStats &stats,
                                          ClockSystem &clocks)
{
    back_end_.onInterval(stats, clocks);
    const DvfsModel &dvfs = clocks.dvfs();
    Hertz freq = attackDecayStep(
        fe_state_, stats.robUtilization, stats.ipc, config_,
        dvfs.config().freqMin, dvfs.config().freqMax);
    clocks.clock(DomainId::FrontEnd).setTargetFrequency(freq);
}

AttackDecayConfig
scaledAttackDecayConfig()
{
    AttackDecayConfig config;
    config.decay = 0.0125;
    config.perfDegThreshold = 0.015;
    return config;
}

} // namespace mcd
