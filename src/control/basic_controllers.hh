/**
 * @file
 * Simple controllers: constant per-domain frequencies (the baseline MCD
 * machine and the global-DVFS comparison points) and the profiling
 * recorder / schedule replayer that together implement the off-line
 * Dynamic-X% comparator of [22] (see DESIGN.md, substitution 2).
 */

#ifndef MCD_CONTROL_BASIC_CONTROLLERS_HH
#define MCD_CONTROL_BASIC_CONTROLLERS_HH

#include <array>
#include <vector>

#include "core/interval.hh"

namespace mcd
{

/** Per-interval, per-controlled-domain frequency assignment. */
using FrequencyVector = std::array<Hertz, NUM_CONTROLLED>;

/**
 * Holds all controllable domains at fixed frequencies. With all domains
 * at maximum this is the baseline MCD processor.
 */
class ConstantController : public FrequencyController
{
  public:
    explicit ConstantController(const FrequencyVector &freqs);

    /** Convenience: every domain at the same frequency. */
    explicit ConstantController(Hertz freq);

    void onStart(ClockSystem &clocks) override;
    void onInterval(const IntervalStats &stats,
                    ClockSystem &clocks) override;

  private:
    FrequencyVector freqs_;
};

/** What the off-line pass records about one interval. */
struct IntervalProfile
{
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::array<double, NUM_CONTROLLED> busyFraction{};
    std::array<double, NUM_CONTROLLED> queueUtilization{};
    std::array<double, NUM_CONTROLLED> avgOccupancy{};
    std::array<std::uint64_t, NUM_CONTROLLED> issued{};
    std::array<std::uint64_t, NUM_CONTROLLED> cycles{};
};

/**
 * Profiling pass of the off-line algorithm: domains stay at maximum
 * frequency while per-interval activity is recorded.
 */
class ProfilingController : public FrequencyController
{
  public:
    ProfilingController() = default;

    void onStart(ClockSystem &clocks) override;
    void onInterval(const IntervalStats &stats,
                    ClockSystem &clocks) override;

    const std::vector<IntervalProfile> &profile() const
    {
        return profile_;
    }

  private:
    std::vector<IntervalProfile> profile_;
};

/**
 * Replay pass of the off-line algorithm: applies a precomputed
 * per-interval frequency schedule. Changes are applied instantaneously
 * (Section 5: the off-line algorithm requests changes ahead of need, so
 * the slew rate is not a source of error for it). Past the end of the
 * schedule the last entry is held.
 */
class ScheduleController : public FrequencyController
{
  public:
    explicit ScheduleController(std::vector<FrequencyVector> schedule);

    void onStart(ClockSystem &clocks) override;
    void onInterval(const IntervalStats &stats,
                    ClockSystem &clocks) override;

    const std::vector<FrequencyVector> &schedule() const
    {
        return schedule_;
    }

  private:
    std::vector<FrequencyVector> schedule_;
    std::size_t next_ = 0;

    void apply(ClockSystem &clocks, const FrequencyVector &freqs);
};

/** Structural knowledge deriveSchedule needs about the machine. */
struct ScheduleMachineInfo
{
    std::array<double, NUM_CONTROLLED> issueWidth{4.0, 2.0, 2.0};
    std::array<double, NUM_CONTROLLED> queueSize{20.0, 15.0, 64.0};
};

/**
 * Derive a per-interval schedule from a profile. Per domain and
 * interval the demand estimate is
 *
 *   demand = max(issued / (issueWidth * cycles),  avgOccupancy / qsize)
 *
 * i.e. a domain needs frequency in proportion to how much of its issue
 * bandwidth it used, but a domain whose input queue is under pressure
 * (occupancy high — e.g. the load/store domain of a memory-bound
 * program) must stay fast regardless. Each domain then runs at
 * f_max * min(1, demand + margin); the margin is the single
 * aggressiveness knob the off-line search tunes against the
 * performance-degradation cap (Dynamic-1% / Dynamic-5%).
 */
std::vector<FrequencyVector>
deriveSchedule(const std::vector<IntervalProfile> &profile,
               const DvfsModel &dvfs, double margin,
               const ScheduleMachineInfo &machine =
                   ScheduleMachineInfo{});

/** Per-domain margins: the search refines each domain independently
 *  (a cheap stand-in for the per-interval slack distribution of the
 *  original shaker algorithm). */
std::vector<FrequencyVector>
deriveSchedule(const std::vector<IntervalProfile> &profile,
               const DvfsModel &dvfs,
               const std::array<double, NUM_CONTROLLED> &margins,
               const ScheduleMachineInfo &machine =
                   ScheduleMachineInfo{});

} // namespace mcd

#endif // MCD_CONTROL_BASIC_CONTROLLERS_HH
