#include "control/basic_controllers.hh"

#include <algorithm>

namespace mcd
{

ConstantController::ConstantController(const FrequencyVector &freqs)
    : freqs_(freqs)
{
}

ConstantController::ConstantController(Hertz freq)
{
    freqs_.fill(freq);
}

void
ConstantController::onStart(ClockSystem &clocks)
{
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        clocks.clock(controlledDomainId(slot)).setFrequencyImmediate(
            freqs_[static_cast<std::size_t>(slot)]);
    }
}

void
ConstantController::onInterval(const IntervalStats &stats,
                               ClockSystem &clocks)
{
    (void)stats;
    (void)clocks;
}

void
ProfilingController::onStart(ClockSystem &clocks)
{
    Hertz f_max = clocks.dvfs().config().freqMax;
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot)
        clocks.clock(controlledDomainId(slot)).setFrequencyImmediate(
            f_max);
}

void
ProfilingController::onInterval(const IntervalStats &stats,
                                ClockSystem &clocks)
{
    (void)clocks;
    IntervalProfile p;
    p.instructions = stats.instructions;
    p.ipc = stats.ipc;
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        const DomainIntervalStats &d =
            stats.domains[static_cast<std::size_t>(slot)];
        p.busyFraction[static_cast<std::size_t>(slot)] = d.cycles
            ? static_cast<double>(d.busyCycles) /
              static_cast<double>(d.cycles)
            : 0.0;
        p.queueUtilization[static_cast<std::size_t>(slot)] =
            d.queueUtilization;
        p.avgOccupancy[static_cast<std::size_t>(slot)] = d.avgOccupancy;
        p.issued[static_cast<std::size_t>(slot)] = d.issued;
        p.cycles[static_cast<std::size_t>(slot)] = d.cycles;
    }
    profile_.push_back(p);
}

ScheduleController::ScheduleController(
    std::vector<FrequencyVector> schedule)
    : schedule_(std::move(schedule))
{
}

void
ScheduleController::apply(ClockSystem &clocks,
                          const FrequencyVector &freqs)
{
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        clocks.clock(controlledDomainId(slot)).setFrequencyImmediate(
            freqs[static_cast<std::size_t>(slot)]);
    }
}

void
ScheduleController::onStart(ClockSystem &clocks)
{
    if (!schedule_.empty()) {
        apply(clocks, schedule_.front());
        next_ = 1;
    }
}

void
ScheduleController::onInterval(const IntervalStats &stats,
                               ClockSystem &clocks)
{
    (void)stats;
    if (schedule_.empty())
        return;
    std::size_t index = std::min(next_, schedule_.size() - 1);
    apply(clocks, schedule_[index]);
    ++next_;
}

std::vector<FrequencyVector>
deriveSchedule(const std::vector<IntervalProfile> &profile,
               const DvfsModel &dvfs, double margin,
               const ScheduleMachineInfo &machine)
{
    std::array<double, NUM_CONTROLLED> margins;
    margins.fill(margin);
    return deriveSchedule(profile, dvfs, margins, machine);
}

std::vector<FrequencyVector>
deriveSchedule(const std::vector<IntervalProfile> &profile,
               const DvfsModel &dvfs,
               const std::array<double, NUM_CONTROLLED> &margins,
               const ScheduleMachineInfo &machine)
{
    Hertz f_max = dvfs.config().freqMax;
    Hertz f_min = dvfs.config().freqMin;
    std::vector<FrequencyVector> schedule;
    schedule.reserve(profile.size());
    for (const IntervalProfile &p : profile) {
        FrequencyVector freqs;
        // A full queue only demands speed if instructions are actually
        // flowing: on a memory-bound interval (low IPC) the queues are
        // full of *stalled* ops, and the off-line algorithm of [22]
        // exploits exactly that slack (its mcf anomaly). Scale the
        // pressure term by the interval's IPC, capped at 1.
        double flow = std::clamp(p.ipc, 0.0, 1.0);
        for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
            auto s = static_cast<std::size_t>(slot);
            double cycles = static_cast<double>(p.cycles[s]);
            double bandwidth = cycles > 0.0
                ? static_cast<double>(p.issued[s]) /
                  (machine.issueWidth[s] * cycles)
                : 0.0;
            double pressure =
                p.avgOccupancy[s] / machine.queueSize[s] * flow;
            double demand = std::max(bandwidth, pressure);
            double scale = std::min(1.0, demand + margins[s]);
            freqs[s] = std::clamp(f_max * scale, f_min, f_max);
        }
        schedule.push_back(freqs);
    }
    return schedule;
}

} // namespace mcd
