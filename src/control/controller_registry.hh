/**
 * @file
 * Declarative controller layer: a `ControllerSpec` names a registered
 * controller family plus its numeric parameters, and the
 * `ControllerRegistry` turns specs into `FrequencyController`
 * instances. Adding a controller to the experiment stack is one
 * registration — every spec-driven consumer (Runner, ExperimentSpec,
 * the figure benches, mcd_cli) picks it up with no new plumbing.
 *
 * Built-in registrations:
 *   none                   uncontrolled (domains stay at the start
 *                          frequency; the synchronous reference and
 *                          baseline machines)
 *   constant               all controlled domains pinned to `freq`
 *   profiling              domains at maximum, per-interval activity
 *                          recorded (the off-line profiling pass)
 *   schedule               replays ControllerSpec::schedule
 *   attack_decay           the paper's Listing 1 controller
 *   frontend_attack_decay  Section 7 future-work extension: Listing 1
 *                          applied to the front end too
 */

#ifndef MCD_CONTROL_CONTROLLER_REGISTRY_HH
#define MCD_CONTROL_CONTROLLER_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "control/attack_decay.hh"
#include "control/basic_controllers.hh"

namespace mcd
{

/** A controller, declaratively: registry name + parameters. */
struct ControllerSpec
{
    std::string name = "none";

    /**
     * Numeric knobs, interpreted by the named factory. Unknown keys
     * are fatal (they are typos, not extensions). Booleans are 0/1.
     */
    std::map<std::string, double> params;

    /** Payload for the "schedule" controller (ignored by others). */
    std::vector<FrequencyVector> schedule;

    /**
     * Append an exact, unambiguous serialization (length-prefixed
     * strings, raw IEEE-754 bytes for doubles) to `out`; the
     * artifact cache key builders use this, so equal serializations
     * must imply bit-identical controller behavior.
     */
    void appendTo(std::string &out) const;
};

/** Parse "name" or "name:k=v,k=v" into a spec (fatal on bad input). */
ControllerSpec parseControllerSpec(const std::string &text);

/** The spec equivalent of an AttackDecayConfig (exact round-trip). */
ControllerSpec attackDecaySpec(const AttackDecayConfig &config,
                               const std::string &name = "attack_decay");

/** Rebuild an AttackDecayConfig from spec params (exact round-trip). */
AttackDecayConfig attackDecayConfigFromSpec(const ControllerSpec &spec);

/** Name + params -> FrequencyController factories. */
class ControllerRegistry
{
  public:
    /**
     * A factory may return nullptr to mean "run uncontrolled" (the
     * built-in "none" does); the simulator treats a null controller as
     * constant maximum frequencies.
     */
    using Factory = std::function<std::unique_ptr<FrequencyController>(
        const ControllerSpec &)>;

    struct Info
    {
        std::string name;
        std::string description;
    };

    /** The process-wide registry, with built-ins pre-registered. */
    static ControllerRegistry &instance();

    /** Register a controller family; fatal on duplicate names. */
    void add(const std::string &name, const std::string &description,
             Factory factory);

    bool contains(const std::string &name) const;

    /** Instantiate a spec; fatal on unknown names or bad params. */
    std::unique_ptr<FrequencyController>
    create(const ControllerSpec &spec) const;

    /** All registered families, sorted by name. */
    std::vector<Info> list() const;

    /**
     * Fatal unless every key of `spec.params` appears in `allowed`;
     * factories call this so parameter typos fail loudly instead of
     * silently running defaults.
     */
    static void checkParams(const ControllerSpec &spec,
                            const std::vector<std::string> &allowed);

  private:
    ControllerRegistry() = default;

    std::map<std::string, Info> infos_;
    std::map<std::string, Factory> factories_;
};

} // namespace mcd

#endif // MCD_CONTROL_CONTROLLER_REGISTRY_HH
