#include "control/controller_registry.hh"

#include <algorithm>
#include <mutex>

#include "common/logging.hh"
#include "common/serial.hh"

namespace mcd
{

namespace
{

using serial::appendDouble;
using serial::appendString;
using serial::appendU64;

std::mutex registry_mutex;

double
paramOr(const ControllerSpec &spec, const char *key, double fallback)
{
    auto it = spec.params.find(key);
    return it == spec.params.end() ? fallback : it->second;
}

const std::vector<std::string> attack_decay_keys = {
    "deviation_threshold", "reaction_change", "decay",
    "perf_deg_threshold", "endstop_count", "literal_guard",
};

void
registerBuiltins(ControllerRegistry &registry)
{
    registry.add(
        "none",
        "uncontrolled: all domains stay at the start frequency",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, {});
            return nullptr;
        });

    registry.add(
        "constant",
        "all controlled domains pinned to `freq` (Hz)",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, {"freq"});
            auto it = spec.params.find("freq");
            if (it == spec.params.end())
                mcd_fatal("controller 'constant' requires a 'freq' "
                          "parameter (Hz)");
            return std::make_unique<ConstantController>(it->second);
        });

    registry.add(
        "profiling",
        "domains at maximum; records the off-line per-interval profile",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, {});
            return std::make_unique<ProfilingController>();
        });

    registry.add(
        "schedule",
        "replays the spec's precomputed per-interval schedule",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, {});
            return std::make_unique<ScheduleController>(spec.schedule);
        });

    registry.add(
        "attack_decay",
        "the paper's Listing 1 on-line controller (Section 3.1)",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, attack_decay_keys);
            return std::make_unique<AttackDecayController>(
                attackDecayConfigFromSpec(spec));
        });

    registry.add(
        "frontend_attack_decay",
        "Attack/Decay extended to the front end (Section 7 future work)",
        [](const ControllerSpec &spec)
            -> std::unique_ptr<FrequencyController> {
            ControllerRegistry::checkParams(spec, attack_decay_keys);
            return std::make_unique<FrontEndAttackDecayController>(
                attackDecayConfigFromSpec(spec));
        });
}

} // namespace

void
ControllerSpec::appendTo(std::string &out) const
{
    appendString(out, name);
    appendU64(out, params.size());
    for (const auto &[key, value] : params) {
        appendString(out, key);
        appendDouble(out, value);
    }
    appendU64(out, schedule.size());
    for (const FrequencyVector &freqs : schedule)
        for (Hertz f : freqs)
            appendDouble(out, f);
}

ControllerSpec
parseControllerSpec(const std::string &text)
{
    ControllerSpec spec;
    auto colon = text.find(':');
    spec.name = text.substr(0, colon);
    if (spec.name.empty())
        mcd_fatal("empty controller name in '%s'", text.c_str());
    if (colon == std::string::npos)
        return spec;

    std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
        auto comma = rest.find(',', pos);
        std::string item = rest.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? rest.size() : comma + 1;
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            mcd_fatal("controller parameter '%s' is not key=value",
                      item.c_str());
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        char *end = nullptr;
        double v = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size())
            mcd_fatal("controller parameter '%s': '%s' is not a number",
                      key.c_str(), value.c_str());
        spec.params[key] = v;
    }
    return spec;
}

ControllerSpec
attackDecaySpec(const AttackDecayConfig &config, const std::string &name)
{
    ControllerSpec spec;
    spec.name = name;
    spec.params["deviation_threshold"] = config.deviationThreshold;
    spec.params["reaction_change"] = config.reactionChange;
    spec.params["decay"] = config.decay;
    spec.params["perf_deg_threshold"] = config.perfDegThreshold;
    spec.params["endstop_count"] = config.endstopCount;
    spec.params["literal_guard"] = config.literalListingGuard ? 1.0 : 0.0;
    return spec;
}

AttackDecayConfig
attackDecayConfigFromSpec(const ControllerSpec &spec)
{
    AttackDecayConfig config;
    config.deviationThreshold =
        paramOr(spec, "deviation_threshold", config.deviationThreshold);
    config.reactionChange =
        paramOr(spec, "reaction_change", config.reactionChange);
    config.decay = paramOr(spec, "decay", config.decay);
    config.perfDegThreshold =
        paramOr(spec, "perf_deg_threshold", config.perfDegThreshold);
    config.endstopCount = static_cast<int>(
        paramOr(spec, "endstop_count", config.endstopCount));
    config.literalListingGuard =
        paramOr(spec, "literal_guard",
                config.literalListingGuard ? 1.0 : 0.0) != 0.0;
    return config;
}

ControllerRegistry &
ControllerRegistry::instance()
{
    static ControllerRegistry *registry = [] {
        auto *r = new ControllerRegistry();
        registerBuiltins(*r);
        return r;
    }();
    return *registry;
}

void
ControllerRegistry::add(const std::string &name,
                        const std::string &description, Factory factory)
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    if (factories_.count(name))
        mcd_fatal("controller '%s' registered twice", name.c_str());
    infos_[name] = Info{name, description};
    factories_[name] = std::move(factory);
}

bool
ControllerRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    return factories_.count(name) > 0;
}

std::unique_ptr<FrequencyController>
ControllerRegistry::create(const ControllerSpec &spec) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        auto it = factories_.find(spec.name);
        if (it == factories_.end())
            mcd_fatal("unknown controller '%s' (mcd_cli list shows "
                      "registered names)", spec.name.c_str());
        factory = it->second;
    }
    return factory(spec);
}

std::vector<ControllerRegistry::Info>
ControllerRegistry::list() const
{
    std::lock_guard<std::mutex> lock(registry_mutex);
    std::vector<Info> infos;
    for (const auto &[name, info] : infos_)
        infos.push_back(info);
    return infos;
}

void
ControllerRegistry::checkParams(const ControllerSpec &spec,
                                const std::vector<std::string> &allowed)
{
    for (const auto &[key, value] : spec.params) {
        (void)value;
        if (std::find(allowed.begin(), allowed.end(), key) ==
            allowed.end())
            mcd_fatal("controller '%s' has no parameter '%s'",
                      spec.name.c_str(), key.c_str());
    }
}

} // namespace mcd
