/**
 * @file
 * Hardware-cost model for the Attack/Decay monitoring and control
 * circuits (Section 3.2, Table 3), using the gate-equivalence figures of
 * Zimmermann [27]: a ripple adder costs 7 gates/bit, a D flip-flop 4
 * gates/bit, a comparator 6 gates/bit, a serial partial-product
 * multiplier 1 gate/bit plus accumulation flip-flops, and a half-adder
 * based counter 3 gates/bit plus flip-flops.
 */

#ifndef MCD_CONTROL_GATE_ESTIMATOR_HH
#define MCD_CONTROL_GATE_ESTIMATOR_HH

#include <string>
#include <vector>

namespace mcd
{

/** One row of Table 3. */
struct GateEstimate
{
    std::string component;
    std::string estimation; //!< formula text, e.g. "11n"
    int bitsPerDevice = 16;
    int gates = 0;
};

/** Width assumptions for the control hardware. */
struct GateEstimatorConfig
{
    int deviceBits = 16;        //!< counters/comparators/multiplier width
    int intervalCounterBits = 14;
    int endstopCounterBits = 4;
    int numComparators = 2;
};

/** Computes Table 3 and the derived per-domain / total gate counts. */
class GateEstimator
{
  public:
    explicit GateEstimator(
        const GateEstimatorConfig &config = GateEstimatorConfig{});

    /** The five Table 3 rows. */
    std::vector<GateEstimate> rows() const;

    /** Gates required per controlled domain (Table 3 discussion: 476). */
    int gatesPerDomain() const;

    /** Gates of the single shared interval counter (112). */
    int sharedGates() const;

    /** Total for `domains` controlled domains plus shared logic. */
    int totalGates(int domains) const;

  private:
    GateEstimatorConfig config_;
};

} // namespace mcd

#endif // MCD_CONTROL_GATE_ESTIMATOR_HH
