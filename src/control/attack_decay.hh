/**
 * @file
 * The paper's contribution: the Attack/Decay on-line frequency
 * controller (Section 3.1, Listing 1).
 *
 * Per controllable domain and per 10,000-instruction interval:
 *  - if the end-stop counter saturated, force an attack away from the
 *    extreme (period *= 1 +/- ReactionChange);
 *  - else if queue utilization rose by more than DeviationThreshold
 *    (relative), attack upward (period *= 1 - ReactionChange);
 *  - else if it fell by more than the threshold and the IPC guard
 *    permits, attack downward (period *= 1 + ReactionChange);
 *  - otherwise decay (period *= 1 + Decay) when the guard permits.
 *
 * The IPC guard: Listing 1 lines 19/25 literally read
 * `(PrevIPC / IPC) >= PerfDegThreshold`, but the prose says the guard
 * must *block* frequency decreases when IPC degraded by more than the
 * threshold ("If the IPC change exceeds this threshold, the frequency is
 * left unchanged"). We implement the prose semantics by default —
 * a decrease is permitted iff PrevIPC/IPC <= 1 + PerfDegThreshold — and
 * provide the literal reading behind `literalListingGuard` (threshold
 * interpreted as the ratio 1 + PerfDegThreshold) for the ablation bench.
 *
 * The controller keeps an unquantized internal frequency per domain (the
 * hardware's 16-24-bit period register) and programs the quantized
 * 320-point grid value into the PLL, so small Decay steps accumulate
 * instead of being swallowed by grid rounding.
 */

#ifndef MCD_CONTROL_ATTACK_DECAY_HH
#define MCD_CONTROL_ATTACK_DECAY_HH

#include <array>

#include "core/interval.hh"

namespace mcd
{

/** Table 2 algorithm parameters; defaults are the Section 5 config. */
struct AttackDecayConfig
{
    double deviationThreshold = 0.0175; //!< 1.75 %
    double reactionChange = 0.06;       //!< 6.0 %
    double decay = 0.00175;             //!< 0.175 %
    double perfDegThreshold = 0.025;    //!< 2.5 %
    int endstopCount = 10;              //!< intervals at an extreme
    bool literalListingGuard = false;   //!< Listing 1 `>=` semantics
};

/**
 * The Section 5 configuration compensated for this repo's scaled
 * measurement windows (DESIGN.md substitution 4): Decay = 1.25 %
 * (the per-epoch decay must rise ~40x-compressed epoch counts for
 * the frequency envelope to cover the same range; the value sits in
 * the flat-optimal region of the paper's Figure 6(a)) and
 * PerfDegThreshold = 1.5 % (per-interval IPC is noisier over short
 * epochs, so the guard trips earlier; inside the Table 2 range).
 * The single definition every scaled consumer — the figure benches
 * (bench/bench_util.cc) and the stress-lab tournament defaults
 * (src/eval/tournament.cc) — builds from.
 */
AttackDecayConfig scaledAttackDecayConfig();

/** Per-domain Attack/Decay state (Listing 1's local variables). */
struct AttackDecayDomainState
{
    double prevUtilization = 0.0;
    double prevIpc = 0.0;
    int upperEndstop = 0;
    int lowerEndstop = 0;
    Hertz freq = 0.0; //!< unquantized internal frequency
};

/**
 * One Listing 1 update step for a single domain: consumes the
 * interval's queue utilization and IPC, mutates the state (frequency,
 * end-stop counters, previous-sample registers) and returns the new
 * internal frequency, clamped to [f_min, f_max]. Shared by the
 * three-domain controller and the front-end extension.
 */
Hertz attackDecayStep(AttackDecayDomainState &state, double utilization,
                      double ipc, const AttackDecayConfig &config,
                      Hertz f_min, Hertz f_max);

/** The Attack/Decay controller. */
class AttackDecayController : public FrequencyController
{
  public:
    explicit AttackDecayController(
        const AttackDecayConfig &config = AttackDecayConfig{});

    void onStart(ClockSystem &clocks) override;
    void onInterval(const IntervalStats &stats,
                    ClockSystem &clocks) override;

    const AttackDecayConfig &config() const { return config_; }

    /** Internal (unquantized) frequency of a controlled domain. */
    Hertz internalFrequency(int slot) const;

  private:
    AttackDecayConfig config_;
    std::array<AttackDecayDomainState, NUM_CONTROLLED> state_{};
    bool started_ = false;
};

/**
 * Extension (the paper's "future work", Section 7): apply the same
 * Attack/Decay law to the Fetch/Dispatch domain, using reorder-buffer
 * occupancy as the front end's "queue" signal (the ROB is the structure
 * the front end feeds). Section 3 reports that front-end slowdown
 * causes nearly linear performance degradation, which is why the paper
 * pins it at 1 GHz; this controller exists to reproduce and quantify
 * that claim (bench/ablation_frontend).
 */
class FrontEndAttackDecayController : public FrequencyController
{
  public:
    explicit FrontEndAttackDecayController(
        const AttackDecayConfig &config = AttackDecayConfig{});

    void onStart(ClockSystem &clocks) override;
    void onInterval(const IntervalStats &stats,
                    ClockSystem &clocks) override;

    Hertz internalFrontEndFrequency() const { return fe_state_.freq; }

  private:
    AttackDecayController back_end_;
    AttackDecayConfig config_;
    AttackDecayDomainState fe_state_{};
};

} // namespace mcd

#endif // MCD_CONTROL_ATTACK_DECAY_HH
