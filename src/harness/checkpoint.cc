#include "harness/checkpoint.hh"

#include "common/logging.hh"

namespace mcd
{

using serial::appendString;
using serial::appendU64;

void
ArtifactTraits<SimCheckpoint>::encodePayload(std::string &out,
                                             const SimCheckpoint &c)
{
    appendU64(out, c.atInstructions);
    appendString(out, c.state);
}

bool
ArtifactTraits<SimCheckpoint>::decodePayload(serial::Reader &in,
                                             SimCheckpoint &c)
{
    c.atInstructions = in.readU64();
    c.state = in.readString();
    return in.ok();
}

std::string
CheckpointSpec::cacheKey() const
{
    std::string key;
    appendString(key, "checkpoint/1");
    appendString(key, benchmark);
    serial::appendI64(key, static_cast<std::int64_t>(mode));
    serial::appendDouble(key, resolvedStartFreq());
    appendU64(key, at);
    config.appendTo(key);
    return key;
}

std::string
CheckpointSpec::describe() const
{
    return logging_detail::format(
        "type=checkpoint benchmark=%s mode=%s start_freq=%g at=%llu "
        "%s",
        benchmark.c_str(), mode == ClockMode::Mcd ? "mcd" : "sync",
        resolvedStartFreq(), static_cast<unsigned long long>(at),
        config.describe().c_str());
}

SimCheckpoint
CheckpointSpec::build(ArtifactCache &cache) const
{
    // The workload horizon must match the runner's exactly: scenario
    // construction may derive layout from it, and the config (hence
    // the horizon) is part of this spec's key.
    auto workload = BenchmarkFactory::create(
        benchmark, config.instructions + config.warmup);
    SimConfig sim_config =
        makeSimConfig(config, mode, resolvedStartFreq());
    Simulator sim(sim_config, *workload, nullptr);

    // Ladder: resume from the snapshot at the largest checkpointEvery
    // multiple strictly below `at` (a nested artifact request, itself
    // laddering down to a cold start). The intermediate stops are
    // behavior-free, so the chain is bit-identical to one straight
    // run.
    std::uint64_t every = config.checkpointEvery;
    std::uint64_t base = (every > 0 && at > 0)
        ? (at - 1) / every * every : 0;
    if (base > 0) {
        CheckpointSpec parent = *this;
        parent.at = base;
        SimCheckpoint resume = cache.getOrRun(parent);
        serial::Reader in(resume.state);
        if (!sim.restoreCheckpoint(in))
            mcd_panic("validated checkpoint artifact failed to "
                      "restore");
    }

    std::uint64_t stepped_from = sim.committed();
    sim.runTo(at);
    cache.noteSimulation();
    cache.noteInstructions(sim.committed() - stepped_from);

    SimCheckpoint out;
    out.atInstructions = sim.committed();
    sim.saveCheckpoint(out.state);
    return out;
}

} // namespace mcd
