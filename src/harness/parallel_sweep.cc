#include "harness/parallel_sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/env.hh"
#include "common/thread_pool.hh"

namespace mcd
{

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t job_index)
{
    // splitmix64 finalizer over base + index * golden-gamma: adjacent
    // indices land in decorrelated regions of the seed space.
    std::uint64_t z = base_seed +
        0x9e3779b97f4a7c15ull * (job_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ParallelSweep::ParallelSweep(int workers)
    : workers_(workers > 0 ? workers : defaultWorkers())
{
}

int
ParallelSweep::defaultWorkers()
{
    int jobs = envInt("MCD_JOBS", 0);
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
ParallelSweep::forEach(std::size_t count,
                       const std::function<void(std::size_t)> &body) const
{
    if (count == 0)
        return;

    std::size_t width = std::min<std::size_t>(
        static_cast<std::size_t>(workers_), count);
    if (width <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::vector<std::exception_ptr> errors(count);
    {
        ThreadPool pool(static_cast<int>(width));
        for (std::size_t i = 0; i < count; ++i) {
            pool.submit([&, i] {
                try {
                    body(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (auto &error : errors)
        if (error)
            std::rethrow_exception(error);
}

std::vector<SweepResult>
ParallelSweep::run(const std::vector<SweepJob> &jobs) const
{
    return map<SweepResult>(jobs.size(), [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        RunnerConfig config = job.config;
        config.clockSeed = deriveJobSeed(config.clockSeed,
                                         job.seedIndex);
        Runner runner(config);
        SweepResult result;
        result.label = job.label;
        result.seedIndex = job.seedIndex;
        result.stats = job.run(runner);
        return result;
    });
}

} // namespace mcd
