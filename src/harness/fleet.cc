#include "harness/fleet.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/parallel_sweep.hh"

extern char **environ;

namespace mcd
{

namespace
{

/**
 * The worker environment: the parent's, with MCD_STORE replaced by
 * `store` when set. Built once per fleet, before any fork, so the
 * child side of fork() only ever calls async-signal-safe functions.
 */
struct WorkerEnv
{
    std::vector<std::string> storage;
    std::vector<char *> envp;

    explicit WorkerEnv(const std::string &store)
    {
        for (char **var = environ; *var; ++var) {
            if (!store.empty() &&
                std::strncmp(*var, "MCD_STORE=", 10) == 0)
                continue;
            storage.emplace_back(*var);
        }
        if (!store.empty())
            storage.push_back("MCD_STORE=" + store);
        for (auto &var : storage)
            envp.push_back(var.data());
        envp.push_back(nullptr);
    }
};

/** Drain `fd` into `out` as part of a poll loop; false once EOF. */
bool
drain(int fd, std::string &out)
{
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
        out.append(buf, static_cast<std::size_t>(n));
        return true;
    }
    return n < 0 && (errno == EAGAIN || errno == EINTR);
}

/**
 * Run one attempt of a target: fork/exec with stdout and stderr
 * captured through pipes (read interleaved via poll, so neither pipe
 * can fill and deadlock the child), then reap it. Returns the exit
 * code: 0..255 from _exit, 128+signo for signals, 127 when the exec
 * itself failed.
 */
int
runAttempt(const FleetTarget &target, const WorkerEnv &env,
           std::string &out_text, std::string &err_text)
{
    out_text.clear();
    err_text.clear();

    // O_CLOEXEC: worker threads fork concurrently, and a sibling's
    // child inheriting our write ends would hold this target's pipes
    // open (no EOF) until that unrelated child exits. dup2 below
    // clears the flag on the child's own stdout/stderr copies.
    int out_pipe[2];
    int err_pipe[2];
    if (::pipe2(out_pipe, O_CLOEXEC) != 0 ||
        ::pipe2(err_pipe, O_CLOEXEC) != 0)
        mcd_fatal("fleet: cannot create pipes for '%s'",
                  target.name.c_str());

    std::vector<char *> argv;
    for (const auto &arg : target.argv)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        mcd_fatal("fleet: fork failed for '%s'", target.name.c_str());
    if (pid == 0) {
        // Child: async-signal-safe territory only.
        ::dup2(out_pipe[1], STDOUT_FILENO);
        ::dup2(err_pipe[1], STDERR_FILENO);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        ::close(err_pipe[0]);
        ::close(err_pipe[1]);
        ::execvpe(argv[0], argv.data(),
                  const_cast<char *const *>(env.envp.data()));
        ::_exit(127);
    }

    ::close(out_pipe[1]);
    ::close(err_pipe[1]);
    ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(err_pipe[0], F_SETFL, O_NONBLOCK);

    bool out_open = true;
    bool err_open = true;
    while (out_open || err_open) {
        struct pollfd fds[2];
        nfds_t nfds = 0;
        if (out_open)
            fds[nfds++] = {out_pipe[0], POLLIN, 0};
        if (err_open)
            fds[nfds++] = {err_pipe[0], POLLIN, 0};
        if (::poll(fds, nfds, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (out_open && !drain(out_pipe[0], out_text))
            out_open = false;
        if (err_open && !drain(err_pipe[0], err_text))
            err_open = false;
    }
    ::close(out_pipe[0]);
    ::close(err_pipe[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return -1;
}

} // namespace

FleetStoreStats
parseStoreStatsLine(const std::string &stderr_text)
{
    FleetStoreStats stats;
    std::size_t pos = 0;
    while (pos < stderr_text.size()) {
        std::size_t end = stderr_text.find('\n', pos);
        if (end == std::string::npos)
            end = stderr_text.size();
        std::string line = stderr_text.substr(pos, end - pos);
        pos = end + 1;

        unsigned long long lookups, hits, disk_hits, sims;
        if (std::sscanf(line.c_str(),
                        "store: lookups=%llu hits=%llu disk_hits=%llu "
                        "simulations=%llu",
                        &lookups, &hits, &disk_hits, &sims) == 4) {
            // Keep the last line: a worker that reports more than once
            // ends with its final, complete counters.
            stats.present = true;
            stats.lookups = lookups;
            stats.hits = hits;
            stats.diskHits = disk_hits;
            stats.simulations = sims;
        }
    }
    return stats;
}

FleetReport
runFleet(const std::vector<FleetTarget> &targets,
         const FleetOptions &options)
{
    for (const auto &target : targets)
        if (target.argv.empty())
            mcd_fatal("fleet: target '%s' has an empty command",
                      target.name.c_str());

    WorkerEnv env(options.store);
    int procs = std::max(1, options.procs);
    int attempts_allowed = 1 + std::max(0, options.retries);

    std::fprintf(stderr,
                 "fleet: %zu targets on %d worker processes%s%s\n",
                 targets.size(), procs,
                 options.store.empty() ? "" : ", store ",
                 options.store.c_str());

    // ParallelSweep gives the work-queue scheduling and the
    // deterministic result slots; each job blocks on one child
    // process at a time, so `procs` threads bound the live children.
    ParallelSweep pool(procs);
    FleetReport report;
    report.targets = pool.map<FleetResult>(
        targets.size(), [&](std::size_t i) {
            const FleetTarget &target = targets[i];
            FleetResult result;
            result.name = target.name;
            for (int attempt = 1; attempt <= attempts_allowed;
                 ++attempt) {
                result.attempts = attempt;
                result.exitCode = runAttempt(target, env,
                                             result.stdoutText,
                                             result.stderrText);
                result.succeeded = result.exitCode == 0;
                if (result.succeeded)
                    break;
                std::fprintf(
                    stderr,
                    "fleet: %s attempt %d/%d failed (exit %d)%s\n",
                    target.name.c_str(), attempt, attempts_allowed,
                    result.exitCode,
                    attempt < attempts_allowed ? ", retrying" : "");
            }
            result.store = parseStoreStatsLine(result.stderrText);
            std::fprintf(stderr, "fleet: done %s exit=%d attempts=%d "
                                 "simulations=%" PRIu64 "\n",
                         target.name.c_str(), result.exitCode,
                         result.attempts, result.store.simulations);
            return result;
        });

    for (const auto &result : report.targets) {
        if (!result.succeeded)
            ++report.failed;
        if (result.attempts > 1)
            ++report.retried;
        if (result.store.present) {
            report.merged.present = true;
            report.merged.lookups += result.store.lookups;
            report.merged.hits += result.store.hits;
            report.merged.diskHits += result.store.diskHits;
            report.merged.simulations += result.store.simulations;
        }
    }
    return report;
}

} // namespace mcd
