#include "harness/experiment.hh"

#include "common/serial.hh"
#include "harness/parallel_sweep.hh"

namespace mcd
{

namespace
{

using serial::appendDouble;
using serial::appendI64;
using serial::appendString;
using serial::appendU64;

void
appendCacheConfig(std::string &out, const CacheConfig &c)
{
    appendString(out, c.name);
    appendU64(out, c.sizeBytes);
    appendI64(out, c.associativity);
    appendI64(out, c.lineBytes);
}

void
appendMemoryConfig(std::string &out, const MemoryHierarchyConfig &m)
{
    appendCacheConfig(out, m.l1i);
    appendCacheConfig(out, m.l1d);
    appendCacheConfig(out, m.l2);
    appendI64(out, static_cast<std::int64_t>(m.memory.accessLatency));
    appendI64(out,
              static_cast<std::int64_t>(m.memory.channelOccupancy));
    appendI64(out, m.l1Latency);
    appendI64(out, m.l2Latency);
}

void
appendCoreConfig(std::string &out, const CoreConfig &c)
{
    appendI64(out, c.decodeWidth);
    appendI64(out, c.intIssueWidth);
    appendI64(out, c.fpIssueWidth);
    appendI64(out, c.memIssueWidth);
    appendI64(out, c.retireWidth);
    appendI64(out, c.robSize);
    appendI64(out, c.intIqSize);
    appendI64(out, c.fpIqSize);
    appendI64(out, c.lsqSize);
    appendI64(out, c.intPhysRegs);
    appendI64(out, c.fpPhysRegs);
    appendI64(out, c.branchMispredictPenalty);
    appendI64(out, c.intAluCount);
    appendI64(out, c.fpAluCount);
    appendI64(out, c.intAluLatency);
    appendI64(out, c.intMultLatency);
    appendI64(out, c.intDivLatency);
    appendI64(out, c.fpAddLatency);
    appendI64(out, c.fpMultLatency);
    appendI64(out, c.fpDivLatency);
    appendI64(out, c.fpSqrtLatency);
    appendI64(out, c.mshrCount);
    appendMemoryConfig(out, c.memory);
    appendI64(out, c.intervalInstructions);
}

void
appendDvfsConfig(std::string &out, const DvfsConfig &d)
{
    appendDouble(out, d.freqMax);
    appendDouble(out, d.freqMin);
    appendDouble(out, d.voltMax);
    appendDouble(out, d.voltMin);
    appendI64(out, d.numPoints);
    appendDouble(out, d.slewNsPerMhz);
    appendDouble(out, d.jitterSigmaPs);
    appendDouble(out, d.syncWindowFraction);
}

void
appendEnergyConfig(std::string &out, const EnergyConfig &e)
{
    appendDouble(out, e.referenceVoltage);
    appendDouble(out, e.idleFraction);
    appendDouble(out, e.mcdClockOverhead);
    appendDouble(out, e.mainMemoryAccess);
}

} // namespace

std::string
ExperimentSpec::cacheKey() const
{
    std::string key;
    key.reserve(512 + controller.schedule.size() *
                          sizeof(FrequencyVector));
    appendString(key, benchmark);
    appendI64(key, static_cast<std::int64_t>(mode));
    appendDouble(key, resolvedStartFreq());
    controller.appendTo(key);
    // Methodology. `config.jobs` is intentionally omitted: the
    // determinism contract makes results worker-count independent.
    appendU64(key, config.instructions);
    appendU64(key, config.warmup);
    appendU64(key, config.clockSeed);
    appendI64(key, config.jitter ? 1 : 0);
    appendI64(key, config.intervalInstructions);
    appendCoreConfig(key, config.core);
    appendDvfsConfig(key, config.dvfs);
    appendEnergyConfig(key, config.energy);
    return key;
}

std::uint64_t
ExperimentSpec::hash() const
{
    return serial::fnv1a(cacheKey());
}

SimStats
runExperiment(const ExperimentSpec &spec)
{
    auto controller = ControllerRegistry::instance().create(
        spec.controller);
    Runner runner(spec.config);
    return runner.runWithOptionalController(
        spec.benchmark, spec.mode, spec.resolvedStartFreq(),
        controller.get());
}

std::vector<SimStats>
runExperiments(const std::vector<ExperimentSpec> &specs, int jobs)
{
    ParallelSweep sweep(jobs);
    return sweep.map<SimStats>(specs.size(), [&](std::size_t i) {
        return ResultCache::instance().getOrRun(specs[i]);
    });
}

ResultCache &
ResultCache::instance()
{
    static ResultCache *cache = new ResultCache();
    return *cache;
}

SimStats
ResultCache::getOrRun(const ExperimentSpec &spec)
{
    std::string key = spec.cacheKey();
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++lookups_;
        auto &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }
    // Concurrent requests for one key block here while the first
    // caller simulates; the simulation never runs under the map lock,
    // so distinct specs still fan out in parallel.
    std::call_once(entry->once, [&] {
        entry->stats = runExperiment(spec);
        std::lock_guard<std::mutex> lock(mutex_);
        ++runs_;
    });
    return entry->stats;
}

std::uint64_t
ResultCache::lookups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookups_;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookups_ - runs_;
}

std::uint64_t
ResultCache::simulationsRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lookups_ = 0;
    runs_ = 0;
}

} // namespace mcd
