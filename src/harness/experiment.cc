#include "harness/experiment.hh"

#include "common/logging.hh"
#include "common/serial.hh"
#include "harness/artifact.hh"
#include "harness/parallel_sweep.hh"

namespace mcd
{

namespace
{

using serial::appendDouble;
using serial::appendI64;
using serial::appendString;
using serial::appendU64;

// Methodology + machine bytes come from RunnerConfig::appendTo
// (harness/runner.cc), the single definition of that layout shared
// with extension spec types (src/eval/).
void
appendRunnerConfig(std::string &out, const RunnerConfig &config)
{
    config.appendTo(out);
}

std::string
describeConfig(const RunnerConfig &config)
{
    return config.describe();
}

std::string
describeController(const ControllerSpec &controller)
{
    std::string out = controller.name;
    if (!controller.params.empty()) {
        out += "{";
        bool first = true;
        for (const auto &[key, value] : controller.params) {
            out += first ? "" : ",";
            first = false;
            out += key + "=" + logging_detail::format("%g", value);
        }
        out += "}";
    }
    if (!controller.schedule.empty())
        out += logging_detail::format("+schedule[%zu]",
                                      controller.schedule.size());
    return out;
}

/** Typed re-decode used to validate candidate blobs from the store. */
template <typename T>
bool
validBlob(const std::string &blob)
{
    T value;
    return decodeArtifact(blob, value);
}

/** Decode a blob the cache already validated (failure is a bug). */
template <typename T>
T
decodeValidated(const std::string &blob)
{
    T value;
    if (!decodeArtifact(blob, value))
        mcd_panic("validated artifact blob failed to decode");
    return value;
}

} // namespace

std::string
ExperimentSpec::cacheKey() const
{
    std::string key;
    key.reserve(512 + controller.schedule.size() *
                          sizeof(FrequencyVector));
    appendString(key, "experiment");
    appendString(key, benchmark);
    appendI64(key, static_cast<std::int64_t>(mode));
    appendDouble(key, resolvedStartFreq());
    controller.appendTo(key);
    appendRunnerConfig(key, config);
    return key;
}

std::uint64_t
ExperimentSpec::hash() const
{
    return serial::fnv1a(cacheKey());
}

std::string
ExperimentSpec::describe() const
{
    return logging_detail::format(
        "type=experiment benchmark=%s mode=%s controller=%s "
        "start_freq=%g %s",
        benchmark.c_str(), mode == ClockMode::Mcd ? "mcd" : "sync",
        describeController(controller).c_str(), resolvedStartFreq(),
        describeConfig(config).c_str());
}

ExperimentSpec
ProfileSpec::experimentSpec() const
{
    ExperimentSpec spec;
    spec.benchmark = benchmark;
    spec.mode = ClockMode::Mcd;
    spec.controller.name = "profiling";
    spec.config = config;
    return spec;
}

std::string
ProfileSpec::cacheKey() const
{
    std::string key;
    appendString(key, "profile");
    appendString(key, benchmark);
    appendRunnerConfig(key, config);
    return key;
}

std::string
ProfileSpec::describe() const
{
    return logging_detail::format("type=profile benchmark=%s %s",
                                  benchmark.c_str(),
                                  describeConfig(config).c_str());
}

std::string
OfflineSearchSpec::cacheKey() const
{
    // Key format v2: the baseline stats and interval profile enter as
    // fixed-width (digest, length) pairs over their exact payload
    // serializations instead of the payloads themselves — v1 embedded
    // both, which made every search key (and therefore every disk
    // entry, which stores its full key) grow with the profile. The
    // bumped namespace retires all v1 entries as plain misses.
    std::string key;
    appendString(key, "offline_search/2");
    appendString(key, benchmark);
    appendDouble(key, targetDeg);
    std::string base;
    ArtifactTraits<SimStats>::encodePayload(base, mcdBase);
    appendU64(key, serial::fnv1a(base));
    appendU64(key, base.size());
    std::string prof;
    ArtifactTraits<std::vector<IntervalProfile>>::encodePayload(prof,
                                                                profile);
    appendU64(key, serial::fnv1a(prof));
    appendU64(key, prof.size());
    appendRunnerConfig(key, config);
    return key;
}

std::string
OfflineSearchSpec::describe() const
{
    return logging_detail::format(
        "type=offline_search benchmark=%s target_deg=%g "
        "profile_intervals=%zu %s",
        benchmark.c_str(), targetDeg, profile.size(),
        describeConfig(config).c_str());
}

std::string
GlobalMatchSpec::cacheKey() const
{
    std::string key;
    appendString(key, "global_match");
    appendString(key, benchmark);
    appendI64(key, targetTime);
    appendRunnerConfig(key, config);
    return key;
}

std::string
GlobalMatchSpec::describe() const
{
    return logging_detail::format(
        "type=global_match benchmark=%s target_time=%lld %s",
        benchmark.c_str(), static_cast<long long>(targetTime),
        describeConfig(config).c_str());
}

SimStats
runExperiment(const ExperimentSpec &spec)
{
    auto controller = ControllerRegistry::instance().create(
        spec.controller);
    Runner runner(spec.config);
    return runner.runWithOptionalController(
        spec.benchmark, spec.mode, spec.resolvedStartFreq(),
        controller.get());
}

std::vector<SimStats>
runExperiments(const std::vector<ExperimentSpec> &specs, int jobs)
{
    ParallelSweep sweep(jobs);
    return sweep.map<SimStats>(specs.size(), [&](std::size_t i) {
        return ArtifactCache::instance().getOrRun(specs[i]);
    });
}

ArtifactCache &
ArtifactCache::instance()
{
    static ArtifactCache *cache = [] {
        auto *c = new ArtifactCache();
        // Only the process-wide instance publishes into the registry:
        // test-local caches (cold-process emulation) must not shadow
        // the real metrics.
        c->bindStats();
        return c;
    }();
    return *cache;
}

void
ArtifactCache::bindStats()
{
    telemetry::StatRegistry &reg = telemetry::StatRegistry::instance();
    reg.bindCounter("store.lookups", &lookups_);
    reg.bindCounter("store.disk_hits", &disk_hits_);
    reg.bindCounter("store.inflight_joins", &inflight_joins_);
    reg.bindCounter("sim.runs", &sims_);
    reg.bindCounter("sim.commit.insns", &sim_insns_);
    reg.bindFn("store.hits", [this] { return hits(); });
    reg.bindFn("store.memory_entries", [this] {
        return static_cast<std::uint64_t>(size());
    });
    reg.bindFn("store.disk.entries", [this] {
        return static_cast<std::uint64_t>(diskEntries());
    });
    reg.bindFn("store.disk.bytes", [this] { return diskBytes(); });
}

std::string
ArtifactCache::fetch(
    const std::string &key,
    const std::function<bool(const std::string &)> &validate,
    const std::function<std::string()> &build,
    const std::string &provenance)
{
    lookups_.inc();
    std::shared_ptr<Inflight> flight;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto &slot = inflight_[key];
        if (!slot)
            slot = std::make_shared<Inflight>();
        flight = slot;
    }
    // Concurrent requests for one key block here while the first
    // caller resolves it; the build never runs under the map lock, so
    // distinct artifacts still fan out in parallel, and nested
    // requests (a search's probes, always for *other* keys) recurse
    // freely.
    bool resolved_here = false;
    std::call_once(flight->once, [&] {
        resolved_here = true;
        std::string blob;
        if (memory_.get(key, blob) && validate(blob))
            return; // published earlier as another artifact's by-product
        std::shared_ptr<DiskStore> disk;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            disk = disk_;
        }
        if (disk && disk->get(key, blob) && validate(blob)) {
            memory_.put(key, blob); // promote: never re-read disk
            disk_hits_.inc();
            return;
        }
        blob = build();
        memory_.put(key, blob);
        if (disk)
            disk->put(key, blob, provenance);
        computes_.inc();
    });
    // Resolved: retire the inflight slot so the map stays bounded by
    // concurrency, not by distinct keys ever requested. Late waiters
    // each erase-if-same (idempotent); a fresh request after the erase
    // makes a new slot whose call_once body hits the memory layer.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // A caller whose call_once body did not run waited on another
        // caller's concurrent resolution of this key: an in-flight
        // join, the cross-client dedup event the serve layer reports.
        // (Post-resolution requests get a fresh slot and resolve it
        // themselves against the memory layer, so they never count.)
        if (!resolved_here)
            inflight_joins_.inc();
        auto it = inflight_.find(key);
        if (it != inflight_.end() && it->second == flight)
            inflight_.erase(it);
    }
    std::string blob;
    if (!memory_.get(key, blob))
        mcd_panic("artifact vanished from the memory layer");
    return blob;
}

void
ArtifactCache::publish(const std::string &key, const std::string &blob,
                       const std::string &provenance)
{
    memory_.put(key, blob);
    std::shared_ptr<DiskStore> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disk = disk_;
    }
    if (disk)
        disk->put(key, blob, provenance);
}

void
ArtifactCache::noteSimulation()
{
    sims_.inc();
}

void
ArtifactCache::noteInstructions(std::uint64_t count)
{
    sim_insns_.inc(count);
}

SimStats
ArtifactCache::getOrRun(const ExperimentSpec &spec)
{
    attachDiskStore(spec.config.store);
    std::string blob = fetch(
        spec.cacheKey(), validBlob<SimStats>,
        [&] {
            SimStats stats = runExperiment(spec);
            noteSimulation();
            return encodeArtifact(stats);
        },
        spec.describe());
    return decodeValidated<SimStats>(blob);
}

std::vector<IntervalProfile>
ArtifactCache::getOrRun(const ProfileSpec &spec)
{
    attachDiskStore(spec.config.store);
    std::string blob = fetch(
        spec.cacheKey(), validBlob<std::vector<IntervalProfile>>,
        [&] {
            // One profiling simulation yields two artifacts: the
            // interval profile (this key) and the baseline MCD
            // SimStats, published under the paired experiment key so
            // requesting both costs one run.
            ExperimentSpec run = spec.experimentSpec();
            auto controller =
                ControllerRegistry::instance().create(run.controller);
            Runner runner(spec.config);
            SimStats stats = runner.runWithOptionalController(
                spec.benchmark, run.mode, run.resolvedStartFreq(),
                controller.get());
            noteSimulation();
            publish(run.cacheKey(), encodeArtifact(stats),
                    run.describe());
            return encodeArtifact(
                dynamic_cast<ProfilingController &>(*controller)
                    .profile());
        },
        spec.describe());
    return decodeValidated<std::vector<IntervalProfile>>(blob);
}

OfflineResult
ArtifactCache::getOrRun(const OfflineSearchSpec &spec)
{
    attachDiskStore(spec.config.store);
    std::string blob = fetch(
        spec.cacheKey(), validBlob<OfflineResult>,
        [&] {
            // The search itself runs no simulation directly: its grid
            // probes are nested ExperimentSpec requests that memoize
            // (and count) themselves.
            Runner runner(spec.config);
            return encodeArtifact(runner.searchOfflineDynamic(
                spec.benchmark, spec.targetDeg, spec.mcdBase,
                spec.profile));
        },
        spec.describe());
    return decodeValidated<OfflineResult>(blob);
}

GlobalResult
ArtifactCache::getOrRun(const GlobalMatchSpec &spec)
{
    attachDiskStore(spec.config.store);
    std::string blob = fetch(
        spec.cacheKey(), validBlob<GlobalResult>,
        [&] {
            Runner runner(spec.config);
            return encodeArtifact(runner.searchGlobalMatching(
                spec.benchmark, spec.targetTime));
        },
        spec.describe());
    return decodeValidated<GlobalResult>(blob);
}

void
ArtifactCache::attachDiskStore(const std::string &root)
{
    if (root.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (disk_) {
        if (disk_->root() == root)
            return;
        // A silent swap would strand everything already written to the
        // attached root and blend diskHits() across unrelated stores —
        // two specs naming different stores in one process is a
        // configuration error, not a preference.
        mcd_fatal("artifact store root changed mid-process: '%s' is "
                  "attached, refusing to swap to '%s' (use one store "
                  "per process, or detachDiskStore() first)",
                  disk_->root().c_str(), root.c_str());
    }
    disk_ = std::make_shared<DiskStore>(root);
}

void
ArtifactCache::detachDiskStore()
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_.reset();
}

std::uint64_t
ArtifactCache::lookups() const
{
    return lookups_.value();
}

std::uint64_t
ArtifactCache::hits() const
{
    return lookups_.value() - computes_.value();
}

std::uint64_t
ArtifactCache::diskHits() const
{
    return disk_hits_.value();
}

std::uint64_t
ArtifactCache::inflightJoins() const
{
    return inflight_joins_.value();
}

bool
ArtifactCache::cachedHint(const std::string &key)
{
    std::string blob;
    if (memory_.get(key, blob))
        return true;
    std::shared_ptr<DiskStore> disk;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        disk = disk_;
    }
    return disk && disk->get(key, blob);
}

std::uint64_t
ArtifactCache::simulationsRun() const
{
    return sims_.value();
}

std::uint64_t
ArtifactCache::simulatedInstructions() const
{
    return sim_insns_.value();
}

std::size_t
ArtifactCache::size() const
{
    return memory_.entries();
}

std::size_t
ArtifactCache::inflightEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflight_.size();
}

std::string
ArtifactCache::storeRoot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_ ? disk_->root() : "";
}

std::size_t
ArtifactCache::diskEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_ ? disk_->entries() : 0;
}

std::uint64_t
ArtifactCache::diskBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_ ? disk_->bytes() : 0;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.clear();
    memory_.clear();
    lookups_.reset();
    computes_.reset();
    disk_hits_.reset();
    sims_.reset();
    sim_insns_.reset();
    inflight_joins_.reset();
}

std::string
storeStatsLine(const ArtifactCache &cache)
{
    std::string line = logging_detail::format(
        "store: lookups=%llu hits=%llu disk_hits=%llu "
        "simulations=%llu instructions=%llu",
        static_cast<unsigned long long>(cache.lookups()),
        static_cast<unsigned long long>(cache.hits()),
        static_cast<unsigned long long>(cache.diskHits()),
        static_cast<unsigned long long>(cache.simulationsRun()),
        static_cast<unsigned long long>(
            cache.simulatedInstructions()));
    std::string root = cache.storeRoot();
    if (!root.empty())
        line += logging_detail::format(
            " disk_entries=%zu disk_bytes=%llu root=%s",
            cache.diskEntries(),
            static_cast<unsigned long long>(cache.diskBytes()),
            root.c_str());
    return line;
}

} // namespace mcd
