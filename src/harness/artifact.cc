#include "harness/artifact.hh"

namespace mcd
{

using serial::appendDouble;
using serial::appendI64;
using serial::appendU64;
using serial::Reader;

void
ArtifactTraits<SimStats>::encodePayload(std::string &out,
                                        const SimStats &s)
{
    appendU64(out, s.instructions);
    appendU64(out, s.feCycles);
    appendI64(out, s.time);
    appendDouble(out, s.chipEnergy);
    appendDouble(out, s.cpi);
    appendDouble(out, s.epi);
    appendU64(out, s.branches);
    appendU64(out, s.mispredicts);
    appendU64(out, s.loads);
    appendU64(out, s.stores);
    appendU64(out, s.l1dMisses);
    appendU64(out, s.l2Misses);
    for (NanoJoule e : s.domainEnergy)
        appendDouble(out, e);
}

bool
ArtifactTraits<SimStats>::decodePayload(Reader &in, SimStats &s)
{
    s.instructions = in.readU64();
    s.feCycles = in.readU64();
    s.time = in.readI64();
    s.chipEnergy = in.readDouble();
    s.cpi = in.readDouble();
    s.epi = in.readDouble();
    s.branches = in.readU64();
    s.mispredicts = in.readU64();
    s.loads = in.readU64();
    s.stores = in.readU64();
    s.l1dMisses = in.readU64();
    s.l2Misses = in.readU64();
    for (NanoJoule &e : s.domainEnergy)
        e = in.readDouble();
    return in.ok();
}

void
ArtifactTraits<std::vector<IntervalProfile>>::encodePayload(
    std::string &out, const std::vector<IntervalProfile> &profile)
{
    appendU64(out, profile.size());
    for (const IntervalProfile &p : profile) {
        appendU64(out, p.instructions);
        appendDouble(out, p.ipc);
        for (int d = 0; d < NUM_CONTROLLED; ++d) {
            auto i = static_cast<std::size_t>(d);
            appendDouble(out, p.busyFraction[i]);
            appendDouble(out, p.queueUtilization[i]);
            appendDouble(out, p.avgOccupancy[i]);
            appendU64(out, p.issued[i]);
            appendU64(out, p.cycles[i]);
        }
    }
}

bool
ArtifactTraits<std::vector<IntervalProfile>>::decodePayload(
    Reader &in, std::vector<IntervalProfile> &profile)
{
    std::uint64_t count = in.readU64();
    if (!in.ok())
        return false;
    profile.clear();
    // No reserve(count): a corrupt blob's count can be arbitrary, and
    // a giant reserve throws where the loop would fail cleanly into
    // the store's miss-and-heal path.
    for (std::uint64_t k = 0; k < count && in.ok(); ++k) {
        IntervalProfile p;
        p.instructions = in.readU64();
        p.ipc = in.readDouble();
        for (int d = 0; d < NUM_CONTROLLED; ++d) {
            auto i = static_cast<std::size_t>(d);
            p.busyFraction[i] = in.readDouble();
            p.queueUtilization[i] = in.readDouble();
            p.avgOccupancy[i] = in.readDouble();
            p.issued[i] = in.readU64();
            p.cycles[i] = in.readU64();
        }
        profile.push_back(p);
    }
    return in.ok();
}

void
ArtifactTraits<OfflineResult>::encodePayload(std::string &out,
                                             const OfflineResult &r)
{
    ArtifactTraits<SimStats>::encodePayload(out, r.stats);
    appendDouble(out, r.margin);
    appendDouble(out, r.achievedDeg);
}

bool
ArtifactTraits<OfflineResult>::decodePayload(Reader &in,
                                             OfflineResult &r)
{
    if (!ArtifactTraits<SimStats>::decodePayload(in, r.stats))
        return false;
    r.margin = in.readDouble();
    r.achievedDeg = in.readDouble();
    return in.ok();
}

void
ArtifactTraits<GlobalResult>::encodePayload(std::string &out,
                                            const GlobalResult &r)
{
    ArtifactTraits<SimStats>::encodePayload(out, r.stats);
    appendDouble(out, r.freq);
}

bool
ArtifactTraits<GlobalResult>::decodePayload(Reader &in, GlobalResult &r)
{
    if (!ArtifactTraits<SimStats>::decodePayload(in, r.stats))
        return false;
    r.freq = in.readDouble();
    return in.ok();
}

} // namespace mcd
