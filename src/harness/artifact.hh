/**
 * @file
 * The artifact serialization contract: every experiment product the
 * harness persists — `SimStats`, a profiling pass's
 * `std::vector<IntervalProfile>`, an `OfflineResult`, a
 * `GlobalResult` — has an `ArtifactTraits` specialization giving it a
 * stable type name, a format version, and an exact binary encoding
 * built from `src/common/serial.hh`.
 *
 * The contract mirrors the cache keys': the encoding is exact (raw
 * IEEE-754 bits for doubles, length-prefixed strings), so
 * `decode(encode(x))` reproduces `x` bit for bit and a stored
 * artifact is indistinguishable from re-simulating. Every blob is
 * self-describing — a header of type name + version precedes the
 * payload — and `decodeArtifact` rejects wrong types, wrong versions,
 * truncation, and trailing garbage, which the store layer treats as a
 * cache miss (recompute) rather than an error. Bump an artifact's
 * `version` whenever its payload layout changes; stale disk entries
 * then age out as misses instead of decoding to garbage.
 */

#ifndef MCD_HARNESS_ARTIFACT_HH
#define MCD_HARNESS_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "control/basic_controllers.hh"
#include "harness/runner.hh"

namespace mcd
{

/**
 * Per-type serialization contract. Specializations provide:
 *   static constexpr const char *name;     // stable type tag
 *   static constexpr std::uint64_t version;
 *   static void encodePayload(std::string &out, const T &value);
 *   static bool decodePayload(serial::Reader &in, T &value);
 */
template <typename T> struct ArtifactTraits;

template <> struct ArtifactTraits<SimStats>
{
    static constexpr const char *name = "sim_stats";
    static constexpr std::uint64_t version = 1;
    static void encodePayload(std::string &out, const SimStats &s);
    static bool decodePayload(serial::Reader &in, SimStats &s);
};

template <> struct ArtifactTraits<std::vector<IntervalProfile>>
{
    static constexpr const char *name = "interval_profiles";
    static constexpr std::uint64_t version = 1;
    static void encodePayload(std::string &out,
                              const std::vector<IntervalProfile> &p);
    static bool decodePayload(serial::Reader &in,
                              std::vector<IntervalProfile> &p);
};

template <> struct ArtifactTraits<OfflineResult>
{
    static constexpr const char *name = "offline_result";
    static constexpr std::uint64_t version = 1;
    static void encodePayload(std::string &out, const OfflineResult &r);
    static bool decodePayload(serial::Reader &in, OfflineResult &r);
};

template <> struct ArtifactTraits<GlobalResult>
{
    static constexpr const char *name = "global_result";
    static constexpr std::uint64_t version = 1;
    static void encodePayload(std::string &out, const GlobalResult &r);
    static bool decodePayload(serial::Reader &in, GlobalResult &r);
};

/** Encode `value` as a self-describing blob: header + payload. */
template <typename T>
std::string
encodeArtifact(const T &value)
{
    std::string blob;
    serial::appendString(blob, ArtifactTraits<T>::name);
    serial::appendU64(blob, ArtifactTraits<T>::version);
    ArtifactTraits<T>::encodePayload(blob, value);
    return blob;
}

/**
 * Decode a blob produced by encodeArtifact<T>. Returns false — leaving
 * `value` unspecified — on type mismatch, version mismatch,
 * truncation, or trailing bytes; callers treat false as a cache miss.
 */
template <typename T>
bool
decodeArtifact(const std::string &blob, T &value)
{
    serial::Reader in(blob);
    if (in.readString() != ArtifactTraits<T>::name || !in.ok())
        return false;
    if (in.readU64() != ArtifactTraits<T>::version || !in.ok())
        return false;
    if (!ArtifactTraits<T>::decodePayload(in, value))
        return false;
    return in.atEnd();
}

} // namespace mcd

#endif // MCD_HARNESS_ARTIFACT_HH
