/**
 * @file
 * Pluggable artifact storage: an `ArtifactStore` maps exact cache keys
 * (the spec `cacheKey()` byte strings) to encoded artifact blobs
 * (`harness/artifact.hh`). Two backends:
 *
 *  - `MemoryStore` — the in-process map; cheap, dies with the process.
 *  - `DiskStore`   — content-addressed files under a root directory
 *    (one file per key, named by the key's FNV-1a hash), written
 *    atomically (temp file + rename) so concurrent figure processes
 *    can share one store. Each file carries the full key plus a
 *    checksum; short, corrupt, mismatched-key (hash collision), or
 *    stale-format entries read as misses, never as wrong values.
 *
 * Stores deal only in opaque blobs. The typed layer on top —
 * `ArtifactCache` in `harness/experiment.hh` — layers a MemoryStore
 * over an optional DiskStore and handles encode/decode/validation, so
 * a warm process never re-reads disk and a warm disk store serves
 * every artifact across processes with zero simulations.
 */

#ifndef MCD_HARNESS_ARTIFACT_STORE_HH
#define MCD_HARNESS_ARTIFACT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mcd
{

/** Key -> blob storage. Implementations must be thread-safe. */
class ArtifactStore
{
  public:
    virtual ~ArtifactStore() = default;

    /** Backend name for reporting ("memory", "disk"). */
    virtual const char *kind() const = 0;

    /** Fetch the blob stored under `key`; false on miss. */
    virtual bool get(const std::string &key, std::string &blob) = 0;

    /** Store `blob` under `key`, replacing any existing entry. */
    virtual void put(const std::string &key, const std::string &blob)
        = 0;

    /** Entries currently stored (for DiskStore: readable entries). */
    virtual std::size_t entries() const = 0;

    /** Total stored payload bytes (DiskStore: file bytes on disk). */
    virtual std::uint64_t bytes() const = 0;

    /** Root directory for disk-backed stores, "" otherwise. */
    virtual std::string root() const { return ""; }
};

/** The in-process backend: a mutex-guarded key -> blob map. */
class MemoryStore : public ArtifactStore
{
  public:
    const char *kind() const override { return "memory"; }
    bool get(const std::string &key, std::string &blob) override;
    void put(const std::string &key, const std::string &blob) override;
    std::size_t entries() const override;
    std::uint64_t bytes() const override;

    /** Drop everything (tests, ArtifactCache::clear). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::string> map_;
    std::uint64_t bytes_ = 0;
};

/**
 * The persistent backend: one file per key under `root`, named
 * `<fnv1a(key) as 16 hex digits>.mcda`. The directory is created on
 * demand; `put` is atomic (unique temp file in the same directory,
 * then rename), so readers never observe partial writes and
 * concurrent writers of one key — necessarily writing bit-identical
 * blobs, by the determinism contract — harmlessly race on the rename.
 * All failure modes of `get` (missing file, truncation, bad magic or
 * format, checksum mismatch, a different key sharing the hash) return
 * false: the caller recomputes and overwrites.
 */
class DiskStore : public ArtifactStore
{
  public:
    /** Fatal if `root` is empty or cannot be created. */
    explicit DiskStore(const std::string &root);

    const char *kind() const override { return "disk"; }
    bool get(const std::string &key, std::string &blob) override;
    void put(const std::string &key, const std::string &blob) override;
    std::size_t entries() const override;
    std::uint64_t bytes() const override;
    std::string root() const override { return root_; }

    /** The file a key is stored under (tests, debugging). */
    std::string pathFor(const std::string &key) const;

  private:
    std::string root_;
};

} // namespace mcd

#endif // MCD_HARNESS_ARTIFACT_STORE_HH
