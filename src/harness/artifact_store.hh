/**
 * @file
 * Pluggable artifact storage: an `ArtifactStore` maps exact cache keys
 * (the spec `cacheKey()` byte strings) to encoded artifact blobs
 * (`harness/artifact.hh`). Two backends:
 *
 *  - `MemoryStore` — the in-process map; cheap, dies with the process.
 *  - `DiskStore`   — content-addressed files under a root directory
 *    (one file per key, named by the key's FNV-1a hash), written
 *    atomically (temp file + rename) so concurrent figure processes
 *    can share one store. Each file carries the full key plus a
 *    checksum; short, corrupt, mismatched-key (hash collision), or
 *    stale-format entries read as misses, never as wrong values.
 *
 * `DiskStore` also owns the store's lifecycle: `enumerate()` lists the
 * entries, `removeEntry()` deletes one, and `prune()` garbage-collects
 * — age- and size-budget eviction of entries plus a sweep of stale
 * `*.tmp.*` files orphaned by writers that died between temp-write and
 * rename. A `put` may carry a human-readable provenance string, which
 * the disk backend persists as a `<hash>.meta` sidecar next to the
 * entry so external tooling can tell what a hash is. Sidecars and temp
 * files are never counted by `entries()`/`bytes()`.
 *
 * Stores deal only in opaque blobs. The typed layer on top —
 * `ArtifactCache` in `harness/experiment.hh` — layers a MemoryStore
 * over an optional DiskStore and handles encode/decode/validation, so
 * a warm process never re-reads disk and a warm disk store serves
 * every artifact across processes with zero simulations.
 */

#ifndef MCD_HARNESS_ARTIFACT_STORE_HH
#define MCD_HARNESS_ARTIFACT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mcd
{

/** Key -> blob storage. Implementations must be thread-safe. */
class ArtifactStore
{
  public:
    virtual ~ArtifactStore() = default;

    /** Backend name for reporting ("memory", "disk"). */
    virtual const char *kind() const = 0;

    /** Fetch the blob stored under `key`; false on miss. */
    virtual bool get(const std::string &key, std::string &blob) = 0;

    /**
     * Store `blob` under `key`, replacing any existing entry. A
     * non-empty `provenance` is a human-readable description of the
     * key, persisted alongside the entry where the backend supports it
     * (the disk backend's `<hash>.meta` sidecar).
     */
    virtual void put(const std::string &key, const std::string &blob,
                     const std::string &provenance = "")
        = 0;

    /** Entries currently stored (for DiskStore: readable entries). */
    virtual std::size_t entries() const = 0;

    /** Total stored payload bytes (DiskStore: entry-file bytes). */
    virtual std::uint64_t bytes() const = 0;

    /** Root directory for disk-backed stores, "" otherwise. */
    virtual std::string root() const { return ""; }
};

/** The in-process backend: a mutex-guarded key -> blob map. */
class MemoryStore : public ArtifactStore
{
  public:
    const char *kind() const override { return "memory"; }
    bool get(const std::string &key, std::string &blob) override;
    void put(const std::string &key, const std::string &blob,
             const std::string &provenance = "") override;
    std::size_t entries() const override;
    std::uint64_t bytes() const override;

    /** Drop everything (tests, ArtifactCache::clear). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::string> map_;
    std::uint64_t bytes_ = 0;
};

/**
 * The persistent backend: one file per key under `root`, named
 * `<fnv1a(key) as 16 hex digits>.mcda`. The directory is created on
 * demand; `put` is atomic (unique temp file in the same directory,
 * then rename), so readers never observe partial writes and
 * concurrent writers of one key — necessarily writing bit-identical
 * blobs, by the determinism contract — harmlessly race on the rename.
 * All failure modes of `get` (missing file, truncation, bad magic or
 * format, checksum mismatch, a different key sharing the hash) return
 * false: the caller recomputes and overwrites.
 */
class DiskStore : public ArtifactStore
{
  public:
    /** One readable store entry as seen by `enumerate()`. */
    struct EntryInfo
    {
        std::string stem;        //!< 16-hex key hash (the file stem)
        std::string path;        //!< full entry-file path
        std::uint64_t bytes = 0; //!< entry-file size
        std::int64_t ageSeconds = 0; //!< since last write (>= 0)
        bool hasSidecar = false; //!< a `<stem>.meta` sits next to it
    };

    /** What `prune()` may evict. Defaults evict nothing but stale
     *  temp files. */
    struct PruneOptions
    {
        /** Evict oldest entries until the store fits (0 = no budget). */
        std::uint64_t maxBytes = 0;

        /** Evict entries older than this (< 0 = no age limit). */
        std::int64_t maxAgeSeconds = -1;

        /**
         * Sweep `*.tmp.*` files older than this. Temp files are only
         * ever live for the duration of one write, so anything older
         * was orphaned by a writer that died between temp-write and
         * rename. Keep this above a write's lifetime (the default is
         * one hour) so a sweep never races a live writer's rename; 0
         * sweeps every temp file (quiescent stores only).
         */
        std::int64_t tmpAgeSeconds = 3600;
    };

    /** What one `prune()` call did. */
    struct PruneReport
    {
        std::size_t entriesRemoved = 0;
        std::uint64_t bytesRemoved = 0;
        std::size_t tmpsRemoved = 0;     //!< stale temp files swept
        std::size_t sidecarsRemoved = 0; //!< evicted or orphaned .meta
        std::size_t entriesKept = 0;
        std::uint64_t bytesKept = 0;
    };

    /** Fatal if `root` is empty or cannot be created. */
    explicit DiskStore(const std::string &root);

    const char *kind() const override { return "disk"; }
    bool get(const std::string &key, std::string &blob) override;
    void put(const std::string &key, const std::string &blob,
             const std::string &provenance = "") override;
    std::size_t entries() const override;
    std::uint64_t bytes() const override;
    std::string root() const override { return root_; }

    /** The file a key is stored under (tests, debugging). */
    std::string pathFor(const std::string &key) const;

    /** The provenance sidecar of a key (tests, external tooling). */
    std::string sidecarPathFor(const std::string &key) const;

    /**
     * Every readable entry, sorted by stem (deterministic across
     * directory-iteration orders). Temp files, sidecars, and foreign
     * files are not entries and never appear.
     */
    std::vector<EntryInfo> enumerate() const;

    /**
     * Delete the entry (and sidecar) stored under `key`. Returns true
     * when an entry file existed. Concurrent readers observe a plain
     * miss and recompute; a racing `put` may immediately re-create the
     * entry, which is the intended miss-and-heal behavior.
     */
    bool removeEntry(const std::string &key);

    /**
     * Garbage-collect the store: sweep stale temp files, evict entries
     * past the age limit, then evict by descending (age+1) x bytes
     * score (stem as the deterministic tiebreak) until the size budget
     * holds. The size weighting keeps mixed-size stores fair: a bulky
     * checkpoint entry is charged for the space it holds, so it cannot
     * starve hundreds of slightly older small entries out of the
     * budget. Sidecars follow their entries; orphaned sidecars are
     * removed.
     * Safe against concurrent readers (they miss and heal) and
     * writers (atomic renames either land before the scan or after
     * it, never half-way).
     */
    PruneReport prune(const PruneOptions &options);

  private:
    std::string root_;
};

} // namespace mcd

#endif // MCD_HARNESS_ARTIFACT_STORE_HH
