/**
 * @file
 * Plain-text table and CSV rendering for the bench binaries, so each
 * bench prints the same rows/series the paper's tables and figures
 * report.
 */

#ifndef MCD_HARNESS_TABLE_HH
#define MCD_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace mcd
{

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (no title). */
    std::string csv() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a fraction as a percentage string, e.g. 0.032 -> "3.2%". */
std::string pct(double fraction, int decimals = 1);

/** Format a plain double with fixed decimals. */
std::string num(double value, int decimals = 2);

/** Format a frequency in GHz. */
std::string ghz(double hz, int decimals = 3);

} // namespace mcd

#endif // MCD_HARNESS_TABLE_HH
