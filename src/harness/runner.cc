#include "harness/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iterator>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"

namespace mcd
{

namespace
{

using serial::appendDouble;
using serial::appendI64;
using serial::appendU64;

void
appendCacheConfig(std::string &out, const CacheConfig &c)
{
    serial::appendString(out, c.name);
    appendU64(out, c.sizeBytes);
    appendI64(out, c.associativity);
    appendI64(out, c.lineBytes);
}

void
appendMemoryConfig(std::string &out, const MemoryHierarchyConfig &m)
{
    appendCacheConfig(out, m.l1i);
    appendCacheConfig(out, m.l1d);
    appendCacheConfig(out, m.l2);
    appendI64(out, static_cast<std::int64_t>(m.memory.accessLatency));
    appendI64(out,
              static_cast<std::int64_t>(m.memory.channelOccupancy));
    appendI64(out, m.l1Latency);
    appendI64(out, m.l2Latency);
}

void
appendCoreConfig(std::string &out, const CoreConfig &c)
{
    appendI64(out, c.decodeWidth);
    appendI64(out, c.intIssueWidth);
    appendI64(out, c.fpIssueWidth);
    appendI64(out, c.memIssueWidth);
    appendI64(out, c.retireWidth);
    appendI64(out, c.robSize);
    appendI64(out, c.intIqSize);
    appendI64(out, c.fpIqSize);
    appendI64(out, c.lsqSize);
    appendI64(out, c.intPhysRegs);
    appendI64(out, c.fpPhysRegs);
    appendI64(out, c.branchMispredictPenalty);
    appendI64(out, c.intAluCount);
    appendI64(out, c.fpAluCount);
    appendI64(out, c.intAluLatency);
    appendI64(out, c.intMultLatency);
    appendI64(out, c.intDivLatency);
    appendI64(out, c.fpAddLatency);
    appendI64(out, c.fpMultLatency);
    appendI64(out, c.fpDivLatency);
    appendI64(out, c.fpSqrtLatency);
    appendI64(out, c.mshrCount);
    appendMemoryConfig(out, c.memory);
    appendI64(out, c.intervalInstructions);
}

void
appendDvfsConfig(std::string &out, const DvfsConfig &d)
{
    appendDouble(out, d.freqMax);
    appendDouble(out, d.freqMin);
    appendDouble(out, d.voltMax);
    appendDouble(out, d.voltMin);
    appendI64(out, d.numPoints);
    appendDouble(out, d.slewNsPerMhz);
    appendDouble(out, d.jitterSigmaPs);
    appendDouble(out, d.syncWindowFraction);
}

void
appendEnergyConfig(std::string &out, const EnergyConfig &e)
{
    appendDouble(out, e.referenceVoltage);
    appendDouble(out, e.idleFraction);
    appendDouble(out, e.mcdClockOverhead);
    appendDouble(out, e.mainMemoryAccess);
}

} // namespace

void
RunnerConfig::applyEnvOverrides()
{
    instructions = envU64("MCD_INSNS", instructions);
    warmup = envU64("MCD_WARMUP", warmup, /*min=*/0);
    intervalInstructions = envInt("MCD_INTERVAL", intervalInstructions);
    jobs = envInt("MCD_JOBS", jobs);
    store = envString("MCD_STORE", store);
    checkpointEvery = envU64("MCD_CHECKPOINT", checkpointEvery,
                             /*min=*/0);
}

void
RunnerConfig::appendTo(std::string &out) const
{
    // v2: warm-up runs uncontrolled; the controller and interval
    // observer engage at the measurement boundary. Bumping the version
    // retires every v1 artifact (measured under controller-driven
    // warm-up) as a plain cache miss.
    constexpr std::uint64_t METHODOLOGY_VERSION = 2;
    appendU64(out, METHODOLOGY_VERSION);
    appendU64(out, instructions);
    appendU64(out, warmup);
    appendU64(out, clockSeed);
    appendI64(out, jitter ? 1 : 0);
    appendI64(out, intervalInstructions);
    appendCoreConfig(out, core);
    appendDvfsConfig(out, dvfs);
    appendEnergyConfig(out, energy);
}

std::string
RunnerConfig::describe() const
{
    return logging_detail::format(
        "insns=%llu warmup=%llu interval=%d seed=%llu jitter=%d",
        static_cast<unsigned long long>(instructions),
        static_cast<unsigned long long>(warmup), intervalInstructions,
        static_cast<unsigned long long>(clockSeed), jitter ? 1 : 0);
}

SimConfig
makeSimConfig(const RunnerConfig &config, ClockMode mode,
              Hertz start_freq)
{
    SimConfig sim_config;
    sim_config.core = config.core;
    sim_config.core.intervalInstructions = config.intervalInstructions;
    sim_config.dvfs = config.dvfs;
    sim_config.energy = config.energy;
    sim_config.clocks.mode = mode;
    sim_config.clocks.startFreq = start_freq;
    sim_config.clocks.seed = config.clockSeed;
    sim_config.clocks.jittered = config.jitter;
    return sim_config;
}

Runner::Runner(const RunnerConfig &config)
    : config_(config)
{
}

SimStats
Runner::runWithOptionalController(
    const std::string &bench, ClockMode mode, Hertz start_freq,
    FrequencyController *controller,
    std::function<void(const IntervalStats &)> observer)
{
    auto workload = BenchmarkFactory::create(bench, horizon());
    SimConfig sim_config = makeSimConfig(config_, mode, start_freq);

    // Warm-up runs uncontrolled (methodology v2): the pre-measurement
    // machine state is controller-independent, so a checkpoint of it
    // fast-forwards every variant of this benchmark.
    Simulator sim(sim_config, *workload, nullptr);
    std::uint64_t stepped_from = 0;

    if (config_.warmup > 0) {
        if (config_.checkpointEvery > 0) {
            // Resolve the warm-up prefix through the checkpoint
            // artifact; by the run-composition contract the restored
            // machine is bit-identical to having simulated it here.
            CheckpointSpec spec;
            spec.benchmark = bench;
            spec.mode = mode;
            spec.startFreq = start_freq;
            spec.at = config_.warmup;
            spec.config = config_;
            SimCheckpoint ckpt =
                ArtifactCache::instance().getOrRun(spec);
            serial::Reader in(ckpt.state);
            if (!sim.restoreCheckpoint(in))
                mcd_panic("validated checkpoint artifact failed to "
                          "restore");
            stepped_from = sim.committed();
        } else {
            sim.run(config_.warmup);
        }
        sim.resetMeasurement();
    }
    sim.engageController(controller);
    if (observer)
        sim.setIntervalObserver(std::move(observer));
    sim.run(config_.instructions);
    ArtifactCache::instance().noteInstructions(sim.committed() -
                                               stepped_from);
    return sim.stats();
}

SimStats
Runner::runSynchronous(const std::string &bench, Hertz freq)
{
    auto controller = ControllerRegistry::instance().create(
        ControllerSpec{}); // "none": uncontrolled
    return runWithOptionalController(bench, ClockMode::Synchronous,
                                     freq, controller.get(), {});
}

SimStats
Runner::runMcdBaseline(const std::string &bench,
                       std::vector<IntervalProfile> *profile)
{
    // Both products are artifacts of one profiling run: the
    // ProfileSpec resolution publishes the paired SimStats, so the
    // experimentSpec() request below never simulates a second time.
    ProfileSpec spec;
    spec.benchmark = bench;
    spec.config = config_;
    if (profile)
        *profile = ArtifactCache::instance().getOrRun(spec);
    return ArtifactCache::instance().getOrRun(spec.experimentSpec());
}

SimStats
Runner::runAttackDecay(
    const std::string &bench, const AttackDecayConfig &adc,
    std::function<void(const IntervalStats &)> observer)
{
    auto controller =
        ControllerRegistry::instance().create(attackDecaySpec(adc));
    return runWithOptionalController(bench, ClockMode::Mcd,
                                     config_.dvfs.freqMax,
                                     controller.get(),
                                     std::move(observer));
}

SimStats
Runner::runSchedule(const std::string &bench,
                    const std::vector<FrequencyVector> &schedule)
{
    ControllerSpec spec;
    spec.name = "schedule";
    spec.schedule = schedule;
    auto controller = ControllerRegistry::instance().create(spec);
    return runWithOptionalController(bench, ClockMode::Mcd,
                                     config_.dvfs.freqMax,
                                     controller.get(), {});
}

SimStats
Runner::runWithController(
    const std::string &bench, ClockMode mode, Hertz start_freq,
    FrequencyController &controller,
    std::function<void(const IntervalStats &)> observer)
{
    return runWithOptionalController(bench, mode, start_freq,
                                     &controller, std::move(observer));
}

OfflineResult
Runner::runOfflineDynamic(const std::string &bench, double target_deg,
                          const SimStats &mcd_base,
                          const std::vector<IntervalProfile> &profile)
{
    OfflineSearchSpec spec;
    spec.benchmark = bench;
    spec.targetDeg = target_deg;
    spec.mcdBase = mcd_base;
    spec.profile = profile;
    spec.config = config_;
    return ArtifactCache::instance().getOrRun(spec);
}

OfflineResult
Runner::searchOfflineDynamic(
    const std::string &bench, double target_deg,
    const SimStats &mcd_base,
    const std::vector<IntervalProfile> &profile)
{
    DvfsModel dvfs(config_.dvfs);
    double t_base = static_cast<double>(mcd_base.time);

    auto degradation = [&](const SimStats &s) {
        return (static_cast<double>(s.time) - t_base) / t_base;
    };

    // Every probe is an independent schedule replay of the same
    // benchmark; batches fan out across the sweep engine's workers
    // through the process-wide ArtifactCache, so a margin probed by an
    // earlier search of the same benchmark (the coarse grids of
    // Dynamic-1% and Dynamic-5% coincide) replays only once. Probes
    // deliberately keep this runner's clock seed (no per-job
    // derivation): degradation is measured against `mcd_base`, which
    // consumed exactly that clock stream.
    using Margins = std::array<double, NUM_CONTROLLED>;
    struct Probe
    {
        Margins margins{};
        SimStats stats{};
        double deg = 0.0;
    };
    auto probeBatch = [&](const std::vector<Margins> &batch) {
        std::vector<ExperimentSpec> specs;
        specs.reserve(batch.size());
        for (const Margins &margins : batch) {
            ExperimentSpec spec;
            spec.benchmark = bench;
            spec.controller.name = "schedule";
            spec.controller.schedule =
                deriveSchedule(profile, dvfs, margins);
            spec.config = config_;
            specs.push_back(std::move(spec));
        }
        auto stats = runExperiments(specs, config_.jobs);
        std::vector<Probe> probes(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            probes[i].margins = batch[i];
            probes[i].stats = stats[i];
            probes[i].deg = degradation(stats[i]);
        }
        return probes;
    };
    auto uniform = [](double m) {
        Margins margins;
        margins.fill(m);
        return margins;
    };

    OfflineResult best;
    bool have_best = false;
    // Batches are scanned in index order with strict comparisons, so
    // the selected optimum never depends on execution schedule.
    auto consider = [&](const Probe &probe, double shared_margin) {
        bool feasible = probe.deg <= target_deg;
        if (feasible &&
            (!have_best ||
             probe.stats.chipEnergy < best.stats.chipEnergy)) {
            best.stats = probe.stats;
            best.margin = shared_margin;
            best.achievedDeg = probe.deg;
            have_best = true;
        }
        return feasible;
    };

    // Phase 1: coarse grid over the shared margin. Margin is monotone:
    // larger margin -> higher frequencies -> less degradation, so the
    // smallest feasible grid point brackets the optimum. The grid
    // replaces the former 7-iteration binary search with one parallel
    // batch.
    constexpr int COARSE = 8;
    std::vector<Margins> coarse_batch;
    for (int k = 0; k <= COARSE; ++k)
        coarse_batch.push_back(uniform(static_cast<double>(k) / COARSE));
    auto coarse = probeBatch(coarse_batch);

    double shared = 1.0;
    double bracket_lo = 1.0; // largest infeasible margin below `shared`
    bool found = false;
    for (int k = 0; k <= COARSE; ++k) {
        double margin = static_cast<double>(k) / COARSE;
        if (consider(coarse[static_cast<std::size_t>(k)], margin) &&
            !found) {
            shared = margin;
            bracket_lo = static_cast<double>(k - 1) / COARSE;
            found = true;
        }
    }
    if (!found) {
        // Even margin = 1 (everything at f_max) missed the cap; hold
        // the least aggressive schedule, mirroring the cap-miss
        // fallback of the original search.
        best.stats = coarse.back().stats;
        best.margin = 1.0;
        best.achievedDeg = coarse.back().deg;
        return best;
    }

    // Phase 2: refine inside the bracketing coarse interval with a
    // second parallel batch (resolution 1/64, comparable to the old
    // binary search).
    if (shared > 0.0) {
        constexpr int FINE = 8;
        std::vector<Margins> fine_batch;
        std::vector<double> fine_margins;
        for (int j = 1; j < FINE; ++j) {
            double margin = bracket_lo +
                (shared - bracket_lo) * static_cast<double>(j) / FINE;
            fine_margins.push_back(margin);
            fine_batch.push_back(uniform(margin));
        }
        auto fine = probeBatch(fine_batch);
        for (std::size_t j = 0; j < fine.size(); ++j) {
            if (consider(fine[j], fine_margins[j])) {
                shared = std::min(shared, fine_margins[j]);
            }
        }
    }

    // Phase 3: per-domain refinement. A shared margin is gated by the
    // single most sensitive domain; the original shaker algorithm
    // distributes slack per domain. Probe every (domain, factor)
    // candidate independently from the shared point in one parallel
    // batch, then combine greedily.
    const double factors[] = {0.5, 0.25, 0.0};
    std::vector<Margins> domain_batch;
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        for (double factor : factors) {
            Margins margins = uniform(shared);
            margins[static_cast<std::size_t>(slot)] = shared * factor;
            domain_batch.push_back(margins);
        }
    }
    auto domain_probes = probeBatch(domain_batch);

    // Per domain, the deepest factor whose solo probe stays feasible
    // (scanning shallow to deep, stopping at the first miss, like the
    // former coordinate descent).
    std::array<double, NUM_CONTROLLED> best_factor;
    best_factor.fill(1.0);
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        for (std::size_t f = 0; f < std::size(factors); ++f) {
            const Probe &probe = domain_probes[
                static_cast<std::size_t>(slot) * std::size(factors) + f];
            if (!consider(probe, shared))
                break;
            best_factor[static_cast<std::size_t>(slot)] = factors[f];
        }
    }

    // Phase 4: combine the per-domain winners cumulatively (domains
    // interact, so each addition is validated with one run and
    // reverted if the cap breaks). The first addition needs no new
    // run: lowering a single domain from the shared point is exactly
    // its Phase-3 solo probe, already measured and accepted.
    Margins margins = uniform(shared);
    bool pristine = true; // margins still equal the shared point
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        auto s = static_cast<std::size_t>(slot);
        if (best_factor[s] >= 1.0)
            continue;
        Margins trial = margins;
        trial[s] = shared * best_factor[s];
        if (trial == margins)
            continue;
        if (pristine) {
            margins = trial;
            pristine = false;
            continue;
        }
        auto probe = probeBatch({trial});
        if (consider(probe[0], shared))
            margins = trial;
    }
    return best;
}

// Cached synchronous run at one frequency: the global-DVFS
// comparators probe synchronous operating points, and the full-speed
// point in particular is a baseline every figure shares.
static SimStats
cachedSynchronous(const RunnerConfig &config, const std::string &bench,
                  Hertz freq)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.mode = ClockMode::Synchronous;
    spec.startFreq = freq;
    spec.config = config;
    return ArtifactCache::instance().getOrRun(spec);
}

Hertz
Runner::globalMatchedFrequency(double target_deg) const
{
    return std::clamp(
        config_.dvfs.freqMax / (1.0 + std::max(0.0, target_deg)),
        config_.dvfs.freqMin, config_.dvfs.freqMax);
}

GlobalResult
Runner::runGlobalAtDegradation(const std::string &bench,
                               double target_deg)
{
    GlobalResult result;
    result.freq = globalMatchedFrequency(target_deg);
    result.stats = cachedSynchronous(config_, bench, result.freq);
    return result;
}

GlobalResult
Runner::runGlobalMatching(const std::string &bench, Tick target_time)
{
    GlobalMatchSpec spec;
    spec.benchmark = bench;
    spec.targetTime = target_time;
    spec.config = config_;
    return ArtifactCache::instance().getOrRun(spec);
}

GlobalResult
Runner::searchGlobalMatching(const std::string &bench,
                             Tick target_time)
{
    const Hertz f_max = config_.dvfs.freqMax;
    const Hertz f_min = config_.dvfs.freqMin;

    // Fit T(f) = a + b/f from two calibration runs.
    Hertz f1 = f_max;
    Hertz f2 = 0.5 * (f_max + f_min);
    SimStats s1 = cachedSynchronous(config_, bench, f1);
    SimStats s2 = cachedSynchronous(config_, bench, f2);
    double t1 = static_cast<double>(s1.time);
    double t2 = static_cast<double>(s2.time);
    double b = (t2 - t1) / (1.0 / f2 - 1.0 / f1);
    double a = t1 - b / f1;

    auto solve = [&](double target) {
        double denom = target - a;
        if (denom <= 0.0 || b <= 0.0)
            return f_max;
        return std::clamp(b / denom, f_min, f_max);
    };

    double target = static_cast<double>(target_time);
    Hertz f = solve(target);
    SimStats stats = cachedSynchronous(config_, bench, f);

    // One secant refinement against the measured point.
    double t_f = static_cast<double>(stats.time);
    if (std::abs(t_f - target) / target > 0.002) {
        // Re-fit b through the new measurement, keeping a.
        double b2 = (t_f - a) * f;
        double denom = target - a;
        if (denom > 0.0 && b2 > 0.0) {
            Hertz f_refined = std::clamp(b2 / denom, f_min, f_max);
            SimStats refined = cachedSynchronous(config_, bench,
                                                 f_refined);
            if (std::abs(static_cast<double>(refined.time) - target) <
                std::abs(t_f - target)) {
                stats = refined;
                f = f_refined;
            }
        }
    }

    GlobalResult result;
    result.stats = stats;
    result.freq = f;
    return result;
}

} // namespace mcd
