#include "harness/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace mcd
{

void
RunnerConfig::applyEnvOverrides()
{
    if (const char *s = std::getenv("MCD_INSNS")) {
        long long v = std::atoll(s);
        if (v > 0)
            instructions = static_cast<std::uint64_t>(v);
    }
    if (const char *s = std::getenv("MCD_WARMUP")) {
        long long v = std::atoll(s);
        if (v >= 0)
            warmup = static_cast<std::uint64_t>(v);
    }
    if (const char *s = std::getenv("MCD_INTERVAL")) {
        long long v = std::atoll(s);
        if (v > 0)
            intervalInstructions = static_cast<int>(v);
    }
}

Runner::Runner(const RunnerConfig &config)
    : config_(config)
{
}

SimStats
Runner::runOnce(const std::string &bench, ClockMode mode,
                Hertz start_freq, FrequencyController *controller,
                std::function<void(const IntervalStats &)> observer)
{
    auto workload = BenchmarkFactory::create(bench, horizon());

    SimConfig sim_config;
    sim_config.core = config_.core;
    sim_config.core.intervalInstructions = config_.intervalInstructions;
    sim_config.dvfs = config_.dvfs;
    sim_config.energy = config_.energy;
    sim_config.clocks.mode = mode;
    sim_config.clocks.startFreq = start_freq;
    sim_config.clocks.seed = config_.clockSeed;
    sim_config.clocks.jittered = config_.jitter;

    Simulator sim(sim_config, *workload, controller);
    if (observer)
        sim.setIntervalObserver(std::move(observer));

    if (config_.warmup > 0) {
        sim.run(config_.warmup);
        sim.resetMeasurement();
    }
    sim.run(config_.instructions);
    return sim.stats();
}

SimStats
Runner::runSynchronous(const std::string &bench, Hertz freq)
{
    return runOnce(bench, ClockMode::Synchronous, freq, nullptr, {});
}

SimStats
Runner::runMcdBaseline(const std::string &bench,
                       std::vector<IntervalProfile> *profile)
{
    ProfilingController profiler;
    SimStats stats = runOnce(bench, ClockMode::Mcd,
                             config_.dvfs.freqMax, &profiler, {});
    if (profile)
        *profile = profiler.profile();
    return stats;
}

SimStats
Runner::runAttackDecay(
    const std::string &bench, const AttackDecayConfig &adc,
    std::function<void(const IntervalStats &)> observer)
{
    AttackDecayController controller(adc);
    return runOnce(bench, ClockMode::Mcd, config_.dvfs.freqMax,
                   &controller, std::move(observer));
}

SimStats
Runner::runSchedule(const std::string &bench,
                    const std::vector<FrequencyVector> &schedule)
{
    ScheduleController controller(schedule);
    return runOnce(bench, ClockMode::Mcd, config_.dvfs.freqMax,
                   &controller, {});
}

SimStats
Runner::runWithController(
    const std::string &bench, ClockMode mode, Hertz start_freq,
    FrequencyController &controller,
    std::function<void(const IntervalStats &)> observer)
{
    return runOnce(bench, mode, start_freq, &controller,
                   std::move(observer));
}

OfflineResult
Runner::runOfflineDynamic(const std::string &bench, double target_deg,
                          const SimStats &mcd_base,
                          const std::vector<IntervalProfile> &profile)
{
    DvfsModel dvfs(config_.dvfs);
    double t_base = static_cast<double>(mcd_base.time);

    auto degradation = [&](const SimStats &s) {
        return (static_cast<double>(s.time) - t_base) / t_base;
    };

    // Phase 1: binary-search a shared margin. Margin is monotone:
    // larger margin -> higher frequencies -> less degradation.
    double lo = 0.0;   // most aggressive
    double hi = 1.0;   // all domains at maximum
    OfflineResult best;
    bool have_best = false;

    auto consider = [&](const std::array<double, NUM_CONTROLLED>
                            &margins,
                        double shared_margin) {
        auto schedule = deriveSchedule(profile, dvfs, margins);
        SimStats stats = runSchedule(bench, schedule);
        double deg = degradation(stats);
        bool accepted = deg <= target_deg &&
            (!have_best || stats.chipEnergy < best.stats.chipEnergy);
        if (accepted) {
            best.stats = stats;
            best.margin = shared_margin;
            best.achievedDeg = deg;
            have_best = true;
        }
        return std::pair<double, bool>(deg, accepted);
    };

    double shared = 1.0;
    for (int iter = 0; iter < 7; ++iter) {
        double margin = 0.5 * (lo + hi);
        std::array<double, NUM_CONTROLLED> margins;
        margins.fill(margin);
        auto [deg, accepted] = consider(margins, margin);
        (void)accepted;
        if (deg > target_deg) {
            lo = margin; // too slow: be less aggressive
        } else {
            hi = margin; // within cap: try more aggressive
            shared = margin;
        }
    }

    if (!have_best) {
        // Even margin = 1 (everything at f_max) should satisfy the cap;
        // fall back to it explicitly.
        std::array<double, NUM_CONTROLLED> margins;
        margins.fill(1.0);
        consider(margins, 1.0);
        if (!have_best) {
            auto schedule = deriveSchedule(profile, dvfs, 1.0);
            best.stats = runSchedule(bench, schedule);
            best.margin = 1.0;
            best.achievedDeg = degradation(best.stats);
            return best;
        }
    }

    // Phase 2: per-domain refinement (coordinate descent). A shared
    // margin is gated by the single most sensitive domain; the original
    // shaker algorithm distributes slack per domain, which this
    // approximates by independently lowering each domain's margin while
    // the cap still holds.
    std::array<double, NUM_CONTROLLED> margins;
    margins.fill(shared);
    for (int slot = 0; slot < NUM_CONTROLLED; ++slot) {
        auto s = static_cast<std::size_t>(slot);
        for (double factor : {0.5, 0.25, 0.0}) {
            double saved = margins[s];
            margins[s] = shared * factor;
            auto [deg, accepted] = consider(margins, shared);
            (void)deg;
            if (!accepted) {
                margins[s] = saved; // revert and stop lowering
                break;
            }
        }
    }
    return best;
}

GlobalResult
Runner::runGlobalAtDegradation(const std::string &bench,
                               double target_deg)
{
    GlobalResult result;
    result.freq = std::clamp(
        config_.dvfs.freqMax / (1.0 + std::max(0.0, target_deg)),
        config_.dvfs.freqMin, config_.dvfs.freqMax);
    result.stats = runSynchronous(bench, result.freq);
    return result;
}

GlobalResult
Runner::runGlobalMatching(const std::string &bench, Tick target_time)
{
    const Hertz f_max = config_.dvfs.freqMax;
    const Hertz f_min = config_.dvfs.freqMin;

    // Fit T(f) = a + b/f from two calibration runs.
    Hertz f1 = f_max;
    Hertz f2 = 0.5 * (f_max + f_min);
    SimStats s1 = runSynchronous(bench, f1);
    SimStats s2 = runSynchronous(bench, f2);
    double t1 = static_cast<double>(s1.time);
    double t2 = static_cast<double>(s2.time);
    double b = (t2 - t1) / (1.0 / f2 - 1.0 / f1);
    double a = t1 - b / f1;

    auto solve = [&](double target) {
        double denom = target - a;
        if (denom <= 0.0 || b <= 0.0)
            return f_max;
        return std::clamp(b / denom, f_min, f_max);
    };

    double target = static_cast<double>(target_time);
    Hertz f = solve(target);
    SimStats stats = runSynchronous(bench, f);

    // One secant refinement against the measured point.
    double t_f = static_cast<double>(stats.time);
    if (std::abs(t_f - target) / target > 0.002) {
        // Re-fit b through the new measurement, keeping a.
        double b2 = (t_f - a) * f;
        double denom = target - a;
        if (denom > 0.0 && b2 > 0.0) {
            Hertz f_refined = std::clamp(b2 / denom, f_min, f_max);
            SimStats refined = runSynchronous(bench, f_refined);
            if (std::abs(static_cast<double>(refined.time) - target) <
                std::abs(t_f - target)) {
                stats = refined;
                f = f_refined;
            }
        }
    }

    GlobalResult result;
    result.stats = stats;
    result.freq = f;
    return result;
}

} // namespace mcd
