/**
 * @file
 * Warm-up checkpoints as first-class artifacts. A `CheckpointSpec`
 * names one point of one run's uncontrolled prefix — benchmark,
 * machine mode, start frequency, commit-count target, methodology —
 * and resolves through the process-wide `ArtifactCache` to a
 * `SimCheckpoint`: the exact serialized machine
 * (`Simulator::saveCheckpoint`) at that point.
 *
 * The bit-identity contract: restoring a checkpoint and running on is
 * byte-identical to having simulated straight through. It rests on
 * two invariants the core layer tests pin down:
 *
 *  - run composition (`SplitRunsComposeExactly`): `runTo` stops are
 *    behavior-free, so the ladder's intermediate stops change nothing;
 *  - exact state capture: every stateful subsystem serializes with
 *    raw-bit encodings (IEEE-754 doubles included) and the pending
 *    power batch is saved unflushed, so even floating-point summation
 *    order is reproduced.
 *
 * Checkpoints ladder: building the snapshot at instruction K first
 * resolves the snapshot at the largest `checkpointEvery` multiple
 * strictly below K (recursively, down to a cold start), so one long
 * warm-up populates a chain of resume points and later requests
 * fast-forward from the nearest one. The controller never appears in
 * the key — warm-up runs uncontrolled (methodology v2), so every
 * controller variant of a figure shares the same snapshots. Stale
 * versions and corrupt blobs decode as cache misses and heal by
 * re-simulation, like every other artifact.
 */

#ifndef MCD_HARNESS_CHECKPOINT_HH
#define MCD_HARNESS_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "harness/experiment.hh"

namespace mcd
{

/** One stored machine snapshot: the artifact of a CheckpointSpec. */
struct SimCheckpoint
{
    /**
     * Commit count the machine actually reached — the requested `at`
     * plus up to retireWidth-1 overshoot (the commit stage never stops
     * mid-retire-group; that is what makes stops behavior-free).
     */
    std::uint64_t atInstructions = 0;

    /** Simulator::saveCheckpoint bytes (restoreCheckpoint's input). */
    std::string state;
};

template <> struct ArtifactTraits<SimCheckpoint>
{
    static constexpr const char *name = "sim_checkpoint";
    static constexpr std::uint64_t version = 1;
    static void encodePayload(std::string &out, const SimCheckpoint &c);
    static bool decodePayload(serial::Reader &in, SimCheckpoint &c);
};

/**
 * Request spec for the machine snapshot at committed-instruction
 * point `at` of one run's uncontrolled prefix. The key covers
 * everything that shapes the machine up to that point — benchmark,
 * mode, start frequency, `at`, methodology/machine config — and
 * nothing else: controllers engage only after warm-up, and
 * `config.checkpointEvery` shapes the build ladder, never the value.
 */
struct CheckpointSpec
{
    using Artifact = SimCheckpoint;

    std::string benchmark;
    ClockMode mode = ClockMode::Mcd;
    Hertz startFreq = 0.0; //!< 0 selects config.dvfs.freqMax
    std::uint64_t at = 0;  //!< runTo target in committed instructions
    RunnerConfig config;   //!< methodology + machine

    /** The frequency the machine actually starts at. */
    Hertz resolvedStartFreq() const
    {
        return startFreq > 0.0 ? startFreq : config.dvfs.freqMax;
    }

    /** Exact, collision-free artifact key (namespace "checkpoint/1"). */
    std::string cacheKey() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;

    /**
     * Simulate (or fast-forward, via the ladder) to `at` and snapshot.
     * Counts one simulation plus the instructions actually stepped.
     */
    SimCheckpoint build(ArtifactCache &cache) const;
};

} // namespace mcd

#endif // MCD_HARNESS_CHECKPOINT_HH
