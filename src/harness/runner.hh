/**
 * @file
 * Experiment runner: canonical machine configurations (fully synchronous
 * reference, baseline MCD, Attack/Decay MCD, off-line Dynamic-X% MCD,
 * globally scaled synchronous) and the search drivers that tune the
 * off-line margin and the global-DVFS frequency to a performance target.
 *
 * Every variant of one benchmark consumes the identical micro-op stream
 * (same spec, seed, and horizon) and identical clock seeds, so measured
 * differences come from the machine, not the workload.
 */

#ifndef MCD_HARNESS_RUNNER_HH
#define MCD_HARNESS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "control/attack_decay.hh"
#include "control/basic_controllers.hh"
#include "control/controller_registry.hh"
#include "core/simulator.hh"
#include "harness/metrics.hh"
#include "workload/benchmark_factory.hh"

namespace mcd
{

/** Shared measurement methodology for a set of experiments. */
struct RunnerConfig
{
    std::uint64_t instructions = 400000; //!< measured window
    std::uint64_t warmup = 50000;        //!< excluded from measurement
    std::uint64_t clockSeed = 12345;
    bool jitter = true;
    CoreConfig core{};
    DvfsConfig dvfs{};
    EnergyConfig energy{};

    /**
     * Control interval in committed instructions. The paper samples
     * every 10,000 instructions over 50M-200M instruction windows
     * (5,000-20,000 control epochs). Our scaled windows keep the
     * controller's per-epoch dynamics identical but shrink the epoch so
     * the number of control epochs stays paper-like (DESIGN.md,
     * substitution 4). 1,000 instructions is still an order of
     * magnitude above the control-loop delay, preserving stability.
     */
    int intervalInstructions = 1000;

    /**
     * Worker threads for batched searches (the offline Dynamic-X%
     * margin probes) and for ParallelSweep instances built from this
     * config. 0 selects ParallelSweep::defaultWorkers() (MCD_JOBS env
     * override, else hardware concurrency); 1 forces serial execution.
     * Results are bit-identical for any value.
     */
    int jobs = 0;

    /**
     * Root directory of the persistent artifact store ("" = in-memory
     * only). When set — directly, via `MCD_STORE`, or via `mcd_cli
     * --store` — every artifact request made with this config attaches
     * the process-wide ArtifactCache's disk layer to it, so results
     * persist across processes. Like `jobs`, this is excluded from
     * cache keys: where a result is stored never changes its value.
     */
    std::string store;

    /**
     * Checkpoint ladder spacing in committed instructions (0 = off;
     * `MCD_CHECKPOINT` / `mcd_cli --checkpoint-every`). When set, the
     * uncontrolled warm-up prefix of every run resolves through a
     * `CheckpointSpec` artifact (harness/checkpoint.hh): a warm store
     * fast-forwards the machine to the warm-up point by deserializing
     * a snapshot instead of re-simulating it, bit-identically to the
     * cold run. Like `jobs` and `store`, excluded from cache keys —
     * the run-composition contract makes results independent of where
     * (or whether) a run was checkpointed; only the cost of producing
     * them changes.
     */
    std::uint64_t checkpointEvery = 0;

    /** Apply MCD_INSNS / MCD_WARMUP / MCD_INTERVAL / MCD_JOBS /
     *  MCD_STORE / MCD_CHECKPOINT env overrides. */
    void applyEnvOverrides();

    /**
     * Append the exact methodology+machine serialization every
     * artifact cache key embeds (common/serial.hh byte layout). The
     * leading methodology version retires every cached artifact when
     * the measurement procedure itself changes (v2: warm-up runs
     * uncontrolled and the controller engages at the measurement
     * boundary). `jobs`, `store`, and `checkpointEvery` are
     * deliberately excluded: the determinism contract makes results
     * worker-count independent, the storage location never changes a
     * value, and checkpointing changes only the cost of a run, never
     * its result.
     */
    void appendTo(std::string &out) const;

    /** One-line human-readable summary (provenance sidecars). */
    std::string describe() const;
};

/**
 * The machine a RunnerConfig describes, assembled for one (mode,
 * start-frequency) operating point. Single definition shared by the
 * runner's execution path and the checkpoint builder
 * (harness/checkpoint.cc) so a restored snapshot always meets the
 * exact machine that produced it.
 */
SimConfig makeSimConfig(const RunnerConfig &config, ClockMode mode,
                        Hertz start_freq);

/** Result of an off-line Dynamic-X% search. */
struct OfflineResult
{
    SimStats stats;
    double margin = 0.0;      //!< tuned aggressiveness knob
    double achievedDeg = 0.0; //!< degradation vs the baseline MCD run
};

/** Result of a global-DVFS frequency match. */
struct GlobalResult
{
    SimStats stats;
    Hertz freq = 0.0;
};

/**
 * Runs one benchmark under the canonical machine variants. Every
 * variant method is a thin wrapper over one spec-driven path: it
 * builds a ControllerSpec, instantiates it through the
 * ControllerRegistry, and executes under the shared methodology
 * (runWithOptionalController). The declarative layer on top is
 * harness/experiment.hh.
 */
class Runner
{
  public:
    explicit Runner(const RunnerConfig &config = RunnerConfig{});

    const RunnerConfig &config() const { return config_; }

    /**
     * The shared spec-driven execution path: run `bench` under the
     * standard methodology with a registry-created (possibly null =
     * uncontrolled) controller. All variant methods and the
     * ExperimentSpec executor funnel through here.
     *
     * Methodology v2: the warm-up prefix always runs uncontrolled
     * (domains at the start frequency); the controller and the
     * interval observer engage at the measurement boundary, right
     * after `resetMeasurement()`. The warm-up machine state is
     * therefore a pure function of (benchmark, mode, start frequency,
     * config) — shared by every controller — which is what lets
     * `checkpointEvery` fast-forward all of a figure's variants from
     * one stored snapshot.
     */
    SimStats runWithOptionalController(
        const std::string &bench, ClockMode mode, Hertz start_freq,
        FrequencyController *controller,
        std::function<void(const IntervalStats &)> observer = {});

    /** Fully synchronous processor at a single global frequency. */
    SimStats runSynchronous(const std::string &bench, Hertz freq);

    /**
     * Baseline MCD processor (all domains at maximum). Optionally
     * records the per-interval profile used by the off-line algorithm.
     * Both products — the SimStats and the profile — resolve through
     * the artifact store (ExperimentSpec / ProfileSpec), so a warm
     * store serves them with zero simulations and a cold one pays a
     * single profiling run for the pair.
     */
    SimStats runMcdBaseline(const std::string &bench,
                            std::vector<IntervalProfile> *profile =
                                nullptr);

    /**
     * MCD processor under the Attack/Decay controller. Optionally
     * streams per-interval samples to `observer` (figures 2/3).
     */
    SimStats runAttackDecay(
        const std::string &bench, const AttackDecayConfig &adc,
        std::function<void(const IntervalStats &)> observer = {});

    /** MCD processor replaying an off-line frequency schedule. */
    SimStats runSchedule(const std::string &bench,
                         const std::vector<FrequencyVector> &schedule);

    /**
     * Escape hatch for custom controllers (extensions, ablations):
     * run the benchmark under the standard methodology with a caller-
     * supplied controller.
     */
    SimStats runWithController(
        const std::string &bench, ClockMode mode, Hertz start_freq,
        FrequencyController &controller,
        std::function<void(const IntervalStats &)> observer = {});

    /**
     * Off-line Dynamic-X% comparator: tune the schedule margin so the
     * replayed run degrades by `target_deg` over `mcd_base`. The whole
     * search result is an OfflineSearchSpec artifact — a warm store
     * returns it without probing at all — and on a miss the raw
     * search (searchOfflineDynamic) runs, whose probes are themselves
     * ExperimentSpec artifacts, so probes shared between searches
     * (e.g. the coarse grid of Dynamic-1% and Dynamic-5%) simulate
     * once and persist.
     */
    OfflineResult runOfflineDynamic(
        const std::string &bench, double target_deg,
        const SimStats &mcd_base,
        const std::vector<IntervalProfile> &profile);

    /**
     * The raw off-line search driver behind runOfflineDynamic,
     * bypassing the search-result memo (probe runs still resolve
     * through the store): parallel grid batches — coarse grid,
     * bracketed refinement, then per-domain refinement — fanned
     * across the sweep workers.
     */
    OfflineResult searchOfflineDynamic(
        const std::string &bench, double target_deg,
        const SimStats &mcd_base,
        const std::vector<IntervalProfile> &profile);

    /**
     * Global DVFS comparator, frequency-matched interpretation (used by
     * Table 6): the whole synchronous chip is slowed by the target
     * degradation factor, f = f_max / (1 + target_deg). This matches the
     * paper's analysis of "realistic global frequency/voltage scaling",
     * which treats the frequency cut as the performance cost (and hence
     * reports the power/performance ratio near 2).
     */
    GlobalResult runGlobalAtDegradation(const std::string &bench,
                                        double target_deg);

    /** The closed-form frequency runGlobalAtDegradation runs at:
     *  f = f_max / (1 + target_deg), clamped to the DVFS range. */
    Hertz globalMatchedFrequency(double target_deg) const;

    /**
     * Global DVFS comparator, time-matched interpretation (ablation):
     * find the single synchronous frequency whose measured run time
     * matches `target_time`, using a T(f) = a + b/f model fitted from
     * two calibration runs plus one secant refinement. Memory-bound
     * applications barely slow down with frequency, so this
     * interpretation lets global DVFS cut frequency much deeper.
     * The search result is a GlobalMatchSpec artifact; a warm store
     * skips the calibration runs entirely.
     */
    GlobalResult runGlobalMatching(const std::string &bench,
                                   Tick target_time);

    /** The raw calibration search behind runGlobalMatching (its
     *  synchronous probe runs still resolve through the store). */
    GlobalResult searchGlobalMatching(const std::string &bench,
                                      Tick target_time);

  private:
    RunnerConfig config_;

    std::uint64_t horizon() const
    {
        return config_.instructions + config_.warmup;
    }
};

} // namespace mcd

#endif // MCD_HARNESS_RUNNER_HH
