#include "harness/metrics.hh"

#include "common/logging.hh"

namespace mcd
{

ComparisonMetrics
compare(const SimStats &ref, const SimStats &x)
{
    if (ref.time <= 0 || ref.chipEnergy <= 0.0)
        mcd_panic("reference run has no measured time/energy");

    ComparisonMetrics m;
    double t_ref = static_cast<double>(ref.time);
    double t_x = static_cast<double>(x.time);
    m.perfDegradation = (t_x - t_ref) / t_ref;
    m.energySavings = (ref.chipEnergy - x.chipEnergy) / ref.chipEnergy;
    m.edpImprovement =
        1.0 - (x.chipEnergy * t_x) / (ref.chipEnergy * t_ref);
    m.powerSavings =
        1.0 - (x.chipEnergy / t_x) / (ref.chipEnergy / t_ref);
    m.epiReduction = (ref.epi - x.epi) / ref.epi;
    m.cpiIncrease = (x.cpi - ref.cpi) / ref.cpi;
    return m;
}

double
meanOf(const std::vector<ComparisonMetrics> &all,
       double ComparisonMetrics::*field)
{
    if (all.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &m : all)
        sum += m.*field;
    return sum / static_cast<double>(all.size());
}

double
powerPerfRatio(const std::vector<ComparisonMetrics> &all)
{
    double deg = meanOf(all, &ComparisonMetrics::perfDegradation);
    double power = meanOf(all, &ComparisonMetrics::powerSavings);
    if (deg <= 0.0)
        return 0.0;
    return power / deg;
}

} // namespace mcd
