/**
 * @file
 * The fleet layer: shard a batch of figure/ablation targets across N
 * concurrent worker *processes* — fork/exec of our own bench binaries
 * (or any command) — all pointed at one shared `MCD_STORE` artifact
 * store. This is where the determinism contract pays off across
 * process boundaries: every worker computes bit-identical artifacts
 * for equal keys, `DiskStore` writes are atomic, so workers share
 * baselines and searches through the store instead of recomputing
 * them, and a warm store replays the whole fleet with zero
 * simulations.
 *
 * The driver provides
 *  - a bounded process pool (`FleetOptions::procs`) fed work-queue
 *    style, with per-target stdout/stderr capture;
 *  - per-target retry-on-crash (`FleetOptions::retries` respawns for
 *    nonzero exits or signals — a crashed worker costs only the
 *    artifacts it had not yet written);
 *  - a merged `store:` report parsed from each worker's stderr line
 *    (bench/bench_util.cc prints it) and summed across the fleet;
 *  - deterministic collation: `FleetReport::targets` is in submission
 *    order regardless of scheduling, so concatenated per-target
 *    stdout is byte-identical for any `procs`.
 *
 * Surfaced as `mcd_cli fleet <targets...> --procs N --store DIR`
 * (bench/mcd_cli.cc); store lifecycle (GC, provenance sidecars) lives
 * in `DiskStore::prune` / `mcd_cli cache prune`.
 */

#ifndef MCD_HARNESS_FLEET_HH
#define MCD_HARNESS_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mcd
{

/** One unit of fleet work: a child process to run to completion. */
struct FleetTarget
{
    std::string name;              //!< display/collation name
    std::vector<std::string> argv; //!< program path + arguments
};

/** Worker store counters, parsed from its `store:` stderr line. */
struct FleetStoreStats
{
    bool present = false; //!< the worker printed a `store:` line
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t diskHits = 0;
    std::uint64_t simulations = 0;
};

/** How to run the fleet. */
struct FleetOptions
{
    /** Concurrent worker processes (clamped to >= 1). */
    int procs = 1;

    /** Respawns allowed per target after a crash or nonzero exit. */
    int retries = 1;

    /**
     * Shared artifact store root exported to every worker as
     * MCD_STORE ("" = inherit the parent environment unchanged).
     */
    std::string store;
};

/** Outcome of one target (its final attempt). */
struct FleetResult
{
    std::string name;
    bool succeeded = false;
    int attempts = 0;
    int exitCode = -1;      //!< final exit code; 128+signo for signals
    std::string stdoutText; //!< captured stdout of the final attempt
    std::string stderrText; //!< captured stderr of the final attempt
    FleetStoreStats store;  //!< parsed from the final attempt
};

/** Outcome of the whole fleet. */
struct FleetReport
{
    std::vector<FleetResult> targets; //!< in submission order
    FleetStoreStats merged; //!< summed over final attempts
    std::size_t failed = 0;  //!< targets whose final attempt failed
    std::size_t retried = 0; //!< targets that needed > 1 attempt
};

/**
 * Parse the last `store: lookups=... hits=... disk_hits=...
 * simulations=...` line out of a worker's captured stderr.
 * `present` is false when no such line exists (the target is not one
 * of our bench binaries, or it died before reporting).
 */
FleetStoreStats parseStoreStatsLine(const std::string &stderr_text);

/**
 * Run every target to completion across `options.procs` concurrent
 * worker processes and collate the results in submission order.
 * Workers inherit the parent environment, with MCD_STORE overridden
 * to `options.store` when set. Blocks until the fleet drains; never
 * throws on target failure (inspect `failed` / per-target results).
 */
FleetReport runFleet(const std::vector<FleetTarget> &targets,
                     const FleetOptions &options);

} // namespace mcd

#endif // MCD_HARNESS_FLEET_HH
