#include "harness/artifact_store.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <unistd.h>

#include "common/logging.hh"
#include "common/serial.hh"
#include "telemetry/profiler.hh"
#include "telemetry/stat_registry.hh"

namespace mcd
{

namespace
{

// Process-wide disk I/O counters: every DiskStore instance feeds the
// same pair, so `metrics` reports total artifact-store traffic.
telemetry::Counter &
diskReadBytes()
{
    static telemetry::Counter &c =
        telemetry::StatRegistry::instance().counter(
            "store.disk.read_bytes");
    return c;
}

telemetry::Counter &
diskWriteBytes()
{
    static telemetry::Counter &c =
        telemetry::StatRegistry::instance().counter(
            "store.disk.write_bytes");
    return c;
}

} // namespace

namespace fs = std::filesystem;

// ------------------------------------------------------- MemoryStore

bool
MemoryStore::get(const std::string &key, std::string &blob)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    blob = it->second;
    return true;
}

void
MemoryStore::put(const std::string &key, const std::string &blob,
                 const std::string &provenance)
{
    (void)provenance; // meaningful only for persistent backends
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end())
        bytes_ -= it->second.size();
    bytes_ += blob.size();
    map_[key] = blob;
}

std::size_t
MemoryStore::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::uint64_t
MemoryStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

void
MemoryStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    bytes_ = 0;
}

// --------------------------------------------------------- DiskStore

namespace
{

/**
 * Entry file layout (everything after the magic built with
 * common/serial.hh): magic "MCDA", u64 format version, length-prefixed
 * key, length-prefixed blob, u64 FNV-1a checksum of all preceding
 * bytes. The key makes 64-bit-hash file-name collisions detectable
 * (the stored key simply wins the file; the loser re-reads as a miss
 * and recomputes), and the trailing checksum catches torn or
 * bit-rotted files.
 */
constexpr char MAGIC[4] = {'M', 'C', 'D', 'A'};
constexpr std::uint64_t FORMAT_VERSION = 1;

constexpr const char *ENTRY_EXT = ".mcda";
constexpr const char *SIDECAR_EXT = ".meta";

std::string
hexHash(const std::string &key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(serial::fnv1a(key)));
    return buf;
}

bool
isHexStem(const std::string &stem)
{
    if (stem.size() != 16)
        return false;
    for (char c : stem)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

/** Exactly `<16 hex>` + `ext` — the only names the store writes. */
bool
hasStoreName(const std::string &name, const char *ext)
{
    std::string suffix(ext);
    if (name.size() != 16 + suffix.size() ||
        name.compare(16, suffix.size(), suffix) != 0)
        return false;
    return isHexStem(name.substr(0, 16));
}

/**
 * A temp file this store wrote: `<16 hex>.<mcda|meta>.tmp.<pid>.<n>`.
 * The prefix must match exactly so a sweep can never unlink a foreign
 * file that merely contains ".tmp." somewhere in its name.
 */
bool
isTempName(const std::string &name)
{
    for (const char *ext : {ENTRY_EXT, SIDECAR_EXT}) {
        std::string prefix = std::string(ext) + ".tmp.";
        if (name.size() > 16 + prefix.size() &&
            name.compare(16, prefix.size(), prefix) == 0 &&
            isHexStem(name.substr(0, 16)))
            return true;
    }
    return false;
}

std::int64_t
fileAgeSeconds(const fs::path &path, std::error_code &ec)
{
    auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    auto age = std::chrono::duration_cast<std::chrono::seconds>(
        fs::file_time_type::clock::now() - mtime);
    return std::max<std::int64_t>(0, age.count());
}

/**
 * Unique-temp-then-rename: the only write pattern in the store, so
 * readers never observe partial files. Fatal when `fatal_on_error`
 * (entry writes must not be silently lost); best-effort otherwise
 * (sidecars are advisory metadata).
 */
void
atomicWrite(const fs::path &final_path, const std::string &data,
            bool fatal_on_error)
{
    static std::atomic<std::uint64_t> counter{0};
    fs::path tmp_path = final_path;
    tmp_path += ".tmp." + std::to_string(::getpid()) + "." +
                std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        if (!out.good()) {
            std::error_code ec;
            fs::remove(tmp_path, ec);
            if (fatal_on_error)
                mcd_fatal("cannot write artifact store entry '%s'",
                          tmp_path.string().c_str());
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        if (fatal_on_error)
            mcd_fatal("cannot finalize artifact store entry '%s'",
                      final_path.string().c_str());
    }
}

} // namespace

DiskStore::DiskStore(const std::string &root)
    : root_(root)
{
    if (root_.empty())
        mcd_fatal("DiskStore needs a non-empty root directory");
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec || !fs::is_directory(root_))
        mcd_fatal("cannot create artifact store root '%s': %s",
                  root_.c_str(), ec.message().c_str());
}

std::string
DiskStore::pathFor(const std::string &key) const
{
    return (fs::path(root_) / (hexHash(key) + ENTRY_EXT)).string();
}

std::string
DiskStore::sidecarPathFor(const std::string &key) const
{
    return (fs::path(root_) / (hexHash(key) + SIDECAR_EXT)).string();
}

bool
DiskStore::get(const std::string &key, std::string &blob)
{
    telemetry::ScopedTimer timer(telemetry::Phase::DiskRead);
    std::ifstream in(pathFor(key), std::ios::binary);
    if (!in)
        return false;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    diskReadBytes().inc(data.size());
    if (!in.good() && !in.eof())
        return false;

    if (data.size() < sizeof(MAGIC) + sizeof(std::uint64_t) ||
        data.compare(0, sizeof(MAGIC), MAGIC, sizeof(MAGIC)) != 0)
        return false;
    std::string body = data.substr(
        sizeof(MAGIC), data.size() - sizeof(MAGIC) - sizeof(std::uint64_t));
    std::string tail = data.substr(data.size() - sizeof(std::uint64_t));
    serial::Reader checks(tail);
    if (checks.readU64() !=
        serial::fnv1a(data.substr(0, data.size() - sizeof(std::uint64_t))))
        return false;

    serial::Reader reader(body);
    if (reader.readU64() != FORMAT_VERSION || !reader.ok())
        return false;
    if (reader.readString() != key || !reader.ok())
        return false; // hash collision with a different key: a miss
    std::string payload = reader.readString();
    if (!reader.atEnd())
        return false;
    blob = std::move(payload);
    return true;
}

void
DiskStore::put(const std::string &key, const std::string &blob,
               const std::string &provenance)
{
    telemetry::ScopedTimer timer(telemetry::Phase::DiskWrite);
    std::string data(MAGIC, sizeof(MAGIC));
    std::string body;
    serial::appendU64(body, FORMAT_VERSION);
    serial::appendString(body, key);
    serial::appendString(body, blob);
    data += body;
    serial::appendU64(data, serial::fnv1a(data));

    atomicWrite(pathFor(key), data, /*fatal_on_error=*/true);
    diskWriteBytes().inc(data.size());

    if (!provenance.empty()) {
        // The sidecar exists for humans and external tooling; losing
        // one never loses a result, so its write is best-effort.
        std::string meta = "key_fnv1a=" + hexHash(key) + "\n" +
                           "blob_bytes=" + std::to_string(blob.size()) +
                           "\n" + provenance + "\n";
        atomicWrite(sidecarPathFor(key), meta,
                    /*fatal_on_error=*/false);
    }
}

std::size_t
DiskStore::entries() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec))
        if (entry.is_regular_file() &&
            hasStoreName(entry.path().filename().string(), ENTRY_EXT))
            ++n;
    return n;
}

std::uint64_t
DiskStore::bytes() const
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_regular_file() ||
            !hasStoreName(entry.path().filename().string(), ENTRY_EXT))
            continue;
        std::error_code size_ec;
        auto size = entry.file_size(size_ec);
        // A file can vanish between iteration and stat (another
        // process pruning); skip it rather than adding uintmax(-1).
        if (!size_ec)
            total += size;
    }
    return total;
}

std::vector<DiskStore::EntryInfo>
DiskStore::enumerate() const
{
    std::vector<EntryInfo> infos;
    std::set<std::string> sidecars;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (hasStoreName(name, SIDECAR_EXT)) {
            sidecars.insert(name.substr(0, 16));
            continue;
        }
        if (!hasStoreName(name, ENTRY_EXT))
            continue;
        EntryInfo info;
        info.stem = name.substr(0, 16);
        info.path = entry.path().string();
        std::error_code stat_ec;
        auto size = entry.file_size(stat_ec);
        if (stat_ec)
            continue; // vanished mid-scan (a concurrent prune)
        info.bytes = size;
        info.ageSeconds = fileAgeSeconds(entry.path(), stat_ec);
        infos.push_back(std::move(info));
    }
    std::sort(infos.begin(), infos.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.stem < b.stem;
              });
    for (auto &info : infos)
        info.hasSidecar = sidecars.count(info.stem) != 0;
    return infos;
}

bool
DiskStore::removeEntry(const std::string &key)
{
    std::error_code ec;
    bool removed = fs::remove(pathFor(key), ec) && !ec;
    fs::remove(sidecarPathFor(key), ec);
    return removed;
}

DiskStore::PruneReport
DiskStore::prune(const PruneOptions &options)
{
    PruneReport report;

    struct Victim
    {
        fs::path path;
        std::string stem;
        std::uint64_t bytes = 0;
        std::int64_t age = 0;
    };
    std::vector<Victim> kept;
    std::set<std::string> sidecar_stems;

    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();

        if (isTempName(name)) {
            std::error_code age_ec;
            std::int64_t age = fileAgeSeconds(entry.path(), age_ec);
            if (age_ec)
                continue;
            if (age >= options.tmpAgeSeconds) {
                std::error_code rm_ec;
                if (fs::remove(entry.path(), rm_ec) && !rm_ec)
                    ++report.tmpsRemoved;
            }
            continue;
        }
        if (hasStoreName(name, SIDECAR_EXT)) {
            sidecar_stems.insert(name.substr(0, 16));
            continue;
        }
        if (!hasStoreName(name, ENTRY_EXT))
            continue; // not ours: never touch foreign files

        Victim v;
        v.path = entry.path();
        v.stem = name.substr(0, 16);
        std::error_code stat_ec;
        auto size = entry.file_size(stat_ec);
        if (stat_ec)
            continue;
        v.bytes = size;
        v.age = fileAgeSeconds(entry.path(), stat_ec);
        kept.push_back(std::move(v));
    }

    auto evict = [&](const Victim &v) {
        std::error_code rm_ec;
        if (fs::remove(v.path, rm_ec) && !rm_ec) {
            ++report.entriesRemoved;
            report.bytesRemoved += v.bytes;
        }
    };

    // Age-based eviction first: it is unconditional.
    if (options.maxAgeSeconds >= 0) {
        std::vector<Victim> young;
        for (auto &v : kept) {
            if (v.age > options.maxAgeSeconds)
                evict(v);
            else
                young.push_back(std::move(v));
        }
        kept = std::move(young);
    }

    // Size budget: evict by descending (age+1) x bytes until the
    // store fits. Pure age ordering starves small entries once bulky
    // checkpoint blobs join the store — a few megabyte snapshots
    // written five minutes ago would outlive hundreds of kilobyte
    // stats entries written six — so cost is weighted by the bytes an
    // eviction actually recovers: among same-age entries the largest
    // go first, and a large entry must be proportionally younger than
    // a small one to outrank it. Stems are the deterministic tiebreak
    // for same-score files.
    if (options.maxBytes > 0) {
        auto score = [](const Victim &v) {
            return static_cast<double>(std::max<std::int64_t>(v.age, 0)
                                       + 1) *
                   static_cast<double>(v.bytes);
        };
        std::sort(kept.begin(), kept.end(),
                  [&score](const Victim &a, const Victim &b) {
                      double sa = score(a);
                      double sb = score(b);
                      if (sa != sb)
                          return sa > sb;
                      return a.stem < b.stem;
                  });
        std::uint64_t total = 0;
        for (const auto &v : kept)
            total += v.bytes;
        std::vector<Victim> survivors;
        for (auto &v : kept) {
            if (total > options.maxBytes) {
                total -= v.bytes;
                evict(v);
            } else {
                survivors.push_back(std::move(v));
            }
        }
        kept = std::move(survivors);
    }

    std::set<std::string> kept_stems;
    for (const auto &v : kept) {
        ++report.entriesKept;
        report.bytesKept += v.bytes;
        kept_stems.insert(v.stem);
    }

    // Sidecars follow their entries; an orphan describes nothing.
    for (const auto &stem : sidecar_stems) {
        if (kept_stems.count(stem))
            continue;
        std::error_code rm_ec;
        if (fs::remove(fs::path(root_) / (stem + SIDECAR_EXT), rm_ec) &&
            !rm_ec)
            ++report.sidecarsRemoved;
    }
    return report;
}

} // namespace mcd
