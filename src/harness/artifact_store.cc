#include "harness/artifact_store.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/logging.hh"
#include "common/serial.hh"

namespace mcd
{

namespace fs = std::filesystem;

// ------------------------------------------------------- MemoryStore

bool
MemoryStore::get(const std::string &key, std::string &blob)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end())
        return false;
    blob = it->second;
    return true;
}

void
MemoryStore::put(const std::string &key, const std::string &blob)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end())
        bytes_ -= it->second.size();
    bytes_ += blob.size();
    map_[key] = blob;
}

std::size_t
MemoryStore::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

std::uint64_t
MemoryStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

void
MemoryStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    bytes_ = 0;
}

// --------------------------------------------------------- DiskStore

namespace
{

/**
 * Entry file layout (everything after the magic built with
 * common/serial.hh): magic "MCDA", u64 format version, length-prefixed
 * key, length-prefixed blob, u64 FNV-1a checksum of all preceding
 * bytes. The key makes 64-bit-hash file-name collisions detectable
 * (the stored key simply wins the file; the loser re-reads as a miss
 * and recomputes), and the trailing checksum catches torn or
 * bit-rotted files.
 */
constexpr char MAGIC[4] = {'M', 'C', 'D', 'A'};
constexpr std::uint64_t FORMAT_VERSION = 1;

std::string
hexHash(const std::string &key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(serial::fnv1a(key)));
    return buf;
}

} // namespace

DiskStore::DiskStore(const std::string &root)
    : root_(root)
{
    if (root_.empty())
        mcd_fatal("DiskStore needs a non-empty root directory");
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec || !fs::is_directory(root_))
        mcd_fatal("cannot create artifact store root '%s': %s",
                  root_.c_str(), ec.message().c_str());
}

std::string
DiskStore::pathFor(const std::string &key) const
{
    return (fs::path(root_) / (hexHash(key) + ".mcda")).string();
}

bool
DiskStore::get(const std::string &key, std::string &blob)
{
    std::ifstream in(pathFor(key), std::ios::binary);
    if (!in)
        return false;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return false;

    if (data.size() < sizeof(MAGIC) + sizeof(std::uint64_t) ||
        data.compare(0, sizeof(MAGIC), MAGIC, sizeof(MAGIC)) != 0)
        return false;
    std::string body = data.substr(
        sizeof(MAGIC), data.size() - sizeof(MAGIC) - sizeof(std::uint64_t));
    std::string tail = data.substr(data.size() - sizeof(std::uint64_t));
    serial::Reader checks(tail);
    if (checks.readU64() !=
        serial::fnv1a(data.substr(0, data.size() - sizeof(std::uint64_t))))
        return false;

    serial::Reader reader(body);
    if (reader.readU64() != FORMAT_VERSION || !reader.ok())
        return false;
    if (reader.readString() != key || !reader.ok())
        return false; // hash collision with a different key: a miss
    std::string payload = reader.readString();
    if (!reader.atEnd())
        return false;
    blob = std::move(payload);
    return true;
}

void
DiskStore::put(const std::string &key, const std::string &blob)
{
    std::string data(MAGIC, sizeof(MAGIC));
    std::string body;
    serial::appendU64(body, FORMAT_VERSION);
    serial::appendString(body, key);
    serial::appendString(body, blob);
    data += body;
    serial::appendU64(data, serial::fnv1a(data));

    // Unique temp name per writer (pid + process-wide counter), then an
    // atomic rename: readers never see a partial entry, and same-key
    // racers overwrite each other with identical bytes.
    static std::atomic<std::uint64_t> counter{0};
    fs::path final_path = pathFor(key);
    fs::path tmp_path = final_path;
    tmp_path += ".tmp." + std::to_string(::getpid()) + "." +
                std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        if (!out.good()) {
            std::error_code ec;
            fs::remove(tmp_path, ec);
            mcd_fatal("cannot write artifact store entry '%s'",
                      tmp_path.string().c_str());
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        mcd_fatal("cannot finalize artifact store entry '%s'",
                  final_path.string().c_str());
    }
}

std::size_t
DiskStore::entries() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".mcda")
            ++n;
    return n;
}

std::uint64_t
DiskStore::bytes() const
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".mcda")
            continue;
        std::error_code size_ec;
        auto size = entry.file_size(size_ec);
        // A file can vanish between iteration and stat (another
        // process pruning); skip it rather than adding uintmax(-1).
        if (!size_ec)
            total += size;
    }
    return total;
}

} // namespace mcd
