#include "harness/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mcd
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit = [&os, &widths](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
ghz(double hz, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f GHz", decimals, hz / 1e9);
    return buf;
}

} // namespace mcd
