/**
 * @file
 * The paper's derived metrics (Section 5): performance degradation,
 * energy savings, energy-delay-product improvement, power savings, EPI
 * reduction and CPI increase, always of a configuration X against a
 * reference R (Table 6 uses the baseline MCD processor as R; Figure 4
 * uses the fully synchronous processor).
 */

#ifndef MCD_HARNESS_METRICS_HH
#define MCD_HARNESS_METRICS_HH

#include <vector>

#include "core/simulator.hh"

namespace mcd
{

/** Relative metrics of a run against a reference run. */
struct ComparisonMetrics
{
    double perfDegradation = 0.0; //!< (T_x - T_r) / T_r
    double energySavings = 0.0;   //!< (E_r - E_x) / E_r
    double edpImprovement = 0.0;  //!< 1 - (E_x T_x)/(E_r T_r)
    double powerSavings = 0.0;    //!< 1 - (E_x/T_x)/(E_r/T_r)
    double epiReduction = 0.0;    //!< (EPI_r - EPI_x)/EPI_r
    double cpiIncrease = 0.0;     //!< (CPI_x - CPI_r)/CPI_r
};

/** Compute all relative metrics of `x` against `ref`. */
ComparisonMetrics compare(const SimStats &ref, const SimStats &x);

/** Arithmetic mean of a metric across applications. */
double
meanOf(const std::vector<ComparisonMetrics> &all,
       double ComparisonMetrics::*field);

/**
 * Power-savings-to-performance-degradation ratio of a set of per-
 * application comparisons: mean % power savings / mean % performance
 * degradation (Section 5 / [21]).
 */
double powerPerfRatio(const std::vector<ComparisonMetrics> &all);

} // namespace mcd

#endif // MCD_HARNESS_METRICS_HH
