/**
 * @file
 * The declarative experiment layer. An `ExperimentSpec` fully
 * describes one simulation — scenario name, clock mode, controller
 * spec, methodology (window, seeds, machine configuration) — and the
 * layer executes batches of specs on `ParallelSweep` through a
 * process-wide, spec-keyed `ResultCache`, so a (benchmark, machine)
 * pair that several figures, sweep points, or search probes share
 * simulates exactly once per process.
 *
 * The cache key is an exact serialization of every field that can
 * influence the simulation (raw IEEE-754 bytes for doubles, length-
 * prefixed strings); equal keys therefore imply bit-identical runs,
 * and returning the memoized `SimStats` is indistinguishable from
 * re-simulating. `RunnerConfig::jobs` is deliberately excluded — the
 * determinism contract makes results independent of worker count.
 */

#ifndef MCD_HARNESS_EXPERIMENT_HH
#define MCD_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/controller_registry.hh"
#include "harness/runner.hh"

namespace mcd
{

/** Everything needed to run (or memoize) one simulation. */
struct ExperimentSpec
{
    std::string benchmark;          //!< any registered scenario name
    ClockMode mode = ClockMode::Mcd;
    Hertz startFreq = 0.0;          //!< 0 selects config.dvfs.freqMax
    ControllerSpec controller;       //!< default: "none" (uncontrolled)
    RunnerConfig config;             //!< methodology + machine

    /** The frequency the machine actually starts at. */
    Hertz resolvedStartFreq() const
    {
        return startFreq > 0.0 ? startFreq : config.dvfs.freqMax;
    }

    /** Exact, collision-free ResultCache key. */
    std::string cacheKey() const;

    /** Short display hash of the cache key (FNV-1a, for --json). */
    std::uint64_t hash() const;
};

/** Run one spec directly, bypassing the cache. */
SimStats runExperiment(const ExperimentSpec &spec);

/**
 * Run a batch of specs fanned across ParallelSweep workers (`jobs` as
 * in RunnerConfig::jobs: 0 = default workers, 1 = serial), each
 * resolved through the process-wide ResultCache. Results are in spec
 * order and bit-identical for any worker count; duplicate specs —
 * within the batch or against anything cached earlier in the process —
 * simulate only once.
 */
std::vector<SimStats>
runExperiments(const std::vector<ExperimentSpec> &specs, int jobs = 0);

/**
 * Process-wide SimStats memo, keyed by ExperimentSpec::cacheKey().
 * Thread-safe; concurrent requests for the same key run the
 * simulation once and share the result. `simulationsRun()` is the
 * process-wide run counter: it counts actual simulations, so
 * `lookups() - simulationsRun()` baselines/probes were served from
 * the cache instead of being re-simulated.
 */
class ResultCache
{
  public:
    static ResultCache &instance();

    /** The memoized stats for `spec`, simulating on first request. */
    SimStats getOrRun(const ExperimentSpec &spec);

    /** Total getOrRun calls. */
    std::uint64_t lookups() const;

    /** Cache hits (lookups served without simulating). */
    std::uint64_t hits() const;

    /** Actual simulations executed — the run counter. */
    std::uint64_t simulationsRun() const;

    /** Distinct specs cached. */
    std::size_t size() const;

    /** Drop all entries and zero the counters (tests). */
    void clear();

  private:
    ResultCache() = default;

    struct Entry
    {
        std::once_flag once;
        SimStats stats{};
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
    std::uint64_t lookups_ = 0;
    std::uint64_t runs_ = 0;
};

} // namespace mcd

#endif // MCD_HARNESS_EXPERIMENT_HH
