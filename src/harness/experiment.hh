/**
 * @file
 * The declarative experiment layer. A typed request spec fully
 * describes one experiment product and the layer resolves it through
 * a process-wide, pluggable artifact cache:
 *
 *   ExperimentSpec    -> SimStats                    (one simulation)
 *   ProfileSpec       -> std::vector<IntervalProfile> (the off-line
 *                        profiling pass; publishes the paired baseline
 *                        SimStats as a second artifact of the same run)
 *   OfflineSearchSpec -> OfflineResult   (a whole Dynamic-X% search)
 *   GlobalMatchSpec   -> GlobalResult    (a time-matched global-DVFS
 *                        calibration search)
 *
 * Each spec has an exact, namespaced `cacheKey()` covering every
 * field that can influence the result (raw IEEE-754 bytes for
 * doubles, length-prefixed strings; see common/serial.hh). Bulky
 * nested payloads (an OfflineSearchSpec's baseline stats and interval
 * profile) enter as fixed-width FNV-1a digests of their exact
 * serializations rather than verbatim. Equal keys therefore imply
 * bit-identical artifacts, and a cached artifact is indistinguishable
 * from recomputing. `RunnerConfig::jobs` and `RunnerConfig::store` are
 * deliberately excluded — the determinism contract makes results
 * independent of worker count, and the storage location never changes
 * a value.
 *
 * The `ArtifactCache` layers the in-process `MemoryStore` over an
 * optional persistent `DiskStore` (harness/artifact_store.hh),
 * selected by `RunnerConfig::store` / the `MCD_STORE` environment
 * variable / `mcd_cli --store`. Reads hit memory first (a warm
 * process never re-reads disk), then disk (validated and promoted to
 * memory), and only then simulate; computed artifacts are written
 * through to both layers, so a warm disk store reproduces every
 * figure across processes with zero simulations.
 */

#ifndef MCD_HARNESS_EXPERIMENT_HH
#define MCD_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "control/controller_registry.hh"
#include "harness/artifact.hh"
#include "harness/artifact_store.hh"
#include "harness/runner.hh"
#include "telemetry/stat_registry.hh"

namespace mcd
{

/** Everything needed to run (or memoize) one simulation. */
struct ExperimentSpec
{
    std::string benchmark;          //!< any registered scenario name
    ClockMode mode = ClockMode::Mcd;
    Hertz startFreq = 0.0;          //!< 0 selects config.dvfs.freqMax
    ControllerSpec controller;       //!< default: "none" (uncontrolled)
    RunnerConfig config;             //!< methodology + machine

    /** The frequency the machine actually starts at. */
    Hertz resolvedStartFreq() const
    {
        return startFreq > 0.0 ? startFreq : config.dvfs.freqMax;
    }

    /** Exact, collision-free artifact key (namespace "experiment"). */
    std::string cacheKey() const;

    /** Short display hash of the cache key (FNV-1a, for --json). */
    std::uint64_t hash() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;
};

/**
 * The off-line profiling pass of one benchmark: baseline MCD machine,
 * profiling controller, per-interval activity recorded. Its artifact
 * is the interval profile; the run's SimStats are published under the
 * paired `experimentSpec()` key as a by-product, so requesting both
 * (as Runner::runMcdBaseline does) costs one simulation.
 */
struct ProfileSpec
{
    std::string benchmark;
    RunnerConfig config;

    /** The ExperimentSpec of the same run (its SimStats artifact). */
    ExperimentSpec experimentSpec() const;

    /** Exact, collision-free artifact key (namespace "profile"). */
    std::string cacheKey() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;
};

/**
 * A whole off-line Dynamic-X% margin search. The key covers the
 * baseline stats and interval profile the search tunes against as
 * fixed-width FNV-1a digests of their exact serializations (key format
 * v2) — embedding the multi-KB payloads themselves made every search
 * key giant, and it bought nothing: under the determinism contract
 * both inputs are pure functions of (benchmark, config), so distinct
 * inputs differing only inside a 64-bit hash collision cannot arise
 * from real runs.
 */
struct OfflineSearchSpec
{
    std::string benchmark;
    double targetDeg = 0.0;              //!< degradation cap
    SimStats mcdBase{};                  //!< baseline MCD reference
    std::vector<IntervalProfile> profile; //!< profiling-pass output
    RunnerConfig config;

    /** Digest-keyed artifact key (namespace "offline_search/2"). */
    std::string cacheKey() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;
};

/** A time-matched global-DVFS calibration search (ablation driver). */
struct GlobalMatchSpec
{
    std::string benchmark;
    Tick targetTime = 0; //!< run time the search matches
    RunnerConfig config;

    /** Exact, collision-free key (namespace "global_match"). */
    std::string cacheKey() const;

    /** One-line human-readable description (provenance sidecars). */
    std::string describe() const;
};

/** Run one ExperimentSpec directly, bypassing the cache. */
SimStats runExperiment(const ExperimentSpec &spec);

/**
 * Run a batch of specs fanned across ParallelSweep workers (`jobs` as
 * in RunnerConfig::jobs: 0 = default workers, 1 = serial), each
 * resolved through the process-wide ArtifactCache. Results are in
 * spec order and bit-identical for any worker count; duplicate specs
 * — within the batch or against anything cached earlier in the
 * process or persisted in the disk store — simulate only once.
 */
std::vector<SimStats>
runExperiments(const std::vector<ExperimentSpec> &specs, int jobs = 0);

/**
 * The typed artifact cache: spec-keyed storage for every experiment
 * product, layered memory-over-disk. Thread-safe; concurrent requests
 * for one key compute the artifact once and share it. Nested requests
 * are the norm — an OfflineSearchSpec's compute issues dozens of
 * ExperimentSpec requests for its probes — and every level memoizes,
 * so `simulationsRun()` counts actual simulator executions only:
 * `lookups() - hits()` artifacts were computed, of which
 * `simulationsRun()` required running the simulator.
 *
 * `instance()` is the process-wide cache every Runner and bench
 * consumer resolves through; independently-constructed instances are
 * for tests (e.g. simulating a cold process against a warm DiskStore).
 */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    static ArtifactCache &instance();

    /** The memoized stats for `spec`, simulating on first request. */
    SimStats getOrRun(const ExperimentSpec &spec);

    /** The memoized profiling pass (publishes the paired SimStats). */
    std::vector<IntervalProfile> getOrRun(const ProfileSpec &spec);

    /** The memoized off-line Dynamic-X% search result. */
    OfflineResult getOrRun(const OfflineSearchSpec &spec);

    /** The memoized time-matched global-DVFS search result. */
    GlobalResult getOrRun(const GlobalMatchSpec &spec);

    /**
     * Generic resolution for extension artifact types (e.g. the
     * stress lab's `TraceSpec`, src/eval/trace.hh). `Spec` provides
     *   using Artifact = ...;           // has ArtifactTraits
     *   std::string cacheKey() const;   // exact, namespaced key
     *   std::string describe() const;   // provenance sidecar line
     *   RunnerConfig config;            // config.store attaches disk
     *   Artifact build(ArtifactCache &) const;  // compute on a miss
     *                                   // (call noteSimulation per
     *                                   //  simulator execution)
     * New experiment products plug into the layered store — including
     * the warm-store zero-simulation replay guarantee — with no
     * harness changes.
     */
    template <typename Spec>
    typename Spec::Artifact
    getOrRun(const Spec &spec)
    {
        using Artifact = typename Spec::Artifact;
        attachDiskStore(spec.config.store);
        std::string blob = fetch(
            spec.cacheKey(),
            [](const std::string &b) {
                Artifact value;
                return decodeArtifact(b, value);
            },
            [&] { return encodeArtifact(spec.build(*this)); },
            spec.describe());
        Artifact value;
        if (!decodeArtifact(blob, value))
            mcd_panic("validated artifact blob failed to decode");
        return value;
    }

    /** Count one simulator execution (build callbacks call this). */
    void noteSimulation();

    /**
     * Count `count` simulated (committed) instructions. The runner and
     * checkpoint builders report how far each simulator actually
     * stepped, so `simulatedInstructions()` measures the real
     * simulation work a process performed — the counter the
     * checkpoint-resume CI job asserts shrinks when a warm store
     * fast-forwards runs past their warm-up.
     */
    void noteInstructions(std::uint64_t count);

    /**
     * Attach the persistent layer rooted at `root` (created on
     * demand). No-op when `root` is empty or already attached. A
     * *different* root while one is attached is a hard error (fatal):
     * silently swapping stores mid-process would strand everything
     * written to the first root and mix `diskHits()` across stores —
     * run separate processes, or `detachDiskStore()` first (tests).
     * Called automatically by every getOrRun with the spec's
     * `config.store`, so `MCD_STORE` / `--store` /
     * `RunnerConfig::store` all funnel through here.
     */
    void attachDiskStore(const std::string &root);

    /** Drop the persistent layer (memory layer kept). */
    void detachDiskStore();

    /** Total getOrRun calls, including nested (probe) requests. */
    std::uint64_t lookups() const;

    /** Lookups served without computing (memory or disk). */
    std::uint64_t hits() const;

    /** Hits served by the disk layer (validated, then promoted). */
    std::uint64_t diskHits() const;

    /**
     * Lookups that joined another caller's in-flight fetch of the same
     * key instead of resolving it themselves — the cross-client dedup
     * counter: two concurrent requests for one uncached spec are one
     * compute and one join. Requests arriving after resolution are
     * plain memory hits, not joins.
     */
    std::uint64_t inflightJoins() const;

    /**
     * Whether `key` is already resident — in the memory layer, or
     * present (unvalidated) in the attached disk layer. A reporting
     * hint (the serve layer's cold/warm request classification), not a
     * correctness primitive: a `true` may still fail validation and
     * recompute, and the answer can be stale by the time it returns.
     */
    bool cachedHint(const std::string &key);

    /** Actual simulations executed — the run counter. */
    std::uint64_t simulationsRun() const;

    /** Committed instructions actually simulated (noteInstructions). */
    std::uint64_t simulatedInstructions() const;

    /** Distinct artifacts in the memory layer. */
    std::size_t size() const;

    /**
     * Keys currently being computed. Transiently positive while a
     * fetch is in flight and back to zero once every request resolves
     * — the regression surface for the historical leak where resolved
     * flights were never erased and the map grew per unique key
     * forever.
     */
    std::size_t inflightEntries() const;

    /** Disk-layer root directory ("" when no disk layer). */
    std::string storeRoot() const;

    /** Entries in the disk layer (0 when no disk layer). */
    std::size_t diskEntries() const;

    /** Bytes on disk in the disk layer (0 when no disk layer). */
    std::uint64_t diskBytes() const;

    /**
     * Drop the memory layer and zero the counters, keeping any disk
     * layer attached (tests: this is "start a cold process").
     */
    void clear();

  private:
    struct Inflight
    {
        std::once_flag once;
    };

    /**
     * The layered fetch: memory, then validated disk (promoted), then
     * `build` (written through to both layers, with `provenance` as
     * the disk layer's sidecar text). `validate` re-decodes a
     * candidate blob so corrupt or stale-version disk entries read as
     * misses. Returns a blob that passed `validate`. The key's
     * inflight slot is erased once resolved — later requests re-enter
     * and hit the memory layer instead of an ever-growing map.
     */
    std::string
    fetch(const std::string &key,
          const std::function<bool(const std::string &)> &validate,
          const std::function<std::string()> &build,
          const std::string &provenance);

    /** Store a by-product blob under `key` in both layers. */
    void publish(const std::string &key, const std::string &blob,
                 const std::string &provenance);

    /** Publish this instance's counters in the process StatRegistry
     *  under `store.*` / `sim.*` — instance() does this once, so
     *  test-local caches stay out of the process metrics. */
    void bindStats();

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
    MemoryStore memory_;
    // shared_ptr: fetch/publish snapshot the layer and keep it alive
    // across a long build even if attach/detachDiskStore swaps it out
    // concurrently.
    std::shared_ptr<DiskStore> disk_;
    // Counters are atomics (telemetry::Counter) so reads never take
    // mutex_ and the StatRegistry can expose them as bound views.
    telemetry::Counter lookups_;
    telemetry::Counter computes_;
    telemetry::Counter disk_hits_;
    telemetry::Counter sims_;
    telemetry::Counter sim_insns_;
    telemetry::Counter inflight_joins_;
};

/**
 * The canonical `store:` stderr status line, e.g.
 *   store: lookups=12 hits=4 disk_hits=2 simulations=8
 *          instructions=160000 disk_entries=8 disk_bytes=4096
 *          root=/tmp/store
 * (one line; disk fields only with a disk layer attached). Every
 * call site — figure binaries, fleet workers, the serve daemon —
 * renders through here so the fields can't drift apart from the
 * counters or from fleet's worker-stderr parser.
 */
std::string storeStatsLine(const ArtifactCache &cache);

} // namespace mcd

#endif // MCD_HARNESS_EXPERIMENT_HH
