/**
 * @file
 * Multithreaded batch sweep engine: fans a vector of fully-specified
 * simulation jobs across worker threads and collects the results in job
 * order.
 *
 * Determinism contract: a sweep's results are bit-identical regardless
 * of worker count or scheduling. Two mechanisms guarantee it:
 *
 *  - every job writes its result into a pre-assigned slot, and
 *    aggregation only happens after the whole batch completes, in job
 *    order (floating-point accumulation order is therefore fixed);
 *  - every job's RNG and clock seeds are derived from its `seedIndex`
 *    (deriveJobSeed), never from the executing thread or from wall
 *    clock, so a job simulates the same machine no matter when or
 *    where it runs. Jobs that must stay comparable (the machine
 *    variants of one benchmark, or a schedule probe measured against a
 *    cached baseline) share a seedIndex.
 *
 * The engine backs the figure sweeps (bench/fig4..fig7), the offline
 * Dynamic-X% margin search (Runner::runOfflineDynamic), and any future
 * scenario that batches independent runs.
 */

#ifndef MCD_HARNESS_PARALLEL_SWEEP_HH
#define MCD_HARNESS_PARALLEL_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace mcd
{

/**
 * Mix a base seed with a job index into an independent, reproducible
 * per-job seed (splitmix64 finalizer: consecutive indices yield
 * decorrelated streams).
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            std::uint64_t job_index);

/** One fully-specified unit of sweep work. */
struct SweepJob
{
    std::string label;        //!< e.g. "<benchmark>:<variant>"
    RunnerConfig config{};    //!< methodology for this job
    /**
     * Seed-derivation index. The engine runs the job under a Runner
     * whose clock seed is deriveJobSeed(config.clockSeed, seedIndex).
     * Jobs that must consume identical clock streams (variants of one
     * benchmark that will be compared) share the same seedIndex.
     */
    std::uint64_t seedIndex = 0;
    /** The measurement to execute under the per-job Runner. */
    std::function<SimStats(Runner &)> run;
};

/** Result slot of one SweepJob, in submission order. */
struct SweepResult
{
    std::string label;
    std::uint64_t seedIndex = 0;
    SimStats stats{};
};

/** Work-queue fan-out of simulation jobs across std::thread workers. */
class ParallelSweep
{
  public:
    /**
     * @param workers  number of worker threads; 0 selects
     *                 defaultWorkers() (MCD_JOBS env override, else
     *                 hardware concurrency)
     */
    explicit ParallelSweep(int workers = 0);

    /** MCD_JOBS env override if positive, else hardware concurrency. */
    static int defaultWorkers();

    int workers() const { return workers_; }

    /**
     * Execute all jobs and return their results in job order. Each job
     * gets a private Runner seeded via its seedIndex. Bit-identical
     * output for any worker count.
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs) const;

    /**
     * Generic deterministic fan-out: invoke `body(i)` for i in
     * [0, count) across the workers. The caller's body must only write
     * state owned by index i. With one worker the batch runs inline on
     * the calling thread, in index order.
     *
     * The first exception thrown by any body (lowest index wins, so
     * error reporting is schedule-independent) is rethrown on the
     * calling thread after the batch drains.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &body) const;

    /** forEach that collects return values, in index order. */
    template <typename R>
    std::vector<R>
    map(std::size_t count,
        const std::function<R(std::size_t)> &body) const
    {
        std::vector<R> results(count);
        forEach(count,
                [&](std::size_t i) { results[i] = body(i); });
        return results;
    }

  private:
    int workers_;
};

} // namespace mcd

#endif // MCD_HARNESS_PARALLEL_SWEEP_HH
