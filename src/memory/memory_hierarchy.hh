/**
 * @file
 * The Table 4 memory system: split 64 KB 2-way L1 caches, a unified 1 MB
 * direct-mapped L2 (all inside the MCD chip), and main memory on its own
 * uncontrolled clock. MainMemory models a fixed access latency plus a
 * simple channel-occupancy queue, since the paper's gcc/mcf analyses hinge
 * on the load/store-to-main-memory interface becoming saturated.
 */

#ifndef MCD_MEMORY_MEMORY_HIERARCHY_HH
#define MCD_MEMORY_MEMORY_HIERARCHY_HH

#include <cstdint>

#include "common/types.hh"
#include "memory/cache.hh"

namespace mcd
{

/** How deep an access had to travel. */
enum class MemLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    Memory = 2,
};

/** Outcome of a hierarchy access, for timing and energy accounting. */
struct MemAccessOutcome
{
    MemLevel level = MemLevel::L1;
    int l2Accesses = 0;   //!< L2 array uses (fills + writebacks included)
    int memAccesses = 0;  //!< main-memory line transfers
};

/** Main-memory timing parameters (externally clocked, fixed voltage). */
struct MainMemoryConfig
{
    Tick accessLatency = 80 * TICKS_PER_NS; //!< load-use latency
    Tick channelOccupancy = 10 * TICKS_PER_NS; //!< per-transfer bus hold
};

/** Fixed-latency main memory with a single busy channel. */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryConfig &config = MainMemoryConfig{});

    /**
     * Schedule a line transfer issued at `now`; returns completion time.
     * Transfers serialize on the channel.
     */
    Tick schedule(Tick now);

    const MainMemoryConfig &config() const { return config_; }
    std::uint64_t transfers() const { return transfers_; }
    /** Total time requests waited behind the busy channel. */
    Tick queueingTime() const { return queueing_; }

    /** Serialize channel occupancy and counters (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on short data. */
    bool loadState(serial::Reader &in);

  private:
    MainMemoryConfig config_;
    Tick busy_until_ = 0;
    std::uint64_t transfers_ = 0;
    Tick queueing_ = 0;
};

/** Geometry of the whole hierarchy; defaults are Table 4. */
struct MemoryHierarchyConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 2, 64};
    CacheConfig l1d{"l1d", 64 * 1024, 2, 64};
    CacheConfig l2{"l2", 1024 * 1024, 1, 64};
    MainMemoryConfig memory{};
    int l1Latency = 2;   //!< cycles, in the accessing domain's clock
    int l2Latency = 12;  //!< cycles, load/store domain clock
};

/**
 * Functional composition of the cache levels. The caller converts the
 * returned MemAccessOutcome into cycles (using domain clocks) and energy
 * charges.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(
        const MemoryHierarchyConfig &config = MemoryHierarchyConfig{});

    /** Data-side access (loads and committed stores). */
    MemAccessOutcome accessData(std::uint64_t addr, bool write);

    /** Instruction fetch access. */
    MemAccessOutcome accessInst(std::uint64_t addr);

    const MemoryHierarchyConfig &config() const { return config_; }
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    MainMemory &memory() { return memory_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const MainMemory &memory() const { return memory_; }

    /** Serialize all cache levels + main memory (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on geometry mismatch. */
    bool loadState(serial::Reader &in);

  private:
    MemoryHierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    MainMemory memory_;

    /** Handle an L1 miss (or writeback) against L2 and memory. */
    void refill(std::uint64_t addr, bool write, MemAccessOutcome &outcome);
};

} // namespace mcd

#endif // MCD_MEMORY_MEMORY_HIERARCHY_HH
