/**
 * @file
 * Generic set-associative, write-back, write-allocate cache with true-LRU
 * replacement. The cache is a functional tag model: it answers hit/miss
 * and reports dirty victims; timing (hit latencies, miss penalties,
 * domain clocks) lives in the core, which is what lets one cache class
 * serve L1I, L1D, and the unified L2 of Table 4.
 */

#ifndef MCD_MEMORY_CACHE_HH
#define MCD_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/stats.hh"

namespace mcd
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    int associativity = 2;
    int lineBytes = 64;
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;        //!< a dirty victim was evicted
    std::uint64_t victimAddr = 0;  //!< line address of the dirty victim
};

/** One level of cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    /**
     * Access (and on miss, allocate) the line containing `addr`.
     * @param addr   byte address
     * @param write  true for stores (marks the line dirty)
     */
    CacheAccessResult access(std::uint64_t addr, bool write);

    /** Tag check without any state change. */
    bool probe(std::uint64_t addr) const;

    /** Drop the line containing `addr` if present (no writeback). */
    void invalidate(std::uint64_t addr);

    /** Number of sets. */
    int numSets() const { return num_sets_; }

    /** Line-aligned address of the line containing `addr`. */
    std::uint64_t
    lineAddr(std::uint64_t addr) const
    {
        return addr & ~static_cast<std::uint64_t>(config_.lineBytes - 1);
    }

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }
    const Counter &writebacks() const { return writebacks_; }

    double missRate() const;

    /** Serialize tags/LRU/counters (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on size mismatch or short data. */
    bool loadState(serial::Reader &in);

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    CacheConfig config_;
    int num_sets_;
    int line_shift_;
    std::vector<Line> lines_;
    std::uint64_t lru_clock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter writebacks_;

    int setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
    Line *findLine(std::uint64_t addr);
    const Line *findLine(std::uint64_t addr) const;
};

} // namespace mcd

#endif // MCD_MEMORY_CACHE_HH
