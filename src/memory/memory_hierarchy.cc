#include "memory/memory_hierarchy.hh"

#include <algorithm>

namespace mcd
{

MainMemory::MainMemory(const MainMemoryConfig &config)
    : config_(config)
{
}

Tick
MainMemory::schedule(Tick now)
{
    Tick start = std::max(now, busy_until_);
    queueing_ += start - now;
    busy_until_ = start + config_.channelOccupancy;
    ++transfers_;
    return start + config_.accessLatency;
}

void
MainMemory::saveState(std::string &out) const
{
    serial::appendI64(out, busy_until_);
    serial::appendU64(out, transfers_);
    serial::appendI64(out, queueing_);
}

bool
MainMemory::loadState(serial::Reader &in)
{
    busy_until_ = in.readI64();
    transfers_ = in.readU64();
    queueing_ = in.readI64();
    return in.ok();
}

void
MemoryHierarchy::saveState(std::string &out) const
{
    l1i_.saveState(out);
    l1d_.saveState(out);
    l2_.saveState(out);
    memory_.saveState(out);
}

bool
MemoryHierarchy::loadState(serial::Reader &in)
{
    return l1i_.loadState(in) && l1d_.loadState(in) &&
           l2_.loadState(in) && memory_.loadState(in);
}

MemoryHierarchy::MemoryHierarchy(const MemoryHierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2),
      memory_(config.memory)
{
}

void
MemoryHierarchy::refill(std::uint64_t addr, bool write,
                        MemAccessOutcome &outcome)
{
    CacheAccessResult l2_result = l2_.access(addr, write);
    ++outcome.l2Accesses;
    if (l2_result.hit) {
        outcome.level = MemLevel::L2;
    } else {
        outcome.level = MemLevel::Memory;
        ++outcome.memAccesses;
        if (l2_result.writeback)
            ++outcome.memAccesses; // dirty L2 victim goes to memory
    }
}

MemAccessOutcome
MemoryHierarchy::accessData(std::uint64_t addr, bool write)
{
    MemAccessOutcome outcome;
    CacheAccessResult l1_result = l1d_.access(addr, write);
    if (l1_result.hit)
        return outcome;

    if (l1_result.writeback) {
        // Dirty L1 victim is installed in L2 (write-back hierarchy).
        CacheAccessResult wb = l2_.access(l1_result.victimAddr, true);
        ++outcome.l2Accesses;
        if (!wb.hit && wb.writeback)
            ++outcome.memAccesses;
    }

    refill(addr, false, outcome);
    if (outcome.level == MemLevel::L1)
        outcome.level = MemLevel::L2;
    return outcome;
}

MemAccessOutcome
MemoryHierarchy::accessInst(std::uint64_t addr)
{
    MemAccessOutcome outcome;
    CacheAccessResult l1_result = l1i_.access(addr, false);
    if (l1_result.hit)
        return outcome;
    // L1I is read-only in practice; no dirty victims expected.
    refill(addr, false, outcome);
    if (outcome.level == MemLevel::L1)
        outcome.level = MemLevel::L2;
    return outcome;
}

} // namespace mcd
