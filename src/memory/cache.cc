#include "memory/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace mcd
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config_.sizeBytes) ||
        !isPowerOfTwo(static_cast<std::uint64_t>(config_.lineBytes)))
        mcd_fatal("%s: size and line size must be powers of two",
                  config_.name.c_str());
    if (config_.associativity < 1)
        mcd_fatal("%s: associativity must be >= 1", config_.name.c_str());

    std::uint64_t num_lines = config_.sizeBytes /
        static_cast<std::uint64_t>(config_.lineBytes);
    if (num_lines % static_cast<std::uint64_t>(config_.associativity) != 0)
        mcd_fatal("%s: lines not divisible by associativity",
                  config_.name.c_str());
    num_sets_ = static_cast<int>(
        num_lines / static_cast<std::uint64_t>(config_.associativity));
    if (!isPowerOfTwo(static_cast<std::uint64_t>(num_sets_)))
        mcd_fatal("%s: set count must be a power of two",
                  config_.name.c_str());
    line_shift_ = std::countr_zero(
        static_cast<std::uint64_t>(config_.lineBytes));
    lines_.resize(num_lines);
}

int
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<int>(
        (addr >> line_shift_) &
        static_cast<std::uint64_t>(num_sets_ - 1));
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> line_shift_;
}

Cache::Line *
Cache::findLine(std::uint64_t addr)
{
    int set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    auto *base = &lines_[static_cast<std::size_t>(set) *
                         static_cast<std::size_t>(config_.associativity)];
    for (int w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(std::uint64_t addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool write)
{
    CacheAccessResult result;
    ++lru_clock_;

    if (Line *line = findLine(addr)) {
        hits_.inc();
        line->lruStamp = lru_clock_;
        line->dirty = line->dirty || write;
        result.hit = true;
        return result;
    }

    misses_.inc();

    // Choose a victim: first invalid way, otherwise true LRU.
    int set = setIndex(addr);
    auto *base = &lines_[static_cast<std::size_t>(set) *
                         static_cast<std::size_t>(config_.associativity)];
    Line *victim = &base[0];
    for (int w = 0; w < config_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }

    if (victim->valid && victim->dirty) {
        writebacks_.inc();
        result.writeback = true;
        result.victimAddr = victim->tag << line_shift_;
    }

    victim->valid = true;
    victim->dirty = write;
    victim->tag = tagOf(addr);
    victim->lruStamp = lru_clock_;
    return result;
}

bool
Cache::probe(std::uint64_t addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::invalidate(std::uint64_t addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
    }
}

void
Cache::saveState(std::string &out) const
{
    serial::appendU64(out, lines_.size());
    for (const Line &line : lines_) {
        serial::appendU64(out, line.tag);
        serial::appendU64(out, (line.valid ? 1u : 0u) |
                                   (line.dirty ? 2u : 0u));
        serial::appendU64(out, line.lruStamp);
    }
    serial::appendU64(out, lru_clock_);
    serial::appendU64(out, hits_.value());
    serial::appendU64(out, misses_.value());
    serial::appendU64(out, writebacks_.value());
}

bool
Cache::loadState(serial::Reader &in)
{
    if (in.readU64() != lines_.size())
        return false;
    for (Line &line : lines_) {
        line.tag = in.readU64();
        std::uint64_t flags = in.readU64();
        line.valid = (flags & 1u) != 0;
        line.dirty = (flags & 2u) != 0;
        line.lruStamp = in.readU64();
    }
    lru_clock_ = in.readU64();
    hits_.set(in.readU64());
    misses_.set(in.readU64());
    writebacks_.set(in.readU64());
    return in.ok();
}

double
Cache::missRate() const
{
    std::uint64_t total = hits_.value() + misses_.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses_.value()) /
           static_cast<double>(total);
}

} // namespace mcd
