#include "power/energy_model.hh"

#include "common/logging.hh"

namespace mcd
{

namespace
{

/**
 * Per-access energies in nJ at 1.2 V. Chosen (with the clock-tree values
 * below) to land the steady-state breakdown near the published Wattch
 * 21264-class distribution; see the header comment.
 */
constexpr NanoJoule ACCESS_ENERGY[NUM_STRUCTURES] = {
    0.960, // Icache (per fetch-cycle line read)
    0.270, // BranchPredictor (lookup or update)
    0.165, // RenameTable (per micro-op)
    0.135, // Rob (insert / complete / commit port use)
    0.210, // IntIssueQueue (insert / wakeup+select)
    0.135, // IntRegFile (per operand port)
    0.330, // IntAlu (per operation)
    0.840, // IntMult (per operation)
    0.195, // FpIssueQueue
    0.165, // FpRegFile
    0.630, // FpAlu
    0.990, // FpMult/Div/Sqrt
    0.195, // Lsq (insert / search / issue)
    0.900, // Dcache (per port access)
    3.750, // L2Cache (per access)
    0.180, // ResultBus (per result broadcast)
};

/**
 * Per-cycle clock-tree energy in nJ at 1.2 V, per domain. Sized so the
 * clock subsystem is roughly 30 % of chip energy at CPI ~1 (the Wattch
 * 21264-class share), which makes the paper's +10 % MCD clock adder
 * equal +2.9 % total energy as stated in Section 4.
 */
constexpr NanoJoule CLOCK_TREE[NUM_CLOCKED_DOMAINS] = {
    0.36, // FrontEnd (large: fetch, rename, ROB latches)
    0.30, // Integer
    0.21, // FloatingPoint
    0.34, // LoadStore (includes L2 clocking)
};

} // namespace

const char *
structureName(StructureId id)
{
    switch (id) {
      case StructureId::Icache:          return "icache";
      case StructureId::BranchPredictor: return "bpred";
      case StructureId::RenameTable:     return "rename";
      case StructureId::Rob:             return "rob";
      case StructureId::IntIssueQueue:   return "int-iq";
      case StructureId::IntRegFile:      return "int-rf";
      case StructureId::IntAlu:          return "int-alu";
      case StructureId::IntMult:         return "int-mult";
      case StructureId::FpIssueQueue:    return "fp-iq";
      case StructureId::FpRegFile:       return "fp-rf";
      case StructureId::FpAlu:           return "fp-alu";
      case StructureId::FpMult:          return "fp-mult";
      case StructureId::Lsq:             return "lsq";
      case StructureId::Dcache:          return "dcache";
      case StructureId::L2Cache:         return "l2";
      case StructureId::ResultBus:       return "result-bus";
      case StructureId::NumStructures:   break;
    }
    return "unknown";
}

DomainId
structureDomain(StructureId id)
{
    switch (id) {
      case StructureId::Icache:
      case StructureId::BranchPredictor:
      case StructureId::RenameTable:
      case StructureId::Rob:
        return DomainId::FrontEnd;
      case StructureId::IntIssueQueue:
      case StructureId::IntRegFile:
      case StructureId::IntAlu:
      case StructureId::IntMult:
        return DomainId::Integer;
      case StructureId::FpIssueQueue:
      case StructureId::FpRegFile:
      case StructureId::FpAlu:
      case StructureId::FpMult:
        return DomainId::FloatingPoint;
      case StructureId::Lsq:
      case StructureId::Dcache:
      case StructureId::L2Cache:
        return DomainId::LoadStore;
      case StructureId::ResultBus:
        return DomainId::Integer;
      case StructureId::NumStructures:
        break;
    }
    mcd_panic("bad structure id");
}

EnergyModel::EnergyModel(const EnergyConfig &config, bool mcd_clock)
    : config_(config), mcd_clock_(mcd_clock)
{
    for (int s = 0; s < NUM_STRUCTURES; ++s)
        access_energy_[static_cast<std::size_t>(s)] = ACCESS_ENERGY[s];

    double clock_scale = mcd_clock_ ? 1.0 + config_.mcdClockOverhead : 1.0;
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        clock_tree_[static_cast<std::size_t>(d)] =
            CLOCK_TREE[d] * clock_scale;
    }

    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        NanoJoule idle = 0.0;
        for (int s = 0; s < NUM_STRUCTURES; ++s) {
            auto sid = static_cast<StructureId>(s);
            if (domainIndex(structureDomain(sid)) == d)
                idle += config_.idleFraction * accessEnergy(sid);
        }
        cycle_base_[static_cast<std::size_t>(d)] =
            clock_tree_[static_cast<std::size_t>(d)] + idle;
    }
}

NanoJoule
EnergyModel::accessEnergy(StructureId id) const
{
    return access_energy_[static_cast<std::size_t>(id)];
}

NanoJoule
EnergyModel::accessIncrement(StructureId id) const
{
    return (1.0 - config_.idleFraction) * accessEnergy(id);
}

NanoJoule
EnergyModel::domainCycleBase(DomainId id) const
{
    if (id == DomainId::External)
        return 0.0;
    return cycle_base_[static_cast<std::size_t>(domainIndex(id))];
}

NanoJoule
EnergyModel::clockTreeEnergy(DomainId id) const
{
    if (id == DomainId::External)
        return 0.0;
    return clock_tree_[static_cast<std::size_t>(domainIndex(id))];
}

} // namespace mcd
