#include "power/power_accountant.hh"

#include "common/logging.hh"

namespace mcd
{

PowerAccountant::PowerAccountant(const EnergyModel &model)
    : model_(&model)
{
}

void
PowerAccountant::chargeCycle(DomainId domain, Volt v,
                             std::uint64_t count)
{
    if (count == 0)
        return;
    double scale = model_->voltageScale(v);
    domain_base_[static_cast<std::size_t>(domainIndex(domain))] +=
        model_->domainCycleBase(domain) * scale *
        static_cast<double>(count);
}

void
PowerAccountant::chargeAccess(StructureId structure, Volt v,
                              std::uint64_t count)
{
    if (count == 0)
        return;
    double scale = model_->voltageScale(v);
    NanoJoule e = model_->accessIncrement(structure) * scale *
                  static_cast<double>(count);
    structure_[static_cast<std::size_t>(structure)] += e;
    DomainId domain = structureDomain(structure);
    domain_access_[static_cast<std::size_t>(domainIndex(domain))] += e;
}

void
PowerAccountant::chargeMemoryAccess(std::uint64_t count)
{
    external_ += model_->config().mainMemoryAccess *
                 static_cast<double>(count);
}

NanoJoule
PowerAccountant::chipEnergy() const
{
    NanoJoule total = 0.0;
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        total += domain_access_[static_cast<std::size_t>(d)] +
                 domain_base_[static_cast<std::size_t>(d)];
    }
    return total;
}

NanoJoule
PowerAccountant::domainEnergy(DomainId domain) const
{
    if (domain == DomainId::External)
        return external_;
    auto d = static_cast<std::size_t>(domainIndex(domain));
    return domain_access_[d] + domain_base_[d];
}

NanoJoule
PowerAccountant::structureEnergy(StructureId structure) const
{
    return structure_[static_cast<std::size_t>(structure)];
}

NanoJoule
PowerAccountant::domainBaseEnergy(DomainId domain) const
{
    if (domain == DomainId::External)
        return 0.0;
    return domain_base_[static_cast<std::size_t>(domainIndex(domain))];
}

void
PowerAccountant::saveState(std::string &out) const
{
    for (NanoJoule e : domain_access_)
        serial::appendDouble(out, e);
    for (NanoJoule e : domain_base_)
        serial::appendDouble(out, e);
    for (NanoJoule e : structure_)
        serial::appendDouble(out, e);
    serial::appendDouble(out, external_);
}

bool
PowerAccountant::loadState(serial::Reader &in)
{
    for (NanoJoule &e : domain_access_)
        e = in.readDouble();
    for (NanoJoule &e : domain_base_)
        e = in.readDouble();
    for (NanoJoule &e : structure_)
        e = in.readDouble();
    external_ = in.readDouble();
    return in.ok();
}

void
PowerAccountant::reset()
{
    domain_access_.fill(0.0);
    domain_base_.fill(0.0);
    structure_.fill(0.0);
    external_ = 0.0;
}

} // namespace mcd
