/**
 * @file
 * Per-domain energy bookkeeping during a simulation run.
 *
 * The core calls chargeCycle() once per domain clock edge with the
 * instantaneous voltage, and chargeAccess() for every structure access.
 * Totals separate on-chip energy (what the paper's EPI / energy-savings
 * numbers use) from external main-memory energy.
 */

#ifndef MCD_POWER_POWER_ACCOUNTANT_HH
#define MCD_POWER_POWER_ACCOUNTANT_HH

#include <array>
#include <cstdint>

#include "common/serial.hh"
#include "power/energy_model.hh"

namespace mcd
{

/** Accumulates nanojoules per domain and per structure. */
class PowerAccountant
{
  public:
    explicit PowerAccountant(const EnergyModel &model);

    /** Charge `count` cycles of domain base energy at voltage v. */
    void chargeCycle(DomainId domain, Volt v, std::uint64_t count = 1);

    /** Charge `count` accesses of the structure at voltage v. */
    void chargeAccess(StructureId structure, Volt v,
                      std::uint64_t count = 1);

    /** Charge `count` off-chip main-memory accesses. */
    void chargeMemoryAccess(std::uint64_t count = 1);

    /** Total on-chip energy (all clocked domains). */
    NanoJoule chipEnergy() const;

    /** Energy attributed to one domain. */
    NanoJoule domainEnergy(DomainId domain) const;

    /** Energy attributed to one structure (access energy only). */
    NanoJoule structureEnergy(StructureId structure) const;

    /** Clock-tree + idle-residual share of a domain. */
    NanoJoule domainBaseEnergy(DomainId domain) const;

    /** Off-chip main-memory energy (not part of chipEnergy). */
    NanoJoule externalEnergy() const { return external_; }

    const EnergyModel &model() const { return *model_; }

    void reset();

    /** Serialize accumulators as raw IEEE-754 bits (checkpointing). */
    void saveState(std::string &out) const;

    /** Inverse of saveState; false on short data. */
    bool loadState(serial::Reader &in);

  private:
    const EnergyModel *model_;
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> domain_access_{};
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> domain_base_{};
    std::array<NanoJoule, NUM_STRUCTURES> structure_{};
    NanoJoule external_ = 0.0;
};

} // namespace mcd

#endif // MCD_POWER_POWER_ACCOUNTANT_HH
