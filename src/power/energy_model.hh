/**
 * @file
 * Wattch-style architectural energy model.
 *
 * Each microarchitectural structure has an effective per-access energy at
 * the reference voltage (1.2 V); dynamic energy scales with (V/Vref)^2.
 * Structures are conditionally clocked ("all circuits are clock gated
 * when not in use", Section 4): an idle structure still burns a small
 * residual fraction of its active energy each cycle. Accounting is split
 * so it is cheap to apply per cycle:
 *
 *   E(domain cycle) = clockTreeEnergy(domain)
 *                     + sum over structures in domain of idleFrac * E(s)
 *   E(access)       = (1 - idleFrac) * E(s) per access
 *
 * both scaled by (V/Vref)^2 at the instant of the charge.
 *
 * Absolute joules are a calibration, not a claim: the per-access numbers
 * below are chosen so the steady-state breakdown of a typical run matches
 * the published Wattch 21264-class distribution (clock ~30 %, caches and
 * LSQ ~22 %, integer window+execute ~20 %, front end ~17 %, FP ~11 %),
 * which is what the paper's relative energy results depend on. In MCD
 * mode the clock-tree energy is increased by 10 % (separate PLLs and
 * grids), which the paper equates to +2.9 % total energy.
 */

#ifndef MCD_POWER_ENERGY_MODEL_HH
#define MCD_POWER_ENERGY_MODEL_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace mcd
{

/** Energy-bearing microarchitectural structures. */
enum class StructureId : std::uint8_t
{
    Icache = 0,
    BranchPredictor,
    RenameTable,
    Rob,
    IntIssueQueue,
    IntRegFile,
    IntAlu,
    IntMult,
    FpIssueQueue,
    FpRegFile,
    FpAlu,
    FpMult,
    Lsq,
    Dcache,
    L2Cache,
    ResultBus,
    NumStructures,
};

constexpr int NUM_STRUCTURES =
    static_cast<int>(StructureId::NumStructures);

/** Human-readable structure name. */
const char *structureName(StructureId id);

/** The clock domain a structure belongs to (Figure 1). */
DomainId structureDomain(StructureId id);

/** Tunable parameters of the energy model. */
struct EnergyConfig
{
    Volt referenceVoltage = 1.20;
    /** Residual fraction of active energy burned by a gated structure. */
    double idleFraction = 0.05;
    /** MCD clock subsystem energy adder (Section 4: +10 %). */
    double mcdClockOverhead = 0.10;
    /** Per-access energy charged to the external domain per main-memory
     *  access (off-chip; excluded from chip energy totals). */
    NanoJoule mainMemoryAccess = 8.0;
};

/** Immutable per-structure energy table with V^2 scaling helpers. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &config = EnergyConfig{},
                         bool mcd_clock = true);

    const EnergyConfig &config() const { return config_; }

    /** Per-access active energy of a structure at reference voltage. */
    NanoJoule accessEnergy(StructureId id) const;

    /** Incremental (non-idle) part of one access at reference voltage. */
    NanoJoule accessIncrement(StructureId id) const;

    /** Per-cycle base energy of a whole domain at reference voltage:
     *  clock tree plus the idle residual of the domain's structures.
     *  Includes the MCD clock overhead when configured. */
    NanoJoule domainCycleBase(DomainId id) const;

    /** Clock-tree-only share of domainCycleBase (for breakdown stats). */
    NanoJoule clockTreeEnergy(DomainId id) const;

    /** Quadratic voltage scale factor (V/Vref)^2. */
    double
    voltageScale(Volt v) const
    {
        double r = v / config_.referenceVoltage;
        return r * r;
    }

  private:
    EnergyConfig config_;
    bool mcd_clock_;
    std::array<NanoJoule, NUM_STRUCTURES> access_energy_;
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> clock_tree_;
    std::array<NanoJoule, NUM_CLOCKED_DOMAINS> cycle_base_;
};

} // namespace mcd

#endif // MCD_POWER_ENERGY_MODEL_HH
