#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mcd::serve
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::connect(const std::string &socket_path, std::string *error)
{
    close();
    sockaddr_un addr{};
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "bad socket path '" + socket_path + "'";
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "connect(" + socket_path + "): " +
                     std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
ServeClient::send(const std::string &payload, std::string *error)
{
    if (fd_ < 0 || !writeFrame(fd_, payload)) {
        if (error)
            *error = fd_ < 0 ? "not connected"
                             : "send failed (daemon gone?)";
        return false;
    }
    return true;
}

FrameStatus
ServeClient::recv(std::string &payload)
{
    if (fd_ < 0)
        return FrameStatus::IoError;
    return readFrame(fd_, payload);
}

bool
ServeClient::call(const std::string &request,
                  const std::function<void(const json::Value &)> &on_event,
                  json::Value &terminal, std::string *error)
{
    if (!send(request, error))
        return false;
    while (true) {
        std::string payload;
        FrameStatus status = recv(payload);
        if (status != FrameStatus::Ok) {
            if (error)
                *error = std::string("connection ") +
                         frameStatusName(status) +
                         " before a terminal reply";
            return false;
        }
        json::Value event;
        std::string parse_error;
        if (!json::parse(payload, event, &parse_error) ||
            !event.isObject()) {
            if (error)
                *error = "unparseable reply: " + parse_error;
            return false;
        }
        if (on_event)
            on_event(event);
        std::string kind = event.getString("event");
        if (kind != "result") {
            terminal = std::move(event);
            return true;
        }
    }
}

} // namespace mcd::serve
