/**
 * @file
 * The wire protocol of the simulation-as-a-service daemon (`mcd_cli
 * serve`): length-framed JSON over a Unix-domain stream socket.
 *
 * Framing: every message is a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON. A declared frame limit
 * (`kMaxFrameBytes`) bounds what either side will buffer; a peer
 * announcing a larger frame is rejected with a structured error and
 * the connection is closed (the stream cannot be trusted to resync).
 * Malformed JSON *inside* an intact frame costs only an error reply —
 * the framing survives, and the connection stays usable.
 *
 * Requests (client -> server), one JSON object per frame, selected by
 * `"op"`:
 *   {"op":"ping"}
 *   {"op":"cache-stats"}
 *   {"op":"shutdown"}
 *   {"op":"run","benches":["gsm",...],
 *    "controller":"attack_decay:decay=0.0125",   // optional
 *    "mode":"mcd"|"sync", "freq":H, "seed":S,    // optional
 *    "instructions":N, "warmup":N, "interval":N} // optional overrides
 *   {"op":"tournament","scenarios":[...],"controllers":[...],
 *    "target_deg":0.05}                           // all optional
 *
 * Replies (server -> client), one JSON object per frame, selected by
 * `"event"`; `run` streams one `result` frame per experiment as it
 * completes (tagged with its submission `index`) and finishes with
 * `done`:
 *   {"event":"pong","protocol":1}
 *   {"event":"stats","cache":{...},"serve":{...}}
 *   {"event":"result","index":I,"benchmark":"...","cold":B,
 *    "payload":"<rendered JSON document, as a string>"}
 *   {"event":"done","results":N,"cold_units":C,"warm_units":W}
 *   {"event":"error","code":"overloaded"|"bad-request"|"too-large"|
 *    "internal","error":"..."}
 *   {"event":"shutdown"}
 *
 * A `result` payload is carried as a *string* holding the rendered
 * JSON document — `experimentResultJson()` below, the exact renderer
 * `mcd_cli run --json` uses — so clients can reproduce the direct
 * CLI's bytes verbatim without re-serializing (the byte-identity
 * guarantee CI asserts).
 */

#ifndef MCD_SERVE_PROTOCOL_HH
#define MCD_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/experiment.hh"

namespace mcd::serve
{

/** Protocol revision announced by `pong`. */
constexpr std::uint32_t kProtocolVersion = 1;

/** Largest frame either side will accept (header-declared length). */
constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/** Outcome of one readFrame call. */
enum class FrameStatus
{
    Ok,        //!< a complete frame was read
    Eof,       //!< clean end of stream at a frame boundary
    Truncated, //!< stream ended inside a header or payload
    TooLarge,  //!< declared length exceeds the limit (nothing read)
    IoError    //!< read(2) failed
};

/** Human-readable name of a FrameStatus (errors, tests). */
const char *frameStatusName(FrameStatus status);

/**
 * Read one complete frame from `fd` into `payload`. Blocks until the
 * frame, EOF, or an error. On `TooLarge` the header has been consumed
 * but the payload has not — the caller must treat the stream as
 * unsynchronized and close it.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      std::uint32_t max_bytes = kMaxFrameBytes);

/**
 * Write `payload` as one frame to `fd`. Returns false on any write
 * failure (including EPIPE from a disconnected peer — writes use
 * MSG_NOSIGNAL, so a dead client never signals the daemon). Fatal if
 * `payload` exceeds `kMaxFrameBytes` (a server bug, not peer input).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * One experiment result as a pretty-printed JSON object — the single
 * renderer behind `mcd_cli run --json`'s per-experiment entries and
 * the daemon's `result` payloads, so a served reply is byte-identical
 * to the direct CLI's output for the same spec.
 */
std::string experimentResultJson(const ExperimentSpec &spec,
                                 const SimStats &stats);

/**
 * The cache-counter object shared by `mcd_cli run --json`, `mcd_cli
 * cache --json`, and the daemon's `stats` reply:
 * `{"lookups": ..., "hits": ..., ...}`.
 */
std::string cacheStatsJson(const ArtifactCache &cache);

} // namespace mcd::serve

#endif // MCD_SERVE_PROTOCOL_HH
