/**
 * @file
 * The simulation-as-a-service daemon behind `mcd_cli serve`: one
 * long-lived process holding a warm memory-over-disk ArtifactCache
 * and a persistent worker pool, serving concurrent clients over a
 * Unix-domain socket speaking the length-framed JSON protocol of
 * serve/protocol.hh.
 *
 * Why a daemon: the batch tools pay the cold-cache cost on every
 * invocation — process start, disk-store reads, and any simulations
 * the store cannot satisfy. A fleet of callers (CI shards, sweep
 * drivers, notebooks) hitting the same spec population does that work
 * N times. The daemon pays it once: the memory layer stays warm
 * across requests, and requests resolve through the exact same
 * `ExperimentSpec -> ArtifactCache::getOrRun` path as `mcd_cli run`,
 * so a served result is byte-identical to the direct CLI's.
 *
 * Concurrency model:
 *  - The accept loop runs on the thread that calls `run()`, polling
 *    the listening socket and a self-pipe (`requestStop()` writes to
 *    it — async-signal-safe, so SIGINT/SIGTERM handlers may call it).
 *  - Each connection gets a reader thread: it parses frames, answers
 *    the cheap verbs inline, and for `run` fans the experiments out
 *    to the shared worker pool, streaming one `result` frame per
 *    experiment as it completes (a per-connection write mutex keeps
 *    frames whole).
 *  - Two clients requesting the same uncached spec concurrently are
 *    deduplicated by the cache's in-flight table: one simulation,
 *    both replies served from it (`ArtifactCache::inflightJoins()`
 *    counts the joins).
 *  - Admission control: at most `maxInflight` experiment units may be
 *    queued or executing across all clients; a `run` that would
 *    exceed the bound is rejected whole with an `overloaded` error
 *    (all-or-nothing — partial admission would interleave rejects
 *    into a result stream).
 *
 * Error containment: request handling and unit execution run under a
 * FatalErrorScope (common/logging.hh), so user errors that exit the
 * batch CLIs (unknown controller params, bad scenario knobs) become
 * structured `error` replies here and the daemon survives. mcd_panic
 * still aborts — an invariant violation means the process state
 * cannot be trusted. Residual risk: a fatal first raised on a thread
 * the daemon does not own (e.g. deep inside a nested ParallelSweep
 * worker during a tournament) still exits; validation is therefore
 * eager — scenario specs and controllers are instantiated once on the
 * scoped connection thread before any work is admitted.
 */

#ifndef MCD_SERVE_SERVER_HH
#define MCD_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "telemetry/events.hh"
#include "telemetry/stat_registry.hh"

namespace mcd::serve
{

/** How to run a daemon. */
struct ServeOptions
{
    std::string socketPath; //!< Unix-domain socket to bind (required)

    /** Worker pool size; 0 = ParallelSweep::defaultWorkers(). */
    int workers = 0;

    /**
     * Admission bound: experiment units queued or executing across
     * all clients. Negative derives 4x the worker count — enough
     * queue to keep the pool busy, small enough that a stalled client
     * cannot buffer unbounded work. 0 is honored literally (every run
     * rejected — degenerate, but it makes the admission path
     * testable without load).
     */
    int maxInflight = -1;

    /** Methodology + machine for served runs; `config.store` attaches
     *  the persistent layer (the `--store` flag funnels in here). */
    RunnerConfig config;

    /** Cache to serve from; nullptr = ArtifactCache::instance().
     *  Tests inject private instances; note the `tournament` verb's
     *  eval machinery always resolves through instance(). */
    ArtifactCache *cache = nullptr;

    /** JSONL request-trace path (`--events` / MCD_EVENTS). Every
     *  request id appends its lifecycle events (accepted → validated
     *  → queued → executing → streaming → done/error) here; empty
     *  disables tracing. */
    std::string eventsPath;
};

/** Daemon-level counters, reported in the `stats` reply's "serve"
 *  block (the cache's own counters travel in the "cache" block). */
struct ServeStats
{
    std::uint64_t requests = 0;     //!< frames parsed and dispatched
    std::uint64_t runRequests = 0;  //!< `run` verbs admitted
    std::uint64_t unitsExecuted = 0; //!< experiment units completed
    std::uint64_t coldUnits = 0;    //!< units not resident at dispatch
    std::uint64_t warmUnits = 0;    //!< units already resident
    std::uint64_t rejected = 0;     //!< admission-control rejections
    std::uint64_t badRequests = 0;  //!< malformed/invalid requests
};

/**
 * The daemon. Construction binds and listens (fatal on failure —
 * there is no daemon without a socket); `run()` serves until a client
 * sends `shutdown` or `requestStop()` is called, then drains, joins,
 * and removes the socket file.
 */
class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Serve until shutdown; returns after a clean drain. */
    void run();

    /**
     * Ask the accept loop to exit (idempotent). Async-signal-safe:
     * only writes one byte to the self-pipe, so SIGINT/SIGTERM
     * handlers may call it directly.
     */
    void requestStop();

    const std::string &socketPath() const { return options_.socketPath; }

    /** Snapshot of the daemon counters (test seam). */
    ServeStats stats() const;

  private:
    struct Connection
    {
        ~Connection(); //!< closes fd when the last holder lets go

        int fd = -1;
        std::mutex writeMutex;  //!< one reply frame at a time
        std::atomic<bool> alive{true}; //!< cleared on write failure
    };

    ArtifactCache &cache() const;

    void serveConnection(const std::shared_ptr<Connection> &conn);

    /** Dispatch one parsed request; false closes the connection. */
    bool handleRequest(const std::shared_ptr<Connection> &conn,
                       const json::Value &request);

    bool handleRun(const std::shared_ptr<Connection> &conn,
                   const json::Value &request, std::uint64_t id);
    bool handleTournament(const std::shared_ptr<Connection> &conn,
                          const json::Value &request,
                          std::uint64_t id);

    /** Append one lifecycle event line for request `id`; `extra` is
     *  either empty or `, "key": value` JSON tail text. No-op when
     *  tracing is disabled. */
    void traceEvent(std::uint64_t id, const char *event,
                    const std::string &extra = "");

    /** Write one reply frame; clears `alive` on failure. */
    void reply(const std::shared_ptr<Connection> &conn,
               const std::string &payload);

    void replyError(const std::shared_ptr<Connection> &conn,
                    const std::string &code, const std::string &message);

    ServeOptions options_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};

    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mutex_; //!< guards connections_, threads_
    // Daemon counters as atomics, bound into the StatRegistry under
    // serve.* by the constructor (latest server wins; the destructor
    // unbinds). stats() assembles the legacy ServeStats copy.
    telemetry::Counter requests_;
    telemetry::Counter runRequests_;
    telemetry::Counter unitsExecuted_;
    telemetry::Counter coldUnits_;
    telemetry::Counter warmUnits_;
    telemetry::Counter rejected_;
    telemetry::Counter badRequests_;
    telemetry::Histogram *queueNs_ = nullptr; //!< serve.request.queue_ns
    telemetry::Histogram *execNs_ = nullptr;  //!< serve.request.exec_ns
    telemetry::EventLog events_;
    std::atomic<std::uint64_t> nextRequestId_{0};
    std::atomic<int> inflightUnits_{0};
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> threads_;
};

} // namespace mcd::serve

#endif // MCD_SERVE_SERVER_HH
