#include "serve/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "eval/tournament.hh"
#include "harness/parallel_sweep.hh"
#include "serve/protocol.hh"
#include "workload/scenario_registry.hh"

namespace mcd::serve
{

namespace
{

/** One "event":"error" reply payload. */
std::string
errorJson(const std::string &code, const std::string &message)
{
    return "{\"event\": \"error\", \"code\": " + json::str(code) +
           ", \"error\": " + json::str(message) + "}";
}

/**
 * Probe whether a daemon is actually listening on `path`. A leftover
 * socket file from a crashed daemon refuses connections; a live one
 * accepts. Distinguishing the two lets restart-after-crash work
 * without ever stealing a running daemon's socket.
 */
bool
socketIsLive(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    bool live = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0;
    ::close(fd);
    return live;
}

} // namespace

Server::Connection::~Connection()
{
    if (fd >= 0)
        ::close(fd);
}

Server::Server(ServeOptions options)
    : options_(std::move(options)), events_(options_.eventsPath)
{
    if (options_.socketPath.empty())
        mcd_fatal("serve needs a socket path (--socket)");

    // Publish the daemon counters under serve.* (latest server wins;
    // tests construct servers sequentially) and grab the request
    // latency histograms once.
    telemetry::StatRegistry &reg = telemetry::StatRegistry::instance();
    reg.bindCounter("serve.requests", &requests_);
    reg.bindCounter("serve.run_requests", &runRequests_);
    reg.bindCounter("serve.units_executed", &unitsExecuted_);
    reg.bindCounter("serve.cold_units", &coldUnits_);
    reg.bindCounter("serve.warm_units", &warmUnits_);
    reg.bindCounter("serve.rejected", &rejected_);
    reg.bindCounter("serve.bad_requests", &badRequests_);
    queueNs_ = &reg.histogram("serve.request.queue_ns");
    execNs_ = &reg.histogram("serve.request.exec_ns");

    sockaddr_un addr{};
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        mcd_fatal("socket path '%s' exceeds the %zu-byte AF_UNIX "
                  "limit", options_.socketPath.c_str(),
                  sizeof(addr.sun_path) - 1);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        mcd_fatal("socket(AF_UNIX): %s", std::strerror(errno));

    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (errno != EADDRINUSE)
            mcd_fatal("bind(%s): %s", options_.socketPath.c_str(),
                      std::strerror(errno));
        if (socketIsLive(options_.socketPath))
            mcd_fatal("another daemon is already serving on '%s'",
                      options_.socketPath.c_str());
        // A stale file from a crashed daemon: reclaim it.
        ::unlink(options_.socketPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            mcd_fatal("bind(%s): %s", options_.socketPath.c_str(),
                      std::strerror(errno));
    }
    if (::listen(listenFd_, 64) != 0)
        mcd_fatal("listen(%s): %s", options_.socketPath.c_str(),
                  std::strerror(errno));

    if (::pipe2(stopPipe_, O_CLOEXEC) != 0)
        mcd_fatal("pipe2: %s", std::strerror(errno));

    int workers = options_.workers > 0
                      ? options_.workers
                      : ParallelSweep::defaultWorkers();
    pool_ = std::make_unique<ThreadPool>(workers);
    if (options_.maxInflight < 0)
        options_.maxInflight = 4 * pool_->workerCount();

    if (!options_.config.store.empty())
        cache().attachDiskStore(options_.config.store);
}

Server::~Server()
{
    telemetry::StatRegistry &reg = telemetry::StatRegistry::instance();
    for (const char *path :
         {"serve.requests", "serve.run_requests",
          "serve.units_executed", "serve.cold_units",
          "serve.warm_units", "serve.rejected", "serve.bad_requests"})
        reg.unbind(path);
    if (stopPipe_[0] >= 0)
        ::close(stopPipe_[0]);
    if (stopPipe_[1] >= 0)
        ::close(stopPipe_[1]);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(options_.socketPath.c_str());
    }
}

ArtifactCache &
Server::cache() const
{
    return options_.cache ? *options_.cache
                          : ArtifactCache::instance();
}

ServeStats
Server::stats() const
{
    ServeStats s;
    s.requests = requests_.value();
    s.runRequests = runRequests_.value();
    s.unitsExecuted = unitsExecuted_.value();
    s.coldUnits = coldUnits_.value();
    s.warmUnits = warmUnits_.value();
    s.rejected = rejected_.value();
    s.badRequests = badRequests_.value();
    return s;
}

void
Server::traceEvent(std::uint64_t id, const char *event,
                   const std::string &extra)
{
    if (!events_.enabled())
        return;
    events_.append("{\"ts\": " +
                   json::u64(telemetry::wallClockNs()) +
                   ", \"id\": " + json::u64(id) + ", \"event\": \"" +
                   event + "\"" + extra + "}");
}

void
Server::requestStop()
{
    // Only async-signal-safe operations: SIGINT/SIGTERM handlers call
    // this directly.
    stopping_.store(true);
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stopPipe_[1], &byte, 1);
}

void
Server::run()
{
    mcd_inform("serving on %s (%d workers, max %d units in flight%s%s)",
               options_.socketPath.c_str(), pool_->workerCount(),
               options_.maxInflight,
               options_.config.store.empty() ? "" : ", store ",
               options_.config.store.c_str());

    while (!stopping_.load()) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {stopPipe_[0], POLLIN, 0}};
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            mcd_warn("poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents & POLLIN)
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            mcd_warn("accept: %s", std::strerror(errno));
            continue;
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(mutex_);
        connections_.push_back(conn);
        threads_.emplace_back(
            [this, conn] { serveConnection(conn); });
    }

    // Drain: stop accepting, wake every blocked reader (SHUT_RD lets
    // pending result streams finish writing), join, then let the pool
    // finish whatever was admitted.
    ::close(listenFd_);
    listenFd_ = -1;
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        conns = connections_;
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        threads.swap(threads_);
    }
    for (auto &thread : threads)
        thread.join();
    pool_->wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections_.clear();
    }
    ::unlink(options_.socketPath.c_str());
    mcd_inform("serve: drained, socket removed");
}

void
Server::reply(const std::shared_ptr<Connection> &conn,
              const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (!conn->alive.load())
        return;
    if (!writeFrame(conn->fd, payload))
        conn->alive.store(false); // client went away; keep serving
}

void
Server::replyError(const std::shared_ptr<Connection> &conn,
                   const std::string &code, const std::string &message)
{
    reply(conn, errorJson(code, message));
}

void
Server::serveConnection(const std::shared_ptr<Connection> &conn)
{
    // Fatal-as-throw on this thread: a client's bad input costs it an
    // error reply, never the daemon.
    FatalErrorScope scope;

    bool keep = true;
    while (keep) {
        std::string payload;
        FrameStatus status = readFrame(conn->fd, payload);
        if (status == FrameStatus::TooLarge) {
            // The unread payload leaves the stream unsynchronized;
            // reject and hang up.
            badRequests_.inc();
            replyError(conn, "too-large",
                       "frame exceeds the " +
                           std::to_string(kMaxFrameBytes) +
                           "-byte protocol limit");
            break;
        }
        if (status != FrameStatus::Ok) {
            if (status == FrameStatus::Truncated)
                mcd_warn("serve: connection dropped mid-frame");
            break; // Eof / IoError: the peer is gone
        }

        json::Value request;
        std::string parse_error;
        if (!json::parse(payload, request, &parse_error) ||
            !request.isObject()) {
            badRequests_.inc();
            // An intact frame with bad JSON is the client's bug, not
            // a framing failure: reply and keep the connection.
            replyError(conn, "bad-request",
                       parse_error.empty() ? "request is not a JSON "
                                             "object"
                                           : parse_error);
            continue;
        }

        try {
            keep = handleRequest(conn, request);
        } catch (const FatalError &e) {
            badRequests_.inc();
            replyError(conn, "bad-request", e.what());
        } catch (const std::exception &e) {
            replyError(conn, "internal", e.what());
        }
    }

    conn->alive.store(false);
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(std::remove(connections_.begin(),
                                   connections_.end(), conn),
                       connections_.end());
    // The fd closes when the last holder (possibly a worker still
    // finishing this client's unit) drops its reference.
}

bool
Server::handleRequest(const std::shared_ptr<Connection> &conn,
                      const json::Value &request)
{
    requests_.inc();
    std::uint64_t id = nextRequestId_.fetch_add(1) + 1;

    std::string op = request.getString("op");
    traceEvent(id, "accepted", ", \"op\": " + json::str(op));

    if (op == "ping") {
        reply(conn, "{\"event\": \"pong\", \"protocol\": " +
                        json::u64(kProtocolVersion) + "}");
        traceEvent(id, "done");
        return true;
    }
    if (op == "metrics") {
        // The full registry snapshot: sim/store counters from the
        // ArtifactCache bindings, pool.tasks, serve.* from this
        // server, prof.* histograms when profiling ran.
        std::string stats = telemetry::StatRegistry::renderJson(
            telemetry::StatRegistry::instance().snapshot());
        reply(conn, "{\"event\": \"metrics\", \"stats\": " + stats +
                        "}");
        traceEvent(id, "done");
        return true;
    }
    if (op == "cache-stats") {
        ServeStats s = stats();
        std::string serve = "{";
        serve += "\"requests\": " + json::u64(s.requests);
        serve += ", \"run_requests\": " + json::u64(s.runRequests);
        serve += ", \"units_executed\": " + json::u64(s.unitsExecuted);
        serve += ", \"cold_units\": " + json::u64(s.coldUnits);
        serve += ", \"warm_units\": " + json::u64(s.warmUnits);
        serve += ", \"rejected\": " + json::u64(s.rejected);
        serve += ", \"bad_requests\": " + json::u64(s.badRequests);
        serve += ", \"inflight_dedups\": " +
                 json::u64(cache().inflightJoins());
        serve += ", \"inflight_units\": " +
                 json::u64(static_cast<std::uint64_t>(
                     std::max(0, inflightUnits_.load())));
        serve += ", \"workers\": " +
                 json::u64(static_cast<std::uint64_t>(
                     pool_->workerCount()));
        serve += ", \"max_inflight\": " +
                 json::u64(static_cast<std::uint64_t>(
                     options_.maxInflight));
        serve += "}";
        reply(conn, "{\"event\": \"stats\", \"cache\": " +
                        cacheStatsJson(cache()) +
                        ", \"serve\": " + serve + "}");
        traceEvent(id, "done");
        return true;
    }
    if (op == "shutdown") {
        reply(conn, "{\"event\": \"shutdown\"}");
        traceEvent(id, "done");
        requestStop();
        return false;
    }
    if (op == "run")
        return handleRun(conn, request, id);
    if (op == "tournament")
        return handleTournament(conn, request, id);

    badRequests_.inc();
    traceEvent(id, "error", ", \"code\": \"bad-request\"");
    replyError(conn, "bad-request", "unknown op '" + op + "'");
    return true;
}

bool
Server::handleRun(const std::shared_ptr<Connection> &conn,
                  const json::Value &request, std::uint64_t id)
{
    auto failRequest = [&](const std::string &message) {
        badRequests_.inc();
        traceEvent(id, "error", ", \"code\": \"bad-request\"");
        replyError(conn, "bad-request", message);
        return true;
    };

    // ---- validate everything before admitting anything. Registry
    // lookups that are fatal on bad input run here, on the scoped
    // connection thread, where fatal throws (caught by our caller into
    // a bad-request reply) — never on a pool worker mid-stream.
    const json::Value *benches = request.get("benches");
    if (!benches || !benches->isArray() || benches->array.empty())
        return failRequest("run needs a non-empty \"benches\" array");

    RunnerConfig config = options_.config;
    config.instructions =
        request.getU64("instructions", config.instructions);
    config.warmup = request.getU64("warmup", config.warmup);
    config.intervalInstructions = static_cast<int>(request.getU64(
        "interval",
        static_cast<std::uint64_t>(config.intervalInstructions)));
    config.clockSeed = request.getU64("seed", config.clockSeed);
    if (config.instructions == 0 || config.intervalInstructions <= 0)
        return failRequest("\"instructions\" and \"interval\" must be "
                           "positive");

    ClockMode mode = ClockMode::Mcd;
    std::string mode_text = request.getString("mode", "mcd");
    if (mode_text == "sync")
        mode = ClockMode::Synchronous;
    else if (mode_text != "mcd")
        return failRequest(
            "\"mode\" must be \"mcd\" or \"sync\", not \"" +
            mode_text + "\"");

    Hertz freq = request.getNumber("freq", 0.0);
    if (freq < 0.0)
        return failRequest("\"freq\" must be non-negative");

    // parseControllerSpec and create() are fatal on malformed text /
    // unknown names / bad params; under the connection thread's scope
    // that surfaces as a bad-request reply.
    ControllerSpec controller;
    std::string controller_text = request.getString("controller");
    if (!controller_text.empty())
        controller = parseControllerSpec(controller_text);
    ControllerRegistry::instance().create(controller);

    std::vector<ExperimentSpec> specs;
    for (const json::Value &entry : benches->array) {
        if (!entry.isString())
            return failRequest(
                "\"benches\" entries must be scenario names");
        if (!ScenarioRegistry::instance().contains(entry.string))
            return failRequest("unknown scenario '" + entry.string +
                               "'");
        // Family instances parse their knobs here — eagerly, so a bad
        // knob is a bad-request now rather than a fatal inside a
        // worker (or a nested sweep thread) later.
        ScenarioRegistry::instance().spec(entry.string);

        ExperimentSpec spec;
        spec.benchmark = entry.string;
        spec.mode = mode;
        spec.startFreq = freq;
        spec.controller = controller;
        spec.config = config;
        specs.push_back(std::move(spec));
    }

    traceEvent(id, "validated",
               ", \"units\": " + json::u64(specs.size()));

    // ---- admission: all-or-nothing against the in-flight bound, so
    // a rejected run never interleaves an `overloaded` error into a
    // partially admitted result stream.
    int units = static_cast<int>(specs.size());
    int current = inflightUnits_.load();
    do {
        if (current + units > options_.maxInflight) {
            rejected_.inc();
            traceEvent(id, "error",
                       ", \"code\": \"overloaded\"");
            replyError(conn, "overloaded",
                       std::to_string(units) + " units would exceed "
                       "the in-flight bound of " +
                       std::to_string(options_.maxInflight) +
                       " (retry later, or raise --max-inflight)");
            return true;
        }
    } while (!inflightUnits_.compare_exchange_weak(current,
                                                   current + units));
    runRequests_.inc();

    struct RunState
    {
        std::mutex m;
        std::condition_variable cv;
        std::size_t done = 0;
        std::size_t ok = 0;
        std::uint64_t cold = 0;
        std::uint64_t warm = 0;
        std::uint64_t bytes = 0;    //!< result-frame payload bytes
        bool executing = false;     //!< first unit started
        bool streaming = false;     //!< first result frame written
    };
    auto state = std::make_shared<RunState>();
    std::size_t total = specs.size();
    auto queued_at = std::chrono::steady_clock::now();
    traceEvent(id, "queued");

    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool_->submit([this, conn, state, queued_at, id,
                       spec = specs[i], i] {
            FatalErrorScope worker_scope;
            {
                std::lock_guard<std::mutex> lock(state->m);
                if (!state->executing) {
                    state->executing = true;
                    auto wait_ns = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            queued_at)
                            .count());
                    queueNs_->record(wait_ns);
                    traceEvent(id, "executing",
                               ", \"queue_wait_ns\": " +
                                   json::u64(wait_ns));
                }
            }
            bool cold = !cache().cachedHint(spec.cacheKey());
            bool ok = false;
            std::string out;
            try {
                SimStats stats = cache().getOrRun(spec);
                out = "{\"event\": \"result\", \"index\": " +
                      json::u64(i) + ", \"benchmark\": " +
                      json::str(spec.benchmark) + ", \"cold\": " +
                      (cold ? "true" : "false") + ", \"payload\": " +
                      json::str(experimentResultJson(spec, stats)) +
                      "}";
                ok = true;
            } catch (const std::exception &e) {
                out = errorJson("internal", spec.benchmark +
                                                ": " + e.what());
            }
            reply(conn, out);
            inflightUnits_.fetch_sub(1);
            unitsExecuted_.inc();
            if (cold)
                coldUnits_.inc();
            else
                warmUnits_.inc();
            std::lock_guard<std::mutex> lock(state->m);
            state->bytes += out.size();
            if (!state->streaming) {
                state->streaming = true;
                traceEvent(id, "streaming");
            }
            ++state->done;
            if (ok)
                ++state->ok;
            if (cold)
                ++state->cold;
            else
                ++state->warm;
            state->cv.notify_all();
        });
    }

    // The reader blocks here (not in the pool — no starvation) until
    // every unit has streamed, then seals the stream with `done`.
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait(lock, [&] { return state->done == total; });
    reply(conn, "{\"event\": \"done\", \"results\": " +
                    json::u64(state->ok) + ", \"cold_units\": " +
                    json::u64(state->cold) + ", \"warm_units\": " +
                    json::u64(state->warm) + "}");
    auto exec_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - queued_at)
            .count());
    execNs_->record(exec_ns);
    traceEvent(id, "done",
               ", \"exec_ns\": " + json::u64(exec_ns) +
                   ", \"results\": " + json::u64(state->ok) +
                   ", \"cold_units\": " + json::u64(state->cold) +
                   ", \"warm_units\": " + json::u64(state->warm) +
                   ", \"bytes_streamed\": " +
                   json::u64(state->bytes));
    return true;
}

bool
Server::handleTournament(const std::shared_ptr<Connection> &conn,
                         const json::Value &request, std::uint64_t id)
{
    auto failRequest = [&](const std::string &message) {
        badRequests_.inc();
        traceEvent(id, "error", ", \"code\": \"bad-request\"");
        replyError(conn, "bad-request", message);
        return true;
    };

    TournamentOptions opts;
    opts.config = options_.config;
    opts.targetDeg = request.getNumber("target_deg", 0.05);
    if (opts.targetDeg < 0.0 || opts.targetDeg > 1.0)
        return failRequest(
            "\"target_deg\" must be a fraction in [0, 1]");

    const json::Value *scenarios = request.get("scenarios");
    if (scenarios) {
        if (!scenarios->isArray())
            return failRequest(
                "\"scenarios\" must be an array of names");
        for (const json::Value &entry : scenarios->array) {
            if (!entry.isString() ||
                !ScenarioRegistry::instance().contains(entry.string))
                return failRequest(
                    "unknown scenario in \"scenarios\"");
            ScenarioRegistry::instance().spec(entry.string); // knobs
            opts.scenarios.push_back(entry.string);
        }
    }
    if (opts.scenarios.empty())
        opts.scenarios = adversarialCorpus();

    const json::Value *controllers = request.get("controllers");
    if (controllers) {
        if (!controllers->isArray())
            return failRequest(
                "\"controllers\" must be an array of specs");
        for (const json::Value &entry : controllers->array) {
            if (!entry.isString())
                return failRequest("\"controllers\" entries must be "
                                   "controller spec strings");
            TournamentEntry te;
            te.label = entry.string;
            te.spec = parseControllerSpec(entry.string); // may throw
            ControllerRegistry::instance().create(te.spec); // params
            opts.controllers.push_back(std::move(te));
        }
    }
    if (opts.controllers.empty())
        opts.controllers = defaultTournamentEntries();

    int units = static_cast<int>(opts.scenarios.size() *
                                 opts.controllers.size());
    traceEvent(id, "validated",
               ", \"units\": " +
                   json::u64(static_cast<std::uint64_t>(units)));
    int current = inflightUnits_.load();
    do {
        if (current + units > options_.maxInflight) {
            rejected_.inc();
            traceEvent(id, "error", ", \"code\": \"overloaded\"");
            replyError(conn, "overloaded",
                       std::to_string(units) + " tournament cells "
                       "would exceed the in-flight bound of " +
                       std::to_string(options_.maxInflight));
            return true;
        }
    } while (!inflightUnits_.compare_exchange_weak(current,
                                                   current + units));
    runRequests_.inc();
    auto queued_at = std::chrono::steady_clock::now();
    traceEvent(id, "queued");
    traceEvent(id, "executing", ", \"queue_wait_ns\": 0");

    // The tournament runs on this connection thread: it is a batch
    // product with its own internal parallelism (nested sweeps via
    // config.jobs), not a streamable unit list. Its eval machinery
    // resolves through ArtifactCache::instance() regardless of any
    // injected cache, so cold/warm classification reads that.
    std::string out;
    try {
        ArtifactCache &global = ArtifactCache::instance();
        std::uint64_t sims_before = global.simulationsRun();
        TournamentResult result = runTournament(opts);
        bool cold = global.simulationsRun() > sims_before;
        out = "{\"event\": \"result\", \"index\": 0, \"benchmark\": "
              "\"tournament\", \"cold\": " +
              std::string(cold ? "true" : "false") +
              ", \"payload\": " +
              json::str(renderTournamentJson(opts, result)) + "}";
        reply(conn, out);
        traceEvent(id, "streaming");
        inflightUnits_.fetch_sub(units);
        unitsExecuted_.inc(static_cast<std::uint64_t>(units));
        if (cold)
            coldUnits_.inc();
        else
            warmUnits_.inc();
        reply(conn, std::string("{\"event\": \"done\", \"results\": "
                                "1, \"cold_units\": ") +
                        (cold ? "1" : "0") + ", \"warm_units\": " +
                        (cold ? "0" : "1") + "}");
        auto exec_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - queued_at)
                .count());
        execNs_->record(exec_ns);
        traceEvent(id, "done",
                   ", \"exec_ns\": " + json::u64(exec_ns) +
                       ", \"results\": 1, \"cold_units\": " +
                       (cold ? "1" : "0") + ", \"warm_units\": " +
                       (cold ? "0" : "1") + ", \"bytes_streamed\": " +
                       json::u64(out.size()));
    } catch (const std::exception &e) {
        inflightUnits_.fetch_sub(units);
        badRequests_.inc();
        traceEvent(id, "error", ", \"code\": \"bad-request\"");
        replyError(conn, "bad-request", e.what());
    }
    return true;
}

} // namespace mcd::serve
