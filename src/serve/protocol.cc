#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"

namespace mcd::serve
{

namespace
{

/** Read exactly `length` bytes (EINTR-safe). False on EOF/error;
 *  `got` reports how much arrived either way. */
bool
readAll(int fd, void *buffer, std::size_t length, bool &saw_eof,
        std::size_t &got)
{
    char *out = static_cast<char *>(buffer);
    got = 0;
    saw_eof = false;
    while (got < length) {
        ssize_t n = ::read(fd, out + got, length - got);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            saw_eof = true;
            return false;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
      case FrameStatus::Ok: return "ok";
      case FrameStatus::Eof: return "eof";
      case FrameStatus::Truncated: return "truncated";
      case FrameStatus::TooLarge: return "too-large";
      case FrameStatus::IoError: return "io-error";
    }
    return "unknown";
}

FrameStatus
readFrame(int fd, std::string &payload, std::uint32_t max_bytes)
{
    unsigned char header[4];
    bool eof = false;
    std::size_t got = 0;
    if (!readAll(fd, header, sizeof(header), eof, got)) {
        if (!eof)
            return FrameStatus::IoError;
        // EOF is only clean at a frame boundary; a partial header
        // means the peer died mid-frame.
        return got == 0 ? FrameStatus::Eof : FrameStatus::Truncated;
    }
    std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24)
                         | (static_cast<std::uint32_t>(header[1]) << 16)
                         | (static_cast<std::uint32_t>(header[2]) << 8)
                         | static_cast<std::uint32_t>(header[3]);
    if (length > max_bytes)
        return FrameStatus::TooLarge;
    payload.resize(length);
    if (length > 0 && !readAll(fd, payload.data(), length, eof, got))
        return eof ? FrameStatus::Truncated : FrameStatus::IoError;
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        mcd_panic("outgoing frame of %zu bytes exceeds the declared "
                  "%u-byte protocol limit",
                  payload.size(), kMaxFrameBytes);
    std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>(length >> 24),
        static_cast<unsigned char>(length >> 16),
        static_cast<unsigned char>(length >> 8),
        static_cast<unsigned char>(length),
    };
    std::string frame(reinterpret_cast<char *>(header), sizeof(header));
    frame += payload;
    std::size_t done = 0;
    while (done < frame.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-stream costs an
        // EPIPE return, never a SIGPIPE that would kill the daemon.
        ssize_t n = ::send(fd, frame.data() + done, frame.size() - done,
                           MSG_NOSIGNAL);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

std::string
experimentResultJson(const ExperimentSpec &spec, const SimStats &stats)
{
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(spec.hash()));

    std::string params = "{";
    bool first = true;
    for (const auto &[key, value] : spec.controller.params) {
        params += first ? "" : ", ";
        first = false;
        params += json::str(key) + ": " + json::num(value);
    }
    params += "}";

    std::string out = "    {\n";
    out += "      \"benchmark\": " + json::str(spec.benchmark) + ",\n";
    out += "      \"mode\": " +
           json::str(spec.mode == ClockMode::Mcd ? "mcd" : "sync") +
           ",\n";
    out += "      \"controller\": " + json::str(spec.controller.name) +
           ",\n";
    out += "      \"params\": " + params + ",\n";
    out += "      \"start_freq_hz\": " +
           json::num(spec.resolvedStartFreq()) + ",\n";
    out += "      \"instructions\": " +
           json::u64(spec.config.instructions) + ",\n";
    out += "      \"warmup\": " + json::u64(spec.config.warmup) + ",\n";
    out += "      \"interval\": " +
           std::to_string(spec.config.intervalInstructions) + ",\n";
    out += "      \"clock_seed\": " + json::u64(spec.config.clockSeed) +
           ",\n";
    out += "      \"spec_hash\": " + json::str(hash) + ",\n";
    out += "      \"stats\": {\n";
    out += "        \"instructions\": " + json::u64(stats.instructions) +
           ",\n";
    out += "        \"fe_cycles\": " + json::u64(stats.feCycles) + ",\n";
    out += "        \"time_ps\": " +
           json::u64(static_cast<std::uint64_t>(stats.time)) + ",\n";
    out += "        \"chip_energy_nj\": " + json::num(stats.chipEnergy) +
           ",\n";
    out += "        \"cpi\": " + json::num(stats.cpi) + ",\n";
    out += "        \"epi_nj\": " + json::num(stats.epi) + ",\n";
    out += "        \"branches\": " + json::u64(stats.branches) + ",\n";
    out += "        \"mispredicts\": " + json::u64(stats.mispredicts) +
           ",\n";
    out += "        \"loads\": " + json::u64(stats.loads) + ",\n";
    out += "        \"stores\": " + json::u64(stats.stores) + ",\n";
    out += "        \"l1d_misses\": " + json::u64(stats.l1dMisses) +
           ",\n";
    out += "        \"l2_misses\": " + json::u64(stats.l2Misses) + "\n";
    out += "      }\n    }";
    return out;
}

std::string
cacheStatsJson(const ArtifactCache &cache)
{
    std::string out = "{";
    out += "\"lookups\": " + json::u64(cache.lookups());
    out += ", \"hits\": " + json::u64(cache.hits());
    out += ", \"disk_hits\": " + json::u64(cache.diskHits());
    out += ", \"simulations\": " + json::u64(cache.simulationsRun());
    out += ", \"simulated_instructions\": " +
           json::u64(cache.simulatedInstructions());
    out += ", \"inflight_joins\": " + json::u64(cache.inflightJoins());
    out += ", \"memory_entries\": " +
           json::u64(static_cast<std::uint64_t>(cache.size()));
    std::string root = cache.storeRoot();
    if (root.empty()) {
        out += ", \"store_root\": null";
    } else {
        out += ", \"store_root\": " + json::str(root);
        out += ", \"disk_entries\": " +
               json::u64(static_cast<std::uint64_t>(
                   cache.diskEntries()));
        out += ", \"disk_bytes\": " + json::u64(cache.diskBytes());
    }
    out += "}";
    return out;
}

} // namespace mcd::serve
