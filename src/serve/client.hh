/**
 * @file
 * Client side of the serve protocol: connect to a daemon's socket,
 * exchange framed JSON, and drive one request/reply-stream cycle.
 * This is the seam `mcd_cli request` and `mcd_cli fleet --socket` are
 * built on, and what an external tool would embed to talk to a
 * daemon without shelling out.
 */

#ifndef MCD_SERVE_CLIENT_HH
#define MCD_SERVE_CLIENT_HH

#include <functional>
#include <string>

#include "common/json.hh"
#include "serve/protocol.hh"

namespace mcd::serve
{

/** One connection to a serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to the daemon at `socket_path`. False (with a message
     *  in `error`) when the socket is absent or refuses. */
    bool connect(const std::string &socket_path, std::string *error);

    bool connected() const { return fd_ >= 0; }

    void close();

    /** Send one raw request frame. */
    bool send(const std::string &payload, std::string *error);

    /** Receive one raw reply frame. */
    FrameStatus recv(std::string &payload);

    /**
     * Send `request` and consume reply frames, invoking `on_event`
     * for each, until a terminal event arrives — `done`, `error`,
     * `pong`, `stats`, or `shutdown` (everything but the `result`
     * stream) — which lands in `terminal`. False on transport or
     * parse failures, with a message in `error`.
     */
    bool call(const std::string &request,
              const std::function<void(const json::Value &)> &on_event,
              json::Value &terminal, std::string *error);

  private:
    int fd_ = -1;
};

} // namespace mcd::serve

#endif // MCD_SERVE_CLIENT_HH
