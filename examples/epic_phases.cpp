/**
 * @file
 * Phase-tracking example: runs `epic` (the paper's Figure 2/3
 * application) under Attack/Decay and prints a per-interval trace of
 * all three controlled domains — queue utilization, chosen frequency
 * and voltage — so the attack and decay episodes are visible.
 *
 * Usage: epic_phases [instructions] [interval]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    std::uint64_t instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;
    int interval =
        argc > 2 ? std::atoi(argv[2]) : 1000;

    mcd::RunnerConfig config;
    config.instructions = instructions;
    config.warmup = 0;
    config.intervalInstructions = interval;
    mcd::Runner runner(config);
    mcd::DvfsModel dvfs(config.dvfs);

    std::printf("epic under Attack/Decay: %llu instructions, "
                "%d-instruction intervals\n\n",
                static_cast<unsigned long long>(instructions),
                interval);
    std::printf("%10s  %21s  %21s  %21s\n", "insts",
                "integer (util/GHz/V)", "fp (util/GHz/V)",
                "load-store (util/GHz/V)");

    std::uint64_t insns = 0;
    int printed = 0;
    mcd::SimStats stats = runner.runAttackDecay(
        "epic", mcd::AttackDecayConfig{},
        [&](const mcd::IntervalStats &s) {
            insns += s.instructions;
            if (printed++ % 5 != 0)
                return; // print every 5th interval
            auto cell = [&dvfs](const mcd::DomainIntervalStats &d) {
                static thread_local char buf[64];
                std::snprintf(buf, sizeof(buf), "%6.2f %5.3f %5.3f",
                              d.queueUtilization, d.frequency / 1e9,
                              dvfs.voltage(d.frequency));
                return std::string(buf);
            };
            std::printf("%10llu  %21s  %21s  %21s\n",
                        static_cast<unsigned long long>(insns),
                        cell(s.domains[mcd::CTL_INT]).c_str(),
                        cell(s.domains[mcd::CTL_FP]).c_str(),
                        cell(s.domains[mcd::CTL_LS]).c_str());
        });

    std::printf("\nrun complete: CPI %.2f, EPI %.2f nJ, %.1f us, "
                "%.1f uJ\n",
                stats.cpi, stats.epi, stats.time / 1e6,
                stats.chipEnergy / 1e3);
    return 0;
}
