/**
 * @file
 * ParallelSweep walkthrough: a small Figure 4-style sweep that fans a
 * batch of per-benchmark jobs across the worker threads and compares
 * Attack/Decay against the fully synchronous machine.
 *
 * Each benchmark contributes two jobs — the synchronous reference and
 * the Attack/Decay run — that share a seedIndex, so both consume the
 * same derived clock stream and their comparison is apples-to-apples.
 * Results (and the printed table) are bit-identical for any worker
 * count; rerun with MCD_JOBS=1 to check.
 *
 * Usage: example_parallel_sweep_demo            # all workers
 *        MCD_JOBS=2 example_parallel_sweep_demo # forced worker count
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness/metrics.hh"
#include "harness/parallel_sweep.hh"
#include "harness/table.hh"

int
main()
{
    const std::vector<std::string> benches = {"adpcm", "epic", "gsm",
                                              "mcf", "swim"};

    mcd::RunnerConfig config;
    config.instructions = 100000;
    config.warmup = 20000;
    config.applyEnvOverrides();

    // Build the batch: two variants per benchmark, one seedIndex per
    // benchmark.
    std::vector<mcd::SweepJob> jobs;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string name = benches[i];
        jobs.push_back({name + ":sync", config, i, [name](mcd::Runner &r) {
                            return r.runSynchronous(
                                name, r.config().dvfs.freqMax);
                        }});
        jobs.push_back({name + ":ad", config, i, [name](mcd::Runner &r) {
                            return r.runAttackDecay(
                                name, mcd::AttackDecayConfig{});
                        }});
    }

    mcd::ParallelSweep sweep; // MCD_JOBS env or all hardware threads
    std::printf("running %zu jobs on %d workers\n\n", jobs.size(),
                sweep.workers());
    auto results = sweep.run(jobs);

    // Aggregate in job order through the metrics layer.
    mcd::TextTable table(
        "Attack/Decay vs fully synchronous (mini Figure 4)");
    table.setHeader({"benchmark", "perf degradation", "energy savings",
                     "EDP improvement"});
    std::vector<mcd::ComparisonMetrics> all;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const mcd::SimStats &sync = results[2 * i].stats;
        const mcd::SimStats &ad = results[2 * i + 1].stats;
        mcd::ComparisonMetrics m = mcd::compare(sync, ad);
        all.push_back(m);
        table.addRow({benches[i], mcd::pct(m.perfDegradation),
                      mcd::pct(m.energySavings),
                      mcd::pct(m.edpImprovement)});
    }
    table.addRow({"average",
                  mcd::pct(mcd::meanOf(
                      all, &mcd::ComparisonMetrics::perfDegradation)),
                  mcd::pct(mcd::meanOf(
                      all, &mcd::ComparisonMetrics::energySavings)),
                  mcd::pct(mcd::meanOf(
                      all, &mcd::ComparisonMetrics::edpImprovement))});
    std::printf("%s", table.render().c_str());
    return 0;
}
