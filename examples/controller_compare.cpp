/**
 * @file
 * Controller bake-off example: runs a handful of benchmarks under the
 * fully synchronous machine, the baseline MCD machine, Attack/Decay,
 * the off-line Dynamic-1%, and matched global scaling, and prints one
 * comparison table per benchmark — a miniature Table 6.
 *
 * Usage: controller_compare [bench1,bench2,...]
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> benches = {"epic", "mcf", "swim"};
    if (argc > 1) {
        benches.clear();
        std::stringstream ss(argv[1]);
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                benches.push_back(item);
    }

    mcd::RunnerConfig config;
    config.instructions = 150000;
    config.warmup = 30000;
    config.applyEnvOverrides();
    mcd::Runner runner(config);

    for (const auto &bench : benches) {
        std::fprintf(stderr, "running %s ...\n", bench.c_str());
        std::vector<mcd::IntervalProfile> profile;
        mcd::SimStats mcd_base = runner.runMcdBaseline(bench, &profile);
        mcd::SimStats sync = runner.runSynchronous(bench, 1.0e9);
        mcd::SimStats ad =
            runner.runAttackDecay(bench, mcd::AttackDecayConfig{});
        mcd::OfflineResult dyn1 =
            runner.runOfflineDynamic(bench, 0.01, mcd_base, profile);
        mcd::ComparisonMetrics m_ad = mcd::compare(mcd_base, ad);
        mcd::GlobalResult global =
            runner.runGlobalAtDegradation(bench, m_ad.perfDegradation);

        mcd::TextTable table(bench + " — relative to baseline MCD");
        table.setHeader({"variant", "perf deg", "energy savings",
                         "EDP improvement"});
        auto add = [&table, &mcd_base](const std::string &name,
                                       const mcd::SimStats &stats) {
            mcd::ComparisonMetrics m = mcd::compare(mcd_base, stats);
            table.addRow({name, mcd::pct(m.perfDegradation),
                          mcd::pct(m.energySavings),
                          mcd::pct(m.edpImprovement)});
        };
        add("fully synchronous @1GHz", sync);
        add("Attack/Decay", ad);
        add("Dynamic-1% (off-line)", dyn1.stats);
        add("Global @" + mcd::ghz(global.freq), global.stats);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
