/**
 * @file
 * Quickstart: simulate one benchmark on the MCD processor under the
 * Attack/Decay controller and print the headline numbers against the
 * baseline MCD machine (all domains at 1 GHz).
 *
 * Usage: quickstart [benchmark] [instructions]
 * Default: epic, 200000 instructions.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "epic";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    mcd::RunnerConfig config;
    config.instructions = instructions;
    config.warmup = instructions / 5;
    mcd::Runner runner(config);

    std::printf("benchmark: %s (%llu instructions after warm-up)\n",
                bench.c_str(),
                static_cast<unsigned long long>(instructions));

    mcd::SimStats base = runner.runMcdBaseline(bench);
    mcd::SimStats ad =
        runner.runAttackDecay(bench, mcd::AttackDecayConfig{});
    mcd::ComparisonMetrics m = mcd::compare(base, ad);

    mcd::TextTable table("baseline MCD vs Attack/Decay");
    table.setHeader({"metric", "baseline", "attack/decay"});
    table.addRow({"CPI", mcd::num(base.cpi), mcd::num(ad.cpi)});
    table.addRow({"EPI (nJ)", mcd::num(base.epi), mcd::num(ad.epi)});
    table.addRow({"time (us)", mcd::num(base.time / 1e6),
                  mcd::num(ad.time / 1e6)});
    table.addRow({"energy (uJ)", mcd::num(base.chipEnergy / 1e3),
                  mcd::num(ad.chipEnergy / 1e3)});
    std::printf("%s\n", table.render().c_str());

    std::printf("performance degradation : %s\n",
                mcd::pct(m.perfDegradation).c_str());
    std::printf("energy savings          : %s\n",
                mcd::pct(m.energySavings).c_str());
    std::printf("energy-delay improvement: %s\n",
                mcd::pct(m.edpImprovement).c_str());
    std::printf("EPI reduction           : %s\n",
                mcd::pct(m.epiReduction).c_str());

    std::printf("\nworkload character (baseline run):\n");
    std::printf("  branches %llu, mispredict rate %s\n",
                static_cast<unsigned long long>(base.branches),
                mcd::pct(base.branches
                             ? static_cast<double>(base.mispredicts) /
                                   static_cast<double>(base.branches)
                             : 0.0).c_str());
    std::printf("  loads %llu, stores %llu, L1D misses %llu, "
                "L2 misses %llu\n",
                static_cast<unsigned long long>(base.loads),
                static_cast<unsigned long long>(base.stores),
                static_cast<unsigned long long>(base.l1dMisses),
                static_cast<unsigned long long>(base.l2Misses));
    std::printf("  domain energy (uJ): FE %.1f  INT %.1f  FP %.1f  "
                "LS %.1f\n",
                base.domainEnergy[0] / 1e3, base.domainEnergy[1] / 1e3,
                base.domainEnergy[2] / 1e3, base.domainEnergy[3] / 1e3);
    return 0;
}
