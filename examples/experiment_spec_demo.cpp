/**
 * @file
 * The declarative experiment layer in ~60 lines: describe runs as
 * ExperimentSpecs (scenario x controller x methodology), execute them
 * as one batch on the sweep workers, and let the process-wide
 * ArtifactCache deduplicate anything two experiments share.
 *
 * Build and run:
 *   cmake --build build --target example_experiment_spec_demo
 *   ./build/example_experiment_spec_demo
 */

#include <cstdio>
#include <vector>

#include "harness/experiment.hh"
#include "workload/scenario_registry.hh"

using namespace mcd;

int
main()
{
    RunnerConfig config;
    config.instructions = 20000;
    config.warmup = 5000;
    config.intervalInstructions = 500;
    config.applyEnvOverrides();

    // Three scenarios: two paper applications and one parametric
    // synthetic instance — any name the ScenarioRegistry resolves.
    std::vector<std::string> scenarios = {
        "gsm", "mcf", "synthetic:mem=0.8,ilp=4,phases=6"};

    // Two machines per scenario: the MCD baseline (profiling
    // controller) and Attack/Decay, both described declaratively.
    ControllerSpec baseline;
    baseline.name = "profiling";
    ControllerSpec ad = attackDecaySpec(AttackDecayConfig{});

    std::vector<ExperimentSpec> specs;
    for (const auto &scenario : scenarios) {
        for (const ControllerSpec &controller : {baseline, ad}) {
            ExperimentSpec spec;
            spec.benchmark = scenario;
            spec.controller = controller;
            spec.config = config;
            specs.push_back(spec);
        }
    }
    // The baseline specs again — the cache makes the repeats free.
    for (const auto &scenario : scenarios) {
        ExperimentSpec spec;
        spec.benchmark = scenario;
        spec.controller = baseline;
        spec.config = config;
        specs.push_back(spec);
    }

    auto results = runExperiments(specs, config.jobs);

    std::printf("%-40s %-22s %12s %14s\n", "scenario", "controller",
                "time (ps)", "energy (nJ)");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::printf("%-40s %-22s %12llu %14.1f\n",
                    specs[i].benchmark.c_str(),
                    specs[i].controller.name.c_str(),
                    static_cast<unsigned long long>(results[i].time),
                    results[i].chipEnergy);
    }

    ArtifactCache &cache = ArtifactCache::instance();
    std::printf("\n%llu specs requested, %llu simulations run, "
                "%llu served from the cache\n",
                static_cast<unsigned long long>(cache.lookups()),
                static_cast<unsigned long long>(cache.simulationsRun()),
                static_cast<unsigned long long>(cache.hits()));
    return 0;
}
