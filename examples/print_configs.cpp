/**
 * @file
 * Prints the paper's configuration tables as encoded in the library:
 * Table 1 (MCD processor parameters), Table 2 (Attack/Decay parameter
 * ranges and the Section 5 configuration), Table 4 (architectural
 * parameters), and Table 5 (the benchmark roster).
 */

#include <cstdio>

#include "control/attack_decay.hh"
#include "core/core_config.hh"
#include "clock/dvfs_model.hh"
#include "harness/table.hh"
#include "workload/benchmark_factory.hh"

int
main()
{
    using namespace mcd;

    DvfsConfig dvfs;
    TextTable t1("Table 1: MCD processor configuration parameters");
    t1.setHeader({"parameter", "value"});
    t1.addRow({"domain voltage",
               num(dvfs.voltMin, 2) + " V - " + num(dvfs.voltMax, 2) +
                   " V"});
    t1.addRow({"domain frequency",
               ghz(dvfs.freqMin, 2) + " - " + ghz(dvfs.freqMax, 1)});
    t1.addRow({"frequency points", std::to_string(dvfs.numPoints)});
    t1.addRow({"frequency change rate",
               num(dvfs.slewNsPerMhz, 1) + " ns/MHz"});
    t1.addRow({"domain clock jitter",
               num(dvfs.jitterSigmaPs, 0) +
                   " ps, normally distributed about zero"});
    t1.addRow({"synchronization window",
               pct(dvfs.syncWindowFraction, 0) + " of 1.0 GHz clock (" +
                   num(dvfs.syncWindowFraction * 1000, 0) + " ps)"});
    std::printf("%s\n", t1.render().c_str());

    AttackDecayConfig adc;
    TextTable t2("Table 2: Attack/Decay configuration "
                 "(Section 5 values; paper ranges in parentheses)");
    t2.setHeader({"parameter", "value", "paper range"});
    t2.addRow({"DeviationThreshold", pct(adc.deviationThreshold, 2),
               "0 - 2.5%"});
    t2.addRow({"ReactionChange", pct(adc.reactionChange, 1),
               "0.5 - 15.5%"});
    t2.addRow({"Decay", pct(adc.decay, 3), "0 - 2%"});
    t2.addRow({"PerfDegThreshold", pct(adc.perfDegThreshold, 1),
               "0 - 12%"});
    t2.addRow({"EndstopCount", std::to_string(adc.endstopCount),
               "1 - 25 intervals"});
    std::printf("%s\n", t2.render().c_str());

    CoreConfig core;
    TextTable t4("Table 4: architectural parameters "
                 "(Alpha 21264-like)");
    t4.setHeader({"parameter", "value"});
    t4.addRow({"decode width", std::to_string(core.decodeWidth)});
    t4.addRow({"issue width",
               std::to_string(core.intIssueWidth + core.fpIssueWidth) +
                   " (" + std::to_string(core.intIssueWidth) + " int + " +
                   std::to_string(core.fpIssueWidth) + " fp)"});
    t4.addRow({"retire width", std::to_string(core.retireWidth)});
    t4.addRow({"branch mispredict penalty",
               std::to_string(core.branchMispredictPenalty)});
    t4.addRow({"L1 caches", "64KB 2-way, " +
                                std::to_string(core.memory.l1Latency) +
                                "-cycle"});
    t4.addRow({"L2 cache", "1MB direct-mapped, " +
                               std::to_string(core.memory.l2Latency) +
                               "-cycle"});
    t4.addRow({"integer ALUs", std::to_string(core.intAluCount) +
                                   " + 1 mult/div"});
    t4.addRow({"FP ALUs", std::to_string(core.fpAluCount) +
                              " + 1 mult/div/sqrt"});
    t4.addRow({"integer issue queue", std::to_string(core.intIqSize)});
    t4.addRow({"FP issue queue", std::to_string(core.fpIqSize)});
    t4.addRow({"load/store queue", std::to_string(core.lsqSize)});
    t4.addRow({"physical registers",
               std::to_string(core.intPhysRegs) + " int, " +
                   std::to_string(core.fpPhysRegs) + " fp"});
    t4.addRow({"reorder buffer", std::to_string(core.robSize)});
    std::printf("%s\n", t4.render().c_str());

    TextTable t5("Table 5: benchmark applications");
    t5.setHeader({"suite", "benchmarks"});
    for (const char *suite : {"MediaBench", "Olden", "Spec2000"}) {
        std::string list;
        for (const auto &name : BenchmarkFactory::suiteNames(suite)) {
            if (!list.empty())
                list += ", ";
            list += name;
        }
        t5.addRow({suite, list});
    }
    std::printf("%s", t5.render().c_str());
    return 0;
}
