/**
 * @file
 * Public-API example: define a custom phase-structured workload from
 * scratch (a "video filter" with alternating integer setup and FP
 * kernel phases), run it on the MCD simulator under Attack/Decay, and
 * show how the controller tracks the phases.
 *
 * This is the path a downstream user takes to evaluate their own
 * application's behavior on the MCD machine.
 */

#include <cstdio>

#include "control/attack_decay.hh"
#include "core/simulator.hh"
#include "workload/workload.hh"

int
main()
{
    // 1. Describe the program: three phases with different mixes.
    mcd::BenchmarkSpec spec;
    spec.name = "video-filter";
    spec.suite = "custom";
    spec.seed = 2026;

    mcd::PhaseSpec setup;          // pointer-heavy integer setup
    setup.weight = 0.3;
    setup.loadFrac = 0.30;
    setup.storeFrac = 0.08;
    setup.branchFrac = 0.18;
    setup.chaseFrac = 0.5;
    setup.dataFootprint = 4 * 1024 * 1024;
    setup.depWindow = 4;
    spec.phases.push_back(setup);

    mcd::PhaseSpec kernel;         // streaming FP filter kernel
    kernel.weight = 0.5;
    kernel.loadFrac = 0.30;
    kernel.storeFrac = 0.12;
    kernel.branchFrac = 0.05;
    kernel.fpFrac = 0.35;
    kernel.loopLength = 96;
    kernel.loopIterations = 300;
    kernel.branchNoise = 0.02;
    kernel.dataFootprint = 8 * 1024 * 1024;
    kernel.depWindow = 16;
    spec.phases.push_back(kernel);

    mcd::PhaseSpec emit;           // integer output pass
    emit.weight = 0.2;
    emit.loadFrac = 0.22;
    emit.storeFrac = 0.20;
    emit.branchFrac = 0.12;
    emit.dataFootprint = 2 * 1024 * 1024;
    spec.phases.push_back(emit);

    // 2. Instantiate the generator and the machine.
    const std::uint64_t horizon = 150000;
    mcd::SyntheticProgram workload(spec, horizon);

    mcd::SimConfig config;
    config.core.intervalInstructions = 1000;
    mcd::AttackDecayController controller;
    mcd::Simulator sim(config, workload, &controller);

    // 3. Watch the controller react to the phase structure.
    std::printf("interval  phase  INT GHz  FP GHz  LS GHz  IPC\n");
    std::uint64_t n = 0;
    sim.setIntervalObserver([&](const mcd::IntervalStats &stats) {
        if (++n % 10 != 0)
            return;
        std::printf("%8llu  %5d  %7.3f  %6.3f  %6.3f  %.2f\n",
                    static_cast<unsigned long long>(n),
                    workload.currentPhase(),
                    stats.domains[mcd::CTL_INT].frequency / 1e9,
                    stats.domains[mcd::CTL_FP].frequency / 1e9,
                    stats.domains[mcd::CTL_LS].frequency / 1e9,
                    stats.ipc);
    });

    sim.run(horizon);

    mcd::SimStats stats = sim.stats();
    std::printf("\n%s: %llu instructions, CPI %.2f, EPI %.2f nJ\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(stats.instructions),
                stats.cpi, stats.epi);
    std::printf("domain energy (uJ): FE %.1f INT %.1f FP %.1f LS %.1f\n",
                stats.domainEnergy[0] / 1e3, stats.domainEnergy[1] / 1e3,
                stats.domainEnergy[2] / 1e3,
                stats.domainEnergy[3] / 1e3);
    return 0;
}
