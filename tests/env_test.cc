/**
 * @file
 * Edge-case tests for the shared MCD_* environment parsing helpers
 * (src/common/env.hh): malformed values, minimum bounds, permitted
 * zeros, and comma-list splitting.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

namespace mcd
{
namespace
{

constexpr const char *VAR = "MCD_ENV_TEST_VAR";

class EnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv(VAR); }
    void TearDown() override { unsetenv(VAR); }

    void set(const char *value) { setenv(VAR, value, 1); }
};

TEST_F(EnvTest, UnsetKeepsFallback)
{
    EXPECT_EQ(envInt64(VAR, 42), 42);
    EXPECT_EQ(envU64(VAR, 42), 42u);
    EXPECT_TRUE(envList(VAR).empty());
}

TEST_F(EnvTest, EmptyStringKeepsFallback)
{
    set("");
    EXPECT_EQ(envInt64(VAR, 42), 42);
    EXPECT_TRUE(envList(VAR).empty());
}

TEST_F(EnvTest, ParsesPlainIntegers)
{
    set("12345");
    EXPECT_EQ(envInt64(VAR, 0), 12345);
    EXPECT_EQ(envInt(VAR, 0), 12345);
    EXPECT_EQ(envU64(VAR, 0), 12345u);
}

TEST_F(EnvTest, NonNumericKeepsFallback)
{
    set("banana");
    EXPECT_EQ(envInt64(VAR, 7), 7);
}

TEST_F(EnvTest, TrailingJunkKeepsFallback)
{
    // "12abc" must not silently parse as 12: a typo in a knob should
    // leave the default instead of half-applying.
    set("12abc");
    EXPECT_EQ(envInt64(VAR, 7), 7);
    set("12 ");
    EXPECT_EQ(envInt64(VAR, 7), 7);
}

TEST_F(EnvTest, BelowMinimumKeepsFallback)
{
    set("0");
    EXPECT_EQ(envInt64(VAR, 7), 7); // default min = 1
    set("-5");
    EXPECT_EQ(envInt64(VAR, 7), 7);
    EXPECT_EQ(envU64(VAR, 7u, 0), 7u); // negative, even with min 0
}

TEST_F(EnvTest, ZeroAllowedWhenMinimumIsZero)
{
    set("0");
    EXPECT_EQ(envInt64(VAR, 7, /*min=*/0), 0);
    EXPECT_EQ(envU64(VAR, 7u, /*min=*/0), 0u);
}

TEST_F(EnvTest, ListSplitsOnCommas)
{
    set("gsm,adpcm,mcf");
    EXPECT_EQ(envList(VAR),
              (std::vector<std::string>{"gsm", "adpcm", "mcf"}));
}

TEST_F(EnvTest, ListDropsEmptyItems)
{
    set(",gsm,,adpcm,");
    EXPECT_EQ(envList(VAR),
              (std::vector<std::string>{"gsm", "adpcm"}));
    set(",,,");
    EXPECT_TRUE(envList(VAR).empty());
}

TEST_F(EnvTest, IntRejectsValuesAboveIntRange)
{
    // Wrapping 2^32+1 to interval=1 would be a silently half-applied
    // typo; out-of-range is malformed like any other bad value.
    set("4294967297");
    EXPECT_EQ(envInt(VAR, 7), 7);
    EXPECT_EQ(envInt64(VAR, 7), 4294967297);
}

TEST_F(EnvTest, StringRejectsEmptyAndWhitespace)
{
    // MCD_STORE goes through envString: a blank root is a typo, not a
    // request for a store rooted at "" or at "   ".
    EXPECT_EQ(envString(VAR, "fallback"), "fallback");
    EXPECT_EQ(envString(VAR), "");
    set("");
    EXPECT_EQ(envString(VAR, "fallback"), "fallback");
    set("   ");
    EXPECT_EQ(envString(VAR, "fallback"), "fallback");
    set("\t \n");
    EXPECT_EQ(envString(VAR, "fallback"), "fallback");
    // A real value comes back verbatim, inner spaces and all.
    set("/tmp/mcd store");
    EXPECT_EQ(envString(VAR, "fallback"), "/tmp/mcd store");
}

TEST(SplitList, Basics)
{
    EXPECT_EQ(splitList("a,b"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(splitList("a"), (std::vector<std::string>{"a"}));
    EXPECT_TRUE(splitList("").empty());
    EXPECT_EQ(splitList("synthetic:mem=0.8"),
              (std::vector<std::string>{"synthetic:mem=0.8"}));
}

TEST(SplitScenarioList, KeepsFamilyKnobsWhole)
{
    EXPECT_EQ(splitScenarioList("gsm,adpcm"),
              (std::vector<std::string>{"gsm", "adpcm"}));
    EXPECT_EQ(splitScenarioList("synthetic:mem=0.8,ilp=4,phases=6"),
              (std::vector<std::string>{
                  "synthetic:mem=0.8,ilp=4,phases=6"}));
    EXPECT_EQ(splitScenarioList("gsm,synthetic:mem=0.8,ilp=4,mcf"),
              (std::vector<std::string>{
                  "gsm", "synthetic:mem=0.8,ilp=4", "mcf"}));
    EXPECT_EQ(
        splitScenarioList("synthetic:mem=0.2,synthetic:mem=0.4,ilp=2"),
        (std::vector<std::string>{"synthetic:mem=0.2",
                                  "synthetic:mem=0.4,ilp=2"}));
}

TEST_F(EnvTest, ScenarioListFromEnvironment)
{
    set("gsm,synthetic:mem=0.8,ilp=4");
    EXPECT_EQ(envScenarioList(VAR),
              (std::vector<std::string>{"gsm",
                                        "synthetic:mem=0.8,ilp=4"}));
    unsetenv(VAR);
    EXPECT_TRUE(envScenarioList(VAR).empty());
}

} // namespace
} // namespace mcd
