/**
 * @file
 * Fidelity check of the Attack/Decay implementation against a direct
 * transliteration of the paper's Listing 1. The reference below keeps
 * the listing's variable names and structure (PeriodScaleFactor,
 * UpperEndstopCounter, etc.), with the one documented interpretation:
 * the PerfDegThreshold guard uses the prose semantics
 * (PrevIPC/IPC <= 1 + threshold permits a decrease; see DESIGN.md
 * substitution 6). The production controller must match the reference
 * step for step over arbitrary utilization/IPC streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hh"
#include "control/attack_decay.hh"

namespace mcd
{
namespace
{

constexpr double MINIMUM_FREQUENCY = 250.0e6;
constexpr double MAXIMUM_FREQUENCY = 1.0e9;

/** Verbatim-as-possible transliteration of Listing 1. */
class Listing1Reference
{
  public:
    explicit Listing1Reference(const AttackDecayConfig &config)
        : config_(config)
    {
    }

    void
    step(double QueueUtilization, double IPC)
    {
        /* Assume no frequency change required */
        double PeriodScaleFactor = 1.0;

        if (UpperEndstopCounter == config_.endstopCount) {
            /* Force frequency decrease */
            PeriodScaleFactor = 1.0 + config_.reactionChange;
        } else if (LowerEndstopCounter == config_.endstopCount) {
            /* Force frequency increase */
            PeriodScaleFactor = 1.0 - config_.reactionChange;
        } else {
            /* Check utilization difference against threshold */
            if ((QueueUtilization - PrevQueueUtilization) >
                (PrevQueueUtilization * config_.deviationThreshold)) {
                /* Significant increase since last time */
                PeriodScaleFactor = 1.0 - config_.reactionChange;
            } else if (((PrevQueueUtilization - QueueUtilization) >
                        (PrevQueueUtilization *
                         config_.deviationThreshold)) &&
                       guardPermits(IPC)) {
                /* Significant decrease since last time */
                PeriodScaleFactor = 1.0 + config_.reactionChange;
            } else {
                /* The domain is not used or
                   no significant change detected... */
                if (guardPermits(IPC))
                    PeriodScaleFactor = 1.0 + config_.decay;
            }
        }

        /* Apply frequency scale factor (the PLL register is written
           only when a change was requested; an unchanged frequency
           stays bit-exact) */
        if (PeriodScaleFactor != 1.0) {
            DomainFrequency =
                1.0 / ((1.0 / DomainFrequency) * PeriodScaleFactor);
            /* Range checking (the paper performs it after the
               listing) */
            DomainFrequency = std::clamp(DomainFrequency,
                                         MINIMUM_FREQUENCY,
                                         MAXIMUM_FREQUENCY);
        }

        /* Setup for next interval */
        PrevIPC = IPC;
        PrevQueueUtilization = QueueUtilization;
        if ((DomainFrequency <= MINIMUM_FREQUENCY) &&
            (LowerEndstopCounter != config_.endstopCount))
            ++LowerEndstopCounter;
        else
            LowerEndstopCounter = 0;
        if ((DomainFrequency >= MAXIMUM_FREQUENCY) &&
            (UpperEndstopCounter != config_.endstopCount))
            ++UpperEndstopCounter;
        else
            UpperEndstopCounter = 0;
    }

    double DomainFrequency = MAXIMUM_FREQUENCY;
    double PrevQueueUtilization = 0.0;
    double PrevIPC = 0.0;
    int UpperEndstopCounter = 0;
    int LowerEndstopCounter = 0;

  private:
    AttackDecayConfig config_;

    bool
    guardPermits(double IPC) const
    {
        // Prose semantics of lines 19/25 (DESIGN.md substitution 6).
        if (IPC <= 0.0)
            return false;
        double ratio = PrevIPC > 0.0 ? PrevIPC / IPC : 1.0;
        return ratio <= 1.0 + config_.perfDegThreshold;
    }
};

class Listing1Fidelity : public ::testing::TestWithParam<int>
{
};

TEST_P(Listing1Fidelity, ControllerMatchesListingOverRandomStreams)
{
    AttackDecayConfig config; // paper Section 5 values
    Listing1Reference reference(config);
    AttackDecayDomainState state;
    state.freq = MAXIMUM_FREQUENCY;

    Rng rng(static_cast<std::uint64_t>(GetParam()));
    double utilization = 5.0;
    double ipc = 1.0;
    for (int i = 0; i < 2000; ++i) {
        // Random-walk the inputs through regimes that exercise attack,
        // decay, the guard, and both end-stops.
        switch (rng.range(6)) {
          case 0:
            utilization *= rng.uniform(1.5, 4.0); // burst
            break;
          case 1:
            utilization *= rng.uniform(0.2, 0.7); // collapse
            break;
          case 2:
            utilization = 0.0; // idle domain
            break;
          default:
            utilization *= rng.uniform(0.99, 1.01); // quiet
            break;
        }
        utilization = std::min(utilization, 1e6);
        ipc = std::clamp(ipc * rng.uniform(0.9, 1.1), 0.05, 4.0);

        reference.step(utilization, ipc);
        attackDecayStep(state, utilization, ipc, config,
                        MINIMUM_FREQUENCY, MAXIMUM_FREQUENCY);

        ASSERT_NEAR(state.freq, reference.DomainFrequency,
                    reference.DomainFrequency * 1e-12)
            << "diverged at step " << i;
        ASSERT_EQ(state.upperEndstop, reference.UpperEndstopCounter)
            << "upper endstop diverged at step " << i;
        ASSERT_EQ(state.lowerEndstop, reference.LowerEndstopCounter)
            << "lower endstop diverged at step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Listing1Fidelity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Listing1Fidelity, KnownScenarioFrequencyTrace)
{
    // Hand-checked scenario: burst -> quiet decay -> idle -> endstop.
    AttackDecayConfig config;
    Listing1Reference reference(config);

    // Interval 1: utilization appears (0 -> 10): attack up (already at
    // max: clamp).
    reference.step(10.0, 1.0);
    EXPECT_DOUBLE_EQ(reference.DomainFrequency, MAXIMUM_FREQUENCY);

    // Interval 2: utilization collapses (10 -> 1): attack down.
    reference.step(1.0, 1.0);
    EXPECT_NEAR(reference.DomainFrequency,
                MAXIMUM_FREQUENCY / 1.06, 1.0);

    // Interval 3: flat: decay.
    double before = reference.DomainFrequency;
    reference.step(1.0, 1.0);
    EXPECT_NEAR(reference.DomainFrequency, before / 1.00175, 1.0);
}

} // namespace
} // namespace mcd
