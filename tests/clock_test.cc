/**
 * @file
 * Unit and property tests for the clock substrate: the Table 1 DVFS
 * model (320-point grid, linear V(f), 49.1 ns/MHz slew, 300 ps sync
 * window), jittered domain clocks, and the cross-domain visibility rule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clock/clock_system.hh"
#include "clock/domain_clock.hh"
#include "clock/dvfs_model.hh"
#include "common/stats.hh"

namespace mcd
{
namespace
{

TEST(DvfsModel, Table1Defaults)
{
    DvfsModel dvfs;
    EXPECT_EQ(dvfs.numPoints(), 320);
    EXPECT_DOUBLE_EQ(dvfs.config().freqMax, 1.0e9);
    EXPECT_DOUBLE_EQ(dvfs.config().freqMin, 250.0e6);
    EXPECT_DOUBLE_EQ(dvfs.config().voltMax, 1.20);
    EXPECT_DOUBLE_EQ(dvfs.config().voltMin, 0.65);
    EXPECT_EQ(dvfs.syncWindow(), 300); // 30% of the 1 GHz period
}

TEST(DvfsModel, GridEndpoints)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.pointFreq(0), 250.0e6);
    EXPECT_DOUBLE_EQ(dvfs.pointFreq(319), 1.0e9);
}

TEST(DvfsModel, GridSpacingIsLinear)
{
    DvfsModel dvfs;
    double step = dvfs.stepHz();
    EXPECT_NEAR(step, (1.0e9 - 250.0e6) / 319.0, 1e-6);
    for (int i = 1; i < 320; ++i)
        EXPECT_NEAR(dvfs.pointFreq(i) - dvfs.pointFreq(i - 1), step,
                    1e-3);
}

TEST(DvfsModel, QuantizeClampsToRange)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.quantize(5.0e9), 1.0e9);
    EXPECT_DOUBLE_EQ(dvfs.quantize(1.0e6), 250.0e6);
}

TEST(DvfsModel, QuantizeSnapsToNearestPoint)
{
    DvfsModel dvfs;
    // A frequency halfway between two grid points snaps to one of them.
    Hertz f = dvfs.pointFreq(100) + dvfs.stepHz() * 0.4;
    EXPECT_DOUBLE_EQ(dvfs.quantize(f), dvfs.pointFreq(100));
    f = dvfs.pointFreq(100) + dvfs.stepHz() * 0.6;
    EXPECT_DOUBLE_EQ(dvfs.quantize(f), dvfs.pointFreq(101));
}

TEST(DvfsModel, VoltageMapEndpoints)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.voltage(1.0e9), 1.20);
    EXPECT_DOUBLE_EQ(dvfs.voltage(250.0e6), 0.65);
}

TEST(DvfsModel, VoltageMapLinearMidpoint)
{
    DvfsModel dvfs;
    EXPECT_NEAR(dvfs.voltage(625.0e6), 0.925, 1e-12);
}

TEST(DvfsModel, VoltageClampsOutOfRange)
{
    DvfsModel dvfs;
    EXPECT_DOUBLE_EQ(dvfs.voltage(2.0e9), 1.20);
    EXPECT_DOUBLE_EQ(dvfs.voltage(1.0e3), 0.65);
}

TEST(DvfsModel, SlewTimeMatchesXScaleRate)
{
    DvfsModel dvfs;
    // 750 MHz of change at 49.1 ns/MHz = 36,825 ns.
    EXPECT_EQ(dvfs.slewTime(1.0e9, 250.0e6),
              static_cast<Tick>(750.0 * 49.1 * 1000 + 0.5));
    EXPECT_EQ(dvfs.slewTime(250.0e6, 1.0e9),
              dvfs.slewTime(1.0e9, 250.0e6));
}

class DvfsQuantizeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DvfsQuantizeProperty, QuantizedValueIsOnGridAndClosest)
{
    DvfsModel dvfs;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 200; ++i) {
        Hertz f = rng.uniform(100.0e6, 1.4e9);
        Hertz q = dvfs.quantize(f);
        int idx = dvfs.pointIndex(q);
        EXPECT_DOUBLE_EQ(dvfs.pointFreq(idx), q);
        if (f >= dvfs.config().freqMin && f <= dvfs.config().freqMax) {
            EXPECT_LE(std::abs(q - f), dvfs.stepHz() / 2 + 1e-6);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvfsQuantizeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DomainClock, EdgesAreStrictlyMonotonic)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 99);
    Tick last = -1;
    for (int i = 0; i < 100000; ++i) {
        Tick edge = clock.advance();
        EXPECT_GT(edge, last);
        last = edge;
    }
}

TEST(DomainClock, JitterFreeClockHasExactPeriod)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 1, false);
    Tick first = clock.advance();
    for (int i = 1; i <= 1000; ++i)
        EXPECT_EQ(clock.advance(), first + 1000 * i);
}

TEST(DomainClock, MeanPeriodMatchesFrequencyUnderJitter)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 7);
    Tick start = clock.advance();
    const int n = 200000;
    Tick end = start;
    for (int i = 0; i < n; ++i)
        end = clock.advance();
    double mean_period =
        static_cast<double>(end - start) / static_cast<double>(n);
    EXPECT_NEAR(mean_period, 1000.0, 1.0);
}

TEST(DomainClock, JitterDoesNotAccumulate)
{
    // Edge deviation from the nominal grid stays bounded (the jitter is
    // per-edge, not a random walk of the period).
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 21, true);
    for (int i = 1; i <= 50000; ++i) {
        Tick edge = clock.advance();
        double nominal = static_cast<double>(i - 1) * 1000.0;
        EXPECT_LT(std::abs(static_cast<double>(edge) - nominal),
                  2000.0);
    }
}

TEST(DomainClock, DeterministicPerSeed)
{
    DvfsModel dvfs;
    DomainClock a(DomainId::Integer, dvfs, 1.0e9, 5);
    DomainClock b(DomainId::Integer, dvfs, 1.0e9, 5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(a.advance(), b.advance());
}

TEST(DomainClock, SlewReachesTargetGradually)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    clock.setTargetFrequency(500.0e6);
    EXPECT_TRUE(clock.slewing());
    EXPECT_DOUBLE_EQ(clock.frequency(), 1.0e9); // not yet moved

    // 500 MHz of change needs 49.1 ns/MHz = 24,550 ns of clock time.
    Tick expected_slew = dvfs.slewTime(1.0e9, 500.0e6);
    Tick start = clock.lastEdge();
    int guard = 0;
    while (clock.slewing() && guard++ < 100000)
        clock.advance();
    EXPECT_FALSE(clock.slewing());
    EXPECT_DOUBLE_EQ(clock.frequency(), dvfs.quantize(500.0e6));
    Tick elapsed = clock.lastEdge() - start;
    EXPECT_NEAR(static_cast<double>(elapsed),
                static_cast<double>(expected_slew),
                static_cast<double>(expected_slew) * 0.05 + 3000);
}

TEST(DomainClock, FrequencyMonotoneDuringSlew)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 400.0e6, 3, false);
    clock.setTargetFrequency(900.0e6);
    double prev = clock.frequency();
    while (clock.slewing()) {
        clock.advance();
        EXPECT_GE(clock.frequency(), prev - 1e-6);
        prev = clock.frequency();
    }
    EXPECT_DOUBLE_EQ(clock.frequency(), dvfs.quantize(900.0e6));
}

TEST(DomainClock, ExecutesThroughFrequencyChange)
{
    // The XScale model: the clock keeps producing edges during a slew.
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    clock.setTargetFrequency(250.0e6);
    std::uint64_t before = clock.cycles();
    for (int i = 0; i < 1000; ++i)
        clock.advance();
    EXPECT_EQ(clock.cycles(), before + 1000);
}

TEST(DomainClock, SetFrequencyImmediateSkipsSlew)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    clock.setFrequencyImmediate(500.0e6);
    EXPECT_FALSE(clock.slewing());
    EXPECT_DOUBLE_EQ(clock.frequency(), dvfs.quantize(500.0e6));
}

TEST(DomainClock, TargetIsQuantized)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    Hertz q = clock.setTargetFrequency(501.234e6);
    EXPECT_DOUBLE_EQ(q, dvfs.quantize(501.234e6));
    EXPECT_DOUBLE_EQ(clock.targetFrequency(), q);
}

TEST(DomainClock, FrequencyChangeCounter)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    EXPECT_EQ(clock.frequencyChanges(), 0u);
    clock.setTargetFrequency(900.0e6);
    clock.setTargetFrequency(900.0e6); // no-op: same target
    clock.setTargetFrequency(800.0e6);
    EXPECT_EQ(clock.frequencyChanges(), 2u);
}

TEST(DomainClock, VoltageTracksFrequency)
{
    DvfsModel dvfs;
    DomainClock clock(DomainId::Integer, dvfs, 1.0e9, 3, false);
    EXPECT_DOUBLE_EQ(clock.voltage(), 1.20);
    clock.setFrequencyImmediate(250.0e6);
    EXPECT_DOUBLE_EQ(clock.voltage(), 0.65);
}

TEST(ClockSystem, McdModeHasIndependentClocks)
{
    DvfsModel dvfs;
    ClockSystem clocks(dvfs, ClockSystemConfig{});
    EXPECT_FALSE(clocks.sameClock(DomainId::FrontEnd,
                                  DomainId::Integer));
    EXPECT_TRUE(clocks.sameClock(DomainId::Integer,
                                 DomainId::Integer));
    clocks.clock(DomainId::Integer).setFrequencyImmediate(500.0e6);
    EXPECT_DOUBLE_EQ(clocks.clock(DomainId::FrontEnd).frequency(),
                     1.0e9);
}

TEST(ClockSystem, SynchronousModeSharesOneClock)
{
    DvfsModel dvfs;
    ClockSystemConfig config;
    config.mode = ClockMode::Synchronous;
    ClockSystem clocks(dvfs, config);
    EXPECT_TRUE(clocks.sameClock(DomainId::FrontEnd,
                                 DomainId::LoadStore));
    clocks.clock(DomainId::Integer).setFrequencyImmediate(500.0e6);
    EXPECT_DOUBLE_EQ(clocks.clock(DomainId::FrontEnd).frequency(),
                     dvfs.quantize(500.0e6));
}

TEST(ClockSystem, VisibilityWithinSameClockIsImmediate)
{
    DvfsModel dvfs;
    ClockSystemConfig config;
    config.mode = ClockMode::Synchronous;
    ClockSystem clocks(dvfs, config);
    EXPECT_TRUE(clocks.visible(DomainId::Integer, 1000,
                               DomainId::FrontEnd, 1000));
    EXPECT_FALSE(clocks.visible(DomainId::Integer, 1000,
                                DomainId::FrontEnd, 999));
}

TEST(ClockSystem, CrossClockVisibilityHonorsSyncWindow)
{
    DvfsModel dvfs;
    ClockSystem clocks(dvfs, ClockSystemConfig{});
    // Written at t=1000: readable only at edges >= 1300.
    EXPECT_FALSE(clocks.visible(DomainId::Integer, 1000,
                                DomainId::FrontEnd, 1299));
    EXPECT_TRUE(clocks.visible(DomainId::Integer, 1000,
                               DomainId::FrontEnd, 1300));
    EXPECT_FALSE(clocks.visible(DomainId::Integer, 1000,
                                DomainId::FrontEnd, 900));
}

TEST(ClockSystem, SameDomainNeverPaysSyncWindow)
{
    DvfsModel dvfs;
    ClockSystem clocks(dvfs, ClockSystemConfig{});
    EXPECT_TRUE(clocks.visible(DomainId::Integer, 1000,
                               DomainId::Integer, 1001));
}

TEST(ClockSystem, SyncWindowZeroInSynchronousMode)
{
    DvfsModel dvfs;
    ClockSystemConfig config;
    config.mode = ClockMode::Synchronous;
    ClockSystem clocks(dvfs, config);
    EXPECT_EQ(clocks.syncWindow(), 0);
}

class ClockFrequencyProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ClockFrequencyProperty, MeanPeriodTracksEveryGridFrequency)
{
    DvfsModel dvfs;
    Hertz f = dvfs.quantize(GetParam());
    DomainClock clock(DomainId::LoadStore, dvfs, f, 17);
    Tick start = clock.advance();
    const int n = 20000;
    Tick end = start;
    for (int i = 0; i < n; ++i)
        end = clock.advance();
    double mean_period =
        static_cast<double>(end - start) / static_cast<double>(n);
    EXPECT_NEAR(mean_period, 1e12 / f, 1e12 / f * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Frequencies, ClockFrequencyProperty,
    ::testing::Values(250.0e6, 333.0e6, 500.0e6, 625.0e6, 750.0e6,
                      875.0e6, 1.0e9));

} // namespace
} // namespace mcd
