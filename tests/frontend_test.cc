/**
 * @file
 * Tests for the reusable Attack/Decay step function and the front-end
 * scaling extension (Section 7 future work): ROB-occupancy reporting,
 * the extension controller, and the near-linear front-end-slowdown
 * claim of Section 3.
 */

#include <gtest/gtest.h>

#include "control/attack_decay.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"

namespace mcd
{
namespace
{

constexpr Hertz F_MIN = 250.0e6;
constexpr Hertz F_MAX = 1.0e9;

TEST(AttackDecayStep, AttackUpOnUtilizationIncrease)
{
    AttackDecayDomainState state;
    state.freq = 500.0e6;
    state.prevUtilization = 1.0;
    state.prevIpc = 1.0;
    AttackDecayConfig config;
    Hertz f = attackDecayStep(state, 2.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_NEAR(f, 500.0e6 / (1.0 - config.reactionChange), 1.0);
}

TEST(AttackDecayStep, AttackDownOnUtilizationDecrease)
{
    AttackDecayDomainState state;
    state.freq = 500.0e6;
    state.prevUtilization = 2.0;
    state.prevIpc = 1.0;
    AttackDecayConfig config;
    Hertz f = attackDecayStep(state, 1.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_NEAR(f, 500.0e6 / (1.0 + config.reactionChange), 1.0);
}

TEST(AttackDecayStep, DecayWhenFlat)
{
    AttackDecayDomainState state;
    state.freq = 500.0e6;
    state.prevUtilization = 1.0;
    state.prevIpc = 1.0;
    AttackDecayConfig config;
    Hertz f = attackDecayStep(state, 1.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_NEAR(f, 500.0e6 / (1.0 + config.decay), 1.0);
}

TEST(AttackDecayStep, StatePropagatesPrevSamples)
{
    AttackDecayDomainState state;
    state.freq = 800.0e6;
    AttackDecayConfig config;
    attackDecayStep(state, 3.5, 1.25, config, F_MIN, F_MAX);
    EXPECT_DOUBLE_EQ(state.prevUtilization, 3.5);
    EXPECT_DOUBLE_EQ(state.prevIpc, 1.25);
}

TEST(AttackDecayStep, ClampsToRange)
{
    AttackDecayDomainState state;
    state.freq = F_MIN;
    state.prevUtilization = 2.0;
    state.prevIpc = 1.0;
    AttackDecayConfig config;
    config.endstopCount = 0;
    // Attack down at the floor: stays at the floor.
    Hertz f = attackDecayStep(state, 1.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_DOUBLE_EQ(f, F_MIN);
    // Attack up beyond the ceiling: clamps to the ceiling.
    state.freq = F_MAX;
    state.prevUtilization = 1.0;
    f = attackDecayStep(state, 5.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_DOUBLE_EQ(f, F_MAX);
}

TEST(AttackDecayStep, EndstopCountersTrackExtremes)
{
    AttackDecayDomainState state;
    state.freq = F_MAX;
    AttackDecayConfig config;
    config.endstopCount = 3;
    // Flat utilization with a big IPC *drop* each interval: the guard
    // (prevIpc/ipc = 2 > 1 + threshold) blocks the decay, so the
    // frequency stays pinned at the maximum and the upper end-stop
    // counter advances.
    for (int i = 1; i <= 3; ++i) {
        state.prevIpc = 2.0;
        attackDecayStep(state, 1.0, 1.0, config, F_MIN, F_MAX);
        ASSERT_DOUBLE_EQ(state.freq, F_MAX);
        EXPECT_EQ(state.upperEndstop, i);
    }
    // The next step must force a decrease off the ceiling.
    state.prevIpc = 2.0;
    Hertz f = attackDecayStep(state, 1.0, 1.0, config, F_MIN, F_MAX);
    EXPECT_LT(f, F_MAX);
}

TEST(Simulator, ReportsRobOccupancy)
{
    auto workload = BenchmarkFactory::create("gsm", 50000);
    SimConfig config;
    config.core.intervalInstructions = 1000;
    Simulator sim(config, *workload);
    double max_occupancy = 0.0;
    double util_sum = 0.0;
    int samples = 0;
    sim.setIntervalObserver([&](const IntervalStats &stats) {
        max_occupancy =
            std::max(max_occupancy, stats.avgRobOccupancy);
        util_sum += stats.robUtilization;
        ++samples;
        EXPECT_DOUBLE_EQ(stats.feFrequency, 1.0e9);
    });
    sim.run(20000);
    ASSERT_GT(samples, 0);
    EXPECT_GT(max_occupancy, 1.0);
    EXPECT_LE(max_occupancy, 80.0); // bounded by the ROB size
    EXPECT_GT(util_sum / samples, 0.1);
}

TEST(FrontEndExtension, DecaysFrontEndWhenRobIsFlat)
{
    RunnerConfig config;
    config.instructions = 40000;
    config.warmup = 5000;
    config.intervalInstructions = 500;
    Runner runner(config);
    AttackDecayConfig adc;
    adc.decay = 0.0125;
    FrontEndAttackDecayController controller(adc);
    double min_fe = 1.0e9;
    runner.runWithController(
        "adpcm", ClockMode::Mcd, 1.0e9, controller,
        [&](const IntervalStats &stats) {
            min_fe = std::min(min_fe, stats.feFrequency);
        });
    // The front end must have moved (the extension is active)...
    EXPECT_LT(min_fe, 1.0e9);
    // ...but not crashed to the floor: ROB utilization pushes back.
    EXPECT_GT(min_fe, 0.3e9);
}

TEST(FrontEndExtension, FrontEndSlowdownHurtsHighIpcAppsMost)
{
    // Section 3's rationale for pinning the front end: slowing it
    // degrades performance because every instruction flows through it.
    // The effect strengthens as IPC approaches the fetch bandwidth:
    // adpcm (IPC ~1.6) must suffer far more from a halved front end
    // than mcf (IPC ~0.15, memory-bound).
    RunnerConfig config;
    config.instructions = 40000;
    config.warmup = 10000;
    Runner runner(config);

    class Pinned : public FrequencyController
    {
      public:
        explicit Pinned(Hertz fe) : fe_(fe) {}
        void
        onStart(ClockSystem &clocks) override
        {
            clocks.clock(DomainId::FrontEnd).setFrequencyImmediate(fe_);
        }
        void
        onInterval(const IntervalStats &, ClockSystem &) override
        {
        }

      private:
        Hertz fe_;
    };

    auto degradation = [&](const char *bench) {
        SimStats base = runner.runMcdBaseline(bench);
        Pinned slow(0.5e9); // halved front end
        SimStats pinned = runner.runWithController(
            bench, ClockMode::Mcd, 1.0e9, slow);
        return compare(base, pinned).perfDegradation;
    };

    double adpcm_deg = degradation("adpcm");
    double mcf_deg = degradation("mcf");
    EXPECT_GT(adpcm_deg, 0.15); // fetch-bandwidth-coupled
    EXPECT_GT(adpcm_deg, 2.0 * mcf_deg);
}

TEST(FrontEndExtension, BackEndBehaviorMatchesPlainController)
{
    // The extension delegates the three back-end domains to the plain
    // controller: with the front end's signal saturated (high ROB
    // utilization keeps FE near max), overall results stay close.
    RunnerConfig config;
    config.instructions = 30000;
    config.warmup = 5000;
    Runner runner(config);
    AttackDecayConfig adc;
    SimStats plain = runner.runAttackDecay("swim", adc);
    FrontEndAttackDecayController controller(adc);
    SimStats extended = runner.runWithController(
        "swim", ClockMode::Mcd, 1.0e9, controller);
    // Both are valid runs of the same workload.
    EXPECT_EQ(plain.instructions, extended.instructions);
    // The extension can only add front-end slowdown.
    EXPECT_GE(static_cast<double>(extended.time),
              static_cast<double>(plain.time) * 0.98);
}

} // namespace
} // namespace mcd
