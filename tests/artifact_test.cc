/**
 * @file
 * Tests for the artifact serialization contract
 * (harness/artifact.hh): golden-byte encodings — the hex constants
 * were computed independently of the C++ encoders, so any accidental
 * field reorder, width change, or endianness drift fails loudly —
 * exact round trips for every artifact type, and decode rejection of
 * wrong types, wrong versions, truncation, and trailing garbage.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/artifact.hh"

namespace mcd
{
namespace
{

SimStats
goldenStats()
{
    SimStats s;
    s.instructions = 7;
    s.feCycles = 9;
    s.time = 1234567;
    s.chipEnergy = 1.5;
    s.cpi = 2.25;
    s.epi = 0.125;
    s.branches = 3;
    s.mispredicts = 1;
    s.loads = 4;
    s.stores = 2;
    s.l1dMisses = 5;
    s.l2Misses = 6;
    s.domainEnergy = {0.5, 1.0, 1.5, 2.0};
    return s;
}

std::vector<IntervalProfile>
goldenProfile()
{
    IntervalProfile p;
    p.instructions = 10;
    p.ipc = 1.75;
    p.busyFraction = {0.5, 0.25, 0.125};
    p.queueUtilization = {1.0, 2.0, 3.0};
    p.avgOccupancy = {4.0, 5.0, 6.0};
    p.issued = {7, 8, 9};
    p.cycles = {10, 11, 12};
    return {p};
}

std::string
hex(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    for (unsigned char c : bytes) {
        out += digits[c >> 4];
        out += digits[c & 0xf];
    }
    return out;
}

void
expectStatsEqual(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.feCycles, b.feCycles);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.chipEnergy, b.chipEnergy);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.epi, b.epi);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.domainEnergy, b.domainEnergy);
}

// --------------------------------------------------------- golden bytes

TEST(Artifact, SimStatsGoldenBytes)
{
    EXPECT_EQ(
        hex(encodeArtifact(goldenStats())),
        "090000000000000073696d5f7374617473010000000000000007000000000000"
        "00090000000000000087d6120000000000000000000000f83f00000000000002"
        "40000000000000c03f0300000000000000010000000000000004000000000000"
        "00020000000000000005000000000000000600000000000000000000000000e0"
        "3f000000000000f03f000000000000f83f0000000000000040");
}

TEST(Artifact, IntervalProfilesGoldenBytes)
{
    EXPECT_EQ(
        hex(encodeArtifact(goldenProfile())),
        "1100000000000000696e74657276616c5f70726f66696c657301000000000000"
        "0001000000000000000a00000000000000000000000000fc3f000000000000e0"
        "3f000000000000f03f000000000000104007000000000000000a000000000000"
        "00000000000000d03f0000000000000040000000000000144008000000000000"
        "000b00000000000000000000000000c03f000000000000084000000000000018"
        "4009000000000000000c00000000000000");
}

TEST(Artifact, OfflineResultGoldenBytes)
{
    OfflineResult r;
    r.stats = goldenStats();
    r.margin = 0.375;
    r.achievedDeg = 0.0625;
    EXPECT_EQ(
        hex(encodeArtifact(r)),
        "0e000000000000006f66666c696e655f726573756c7401000000000000000700"
        "000000000000090000000000000087d6120000000000000000000000f83f0000"
        "000000000240000000000000c03f030000000000000001000000000000000400"
        "0000000000000200000000000000050000000000000006000000000000000000"
        "00000000e03f000000000000f03f000000000000f83f00000000000000400000"
        "00000000d83f000000000000b03f");
}

TEST(Artifact, GlobalResultGoldenBytes)
{
    GlobalResult r;
    r.stats = goldenStats();
    r.freq = 1.0e9;
    EXPECT_EQ(
        hex(encodeArtifact(r)),
        "0d00000000000000676c6f62616c5f726573756c740100000000000000070000"
        "0000000000090000000000000087d6120000000000000000000000f83f000000"
        "0000000240000000000000c03f03000000000000000100000000000000040000"
        "0000000000020000000000000005000000000000000600000000000000000000"
        "000000e03f000000000000f03f000000000000f83f0000000000000040000000"
        "0065cdcd41");
}

// ---------------------------------------------------------- round trips

TEST(Artifact, SimStatsRoundTripIsExact)
{
    SimStats back;
    ASSERT_TRUE(decodeArtifact(encodeArtifact(goldenStats()), back));
    expectStatsEqual(goldenStats(), back);
}

TEST(Artifact, IntervalProfilesRoundTripIsExact)
{
    std::vector<IntervalProfile> profile = goldenProfile();
    // A second, different interval exercises the count prefix.
    profile.push_back(profile[0]);
    profile[1].instructions = 11;
    profile[1].busyFraction[2] = 0.875;

    std::vector<IntervalProfile> back;
    ASSERT_TRUE(decodeArtifact(encodeArtifact(profile), back));
    ASSERT_EQ(back.size(), profile.size());
    for (std::size_t i = 0; i < profile.size(); ++i) {
        EXPECT_EQ(back[i].instructions, profile[i].instructions);
        EXPECT_EQ(back[i].ipc, profile[i].ipc);
        EXPECT_EQ(back[i].busyFraction, profile[i].busyFraction);
        EXPECT_EQ(back[i].queueUtilization,
                  profile[i].queueUtilization);
        EXPECT_EQ(back[i].avgOccupancy, profile[i].avgOccupancy);
        EXPECT_EQ(back[i].issued, profile[i].issued);
        EXPECT_EQ(back[i].cycles, profile[i].cycles);
    }

    std::vector<IntervalProfile> empty, empty_back = goldenProfile();
    ASSERT_TRUE(decodeArtifact(encodeArtifact(empty), empty_back));
    EXPECT_TRUE(empty_back.empty());
}

TEST(Artifact, OfflineAndGlobalResultsRoundTripExactly)
{
    OfflineResult off;
    off.stats = goldenStats();
    off.margin = 0.12345;
    off.achievedDeg = -0.0009765625;
    OfflineResult off_back;
    ASSERT_TRUE(decodeArtifact(encodeArtifact(off), off_back));
    expectStatsEqual(off.stats, off_back.stats);
    EXPECT_EQ(off_back.margin, off.margin);
    EXPECT_EQ(off_back.achievedDeg, off.achievedDeg);

    GlobalResult glob;
    glob.stats = goldenStats();
    glob.freq = 0.755e9;
    GlobalResult glob_back;
    ASSERT_TRUE(decodeArtifact(encodeArtifact(glob), glob_back));
    expectStatsEqual(glob.stats, glob_back.stats);
    EXPECT_EQ(glob_back.freq, glob.freq);
}

// ----------------------------------------------------------- rejection

TEST(Artifact, DecodeRejectsWrongType)
{
    // A SimStats blob must not decode as any other artifact type.
    std::string blob = encodeArtifact(goldenStats());
    OfflineResult off;
    EXPECT_FALSE(decodeArtifact(blob, off));
    GlobalResult glob;
    EXPECT_FALSE(decodeArtifact(blob, glob));
    std::vector<IntervalProfile> profile;
    EXPECT_FALSE(decodeArtifact(blob, profile));
}

TEST(Artifact, DecodeRejectsWrongVersion)
{
    // Bump the version field (the u64 right after the length-prefixed
    // type name): a future-format blob must read as a miss.
    std::string blob = encodeArtifact(goldenStats());
    std::size_t version_at =
        sizeof(std::uint64_t) + std::string("sim_stats").size();
    blob[version_at] = 2;
    SimStats back;
    EXPECT_FALSE(decodeArtifact(blob, back));
}

TEST(Artifact, DecodeRejectsTruncationAndTrailingGarbage)
{
    std::string blob = encodeArtifact(goldenProfile());
    SimStats unused;
    std::vector<IntervalProfile> back;

    EXPECT_FALSE(decodeArtifact(std::string(), unused));
    EXPECT_FALSE(
        decodeArtifact(blob.substr(0, blob.size() - 1), back));
    EXPECT_FALSE(decodeArtifact(blob.substr(0, 4), back));
    EXPECT_FALSE(decodeArtifact(blob + '\0', back));
}

TEST(Artifact, ReaderFailureLatchesAndZeroes)
{
    std::string bytes;
    serial::appendU64(bytes, 42);
    serial::Reader reader(bytes);
    EXPECT_EQ(reader.readU64(), 42u);
    EXPECT_TRUE(reader.atEnd());
    EXPECT_EQ(reader.readU64(), 0u); // past the end: latches !ok
    EXPECT_FALSE(reader.ok());
    EXPECT_FALSE(reader.atEnd());
    EXPECT_EQ(reader.readDouble(), 0.0);
    EXPECT_EQ(reader.readString(), "");
}

} // namespace
} // namespace mcd
