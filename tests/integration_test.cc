/**
 * @file
 * End-to-end integration tests asserting the paper's qualitative
 * claims on scaled-down runs: the inherent MCD overheads, the
 * Attack/Decay behavior per workload class (Figures 2/3 structure),
 * ordering between the algorithms (Table 6 structure), and the
 * global-DVFS comparison.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "control/attack_decay.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"

namespace mcd
{
namespace
{

RunnerConfig
integrationConfig(std::uint64_t insts = 60000)
{
    RunnerConfig config;
    config.instructions = insts;
    config.warmup = 10000;
    config.intervalInstructions = 500;
    return config;
}

TEST(Integration, InherentMcdDegradationIsSmall)
{
    // Section 2: the MCD fabric itself costs a few percent at most.
    Runner runner(integrationConfig());
    std::vector<ComparisonMetrics> all;
    for (const char *bench : {"gsm", "epic", "gcc", "power"}) {
        SimStats sync = runner.runSynchronous(bench, 1.0e9);
        SimStats mcd = runner.runMcdBaseline(bench);
        all.push_back(compare(sync, mcd));
    }
    double deg = meanOf(all, &ComparisonMetrics::perfDegradation);
    EXPECT_GT(deg, 0.0);
    EXPECT_LT(deg, 0.06);
}

TEST(Integration, McdClockOverheadNearThreePercent)
{
    // Section 4: +10% clock energy = +2.9% total energy. Compare the
    // baseline MCD EPI against synchronous EPI after factoring out the
    // time stretch (base energy scales with cycles).
    Runner runner(integrationConfig());
    SimStats sync = runner.runSynchronous("gsm", 1.0e9);
    SimStats mcd = runner.runMcdBaseline("gsm");
    double time_ratio = static_cast<double>(mcd.time) /
                        static_cast<double>(sync.time);
    double epi_ratio = mcd.epi / sync.epi;
    double clock_overhead = epi_ratio / time_ratio - 1.0;
    EXPECT_GT(clock_overhead, 0.005);
    EXPECT_LT(clock_overhead, 0.06);
}

TEST(Integration, AttackDecayDropsIdleFpDomain)
{
    // Figure 3 structure: for an FP-free application the FP domain
    // frequency must decay well below maximum.
    Runner runner(integrationConfig());
    double min_fp_freq = 1.0e9;
    runner.runAttackDecay("adpcm", AttackDecayConfig{},
                          [&](const IntervalStats &stats) {
                              min_fp_freq = std::min(
                                  min_fp_freq,
                                  stats.domains[CTL_FP].frequency);
                          });
    EXPECT_LT(min_fp_freq, 0.9e9);
}

TEST(Integration, AttackDecayStaysGentleOnMcf)
{
    // Section 5: mcf's critical resource is the memory path; the
    // Attack/Decay run degrades it barely (0.3% in the paper) because
    // saturated queues keep the important domains fast. At our scaled
    // windows we assert the consequences: small degradation, positive
    // savings, and no domain crashing to the floor.
    Runner runner(integrationConfig(40000));
    SimStats mcd = runner.runMcdBaseline("mcf");
    double min_freq = 1.0e9;
    SimStats ad = runner.runAttackDecay(
        "mcf", AttackDecayConfig{},
        [&](const IntervalStats &stats) {
            for (int slot = 0; slot < NUM_CONTROLLED; ++slot)
                min_freq = std::min(
                    min_freq,
                    stats.domains[static_cast<std::size_t>(slot)]
                        .frequency);
        });
    ComparisonMetrics m = compare(mcd, ad);
    EXPECT_LT(m.perfDegradation, 0.08);
    EXPECT_GT(m.energySavings, 0.02);
    EXPECT_GT(min_freq, 0.4e9);
}

TEST(Integration, AttackDecayRespondsToFpPhases)
{
    // Figure 3: epic's FP frequency must fall during idle-FP phases
    // and rise again when the FP phase begins.
    Runner runner(integrationConfig(120000));
    std::vector<double> freq;
    std::vector<double> util;
    runner.runAttackDecay("epic", AttackDecayConfig{},
                          [&](const IntervalStats &stats) {
                              freq.push_back(
                                  stats.domains[CTL_FP].frequency);
                              util.push_back(
                                  stats.domains[CTL_FP]
                                      .queueUtilization);
                          });
    ASSERT_GT(freq.size(), 50u);
    double min_freq = *std::min_element(freq.begin(), freq.end());
    double max_util = *std::max_element(util.begin(), util.end());
    EXPECT_LT(min_freq, 0.95e9); // decayed during idle phases
    EXPECT_GT(max_util, 1.0);    // FP phases really exercised the FIQ

    // After the first burst of FP activity, frequency must have risen
    // from wherever decay had taken it.
    std::size_t first_burst = 0;
    while (first_burst < util.size() && util[first_burst] < 0.5)
        ++first_burst;
    ASSERT_LT(first_burst, util.size());
    std::size_t burst_end = first_burst;
    while (burst_end < util.size() && util[burst_end] >= 0.5)
        ++burst_end;
    ASSERT_GT(burst_end, first_burst + 2);
    EXPECT_GT(freq[burst_end - 1], freq[first_burst] - 0.05e9);
}

TEST(Integration, AttackDecayBeatsBaselineEnergyAcrossClasses)
{
    Runner runner(integrationConfig());
    for (const char *bench : {"adpcm", "epic", "mcf", "swim"}) {
        SimStats mcd = runner.runMcdBaseline(bench);
        SimStats ad = runner.runAttackDecay(bench,
                                            AttackDecayConfig{});
        ComparisonMetrics m = compare(mcd, ad);
        EXPECT_GT(m.energySavings, 0.0) << bench;
        EXPECT_LT(m.perfDegradation, 0.20) << bench;
    }
}

TEST(Integration, Dynamic5SavesMoreEnergyThanDynamic1)
{
    // Table 6 structure: the looser cap buys more energy.
    Runner runner(integrationConfig());
    std::vector<IntervalProfile> profile;
    SimStats mcd = runner.runMcdBaseline("epic", &profile);
    OfflineResult dyn1 =
        runner.runOfflineDynamic("epic", 0.01, mcd, profile);
    OfflineResult dyn5 =
        runner.runOfflineDynamic("epic", 0.05, mcd, profile);
    EXPECT_LE(dyn1.achievedDeg, 0.011);
    EXPECT_LE(dyn5.achievedDeg, 0.051);
    EXPECT_GE(compare(mcd, dyn5.stats).energySavings,
              compare(mcd, dyn1.stats).energySavings - 0.01);
}

TEST(Integration, GlobalScalingRatioIsNearTwo)
{
    // Table 6: global frequency/voltage scaling of the synchronous
    // machine yields a power/performance ratio around 2-3 for
    // compute-bound applications.
    Runner runner(integrationConfig());
    std::vector<ComparisonMetrics> all;
    for (const char *bench : {"gsm", "adpcm", "power", "pegwit"}) {
        SimStats sync = runner.runSynchronous(bench, 1.0e9);
        GlobalResult global =
            runner.runGlobalAtDegradation(bench, 0.05);
        all.push_back(compare(sync, global.stats));
    }
    double ratio = powerPerfRatio(all);
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 3.5);
}

TEST(Integration, McdAttackDecayBeatsGlobalRatio)
{
    // The paper's headline claim: per-domain control achieves a much
    // better power-savings-to-degradation ratio than global scaling.
    Runner runner(integrationConfig());
    std::vector<ComparisonMetrics> ad_all, global_all;
    for (const char *bench : {"adpcm", "epic", "gsm", "power"}) {
        SimStats mcd = runner.runMcdBaseline(bench);
        SimStats sync = runner.runSynchronous(bench, 1.0e9);
        SimStats ad = runner.runAttackDecay(bench,
                                            AttackDecayConfig{});
        ad_all.push_back(compare(mcd, ad));
        GlobalResult global =
            runner.runGlobalAtDegradation(bench, 0.05);
        global_all.push_back(compare(sync, global.stats));
    }
    EXPECT_GT(powerPerfRatio(ad_all), powerPerfRatio(global_all));
}

TEST(Integration, SlewedVsImmediateFrequencyChangesDiffer)
{
    // The on-line algorithm pays the 49.1 ns/MHz slew; the off-line
    // schedule applies changes instantaneously. A schedule replayed
    // through the slewing path (via target changes each interval in
    // AttackDecay) must not be identical to the immediate path.
    Runner runner(integrationConfig(30000));
    SimStats immediate = runner.runSchedule(
        "gsm", {FrequencyVector{600.0e6, 600.0e6, 600.0e6}});
    // The same end state reached through a slew from 1 GHz.
    auto workload = BenchmarkFactory::create(
        "gsm", runner.config().instructions + runner.config().warmup);
    SimConfig sim_config;
    sim_config.clocks.seed = runner.config().clockSeed;
    Simulator sim(sim_config, *workload);
    sim.clocks().clock(DomainId::Integer).setTargetFrequency(600.0e6);
    sim.clocks().clock(DomainId::FloatingPoint)
        .setTargetFrequency(600.0e6);
    sim.clocks().clock(DomainId::LoadStore).setTargetFrequency(
        600.0e6);
    sim.run(runner.config().warmup);
    sim.resetMeasurement();
    sim.run(runner.config().instructions);
    // After the slew completes both run at 600 MHz, but the slewed run
    // spent its early warm-up faster: times must differ while both
    // remain valid runs.
    EXPECT_GT(sim.stats().time, 0);
    EXPECT_GT(immediate.time, 0);
}

} // namespace
} // namespace mcd
