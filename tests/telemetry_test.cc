/**
 * @file
 * The telemetry subsystem under test: registry round-trips and
 * renderers, log2 histogram bucket edges, concurrent increments, the
 * serve request-trace schema, the metrics verb's consistency with the
 * daemon's own counters — and the subsystem's hard guarantee, that a
 * profiled run's simulation results are byte-identical to an
 * unprofiled run's.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "harness/experiment.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "telemetry/events.hh"
#include "telemetry/profiler.hh"
#include "telemetry/stat_registry.hh"

using namespace mcd;
using namespace mcd::telemetry;

namespace
{

/** Find one stat in a snapshot by path; nullptr when absent. */
const StatValue *
find(const std::vector<StatValue> &stats, const std::string &path)
{
    for (const auto &s : stats)
        if (s.path == path)
            return &s;
    return nullptr;
}

RunnerConfig
testConfig()
{
    RunnerConfig config;
    config.instructions = 20000;
    config.warmup = 5000;
    config.intervalInstructions = 500;
    return config;
}

std::string
socketPath(const std::string &tag)
{
    return "/tmp/mcd_telemetry_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

void
connectTo(serve::ServeClient &client, const std::string &path)
{
    std::string error;
    for (int i = 0; i < 100; ++i) {
        if (client.connect(path, &error))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "could not connect to " << path << ": " << error;
}

json::Value
callOne(serve::ServeClient &client, const std::string &request)
{
    std::string error;
    EXPECT_TRUE(client.send(request, &error)) << error;
    std::string raw;
    EXPECT_EQ(serve::FrameStatus::Ok, client.recv(raw));
    json::Value reply;
    EXPECT_TRUE(json::parse(raw, reply, &error)) << error;
    return reply;
}

/** Drive one `run` request to its terminal frame. */
void
drainRun(serve::ServeClient &client, const std::string &request)
{
    std::string error;
    json::Value terminal;
    ASSERT_TRUE(client.call(request, nullptr, terminal, &error))
        << error;
    ASSERT_EQ("done", terminal.getString("event"))
        << terminal.getString("error");
}

} // namespace

// --------------------------------------------------------- registry

TEST(StatRegistry, OwnedStatsRoundTrip)
{
    StatRegistry &reg = StatRegistry::instance();
    telemetry::Counter &c = reg.counter("test.owned.counter");
    c.reset();
    c.inc();
    c.inc(41);
    // Create-or-get: the same path is the same stat.
    EXPECT_EQ(&c, &reg.counter("test.owned.counter"));
    EXPECT_EQ(42u, c.value());

    telemetry::Gauge &g = reg.gauge("test.owned.gauge");
    g.set(7);
    g.add(-3);
    EXPECT_EQ(4, g.value());

    auto stats = reg.snapshot("test.owned.");
    ASSERT_EQ(2u, stats.size());
    const StatValue *sc = find(stats, "test.owned.counter");
    ASSERT_NE(nullptr, sc);
    EXPECT_EQ(StatValue::Kind::Counter, sc->kind);
    EXPECT_EQ(42u, sc->counter);
    const StatValue *sg = find(stats, "test.owned.gauge");
    ASSERT_NE(nullptr, sg);
    EXPECT_EQ(StatValue::Kind::Gauge, sg->kind);
    EXPECT_EQ(4, sg->gauge);
}

TEST(StatRegistry, BoundViewsAreLatestWinsAndUnbindable)
{
    StatRegistry &reg = StatRegistry::instance();
    telemetry::Counter first;
    telemetry::Counter second;
    first.inc(10);
    second.inc(20);

    reg.bindCounter("test.bound.counter", &first);
    auto stats = reg.snapshot("test.bound.");
    ASSERT_NE(nullptr, find(stats, "test.bound.counter"));
    EXPECT_EQ(10u, find(stats, "test.bound.counter")->counter);

    // Latest binding wins (sequentially constructed servers in tests).
    reg.bindCounter("test.bound.counter", &second);
    stats = reg.snapshot("test.bound.");
    EXPECT_EQ(20u, find(stats, "test.bound.counter")->counter);

    reg.unbind("test.bound.counter");
    stats = reg.snapshot("test.bound.");
    EXPECT_EQ(nullptr, find(stats, "test.bound.counter"));
}

TEST(StatRegistry, BindFnComputesAtSnapshotTime)
{
    StatRegistry &reg = StatRegistry::instance();
    std::uint64_t source = 5;
    reg.bindFn("test.fn.derived", [&source] { return source * 2; });
    EXPECT_EQ(10u,
              find(reg.snapshot("test.fn."), "test.fn.derived")
                  ->counter);
    source = 21;
    EXPECT_EQ(42u,
              find(reg.snapshot("test.fn."), "test.fn.derived")
                  ->counter);
    reg.unbind("test.fn.derived");
}

TEST(StatRegistry, HistogramBucketEdges)
{
    telemetry::Histogram h;
    // Bucket b holds values with bit_width == b: 0 -> 0, 1 -> 1,
    // {2,3} -> 2, {4..7} -> 3, 2^63 -> 64 (the last bucket).
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(4);
    h.record(7);
    h.record(1ull << 63);
    telemetry::HistogramData d = h.read();
    EXPECT_EQ(7u, d.count);
    EXPECT_EQ(0u, d.min);
    EXPECT_EQ(1ull << 63, d.max);
    EXPECT_EQ(17u + (1ull << 63), d.sum);
    EXPECT_EQ(1u, d.buckets[0]);
    EXPECT_EQ(1u, d.buckets[1]);
    EXPECT_EQ(2u, d.buckets[2]);
    EXPECT_EQ(2u, d.buckets[3]);
    EXPECT_EQ(1u, d.buckets[64]);

    // Quantiles are clamped to the exact observed range.
    EXPECT_GE(d.quantile(0.0), static_cast<double>(d.min));
    EXPECT_LE(d.quantile(1.0), static_cast<double>(d.max));

    // A single sample is its own quantile at every q.
    telemetry::Histogram one;
    one.record(100);
    EXPECT_DOUBLE_EQ(100.0, one.read().quantile(0.5));
    EXPECT_DOUBLE_EQ(100.0, one.read().quantile(0.99));

    one.reset();
    EXPECT_EQ(0u, one.read().count);
}

TEST(StatRegistry, ConcurrentIncrementsAreExact)
{
    StatRegistry &reg = StatRegistry::instance();
    telemetry::Counter &c = reg.counter("test.concurrent.counter");
    c.reset();
    telemetry::Histogram &h = reg.histogram("test.concurrent.hist");
    h.reset();

    constexpr int THREADS = 8;
    constexpr int PER_THREAD = 100000;
    std::vector<std::thread> workers;
    for (int t = 0; t < THREADS; ++t) {
        workers.emplace_back([&c, &h, t] {
            for (int i = 0; i < PER_THREAD; ++i) {
                c.inc();
                h.record(static_cast<std::uint64_t>(t + 1));
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(static_cast<std::uint64_t>(THREADS) * PER_THREAD,
              c.value());
    telemetry::HistogramData d = h.read();
    EXPECT_EQ(static_cast<std::uint64_t>(THREADS) * PER_THREAD,
              d.count);
    EXPECT_EQ(1u, d.min);
    EXPECT_EQ(THREADS, static_cast<int>(d.max));
}

TEST(StatRegistry, RenderersCoverEveryStatKind)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.counter("test.render.counter").reset();
    reg.counter("test.render.counter").inc(3);
    reg.gauge("test.render.gauge").set(-5);
    telemetry::Histogram &h = reg.histogram("test.render.hist");
    h.reset();
    h.record(10);
    h.record(1000);
    auto stats = reg.snapshot("test.render.");

    // JSON: parseable, flat, histograms expanded to summaries.
    std::string json_text = StatRegistry::renderJson(stats);
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::parse(json_text, parsed, &error))
        << error << "\n" << json_text;
    EXPECT_EQ(3u, parsed.getU64("test.render.counter", 0));
    const json::Value *hist = parsed.get("test.render.hist");
    ASSERT_NE(nullptr, hist);
    EXPECT_EQ(2u, hist->getU64("count", 0));
    EXPECT_EQ(10u, hist->getU64("min", 0));
    EXPECT_EQ(1000u, hist->getU64("max", 0));

    // Table: every path appears.
    std::string table = StatRegistry::renderTable(stats);
    EXPECT_NE(std::string::npos, table.find("test.render.counter"));
    EXPECT_NE(std::string::npos, table.find("test.render.hist"));

    // Prometheus: mcd_ prefix, dots to underscores, summary suffixes.
    std::string prom = StatRegistry::renderPrometheus(stats);
    EXPECT_NE(std::string::npos,
              prom.find("mcd_test_render_counter 3"));
    EXPECT_NE(std::string::npos,
              prom.find("mcd_test_render_hist_count 2"));
    EXPECT_NE(std::string::npos,
              prom.find("quantile=\"0.5\""));
}

// --------------------------------------------------------- profiler

TEST(Profiler, OnOffLeavesResultsByteIdentical)
{
    // The subsystem's hard guarantee: probes observe wall-clock
    // reality only, never simulated state, so the rendered result
    // document — every field, every digit — is identical with the
    // profiler on and off. Two specs: a paper application under the
    // paper's controller, and a parametric synthetic scenario.
    std::vector<ExperimentSpec> specs;
    {
        ExperimentSpec spec;
        spec.benchmark = "gsm";
        spec.controller = parseControllerSpec("attack_decay");
        spec.config = testConfig();
        specs.push_back(spec);
    }
    {
        ExperimentSpec spec;
        spec.benchmark = "synthetic:mem=0.8,ilp=4,phases=3";
        spec.config = testConfig();
        specs.push_back(spec);
    }

    for (const ExperimentSpec &spec : specs) {
        setProfiling(false);
        std::string off =
            serve::experimentResultJson(spec, runExperiment(spec));

        setProfiling(true);
        resetPhaseHistograms();
        std::string on =
            serve::experimentResultJson(spec, runExperiment(spec));

        // Not vacuous: the profiled run actually recorded samples.
        EXPECT_GT(phaseHistogram(Phase::SimCommit).read().count, 0u)
            << spec.benchmark;
        setProfiling(false);

        EXPECT_EQ(off, on) << spec.benchmark;
    }
    resetPhaseHistograms();
}

TEST(Profiler, DisabledProbeRecordsNothing)
{
    setProfiling(false);
    resetPhaseHistograms();
    {
        ScopedTimer timer(Phase::CkptSave);
    }
    EXPECT_EQ(0u, phaseHistogram(Phase::CkptSave).read().count);
    setProfiling(true);
    {
        ScopedTimer timer(Phase::CkptSave);
    }
    setProfiling(false);
    EXPECT_EQ(1u, phaseHistogram(Phase::CkptSave).read().count);
    resetPhaseHistograms();
}

// ---------------------------------------------------- serve tracing

TEST(ServeTracing, EventLogSchemaAndDistinctIds)
{
    std::string events_path = "/tmp/mcd_telemetry_events_" +
                              std::to_string(::getpid()) + ".jsonl";
    std::remove(events_path.c_str());

    ArtifactCache cache;
    {
        serve::ServeOptions options;
        options.socketPath = socketPath("events");
        options.workers = 2;
        options.config = testConfig();
        options.cache = &cache;
        options.eventsPath = events_path;
        serve::Server server(options);
        std::thread daemon([&server] { server.run(); });

        serve::ServeClient client;
        connectTo(client, server.socketPath());
        // Two runs of the same spec: one cold, one warm — two distinct
        // request ids tracing the same lifecycle.
        drainRun(client,
                 "{\"op\": \"run\", \"benches\": [\"gsm\"]}");
        drainRun(client,
                 "{\"op\": \"run\", \"benches\": [\"gsm\"]}");
        json::Value ack = callOne(client, "{\"op\": \"shutdown\"}");
        EXPECT_EQ("shutdown", ack.getString("event"));
        daemon.join(); // full drain: every trace line is flushed
    }

    std::ifstream in(events_path);
    ASSERT_TRUE(in.is_open()) << events_path;
    std::map<std::uint64_t, std::vector<std::string>> by_id;
    std::uint64_t last_ts = 0;
    std::string line;
    while (std::getline(in, line)) {
        json::Value event;
        std::string error;
        ASSERT_TRUE(json::parse(line, event, &error))
            << error << "\n" << line;
        // Schema: every line has ts, id, event.
        std::uint64_t ts = event.getU64("ts", 0);
        EXPECT_GT(ts, 0u) << line;
        EXPECT_GE(ts, last_ts) << "timestamps went backwards";
        last_ts = ts;
        ASSERT_GT(event.getU64("id", 0), 0u) << line;
        ASSERT_FALSE(event.getString("event").empty()) << line;
        by_id[event.getU64("id", 0)].push_back(
            event.getString("event"));
        if (event.getString("event") == "executing")
            EXPECT_NE(nullptr, event.get("queue_wait_ns")) << line;
        if (event.getString("event") == "done" &&
            event.get("exec_ns") != nullptr) {
            EXPECT_NE(nullptr, event.get("bytes_streamed")) << line;
            EXPECT_NE(nullptr, event.get("cold_units")) << line;
        }
    }

    // Three requests traced (run, run, shutdown), distinct ids.
    ASSERT_EQ(3u, by_id.size());
    int runs = 0;
    for (const auto &[id, sequence] : by_id) {
        if (sequence.size() == 1) {
            EXPECT_EQ("accepted", sequence[0]);
            continue; // shutdown traces accepted only (+ done below)
        }
        if (sequence.front() == "accepted" && sequence.size() >= 6) {
            ++runs;
            const std::vector<std::string> expected = {
                "accepted", "validated", "queued",
                "executing", "streaming", "done"};
            EXPECT_EQ(expected, sequence) << "id " << id;
        }
    }
    EXPECT_EQ(2, runs);
    std::remove(events_path.c_str());
}

TEST(ServeTracing, MetricsVerbMatchesDaemonCounters)
{
    ArtifactCache cache;
    serve::ServeOptions options;
    options.socketPath = socketPath("metrics");
    options.workers = 2;
    options.config = testConfig();
    options.cache = &cache;
    serve::Server server(options);
    std::thread daemon([&server] { server.run(); });

    serve::ServeClient client;
    connectTo(client, server.socketPath());
    drainRun(client, "{\"op\": \"run\", \"benches\": [\"gsm\"]}");

    json::Value reply = callOne(client, "{\"op\": \"metrics\"}");
    EXPECT_EQ("metrics", reply.getString("event"));
    const json::Value *stats = reply.get("stats");
    ASSERT_NE(nullptr, stats);

    // The registry snapshot and the daemon's own counters agree.
    serve::ServeStats direct = server.stats();
    EXPECT_EQ(direct.requests, stats->getU64("serve.requests", 99));
    EXPECT_EQ(direct.runRequests,
              stats->getU64("serve.run_requests", 99));
    EXPECT_EQ(direct.unitsExecuted,
              stats->getU64("serve.units_executed", 99));
    EXPECT_EQ(direct.coldUnits, stats->getU64("serve.cold_units", 99));
    EXPECT_EQ(direct.badRequests,
              stats->getU64("serve.bad_requests", 99));

    // The snapshot spans the subsystems, not just serve.*: the
    // request latency histograms and the pool/sim counters are there.
    EXPECT_NE(nullptr, stats->get("serve.request.exec_ns"));
    EXPECT_NE(nullptr, stats->get("serve.request.queue_ns"));
    EXPECT_NE(nullptr, stats->get("pool.tasks"));
    EXPECT_NE(nullptr, stats->get("sim.runs"));
    EXPECT_NE(nullptr, stats->get("store.lookups"));

    server.requestStop();
    daemon.join();
}
