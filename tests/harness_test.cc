/**
 * @file
 * Tests for the experiment harness: metric arithmetic, table/CSV
 * rendering, and the Runner's canonical configurations and searches on
 * small windows.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

namespace mcd
{
namespace
{

SimStats
makeStats(Tick time, NanoJoule energy, std::uint64_t insts = 1000)
{
    SimStats stats;
    stats.instructions = insts;
    stats.time = time;
    stats.chipEnergy = energy;
    stats.feCycles = static_cast<std::uint64_t>(time);
    stats.cpi = static_cast<double>(stats.feCycles) /
                static_cast<double>(insts);
    stats.epi = energy / static_cast<double>(insts);
    return stats;
}

TEST(Metrics, CompareBasics)
{
    SimStats ref = makeStats(1000, 1000.0);
    SimStats x = makeStats(1100, 800.0);
    ComparisonMetrics m = compare(ref, x);
    EXPECT_NEAR(m.perfDegradation, 0.10, 1e-12);
    EXPECT_NEAR(m.energySavings, 0.20, 1e-12);
    // EDP: 1 - (800*1100)/(1000*1000) = 0.12
    EXPECT_NEAR(m.edpImprovement, 0.12, 1e-12);
    // Power: 1 - (800/1100)/(1000/1000) = 1 - 0.7272..
    EXPECT_NEAR(m.powerSavings, 1.0 - 800.0 / 1100.0, 1e-12);
    EXPECT_NEAR(m.epiReduction, 0.20, 1e-12);
    EXPECT_NEAR(m.cpiIncrease, 0.10, 1e-12);
}

TEST(Metrics, IdenticalRunsAreAllZero)
{
    SimStats s = makeStats(1000, 1000.0);
    ComparisonMetrics m = compare(s, s);
    EXPECT_DOUBLE_EQ(m.perfDegradation, 0.0);
    EXPECT_DOUBLE_EQ(m.energySavings, 0.0);
    EXPECT_DOUBLE_EQ(m.edpImprovement, 0.0);
}

TEST(Metrics, MeanOf)
{
    std::vector<ComparisonMetrics> all(2);
    all[0].energySavings = 0.10;
    all[1].energySavings = 0.30;
    EXPECT_DOUBLE_EQ(meanOf(all, &ComparisonMetrics::energySavings),
                     0.20);
    EXPECT_DOUBLE_EQ(meanOf({}, &ComparisonMetrics::energySavings),
                     0.0);
}

TEST(Metrics, PowerPerfRatio)
{
    std::vector<ComparisonMetrics> all(2);
    all[0].powerSavings = 0.20;
    all[0].perfDegradation = 0.05;
    all[1].powerSavings = 0.10;
    all[1].perfDegradation = 0.05;
    // mean power 15% / mean deg 5% = 3.
    EXPECT_NEAR(powerPerfRatio(all), 3.0, 1e-12);
}

TEST(Metrics, PowerPerfRatioZeroWhenNoDegradation)
{
    std::vector<ComparisonMetrics> all(1);
    all[0].powerSavings = 0.2;
    all[0].perfDegradation = 0.0;
    EXPECT_DOUBLE_EQ(powerPerfRatio(all), 0.0);
}

TEST(Table, RenderAlignsColumns)
{
    TextTable table("title");
    table.setHeader({"a", "bbbb"});
    table.addRow({"xx", "y"});
    std::string out = table.render();
    EXPECT_NE(out.find("title\n"), std::string::npos);
    EXPECT_NE(out.find("a   bbbb\n"), std::string::npos);
    EXPECT_NE(out.find("xx  y\n"), std::string::npos);
}

TEST(Table, CsvIsCommaSeparated)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    EXPECT_EQ(table.csv(), "a,b\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(pct(0.032), "3.2%");
    EXPECT_EQ(pct(0.0175, 2), "1.75%");
    EXPECT_EQ(num(4.567, 1), "4.6");
    EXPECT_EQ(ghz(1.0e9, 1), "1.0 GHz");
    EXPECT_EQ(ghz(6.544e8, 3), "0.654 GHz");
}

RunnerConfig
tinyConfig()
{
    RunnerConfig config;
    config.instructions = 20000;
    config.warmup = 5000;
    config.intervalInstructions = 500;
    return config;
}

TEST(Runner, SynchronousAndMcdBaselines)
{
    Runner runner(tinyConfig());
    SimStats sync = runner.runSynchronous("gsm", 1.0e9);
    SimStats mcd = runner.runMcdBaseline("gsm");
    EXPECT_EQ(sync.instructions, 20000u);
    EXPECT_EQ(mcd.instructions, 20000u);
    // MCD pays sync penalties and clock overhead.
    EXPECT_GT(mcd.time, sync.time);
    EXPECT_GT(mcd.epi, sync.epi);
}

TEST(Runner, BaselineProfilesEveryMeasuredInterval)
{
    Runner runner(tinyConfig());
    std::vector<IntervalProfile> profile;
    runner.runMcdBaseline("gsm", &profile);
    // Methodology v2: the observer engages at the measurement
    // boundary, so only measured / interval boundaries are recorded.
    EXPECT_GE(profile.size(), 40u);
    EXPECT_LE(profile.size(), 41u);
    for (const auto &p : profile) {
        EXPECT_EQ(p.instructions, 500u);
        EXPECT_GT(p.cycles[CTL_INT], 0u);
    }
}

TEST(Runner, AttackDecaySavesEnergyOnPhasedWorkload)
{
    Runner runner(tinyConfig());
    SimStats mcd = runner.runMcdBaseline("adpcm");
    SimStats ad = runner.runAttackDecay("adpcm", AttackDecayConfig{});
    ComparisonMetrics m = compare(mcd, ad);
    EXPECT_GT(m.energySavings, 0.01);
    EXPECT_LT(m.perfDegradation, 0.15);
}

TEST(Runner, ScheduleRunsApplySchedules)
{
    Runner runner(tinyConfig());
    SimStats fast = runner.runSchedule(
        "gsm", {FrequencyVector{1.0e9, 1.0e9, 1.0e9}});
    SimStats slow = runner.runSchedule(
        "gsm", {FrequencyVector{250.0e6, 250.0e6, 250.0e6}});
    EXPECT_GT(slow.time, fast.time);
    EXPECT_LT(slow.chipEnergy, fast.chipEnergy);
}

TEST(Runner, OfflineSearchRespectsCap)
{
    Runner runner(tinyConfig());
    std::vector<IntervalProfile> profile;
    SimStats mcd = runner.runMcdBaseline("gsm", &profile);
    OfflineResult result =
        runner.runOfflineDynamic("gsm", 0.05, mcd, profile);
    EXPECT_LE(result.achievedDeg, 0.05 + 1e-9);
    EXPECT_GE(result.margin, 0.0);
    EXPECT_LE(result.margin, 1.0);
    // The schedule must save energy against the baseline.
    EXPECT_LT(result.stats.chipEnergy, mcd.chipEnergy);
}

TEST(Runner, OfflineFiveIsAtLeastAsAggressiveAsOne)
{
    Runner runner(tinyConfig());
    std::vector<IntervalProfile> profile;
    SimStats mcd = runner.runMcdBaseline("epic", &profile);
    OfflineResult dyn1 =
        runner.runOfflineDynamic("epic", 0.01, mcd, profile);
    OfflineResult dyn5 =
        runner.runOfflineDynamic("epic", 0.05, mcd, profile);
    EXPECT_LE(dyn5.stats.chipEnergy, dyn1.stats.chipEnergy * 1.001);
}

TEST(Runner, GlobalAtDegradationScalesFrequency)
{
    Runner runner(tinyConfig());
    GlobalResult result = runner.runGlobalAtDegradation("gsm", 0.10);
    EXPECT_NEAR(result.freq, 1.0e9 / 1.10, 1.0e9 / 1.10 * 0.01);
    SimStats sync = runner.runSynchronous("gsm", 1.0e9);
    ComparisonMetrics m = compare(sync, result.stats);
    EXPECT_GT(m.perfDegradation, 0.0);
    EXPECT_GT(m.energySavings, 0.0);
}

TEST(Runner, GlobalMatchingHitsTargetTime)
{
    Runner runner(tinyConfig());
    SimStats sync = runner.runSynchronous("gsm", 1.0e9);
    Tick target = static_cast<Tick>(
        static_cast<double>(sync.time) * 1.08);
    GlobalResult result = runner.runGlobalMatching("gsm", target);
    double error = std::abs(static_cast<double>(result.stats.time) -
                            static_cast<double>(target)) /
                   static_cast<double>(target);
    EXPECT_LT(error, 0.03);
    EXPECT_LT(result.freq, 1.0e9);
}

/** Scoped unsetter so env-var tests cannot leak into one another. */
class EnvGuard
{
  public:
    EnvGuard()
    {
        clear();
    }

    ~EnvGuard()
    {
        clear();
    }

  private:
    void
    clear()
    {
        unsetenv("MCD_INSNS");
        unsetenv("MCD_WARMUP");
        unsetenv("MCD_INTERVAL");
        unsetenv("MCD_JOBS");
    }
};

TEST(Runner, EnvOverrides)
{
    EnvGuard guard;
    setenv("MCD_INSNS", "12345", 1);
    setenv("MCD_WARMUP", "678", 1);
    setenv("MCD_INTERVAL", "250", 1);
    setenv("MCD_JOBS", "4", 1);
    RunnerConfig config;
    config.applyEnvOverrides();
    EXPECT_EQ(config.instructions, 12345u);
    EXPECT_EQ(config.warmup, 678u);
    EXPECT_EQ(config.intervalInstructions, 250);
    EXPECT_EQ(config.jobs, 4);
}

TEST(Runner, EnvOverridesAbsentLeaveDefaults)
{
    EnvGuard guard;
    RunnerConfig config;
    config.applyEnvOverrides();
    RunnerConfig defaults;
    EXPECT_EQ(config.instructions, defaults.instructions);
    EXPECT_EQ(config.warmup, defaults.warmup);
    EXPECT_EQ(config.intervalInstructions,
              defaults.intervalInstructions);
    EXPECT_EQ(config.jobs, defaults.jobs);
}

TEST(Runner, EnvOverridesIgnoreBadValues)
{
    EnvGuard guard;
    // Non-numeric, zero, and negative values must not clobber a sane
    // configuration (zero instructions or interval would hang or
    // divide by zero downstream).
    setenv("MCD_INSNS", "banana", 1);
    setenv("MCD_WARMUP", "-5", 1);
    setenv("MCD_INTERVAL", "0", 1);
    setenv("MCD_JOBS", "-2", 1);
    RunnerConfig config;
    config.applyEnvOverrides();
    RunnerConfig defaults;
    EXPECT_EQ(config.instructions, defaults.instructions);
    EXPECT_EQ(config.warmup, defaults.warmup);
    EXPECT_EQ(config.intervalInstructions,
              defaults.intervalInstructions);
    EXPECT_EQ(config.jobs, defaults.jobs);
}

TEST(Runner, EnvOverridesAllowZeroWarmup)
{
    EnvGuard guard;
    // Warm-up may legitimately be disabled entirely.
    setenv("MCD_WARMUP", "0", 1);
    RunnerConfig config;
    config.applyEnvOverrides();
    EXPECT_EQ(config.warmup, 0u);
}

TEST(Runner, EnvOverridesPartialSetTouchesOnlyThatKnob)
{
    EnvGuard guard;
    setenv("MCD_INTERVAL", "750", 1);
    RunnerConfig config;
    config.applyEnvOverrides();
    RunnerConfig defaults;
    EXPECT_EQ(config.intervalInstructions, 750);
    EXPECT_EQ(config.instructions, defaults.instructions);
    EXPECT_EQ(config.warmup, defaults.warmup);
    EXPECT_EQ(config.jobs, defaults.jobs);
}

TEST(Runner, IdenticalVariantsShareTheWorkloadStream)
{
    // Two baseline runs of the same benchmark must be bit-identical:
    // the workload and clocks are seeded deterministically.
    Runner runner(tinyConfig());
    SimStats a = runner.runMcdBaseline("bh");
    SimStats b = runner.runMcdBaseline("bh");
    EXPECT_EQ(a.time, b.time);
    EXPECT_DOUBLE_EQ(a.chipEnergy, b.chipEnergy);
}

} // namespace
} // namespace mcd
