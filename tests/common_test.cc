/**
 * @file
 * Unit tests for the common substrate: time types, RNG determinism and
 * distribution quality, and the statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mcd
{
namespace
{

TEST(Types, PeriodFrequencyRoundTrip)
{
    EXPECT_EQ(periodFromFreq(1.0e9), 1000);
    EXPECT_EQ(periodFromFreq(250.0e6), 4000);
    EXPECT_DOUBLE_EQ(freqFromPeriod(1000), 1.0e9);
    EXPECT_DOUBLE_EQ(freqFromPeriod(4000), 250.0e6);
}

TEST(Types, PeriodRoundsToNearestTick)
{
    // 666.67 MHz -> 1500.0 ps
    EXPECT_EQ(periodFromFreq(2.0e9 / 3.0), 1500);
}

TEST(Types, DomainNames)
{
    EXPECT_STREQ(domainName(DomainId::FrontEnd), "front-end");
    EXPECT_STREQ(domainName(DomainId::Integer), "integer");
    EXPECT_STREQ(domainName(DomainId::FloatingPoint), "floating-point");
    EXPECT_STREQ(domainName(DomainId::LoadStore), "load-store");
    EXPECT_STREQ(domainName(DomainId::External), "external");
}

TEST(Types, ControllableDomainsExcludeFrontEndAndExternal)
{
    for (DomainId id : CONTROLLABLE_DOMAINS) {
        EXPECT_NE(id, DomainId::FrontEnd);
        EXPECT_NE(id, DomainId::External);
    }
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform(3.0, 5.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.push(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.push(rng.normal(5.0, 110.0));
    EXPECT_NEAR(stats.mean(), 5.0, 2.0);
    EXPECT_NEAR(stats.stddev(), 110.0, 3.0);
}

TEST(Rng, NormalIsBoundedByTableTails)
{
    Rng rng(19);
    for (int i = 0; i < 100000; ++i) {
        double x = rng.normal();
        EXPECT_LT(std::abs(x), 5.0);
    }
}

TEST(Rng, RangeWithinBound)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(Rng, RangeZeroBound)
{
    Rng rng(23);
    EXPECT_EQ(rng.range(0), 0u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BurstLengthRespectsCap)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i) {
        int len = rng.burstLength(0.9, 8);
        EXPECT_GE(len, 1);
        EXPECT_LE(len, 8);
    }
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.push(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, Reset)
{
    RunningStats s;
    s.push(1.0);
    s.push(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinAssignment)
{
    Histogram h(0.0, 10.0, 10);
    h.push(0.5);
    h.push(5.5);
    h.push(9.99);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEndBins)
{
    Histogram h(0.0, 10.0, 10);
    h.push(-5.0);
    h.push(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 4.0, 4);
    h.push(0.5);
    h.push(1.5);
    h.push(1.6);
    h.push(3.5);
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.25);
}

TEST(StatDump, SetGetRender)
{
    StatDump dump;
    dump.set("b.two", 2.0);
    dump.set("a.one", 1.0);
    EXPECT_TRUE(dump.has("a.one"));
    EXPECT_FALSE(dump.has("missing"));
    EXPECT_DOUBLE_EQ(dump.get("b.two"), 2.0);
    // Rendered sorted by name.
    EXPECT_EQ(dump.render(), "a.one 1\nb.two 2\n");
}

} // namespace
} // namespace mcd
