/**
 * @file
 * Unit tests for the Wattch-style energy model and the per-domain power
 * accountant, including the paper's +10% MCD clock adder and quadratic
 * voltage scaling.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/power_accountant.hh"

namespace mcd
{
namespace
{

TEST(EnergyModel, StructureDomainsFollowFigure1)
{
    EXPECT_EQ(structureDomain(StructureId::Icache),
              DomainId::FrontEnd);
    EXPECT_EQ(structureDomain(StructureId::BranchPredictor),
              DomainId::FrontEnd);
    EXPECT_EQ(structureDomain(StructureId::RenameTable),
              DomainId::FrontEnd);
    EXPECT_EQ(structureDomain(StructureId::Rob), DomainId::FrontEnd);
    EXPECT_EQ(structureDomain(StructureId::IntIssueQueue),
              DomainId::Integer);
    EXPECT_EQ(structureDomain(StructureId::IntAlu), DomainId::Integer);
    EXPECT_EQ(structureDomain(StructureId::FpIssueQueue),
              DomainId::FloatingPoint);
    EXPECT_EQ(structureDomain(StructureId::FpMult),
              DomainId::FloatingPoint);
    EXPECT_EQ(structureDomain(StructureId::Lsq), DomainId::LoadStore);
    EXPECT_EQ(structureDomain(StructureId::Dcache),
              DomainId::LoadStore);
    EXPECT_EQ(structureDomain(StructureId::L2Cache),
              DomainId::LoadStore);
}

TEST(EnergyModel, StructureNamesAreUnique)
{
    for (int a = 0; a < NUM_STRUCTURES; ++a) {
        for (int b = a + 1; b < NUM_STRUCTURES; ++b) {
            EXPECT_STRNE(structureName(static_cast<StructureId>(a)),
                         structureName(static_cast<StructureId>(b)));
        }
    }
}

TEST(EnergyModel, VoltageScaleIsQuadratic)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.voltageScale(1.20), 1.0);
    EXPECT_NEAR(model.voltageScale(0.60), 0.25, 1e-12);
    EXPECT_NEAR(model.voltageScale(0.65), (0.65 / 1.2) * (0.65 / 1.2),
                1e-12);
}

TEST(EnergyModel, McdClockOverheadAppliesToTreesOnly)
{
    EnergyModel sync_model(EnergyConfig{}, false);
    EnergyModel mcd_model(EnergyConfig{}, true);
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto id = static_cast<DomainId>(d);
        EXPECT_NEAR(mcd_model.clockTreeEnergy(id),
                    1.10 * sync_model.clockTreeEnergy(id), 1e-12);
        // The idle residual is identical; only the tree grows.
        double sync_idle = sync_model.domainCycleBase(id) -
                           sync_model.clockTreeEnergy(id);
        double mcd_idle = mcd_model.domainCycleBase(id) -
                          mcd_model.clockTreeEnergy(id);
        EXPECT_NEAR(sync_idle, mcd_idle, 1e-12);
    }
    // Access energies are untouched.
    for (int s = 0; s < NUM_STRUCTURES; ++s) {
        auto id = static_cast<StructureId>(s);
        EXPECT_DOUBLE_EQ(sync_model.accessEnergy(id),
                         mcd_model.accessEnergy(id));
    }
}

TEST(EnergyModel, CycleBaseIsTreePlusIdleResidual)
{
    EnergyConfig config;
    config.idleFraction = 0.05;
    EnergyModel model(config, false);
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d) {
        auto id = static_cast<DomainId>(d);
        double idle = 0.0;
        for (int s = 0; s < NUM_STRUCTURES; ++s) {
            auto sid = static_cast<StructureId>(s);
            if (structureDomain(sid) == id)
                idle += config.idleFraction * model.accessEnergy(sid);
        }
        EXPECT_NEAR(model.domainCycleBase(id),
                    model.clockTreeEnergy(id) + idle, 1e-12);
    }
}

TEST(EnergyModel, AccessIncrementExcludesIdleShare)
{
    EnergyConfig config;
    config.idleFraction = 0.05;
    EnergyModel model(config);
    EXPECT_NEAR(model.accessIncrement(StructureId::Dcache),
                0.95 * model.accessEnergy(StructureId::Dcache), 1e-12);
}

TEST(EnergyModel, ExternalDomainHasNoCycleBase)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.domainCycleBase(DomainId::External), 0.0);
    EXPECT_DOUBLE_EQ(model.clockTreeEnergy(DomainId::External), 0.0);
}

TEST(PowerAccountant, CycleChargesGoToDomainBase)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeCycle(DomainId::Integer, 1.20);
    EXPECT_DOUBLE_EQ(power.domainBaseEnergy(DomainId::Integer),
                     model.domainCycleBase(DomainId::Integer));
    EXPECT_DOUBLE_EQ(power.domainEnergy(DomainId::Integer),
                     model.domainCycleBase(DomainId::Integer));
    EXPECT_DOUBLE_EQ(power.domainEnergy(DomainId::FrontEnd), 0.0);
}

TEST(PowerAccountant, AccessChargesScaleWithVoltageSquared)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeAccess(StructureId::IntAlu, 0.60); // quarter energy
    EXPECT_NEAR(power.structureEnergy(StructureId::IntAlu),
                0.25 * model.accessIncrement(StructureId::IntAlu),
                1e-12);
}

TEST(PowerAccountant, AccessCountMultiplies)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeAccess(StructureId::Dcache, 1.20, 7);
    EXPECT_NEAR(power.structureEnergy(StructureId::Dcache),
                7.0 * model.accessIncrement(StructureId::Dcache),
                1e-12);
}

TEST(PowerAccountant, ZeroCountChargesNothing)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeAccess(StructureId::Dcache, 1.20, 0);
    EXPECT_DOUBLE_EQ(power.chipEnergy(), 0.0);
}

TEST(PowerAccountant, ChipEnergySumsAllDomains)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeCycle(DomainId::FrontEnd, 1.20);
    power.chargeCycle(DomainId::LoadStore, 1.20);
    power.chargeAccess(StructureId::FpAlu, 1.20);
    double expected = model.domainCycleBase(DomainId::FrontEnd) +
                      model.domainCycleBase(DomainId::LoadStore) +
                      model.accessIncrement(StructureId::FpAlu);
    EXPECT_NEAR(power.chipEnergy(), expected, 1e-12);
}

TEST(PowerAccountant, ExternalEnergyExcludedFromChip)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeMemoryAccess();
    power.chargeMemoryAccess();
    EXPECT_DOUBLE_EQ(power.chipEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(power.externalEnergy(),
                     2.0 * model.config().mainMemoryAccess);
    EXPECT_DOUBLE_EQ(power.domainEnergy(DomainId::External),
                     power.externalEnergy());
}

TEST(PowerAccountant, ResetClearsEverything)
{
    EnergyModel model;
    PowerAccountant power(model);
    power.chargeCycle(DomainId::Integer, 1.20);
    power.chargeAccess(StructureId::IntAlu, 1.20);
    power.chargeMemoryAccess();
    power.reset();
    EXPECT_DOUBLE_EQ(power.chipEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(power.externalEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(power.structureEnergy(StructureId::IntAlu), 0.0);
}

TEST(PowerAccountant, LowVoltageCycleCostsLess)
{
    EnergyModel model;
    PowerAccountant high(model), low(model);
    high.chargeCycle(DomainId::FloatingPoint, 1.20);
    low.chargeCycle(DomainId::FloatingPoint, 0.65);
    EXPECT_LT(low.chipEnergy(), high.chipEnergy() * 0.30);
}

/**
 * The paper's Section 4 identity: +10% clock energy equals about +2.9%
 * total energy, i.e. the clock subsystem is roughly 29% of chip energy
 * under a representative activity mix.
 */
TEST(PowerAccountant, ClockShareNearThirtyPercent)
{
    EnergyModel model(EnergyConfig{}, false);
    PowerAccountant power(model);
    // Representative per-instruction activity at CPI ~1, mirroring
    // what the simulator actually charges: one cycle per domain, one
    // I-cache line per ~3 instructions, rename+ROB+queue+issue+commit
    // port uses, and a ~30% load/store mix.
    for (int i = 0; i < 3000; ++i) {
        for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d)
            power.chargeCycle(static_cast<DomainId>(d), 1.20);
        if (i % 3 == 0)
            power.chargeAccess(StructureId::Icache, 1.20);
        power.chargeAccess(StructureId::RenameTable, 1.20);
        power.chargeAccess(StructureId::Rob, 1.20, 2);
        power.chargeAccess(StructureId::IntIssueQueue, 1.20, 2);
        power.chargeAccess(StructureId::IntRegFile, 1.20, 2);
        power.chargeAccess(StructureId::IntAlu, 1.20);
        power.chargeAccess(StructureId::ResultBus, 1.20);
        if (i % 6 == 0)
            power.chargeAccess(StructureId::BranchPredictor, 1.20);
        if (i % 3 == 0) {
            power.chargeAccess(StructureId::Lsq, 1.20);
            power.chargeAccess(StructureId::Dcache, 1.20);
        }
        if (i % 50 == 0)
            power.chargeAccess(StructureId::L2Cache, 1.20);
    }
    double clock = 0.0;
    for (int d = 0; d < NUM_CLOCKED_DOMAINS; ++d)
        clock += model.clockTreeEnergy(static_cast<DomainId>(d));
    clock *= 3000.0;
    double share = clock / power.chipEnergy();
    EXPECT_GT(share, 0.20);
    EXPECT_LT(share, 0.40);
}

} // namespace
} // namespace mcd
