/**
 * @file
 * Tests for the synthetic workload substrate: determinism, control-flow
 * consistency (the stream is a plausible correct path), instruction-mix
 * fidelity to the spec, memory-footprint bounds, pointer-chase
 * dependences, phase structure, and the 30-benchmark factory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "workload/benchmark_factory.hh"
#include "workload/scenario_registry.hh"
#include "workload/workload.hh"

namespace mcd
{
namespace
{

BenchmarkSpec
simpleSpec()
{
    BenchmarkSpec spec;
    spec.name = "unit";
    spec.suite = "test";
    spec.seed = 42;
    spec.phases.push_back(PhaseSpec{});
    return spec;
}

TEST(MicroOp, ClassPredicates)
{
    EXPECT_TRUE(isFpClass(OpClass::FpAdd));
    EXPECT_TRUE(isFpClass(OpClass::FpSqrt));
    EXPECT_FALSE(isFpClass(OpClass::FpLoad)); // memory class
    EXPECT_TRUE(isMemClass(OpClass::FpLoad));
    EXPECT_TRUE(isMemClass(OpClass::Store));
    EXPECT_TRUE(isControlClass(OpClass::Return));
    EXPECT_FALSE(isControlClass(OpClass::IntAlu));
    EXPECT_TRUE(isLoadClass(OpClass::FpLoad));
    EXPECT_FALSE(isLoadClass(OpClass::FpStore));
    EXPECT_TRUE(isStoreClass(OpClass::FpStore));
}

TEST(MicroOp, NextPcFollowsControlFlow)
{
    MicroOp op;
    op.pc = 0x100;
    op.cls = OpClass::Branch;
    op.taken = true;
    op.target = 0x500;
    EXPECT_EQ(op.nextPc(), 0x500u);
    op.taken = false;
    EXPECT_EQ(op.nextPc(), 0x104u);
    op.cls = OpClass::IntAlu;
    op.taken = true;
    EXPECT_EQ(op.nextPc(), 0x104u);
}

TEST(SyntheticProgram, DeterministicForSameSeedAndHorizon)
{
    SyntheticProgram a(simpleSpec(), 100000);
    SyntheticProgram b(simpleSpec(), 100000);
    for (int i = 0; i < 20000; ++i) {
        MicroOp x = a.next();
        MicroOp y = b.next();
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        EXPECT_EQ(x.memAddr, y.memAddr);
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.srcA, y.srcA);
        EXPECT_EQ(x.dst, y.dst);
    }
}

TEST(SyntheticProgram, DifferentSeedsProduceDifferentStreams)
{
    BenchmarkSpec spec_a = simpleSpec();
    BenchmarkSpec spec_b = simpleSpec();
    spec_b.seed = 43;
    SyntheticProgram a(spec_a, 100000);
    SyntheticProgram b(spec_b, 100000);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().memAddr == b.next().memAddr;
    EXPECT_LT(same, 900);
}

TEST(SyntheticProgram, PcContinuityAlongCorrectPath)
{
    SyntheticProgram program(simpleSpec(), 100000);
    MicroOp prev = program.next();
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = program.next();
        EXPECT_EQ(op.pc, prev.nextPc())
            << "discontinuity after pc=0x" << std::hex << prev.pc
            << " class=" << std::dec << static_cast<int>(prev.cls);
        prev = op;
    }
}

TEST(SyntheticProgram, MixApproximatesSpec)
{
    BenchmarkSpec spec = simpleSpec();
    PhaseSpec &phase = spec.phases[0];
    phase.loadFrac = 0.25;
    phase.storeFrac = 0.10;
    phase.branchFrac = 0.15;
    phase.fpFrac = 0.20;
    SyntheticProgram program(spec, 200000);

    std::map<int, int> counts;
    const int n = 150000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<int>(program.next().cls)];

    auto frac = [&counts, n](std::initializer_list<OpClass> classes) {
        int total = 0;
        for (OpClass cls : classes)
            total += counts[static_cast<int>(cls)];
        return static_cast<double>(total) / n;
    };

    EXPECT_NEAR(frac({OpClass::Load, OpClass::FpLoad}), 0.25, 0.06);
    EXPECT_NEAR(frac({OpClass::Store, OpClass::FpStore}), 0.10, 0.04);
    EXPECT_NEAR(frac({OpClass::Branch, OpClass::Call, OpClass::Return}),
                0.15, 0.06);
    EXPECT_NEAR(frac({OpClass::FpAdd, OpClass::FpMult, OpClass::FpDiv,
                      OpClass::FpSqrt}),
                0.20, 0.06);
}

TEST(SyntheticProgram, ZeroFpSpecEmitsNoFpArithmetic)
{
    BenchmarkSpec spec = simpleSpec();
    spec.phases[0].fpFrac = 0.0;
    SyntheticProgram program(spec, 100000);
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = program.next();
        EXPECT_FALSE(isFpClass(op.cls));
        EXPECT_NE(static_cast<int>(op.cls),
                  static_cast<int>(OpClass::FpLoad));
    }
}

TEST(SyntheticProgram, MemoryAddressesStayInFootprint)
{
    BenchmarkSpec spec = simpleSpec();
    spec.phases[0].dataFootprint = 64 * 1024;
    SyntheticProgram program(spec, 100000);
    std::uint64_t lo = ~0ull, hi = 0;
    for (int i = 0; i < 60000; ++i) {
        MicroOp op = program.next();
        if (isMemClass(op.cls)) {
            lo = std::min(lo, op.memAddr);
            hi = std::max(hi, op.memAddr);
        }
    }
    EXPECT_LE(hi - lo, 2u * 64 * 1024); // footprint + alignment slack
}

TEST(SyntheticProgram, LargerFootprintTouchesMoreLines)
{
    auto count_lines = [](std::uint64_t footprint) {
        BenchmarkSpec spec;
        spec.name = "unit";
        spec.seed = 42;
        PhaseSpec phase;
        phase.dataFootprint = footprint;
        spec.phases.push_back(phase);
        SyntheticProgram program(spec, 200000);
        std::set<std::uint64_t> lines;
        for (int i = 0; i < 100000; ++i) {
            MicroOp op = program.next();
            if (isMemClass(op.cls))
                lines.insert(op.memAddr / 64);
        }
        return lines.size();
    };
    EXPECT_GT(count_lines(4 * 1024 * 1024), 3 * count_lines(16 * 1024));
}

TEST(SyntheticProgram, ChaseLoadsFormSerialDependences)
{
    BenchmarkSpec spec = simpleSpec();
    spec.phases[0].chaseFrac = 1.0; // all streams chase
    spec.phases[0].loadFrac = 0.4;
    SyntheticProgram program(spec, 100000);

    int serial = 0, chase_loads = 0;
    int prev_chase_dst = -1;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = program.next();
        if (op.cls == OpClass::Load) {
            ++chase_loads;
            if (prev_chase_dst >= 0 && op.srcA == prev_chase_dst)
                ++serial;
            prev_chase_dst = op.dst;
        }
    }
    ASSERT_GT(chase_loads, 1000);
    // The overwhelming majority of chase loads depend on the previous
    // chase load's destination.
    EXPECT_GT(static_cast<double>(serial) / chase_loads, 0.9);
}

TEST(SyntheticProgram, PhasesChangeBehavior)
{
    BenchmarkSpec spec = simpleSpec();
    spec.phases[0].fpFrac = 0.0;
    PhaseSpec fp_phase;
    fp_phase.fpFrac = 0.4;
    spec.phases.push_back(fp_phase);
    const std::uint64_t horizon = 100000;
    SyntheticProgram program(spec, horizon);

    int fp_in_first_half = 0, fp_in_second_half = 0;
    for (std::uint64_t i = 0; i < horizon; ++i) {
        MicroOp op = program.next();
        bool is_fp = isFpClass(op.cls) || op.cls == OpClass::FpLoad;
        if (i < horizon / 2 - 1000)
            fp_in_first_half += is_fp;
        else if (i > horizon / 2 + 1000)
            fp_in_second_half += is_fp;
    }
    EXPECT_EQ(fp_in_first_half, 0);
    EXPECT_GT(fp_in_second_half, 5000);
}

TEST(SyntheticProgram, StreamWrapsPastHorizon)
{
    SyntheticProgram program(simpleSpec(), 10000);
    for (int i = 0; i < 50000; ++i)
        program.next(); // must not crash or run out
    SUCCEED();
}

TEST(SyntheticProgram, CallsAndReturnsNest)
{
    BenchmarkSpec spec = simpleSpec();
    spec.phases[0].callFrac = 0.05;
    SyntheticProgram program(spec, 100000);
    int calls = 0, returns = 0;
    std::vector<std::uint64_t> stack;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = program.next();
        if (op.cls == OpClass::Call) {
            ++calls;
            stack.push_back(op.fallthrough());
        } else if (op.cls == OpClass::Return) {
            ++returns;
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(op.target, stack.back());
            stack.pop_back();
        }
    }
    EXPECT_GT(calls, 100);
    EXPECT_LE(stack.size(), 1u); // at most one call in flight at the end
}

TEST(SyntheticProgram, ZeroRegisterNeverWritten)
{
    SyntheticProgram program(simpleSpec(), 100000);
    for (int i = 0; i < 50000; ++i)
        EXPECT_NE(program.next().dst, 0);
}

TEST(TraceWorkload, WrapsAround)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = 0x10;
    TraceWorkload trace("t", {op, op, op});
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(trace.next().pc, 0x10u);
    EXPECT_EQ(trace.name(), "t");
}

TEST(Factory, ThirtyBenchmarks)
{
    EXPECT_EQ(BenchmarkFactory::allNames().size(), 30u);
}

TEST(Factory, SuitesPartitionTheBenchmarks)
{
    auto media = BenchmarkFactory::suiteNames("MediaBench");
    auto olden = BenchmarkFactory::suiteNames("Olden");
    auto spec = BenchmarkFactory::suiteNames("Spec2000");
    EXPECT_EQ(media.size(), 9u);
    EXPECT_EQ(olden.size(), 10u);
    EXPECT_EQ(spec.size(), 11u);
}

TEST(Factory, EveryBenchmarkInstantiates)
{
    for (const auto &name : BenchmarkFactory::allNames()) {
        auto workload = BenchmarkFactory::create(name, 50000);
        ASSERT_NE(workload, nullptr);
        for (int i = 0; i < 2000; ++i)
            workload->next();
        EXPECT_EQ(workload->name(), name);
    }
}

TEST(Factory, SpecsHaveSanePhaseWeights)
{
    for (const auto &name : BenchmarkFactory::allNames()) {
        BenchmarkSpec spec = BenchmarkFactory::spec(name);
        EXPECT_FALSE(spec.phases.empty());
        for (const auto &phase : spec.phases) {
            EXPECT_GT(phase.weight, 0.0);
            EXPECT_LE(phase.loadFrac + phase.storeFrac +
                          phase.branchFrac + phase.fpFrac,
                      1.0);
            EXPECT_GT(phase.dataFootprint, 0u);
        }
    }
}

TEST(Factory, EpicHasFpPhaseStructure)
{
    // epic decode is the Figure 2/3 application: FP must be absent in
    // at least one phase and strongly present in at least one other.
    BenchmarkSpec spec = BenchmarkFactory::spec("epic");
    bool has_idle_fp = false, has_busy_fp = false;
    for (const auto &phase : spec.phases) {
        has_idle_fp = has_idle_fp || phase.fpFrac == 0.0;
        has_busy_fp = has_busy_fp || phase.fpFrac > 0.25;
    }
    EXPECT_TRUE(has_idle_fp);
    EXPECT_TRUE(has_busy_fp);
}

TEST(Factory, McfIsMemoryBoundPointerChaser)
{
    BenchmarkSpec spec = BenchmarkFactory::spec("mcf");
    EXPECT_GT(spec.phases[0].chaseFrac, 0.5);
    EXPECT_GT(spec.phases[0].dataFootprint, 8u * 1024 * 1024);
}

class FactoryStreamProperty
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FactoryStreamProperty, CorrectPathContinuity)
{
    auto workload = BenchmarkFactory::create(GetParam(), 100000);
    MicroOp prev = workload->next();
    for (int i = 0; i < 30000; ++i) {
        MicroOp op = workload->next();
        ASSERT_EQ(op.pc, prev.nextPc());
        prev = op;
    }
}

TEST_P(FactoryStreamProperty, RegistersInRange)
{
    auto workload = BenchmarkFactory::create(GetParam(), 100000);
    for (int i = 0; i < 30000; ++i) {
        MicroOp op = workload->next();
        EXPECT_GE(op.srcA, -1);
        EXPECT_LT(op.srcA, NUM_ARCH_REGS);
        EXPECT_GE(op.srcB, -1);
        EXPECT_LT(op.srcB, NUM_ARCH_REGS);
        EXPECT_GE(op.dst, -1);
        EXPECT_LT(op.dst, NUM_ARCH_REGS);
        if (op.dst >= 0 && isLoadClass(op.cls)) {
            bool fp_dst = op.dst >= NUM_INT_ARCH_REGS;
            EXPECT_EQ(fp_dst, op.cls == OpClass::FpLoad);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, FactoryStreamProperty,
    ::testing::Values("adpcm", "epic", "gcc", "mcf", "swim", "bh",
                      "treeadd", "vortex", "art", "ghostscript"));

TEST(ScenarioRegistry, ContainsThePaperBenchmarksInOrder)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    auto names = registry.scenarioNames();
    ASSERT_GE(names.size(), 30u);
    // The built-in 30 lead, in Figure 4 order.
    const auto &paper = BenchmarkFactory::allNames();
    for (std::size_t i = 0; i < paper.size(); ++i)
        EXPECT_EQ(names[i], paper[i]);
    for (const auto &name : paper)
        EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.contains("no_such_benchmark"));
}

TEST(ScenarioRegistry, SyntheticFamilyIsRegistered)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    bool found = false;
    for (const auto &family : registry.families())
        found = found || family.prefix == "synthetic:";
    EXPECT_TRUE(found);
    EXPECT_TRUE(registry.contains("synthetic:mem=0.5"));
    EXPECT_TRUE(registry.contains("synthetic:")); // all defaults
}

TEST(ScenarioRegistry, SyntheticKnobsShapeTheSpec)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();

    BenchmarkSpec lean = registry.spec("synthetic:mem=0,ilp=2");
    BenchmarkSpec heavy = registry.spec("synthetic:mem=1,ilp=32");
    ASSERT_EQ(lean.phases.size(), 1u);
    ASSERT_EQ(heavy.phases.size(), 1u);
    EXPECT_EQ(lean.phases[0].depWindow, 2);
    EXPECT_EQ(heavy.phases[0].depWindow, 32);
    EXPECT_LT(lean.phases[0].dataFootprint,
              heavy.phases[0].dataFootprint);
    EXPECT_LT(lean.phases[0].loadFrac, heavy.phases[0].loadFrac);
    EXPECT_LT(lean.phases[0].chaseFrac, heavy.phases[0].chaseFrac);
    EXPECT_EQ(lean.suite, "synthetic");

    BenchmarkSpec phased = registry.spec("synthetic:phases=6");
    ASSERT_EQ(phased.phases.size(), 6u);
    // Alternating memory-boundedness: adjacent phases differ.
    EXPECT_NE(phased.phases[0].dataFootprint,
              phased.phases[1].dataFootprint);
    EXPECT_EQ(phased.phases[0].dataFootprint,
              phased.phases[2].dataFootprint);
}

TEST(ScenarioRegistry, SyntheticBurstKnobBuildsIdlePhases)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();

    // burst=B interleaves an io-like idle phase into each of the N
    // periods: 2N phases, busy weight (1-B)/N, idle weight B/N, and
    // the idle phase is a serial pointer chase with no ILP.
    BenchmarkSpec bursty =
        registry.spec("synthetic:mem=0.2,burst=0.75,phases=3");
    ASSERT_EQ(bursty.phases.size(), 6u);
    for (std::size_t i = 0; i < bursty.phases.size(); i += 2) {
        const PhaseSpec &busy = bursty.phases[i];
        const PhaseSpec &idle = bursty.phases[i + 1];
        EXPECT_DOUBLE_EQ(busy.weight, 0.25 / 3.0);
        EXPECT_DOUBLE_EQ(idle.weight, 0.75 / 3.0);
        EXPECT_EQ(idle.depWindow, 1);
        EXPECT_DOUBLE_EQ(idle.chaseFrac, 1.0);
        EXPECT_GT(idle.dataFootprint, busy.dataFootprint);
    }

    // burst defaults to 0 and changes nothing: the un-bursty name
    // still builds the single uniform phase.
    BenchmarkSpec plain = registry.spec("synthetic:mem=0.2");
    ASSERT_EQ(plain.phases.size(), 1u);
    BenchmarkSpec zero = registry.spec("synthetic:mem=0.2,burst=0");
    ASSERT_EQ(zero.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(zero.phases[0].chaseFrac, plain.phases[0].chaseFrac);

    // All idle (burst=1) is legal: busy phases carry zero weight and
    // the generator still produces a stream.
    BenchmarkSpec all_idle = registry.spec("synthetic:burst=1");
    ASSERT_EQ(all_idle.phases.size(), 2u);
    SyntheticProgram program(all_idle, 4000);
    for (int i = 0; i < 1000; ++i)
        program.next();
}

TEST(ScenarioRegistry, SyntheticSeedKnobAndNameDefault)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    EXPECT_EQ(registry.spec("synthetic:seed=77").seed, 77u);
    // Distinct names default to distinct seeds, deterministically.
    auto a = registry.spec("synthetic:mem=0.2");
    auto a2 = registry.spec("synthetic:mem=0.2");
    auto b = registry.spec("synthetic:mem=0.4");
    EXPECT_EQ(a.seed, a2.seed);
    EXPECT_NE(a.seed, b.seed);
}

TEST(ScenarioRegistry, SyntheticProgramsAreDeterministic)
{
    BenchmarkSpec spec = ScenarioRegistry::instance().spec(
        "synthetic:mem=0.7,ilp=4,phases=4");
    SyntheticProgram a(spec, 20000);
    SyntheticProgram b(spec, 20000);
    for (int i = 0; i < 5000; ++i) {
        MicroOp oa = a.next();
        MicroOp ob = b.next();
        EXPECT_EQ(oa.cls, ob.cls);
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.memAddr, ob.memAddr);
    }
}

TEST(ScenarioRegistry, FactoryCreatesSyntheticScenarios)
{
    auto workload =
        BenchmarkFactory::create("synthetic:mem=0.8,ilp=4", 10000);
    ASSERT_NE(workload, nullptr);
    EXPECT_EQ(workload->name(), "synthetic:mem=0.8,ilp=4");
    for (int i = 0; i < 1000; ++i)
        workload->next();
}

TEST(ScenarioRegistry, UserScenariosRegisterOnce)
{
    BenchmarkSpec custom = simpleSpec();
    custom.name = "workload_test_custom";
    custom.suite = "test";
    ScenarioRegistry::instance().add(custom);
    EXPECT_TRUE(
        ScenarioRegistry::instance().contains("workload_test_custom"));
    EXPECT_EQ(BenchmarkFactory::spec("workload_test_custom").suite,
              "test");
    auto suite = BenchmarkFactory::suiteNames("test");
    EXPECT_NE(std::find(suite.begin(), suite.end(),
                        "workload_test_custom"),
              suite.end());
}

TEST(ScenarioRegistry, UnknownKnobListsEveryValidKnob)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    // The error message is the knob documentation of last resort: it
    // must name the full valid set, including the adversarial knobs.
    EXPECT_DEATH(
        ScenarioRegistry::instance().spec("synthetic:bogus=1"),
        "unknown knob 'bogus'.*valid knobs: mem, ilp, phases, burst, "
        "markov, square, drift, fp, branch, seed");
}

TEST(ScenarioRegistry, AdversarialKnobsAreMutuallyExclusive)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    EXPECT_DEATH(registry.spec("synthetic:markov=8,square=1000"),
                 "mutually exclusive");
    EXPECT_DEATH(registry.spec("synthetic:drift=0.5,burst=0.5"),
                 "mutually exclusive");
    EXPECT_DEATH(registry.spec("synthetic:square=1000,phases=4"),
                 "mutually exclusive");
    EXPECT_DEATH(registry.spec("synthetic:square=100"),
                 "below the 500-instruction minimum");
    EXPECT_DEATH(registry.spec("synthetic:markov=1"),
                 "at least 2 segments");
    // Fractional values would truncate (markov=0.5 to 0, silently
    // disabling the stressor); they must fail loudly instead.
    EXPECT_DEATH(registry.spec("synthetic:markov=0.5"),
                 "must be a whole number");
    EXPECT_DEATH(registry.spec("synthetic:square=0.7"),
                 "below the 500-instruction minimum");
    EXPECT_DEATH(registry.spec("synthetic:square=1000.5"),
                 "must be a whole number");
}

TEST(ScenarioRegistry, MarkovKnobBuildsASeededRegimeChain)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    BenchmarkSpec chain = registry.spec("synthetic:markov=24,mem=0.5");
    ASSERT_EQ(chain.phases.size(), 24u);
    EXPECT_EQ(chain.periodInstructions, 0u); // weight-scaled

    // The chain visits more than one regime, and equal names rebuild
    // the identical chain (the regime RNG is seeded from the spec).
    std::set<std::uint64_t> footprints;
    for (const PhaseSpec &phase : chain.phases)
        footprints.insert(phase.dataFootprint);
    EXPECT_GE(footprints.size(), 2u);
    BenchmarkSpec again = registry.spec("synthetic:markov=24,mem=0.5");
    for (std::size_t i = 0; i < chain.phases.size(); ++i)
        EXPECT_EQ(chain.phases[i].dataFootprint,
                  again.phases[i].dataFootprint);

    // A different seed shuffles the chain.
    BenchmarkSpec other =
        registry.spec("synthetic:markov=24,mem=0.5,seed=9");
    bool differs = false;
    for (std::size_t i = 0; i < chain.phases.size(); ++i)
        differs = differs || chain.phases[i].dataFootprint !=
                                 other.phases[i].dataFootprint;
    EXPECT_TRUE(differs);
}

TEST(ScenarioRegistry, SquareKnobPinsAnAbsoluteFlipPeriod)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    BenchmarkSpec square =
        registry.spec("synthetic:square=1000,mem=0.5");
    ASSERT_EQ(square.phases.size(), 2u);
    EXPECT_EQ(square.periodInstructions, 2000u);
    // The two regimes sit on opposite sides of the mem knob.
    EXPECT_LT(square.phases[0].dataFootprint,
              square.phases[1].dataFootprint);
    EXPECT_GT(square.phases[0].depWindow, square.phases[1].depWindow);

    // The absolute period holds at any horizon: over 100k
    // instructions a 1000-instruction half-period flips ~100 times,
    // where a weight-scaled 2-phase program would flip once.
    SyntheticProgram program(square, 100000);
    int flips = 0;
    int last = program.currentPhase();
    for (int i = 0; i < 100000; ++i) {
        program.next();
        if (program.currentPhase() != last) {
            ++flips;
            last = program.currentPhase();
        }
    }
    EXPECT_GT(flips, 40);
}

TEST(ScenarioRegistry, DriftKnobRampsMonotonically)
{
    ScenarioRegistry &registry = ScenarioRegistry::instance();
    BenchmarkSpec drift =
        registry.spec("synthetic:drift=0.8,mem=0.5");
    ASSERT_EQ(drift.phases.size(), 48u);
    for (std::size_t i = 1; i < drift.phases.size(); ++i) {
        EXPECT_GE(drift.phases[i].loadFrac,
                  drift.phases[i - 1].loadFrac);
        EXPECT_GE(drift.phases[i].dataFootprint,
                  drift.phases[i - 1].dataFootprint);
    }
    // The ramp spans `drift` around `mem`: ends differ substantially.
    EXPECT_GT(drift.phases.back().chaseFrac -
                  drift.phases.front().chaseFrac,
              0.3);
    // Adjacent steps stay small — the whole point of the stressor.
    for (std::size_t i = 1; i < drift.phases.size(); ++i)
        EXPECT_LT(drift.phases[i].chaseFrac -
                      drift.phases[i - 1].chaseFrac,
                  0.02);
}

} // namespace
} // namespace mcd
