/**
 * @file
 * Tests for the declarative experiment layer: ExperimentSpec cache
 * keys, the ControllerRegistry, the process-wide ArtifactCache (hit/miss
 * behavior, shared baselines, batch dedup), and the fewer-total-
 * simulations property of figure-style sweeps run in one process.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hh"
#include "harness/parallel_sweep.hh"
#include "workload/scenario_registry.hh"

namespace mcd
{
namespace
{

RunnerConfig
tinyConfig()
{
    RunnerConfig config;
    config.instructions = 4000;
    config.warmup = 1000;
    config.intervalInstructions = 500;
    return config;
}

ExperimentSpec
tinySpec(const std::string &bench,
         const ControllerSpec &controller = ControllerSpec{},
         ClockMode mode = ClockMode::Mcd)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.mode = mode;
    spec.controller = controller;
    spec.config = tinyConfig();
    return spec;
}

ControllerSpec
profilingSpec()
{
    ControllerSpec spec;
    spec.name = "profiling";
    return spec;
}

class ArtifactCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { ArtifactCache::instance().clear(); }
    void TearDown() override { ArtifactCache::instance().clear(); }
};

// ---------------------------------------------------------- cache keys

TEST(ExperimentSpec, EqualSpecsShareAKey)
{
    EXPECT_EQ(tinySpec("gsm").cacheKey(), tinySpec("gsm").cacheKey());
}

TEST(ExperimentSpec, KeyDistinguishesEveryAxis)
{
    ExperimentSpec base = tinySpec("gsm");

    EXPECT_NE(base.cacheKey(), tinySpec("adpcm").cacheKey());

    ExperimentSpec mode = base;
    mode.mode = ClockMode::Synchronous;
    EXPECT_NE(base.cacheKey(), mode.cacheKey());

    ExperimentSpec freq = base;
    freq.startFreq = 0.5e9;
    EXPECT_NE(base.cacheKey(), freq.cacheKey());

    ExperimentSpec controller = base;
    controller.controller = attackDecaySpec(AttackDecayConfig{});
    EXPECT_NE(base.cacheKey(), controller.cacheKey());

    ExperimentSpec params = controller;
    params.controller.params["decay"] = 0.0125;
    EXPECT_NE(controller.cacheKey(), params.cacheKey());

    ExperimentSpec seed = base;
    seed.config.clockSeed = 999;
    EXPECT_NE(base.cacheKey(), seed.cacheKey());

    ExperimentSpec window = base;
    window.config.instructions = 8000;
    EXPECT_NE(base.cacheKey(), window.cacheKey());
}

TEST(ExperimentSpec, WorkerCountIsNotPartOfTheKey)
{
    // The determinism contract makes results independent of the
    // worker count, so differing `jobs` must still share a cache slot.
    ExperimentSpec serial = tinySpec("gsm");
    serial.config.jobs = 1;
    ExperimentSpec wide = tinySpec("gsm");
    wide.config.jobs = 8;
    EXPECT_EQ(serial.cacheKey(), wide.cacheKey());
}

TEST(ExperimentSpec, StoreRootIsNotPartOfTheKey)
{
    // Where a result is stored never changes its value, so configs
    // differing only in `store` must share a cache slot.
    ExperimentSpec local = tinySpec("gsm");
    ExperimentSpec stored = tinySpec("gsm");
    stored.config.store = "/tmp/somewhere";
    EXPECT_EQ(local.cacheKey(), stored.cacheKey());
}

TEST(ExperimentSpec, TypedSpecKeyNamespacesNeverCollide)
{
    // Four spec types over one benchmark and config: every pair of
    // keys must differ, including ProfileSpec against the profiling
    // ExperimentSpec of the same run (distinct artifacts of it).
    ProfileSpec profile;
    profile.benchmark = "gsm";
    profile.config = tinyConfig();

    OfflineSearchSpec offline;
    offline.benchmark = "gsm";
    offline.config = tinyConfig();

    GlobalMatchSpec global;
    global.benchmark = "gsm";
    global.config = tinyConfig();

    std::vector<std::string> keys = {
        profile.cacheKey(), profile.experimentSpec().cacheKey(),
        offline.cacheKey(), global.cacheKey(),
        tinySpec("gsm").cacheKey()};
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

TEST(ExperimentSpec, SearchSpecKeysCoverTheirInputs)
{
    OfflineSearchSpec base;
    base.benchmark = "gsm";
    base.config = tinyConfig();

    OfflineSearchSpec target = base;
    target.targetDeg = 0.05;
    EXPECT_NE(base.cacheKey(), target.cacheKey());

    OfflineSearchSpec stats = base;
    stats.mcdBase.time = 123;
    EXPECT_NE(base.cacheKey(), stats.cacheKey());

    OfflineSearchSpec profiled = base;
    profiled.profile.emplace_back();
    EXPECT_NE(base.cacheKey(), profiled.cacheKey());

    GlobalMatchSpec gbase;
    gbase.benchmark = "gsm";
    gbase.config = tinyConfig();
    GlobalMatchSpec gtime = gbase;
    gtime.targetTime = 777;
    EXPECT_NE(gbase.cacheKey(), gtime.cacheKey());
}

TEST(ExperimentSpec, OfflineSearchKeysAreDigestSizedNotPayloadSized)
{
    // Key format v2: the baseline stats and interval profile enter as
    // fixed-width digests, so the key must not grow with the profile
    // (v1 embedded both payloads, producing multi-KB keys duplicated
    // into every store entry).
    OfflineSearchSpec small;
    small.benchmark = "gsm";
    small.config = tinyConfig();

    OfflineSearchSpec big = small;
    big.profile.resize(5000);
    for (std::size_t i = 0; i < big.profile.size(); ++i)
        big.profile[i].instructions = i;

    EXPECT_EQ(small.cacheKey().size(), big.cacheKey().size());
    EXPECT_LT(big.cacheKey().size(), 600u);
    EXPECT_NE(small.cacheKey(), big.cacheKey());
    EXPECT_NE(big.cacheKey().find("offline_search/2"),
              std::string::npos);

    // The digests still cover the payloads: a one-field flip anywhere
    // inside either nested input is a different key.
    OfflineSearchSpec flipped_profile = big;
    flipped_profile.profile[4999].ipc = 1.0e-9;
    EXPECT_NE(big.cacheKey(), flipped_profile.cacheKey());
    OfflineSearchSpec flipped_base = big;
    flipped_base.mcdBase.chipEnergy += 1.0;
    EXPECT_NE(big.cacheKey(), flipped_base.cacheKey());
}

TEST(ExperimentSpec, DescribeNamesTheSpecForProvenance)
{
    ExperimentSpec spec = tinySpec("gsm");
    spec.controller = attackDecaySpec(AttackDecayConfig{});
    std::string text = spec.describe();
    EXPECT_NE(text.find("type=experiment"), std::string::npos);
    EXPECT_NE(text.find("benchmark=gsm"), std::string::npos);
    EXPECT_NE(text.find("controller=attack_decay"), std::string::npos);

    OfflineSearchSpec search;
    search.benchmark = "em3d";
    search.targetDeg = 0.05;
    search.config = tinyConfig();
    EXPECT_NE(search.describe().find("type=offline_search"),
              std::string::npos);
    EXPECT_NE(search.describe().find("target_deg=0.05"),
              std::string::npos);
}

TEST(ExperimentSpec, ExplicitMaxFrequencyMatchesDefault)
{
    ExperimentSpec implicit = tinySpec("gsm");
    ExperimentSpec explicit_max = tinySpec("gsm");
    explicit_max.startFreq = explicit_max.config.dvfs.freqMax;
    EXPECT_EQ(implicit.cacheKey(), explicit_max.cacheKey());
}

// ------------------------------------------------------------ registry

TEST(ControllerRegistry, BuiltinsAreRegistered)
{
    ControllerRegistry &registry = ControllerRegistry::instance();
    for (const char *name :
         {"none", "constant", "profiling", "schedule", "attack_decay",
          "frontend_attack_decay"})
        EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_GE(registry.list().size(), 4u);
    EXPECT_FALSE(registry.contains("no_such_controller"));
}

TEST(ControllerRegistry, NoneCreatesNull)
{
    EXPECT_EQ(ControllerRegistry::instance().create(ControllerSpec{}),
              nullptr);
}

TEST(ControllerRegistry, AttackDecaySpecRoundTripsExactly)
{
    AttackDecayConfig config;
    config.deviationThreshold = 0.0123;
    config.reactionChange = 0.045;
    config.decay = 0.00275;
    config.perfDegThreshold = 0.031;
    config.endstopCount = 7;
    config.literalListingGuard = true;

    AttackDecayConfig back =
        attackDecayConfigFromSpec(attackDecaySpec(config));
    EXPECT_EQ(back.deviationThreshold, config.deviationThreshold);
    EXPECT_EQ(back.reactionChange, config.reactionChange);
    EXPECT_EQ(back.decay, config.decay);
    EXPECT_EQ(back.perfDegThreshold, config.perfDegThreshold);
    EXPECT_EQ(back.endstopCount, config.endstopCount);
    EXPECT_EQ(back.literalListingGuard, config.literalListingGuard);
}

TEST(ControllerRegistry, ParseControllerSpec)
{
    ControllerSpec plain = parseControllerSpec("attack_decay");
    EXPECT_EQ(plain.name, "attack_decay");
    EXPECT_TRUE(plain.params.empty());

    ControllerSpec with_params =
        parseControllerSpec("attack_decay:decay=0.0125,endstop_count=5");
    EXPECT_EQ(with_params.name, "attack_decay");
    EXPECT_DOUBLE_EQ(with_params.params.at("decay"), 0.0125);
    EXPECT_DOUBLE_EQ(with_params.params.at("endstop_count"), 5.0);
}

// --------------------------------------------------------- ArtifactCache

TEST_F(ArtifactCacheTest, MissThenHit)
{
    ArtifactCache &cache = ArtifactCache::instance();
    ExperimentSpec spec = tinySpec("gsm");

    SimStats first = cache.getOrRun(spec);
    EXPECT_EQ(cache.lookups(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.simulationsRun(), 1u);

    SimStats second = cache.getOrRun(spec);
    EXPECT_EQ(cache.lookups(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.simulationsRun(), 1u);

    // A cached result is indistinguishable from re-simulating.
    EXPECT_EQ(first.time, second.time);
    EXPECT_EQ(first.chipEnergy, second.chipEnergy);

    SimStats fresh = runExperiment(spec);
    EXPECT_EQ(first.time, fresh.time);
    EXPECT_EQ(first.chipEnergy, fresh.chipEnergy);
    EXPECT_EQ(first.feCycles, fresh.feCycles);
}

TEST_F(ArtifactCacheTest, DistinctSpecsMissIndependently)
{
    ArtifactCache &cache = ArtifactCache::instance();
    cache.getOrRun(tinySpec("gsm"));
    cache.getOrRun(tinySpec("adpcm"));
    EXPECT_EQ(cache.simulationsRun(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ArtifactCacheTest, SeedMatchedVariantsShareACachedBaseline)
{
    // Two variant workflows of one benchmark — a figure comparing
    // Attack/Decay against the MCD baseline, and a sweep comparing a
    // schedule replay against the same baseline — request the same
    // seed-matched baseline spec. It must simulate exactly once.
    ArtifactCache &cache = ArtifactCache::instance();
    RunnerConfig seeded = tinyConfig();
    seeded.clockSeed = deriveJobSeed(seeded.clockSeed, 3);

    ExperimentSpec baseline = tinySpec("gsm", profilingSpec());
    baseline.config = seeded;

    // Workflow 1: baseline + Attack/Decay.
    cache.getOrRun(baseline);
    ExperimentSpec ad =
        tinySpec("gsm", attackDecaySpec(AttackDecayConfig{}));
    ad.config = seeded;
    cache.getOrRun(ad);

    // Workflow 2 re-requests the baseline for its own comparison.
    cache.getOrRun(baseline);

    EXPECT_EQ(cache.simulationsRun(), 2u); // baseline once, A/D once
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(ArtifactCacheTest, BatchDeduplicatesAgainstItselfAndTheCache)
{
    ArtifactCache &cache = ArtifactCache::instance();
    ExperimentSpec spec = tinySpec("gsm");

    std::vector<ExperimentSpec> batch = {spec, spec, spec};
    auto results = runExperiments(batch, 2);
    EXPECT_EQ(results.size(), 3u);
    EXPECT_EQ(cache.simulationsRun(), 1u);
    EXPECT_EQ(results[0].time, results[1].time);
    EXPECT_EQ(results[0].time, results[2].time);

    // A later batch containing the same spec is served from cache.
    auto again = runExperiments({spec}, 1);
    EXPECT_EQ(cache.simulationsRun(), 1u);
    EXPECT_EQ(again[0].time, results[0].time);
}

TEST_F(ArtifactCacheTest, InflightMapDrainsOnceRequestsResolve)
{
    // Regression: fetch used to leave one resolved Inflight per unique
    // key in the map forever, growing it by every spec a process ever
    // requested. The map must be empty whenever no request is active —
    // including after concurrent batches, repeats, and nested
    // (search-probe) requests.
    ArtifactCache &cache = ArtifactCache::instance();
    EXPECT_EQ(cache.inflightEntries(), 0u);

    std::vector<ExperimentSpec> batch;
    for (const char *bench : {"gsm", "em3d", "adpcm"}) {
        batch.push_back(tinySpec(bench));
        batch.push_back(tinySpec(bench)); // duplicates share a flight
    }
    runExperiments(batch, 4);
    EXPECT_EQ(cache.inflightEntries(), 0u);
    EXPECT_EQ(cache.size(), 3u);

    cache.getOrRun(tinySpec("gsm")); // re-request after the erase
    EXPECT_EQ(cache.simulationsRun(), 3u);
    EXPECT_EQ(cache.inflightEntries(), 0u);

    // Nested requests: an offline search fans out probe requests
    // through the same map.
    Runner runner(tinyConfig());
    std::vector<IntervalProfile> profile;
    SimStats mcd = runner.runMcdBaseline("gsm", &profile);
    runner.runOfflineDynamic("gsm", 0.05, mcd, profile);
    EXPECT_GT(cache.lookups(), 6u);
    EXPECT_EQ(cache.inflightEntries(), 0u);
}

TEST_F(ArtifactCacheTest, SyntheticScenariosRunThroughTheLayer)
{
    SimStats stats = ArtifactCache::instance().getOrRun(
        tinySpec("synthetic:mem=0.9,ilp=4,phases=4"));
    EXPECT_EQ(stats.instructions, tinyConfig().instructions);
    EXPECT_GT(stats.time, 0u);
}

/**
 * The figure-sweep property the cache exists for: fig5/fig6/fig7-style
 * sweeps over one benchmark list, run in one process, issue strictly
 * fewer simulations than the naive one-run-per-request count, because
 * the per-benchmark baselines — and any sweep points whose
 * configurations coincide (Figure 6(a) at decay 0.75% equals Figure
 * 6(b) at reaction 4%) — simulate once.
 */
TEST_F(ArtifactCacheTest, FigureStyleSweepsIssueStrictlyFewerSimulations)
{
    ArtifactCache &cache = ArtifactCache::instance();
    RunnerConfig base = tinyConfig();
    std::vector<std::string> names = {"gsm", "em3d"};

    auto seedMatched = [&](const ControllerSpec &controller,
                           ClockMode mode) {
        std::vector<ExperimentSpec> specs;
        for (std::size_t i = 0; i < names.size(); ++i) {
            ExperimentSpec spec = tinySpec(names[i], controller, mode);
            spec.config.clockSeed =
                deriveJobSeed(base.clockSeed, i);
            specs.push_back(spec);
        }
        return specs;
    };

    auto adConfig = [](double dev, double rc, double decay,
                       double pdt) {
        AttackDecayConfig adc;
        adc.deviationThreshold = dev;
        adc.reactionChange = rc;
        adc.decay = decay;
        adc.perfDegThreshold = pdt;
        return adc;
    };

    std::uint64_t naive = 0;
    auto runSweep = [&](const AttackDecayConfig &adc) {
        naive += names.size();
        runExperiments(seedMatched(attackDecaySpec(adc),
                                   ClockMode::Mcd), 1);
    };

    // Baselines, as computeBaselines issues them.
    naive += 2 * names.size();
    runExperiments(seedMatched(profilingSpec(), ClockMode::Mcd), 1);
    runExperiments(seedMatched(ControllerSpec{},
                               ClockMode::Synchronous), 1);

    // fig6(a)-style decay sweep and fig6(b)-style reaction sweep: the
    // (0.015, 0.04, 0.0075, 0.03) point appears in both.
    for (double decay : {0.005, 0.0075})
        runSweep(adConfig(0.015, 0.04, decay, 0.03));
    for (double rc : {0.04, 0.06})
        runSweep(adConfig(0.015, rc, 0.0075, 0.03));

    std::uint64_t after_fig6 = cache.simulationsRun();
    EXPECT_LT(after_fig6, naive);

    // A fig7-style pass re-runs the same configurations for its own
    // metric; in one process it must not simulate at all.
    for (double decay : {0.005, 0.0075})
        runSweep(adConfig(0.015, 0.04, decay, 0.03));
    for (double rc : {0.04, 0.06})
        runSweep(adConfig(0.015, rc, 0.0075, 0.03));

    EXPECT_EQ(cache.simulationsRun(), after_fig6);
    EXPECT_LT(cache.simulationsRun(), naive);
    EXPECT_EQ(cache.lookups(), naive);
}

/**
 * The offline Dynamic-1% and Dynamic-5% searches of one benchmark
 * share their coarse probe grid; running both through the cache must
 * issue strictly fewer schedule replays than the two searches probe.
 */
TEST_F(ArtifactCacheTest, OfflineSearchesShareCoarseProbes)
{
    ArtifactCache &cache = ArtifactCache::instance();
    Runner runner(tinyConfig());
    std::vector<IntervalProfile> profile;
    SimStats mcd = runner.runMcdBaseline("gsm", &profile);

    runner.runOfflineDynamic("gsm", 0.01, mcd, profile);
    std::uint64_t after_first = cache.simulationsRun();
    std::uint64_t lookups_first = cache.lookups();
    EXPECT_GT(after_first, 0u);

    runner.runOfflineDynamic("gsm", 0.05, mcd, profile);
    std::uint64_t second_lookups = cache.lookups() - lookups_first;
    std::uint64_t second_sims = cache.simulationsRun() - after_first;
    // The second search re-probes the identical coarse grid (and
    // possibly more): strictly fewer simulations than probes.
    EXPECT_LT(second_sims, second_lookups);
}

} // namespace
} // namespace mcd
