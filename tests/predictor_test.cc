/**
 * @file
 * Unit tests for the Table 4 branch prediction hierarchy: bimodal,
 * two-level adaptive, combining chooser, BTB, and return address stack.
 */

#include <gtest/gtest.h>

#include "predictor/branch_predictor.hh"

namespace mcd
{
namespace
{

TEST(SatCnt, SaturatesBothEnds)
{
    std::uint8_t c = 0;
    c = satcnt::update(c, false);
    EXPECT_EQ(c, 0);
    c = 3;
    c = satcnt::update(c, true);
    EXPECT_EQ(c, 3);
    EXPECT_TRUE(satcnt::taken(2));
    EXPECT_FALSE(satcnt::taken(1));
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor bimodal;
    for (int i = 0; i < 8; ++i)
        bimodal.update(0x1000, true);
    EXPECT_TRUE(bimodal.predict(0x1000));
    for (int i = 0; i < 8; ++i)
        bimodal.update(0x1000, false);
    EXPECT_FALSE(bimodal.predict(0x1000));
}

TEST(Bimodal, HysteresisSurvivesSingleFlip)
{
    BimodalPredictor bimodal;
    for (int i = 0; i < 8; ++i)
        bimodal.update(0x1000, true);
    bimodal.update(0x1000, false); // one anomaly
    EXPECT_TRUE(bimodal.predict(0x1000));
}

TEST(Bimodal, DistinctPcsIndependent)
{
    // PCs chosen to land in different rows of the 1024-entry table
    // (index = (pc >> 2) & 1023, so 0x1000 and 0x2000 would alias).
    BimodalPredictor bimodal(1024);
    for (int i = 0; i < 8; ++i) {
        bimodal.update(0x1000, true);
        bimodal.update(0x1204, false);
    }
    EXPECT_TRUE(bimodal.predict(0x1000));
    EXPECT_FALSE(bimodal.predict(0x1204));
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    TwoLevelPredictor two_level;
    // Train on a strict T/N alternation; after warm-up, predictions
    // should be nearly perfect because 10 bits of history disambiguate.
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        bool prediction = two_level.predict(0x1000);
        if (i >= 100)
            correct += prediction == taken;
        two_level.update(0x1000, taken);
        taken = !taken;
    }
    EXPECT_GT(correct, 290); // > 96% after warm-up
}

TEST(TwoLevel, LearnsPeriodFourPattern)
{
    TwoLevelPredictor two_level;
    int correct = 0;
    for (int i = 0; i < 800; ++i) {
        bool taken = (i % 4) != 3; // TTTN repeating
        bool prediction = two_level.predict(0x3000);
        if (i >= 200)
            correct += prediction == taken;
        two_level.update(0x3000, taken);
    }
    EXPECT_GT(correct, 560); // > 93% after warm-up
}

TEST(Combining, TracksBestComponent)
{
    // Pattern predictable by the two-level but not the bimodal: the
    // combining predictor must approach two-level accuracy.
    CombiningPredictor combining;
    int correct = 0;
    for (int i = 0; i < 1200; ++i) {
        bool taken = (i % 2) == 0;
        bool prediction = combining.predict(0x1000);
        if (i >= 400)
            correct += prediction == taken;
        combining.update(0x1000, taken);
    }
    EXPECT_GT(correct, 720); // > 90% after chooser warm-up
}

TEST(Combining, BiasedBranchesStayAccurate)
{
    CombiningPredictor combining;
    int correct = 0;
    for (int i = 0; i < 500; ++i) {
        bool prediction = combining.predict(0x2000);
        if (i >= 50)
            correct += prediction;
        combining.update(0x2000, true);
    }
    EXPECT_GT(correct, 440);
}

TEST(Btb, StoresAndRetrievesTargets)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x5000);
    auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x5000u);
}

TEST(Btb, UpdatesExistingEntry)
{
    Btb btb;
    btb.update(0x1000, 0x5000);
    btb.update(0x1000, 0x6000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x6000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb btb(16, 2); // tiny BTB: 16 sets, 2 ways
    // Three PCs mapping to the same set (stride = sets * 4).
    std::uint64_t stride = 16 * 4;
    btb.update(0x0, 0x100);
    btb.update(stride, 0x200);
    btb.update(0x0, 0x100); // refresh LRU of the first
    btb.update(2 * stride, 0x300);
    EXPECT_TRUE(btb.lookup(0x0).has_value());
    EXPECT_FALSE(btb.lookup(stride).has_value());
    EXPECT_TRUE(btb.lookup(2 * stride).has_value());
}

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(*ras.pop(), 0x200u);
    EXPECT_EQ(*ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsNothing)
{
    Ras ras(8);
    EXPECT_FALSE(ras.pop().has_value());
    ras.push(0x100);
    ras.pop();
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(Ras, WrapsWhenFull)
{
    Ras ras(2);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300); // overwrites the oldest
    EXPECT_EQ(*ras.pop(), 0x300u);
    EXPECT_EQ(*ras.pop(), 0x200u);
    EXPECT_FALSE(ras.pop().has_value());
}

TEST(BranchPredictor, CallReturnRoundTrip)
{
    BranchPredictor bpred;
    // A call at 0x1000 to 0x9000: pushes 0x1004 onto the RAS.
    bpred.predict(0x1000, true, false, 0x1004);
    // The matching return is predicted to 0x1004 via the RAS.
    BranchPrediction prediction =
        bpred.predict(0x9014, false, true, 0x9018);
    EXPECT_TRUE(prediction.predictTaken);
    EXPECT_TRUE(prediction.fromRas);
    EXPECT_EQ(prediction.target, 0x1004u);
}

TEST(BranchPredictor, NestedCallsUnwindInOrder)
{
    BranchPredictor bpred;
    bpred.predict(0x1000, true, false, 0x1004);
    bpred.predict(0x2000, true, false, 0x2004);
    EXPECT_EQ(bpred.predict(0x9000, false, true, 0x9004).target,
              0x2004u);
    EXPECT_EQ(bpred.predict(0x9100, false, true, 0x9104).target,
              0x1004u);
}

TEST(BranchPredictor, TakenWithoutBtbTargetFallsBackToNotTaken)
{
    BranchPredictor bpred;
    // Train the direction as taken without ever installing a target.
    for (int i = 0; i < 8; ++i)
        bpred.update(0x4000, true, 0x8000, false, false);
    // BTB now has the target; flush it with a fresh predictor instead:
    BranchPredictor fresh;
    BranchPrediction prediction =
        fresh.predict(0x4000, false, false, 0x4004);
    // Direction defaults weakly-taken but the BTB is cold, so the
    // effective prediction cannot redirect.
    EXPECT_FALSE(prediction.predictTaken);
    EXPECT_FALSE(prediction.btbHit);
}

TEST(BranchPredictor, TrainedBranchPredictsTakenWithTarget)
{
    BranchPredictor bpred;
    for (int i = 0; i < 8; ++i)
        bpred.update(0x4000, true, 0x8000, false, false);
    BranchPrediction prediction =
        bpred.predict(0x4000, false, false, 0x4004);
    EXPECT_TRUE(prediction.predictTaken);
    EXPECT_TRUE(prediction.btbHit);
    EXPECT_EQ(prediction.target, 0x8000u);
}

TEST(BranchPredictor, NotTakenBranchesDontPolluteBtb)
{
    BranchPredictor bpred;
    for (int i = 0; i < 8; ++i)
        bpred.update(0x4000, false, 0, false, false);
    BranchPrediction prediction =
        bpred.predict(0x4000, false, false, 0x4004);
    EXPECT_FALSE(prediction.predictTaken);
    EXPECT_FALSE(prediction.btbHit);
}

TEST(BranchPredictor, LoopBranchAccuracy)
{
    // A loop branch taken 19 of 20 times: accuracy after warm-up must
    // exceed 90% (one mispredict per exit at most).
    BranchPredictor bpred;
    int correct = 0, total = 0;
    for (int visit = 0; visit < 50; ++visit) {
        for (int i = 0; i < 20; ++i) {
            bool taken = i != 19;
            BranchPrediction prediction =
                bpred.predict(0x7000, false, false, 0x7004);
            bool predicted_taken = prediction.predictTaken;
            if (visit >= 5) {
                ++total;
                correct += predicted_taken == taken;
            }
            bpred.update(0x7000, taken, 0x6000, false, false);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.90);
}

} // namespace
} // namespace mcd
